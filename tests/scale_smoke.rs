//! Tier-1 smoke for the async reactor at moderate scale: 64 SAC peers in
//! 8 disjoint subgroups of 8, all hosted on ONE reactor thread over real
//! loopback TCP, each subgroup completing a full aggregation round whose
//! leader digest must be bit-identical to the same 64 actors executed
//! under the deterministic simulator.
//!
//! This is the fast stand-in for `bench --bin scale` (1000 peers / 100
//! subgroups): same topology shape, same digest-vs-sim oracle, sized to
//! run in tier-1 CI.

use p2pfl_net::{PeerHandle, Reactor, ReactorConfig};
use p2pfl_secagg::{
    SacConfig, SacEngine, SacMsg, SacPeerActor, SacPhase, ShareScheme, WeightVector,
};
use p2pfl_simnet::{NodeId, Sim, SimDuration};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const SUBGROUPS: usize = 8;
const SUB_SIZE: usize = 8;
const N: usize = SUBGROUPS * SUB_SIZE;
const K: usize = 3;
const DIM: usize = 16;
const SEED: u64 = 0x5CA1E;

fn models() -> Vec<WeightVector> {
    let mut rng = StdRng::seed_from_u64(SEED + 999);
    (0..N)
        .map(|_| WeightVector::random(DIM, 1.0, &mut rng))
        .collect()
}

/// Global ids of subgroup `g`'s members; the leader is the first.
fn subgroup_ids(g: usize) -> Vec<NodeId> {
    (0..SUB_SIZE)
        .map(|i| NodeId((g * SUB_SIZE + i) as u32))
        .collect()
}

/// Config for global peer `id` (subgroup membership derived from the id).
/// Deadlines only bound straggler waits — with full participation the
/// round freezes once all blocks arrive, so sim and TCP can use different
/// values without affecting the result.
fn config(id: usize, deadline: SimDuration) -> SacConfig {
    SacConfig {
        group: subgroup_ids(id / SUB_SIZE),
        position: id % SUB_SIZE,
        leader_pos: 0,
        k: K,
        scheme: ShareScheme::Masked,
        engine: SacEngine::Pairwise,
        share_deadline: deadline,
        collect_deadline: deadline,
        round_deadline: None,
        seed: SEED + id as u64,
    }
}

/// All 64 actors under the simulator: every subgroup runs round 1, and we
/// return the 8 leader digests in subgroup order.
fn simulator_digests() -> Vec<u64> {
    let mut sim: Sim<SacMsg> = Sim::new(SEED);
    let models = models();
    for (id, model) in models.iter().enumerate() {
        let cfg = config(id, SimDuration::from_millis(500));
        sim.add_node(SacPeerActor::new(cfg, model.clone()));
    }
    sim.run_until_quiet(1000);
    for g in 0..SUBGROUPS {
        let leader = subgroup_ids(g)[0];
        sim.exec::<SacPeerActor, _, _>(leader, |a, ctx| a.start_round(ctx, 1));
    }
    sim.run_until(sim.now() + SimDuration::from_secs(5));
    (0..SUBGROUPS)
        .map(|g| {
            let leader = sim.actor::<SacPeerActor>(subgroup_ids(g)[0]);
            assert_eq!(
                leader.phase,
                SacPhase::Done,
                "sim subgroup {g}: {:?}",
                leader.phase
            );
            leader.result.as_ref().unwrap().digest()
        })
        .collect()
}

fn wait_done(leader: &PeerHandle<SacMsg, SacPeerActor>, g: usize) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let state = leader.with(|a, _| (a.phase.clone(), a.result.as_ref().map(|r| r.digest())));
        match state {
            (SacPhase::Done, Some(d)) => return d,
            (SacPhase::Failed(e), _) => panic!("subgroup {g} failed: {e}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "subgroup {g} stalled");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sixty_four_peers_on_one_reactor_match_simulator() {
    let expected = simulator_digests();

    let reactor: Reactor<SacMsg, SacPeerActor> =
        Reactor::start(ReactorConfig::default()).expect("bind reactor");
    let models = models();
    let handles: Vec<PeerHandle<SacMsg, SacPeerActor>> = (0..N)
        .map(|id| {
            let actor =
                SacPeerActor::new(config(id, SimDuration::from_secs(30)), models[id].clone());
            reactor
                .spawn_peer(NodeId(id as u32), actor)
                .expect("spawn peer")
        })
        .collect();

    // Full mesh within each subgroup only — all 64 peers share the one
    // reactor listener, so every address is the same socket.
    let addr = reactor.local_addr();
    for g in 0..SUBGROUPS {
        let ids = subgroup_ids(g);
        for &a in &ids {
            for &b in &ids {
                if a != b {
                    handles[a.0 as usize].add_peer(b, addr);
                }
            }
        }
    }

    // Kick off all 8 subgroup rounds concurrently.
    for g in 0..SUBGROUPS {
        let leader = &handles[g * SUB_SIZE];
        leader.with(|a, ctx| a.start_round(ctx, 1));
    }

    for (g, want) in expected.iter().enumerate() {
        let got = wait_done(&handles[g * SUB_SIZE], g);
        assert_eq!(got, *want, "subgroup {g} diverged from simulator");
    }

    for h in &handles {
        assert_eq!(
            h.decode_errors(),
            0,
            "peer {:?} dropped frames",
            h.node_id()
        );
        let stats = h.stats();
        assert_eq!(stats.sends_dropped, 0, "peer {:?}: {stats:?}", h.node_id());
    }
}
