//! Seeded, bounded chaos soak over the integrated Raft-backed session.
//!
//! Every sweep prints its seed in a replayable form; rerun a single epoch
//! with `CHAOS_SOAK_SEED=<n> cargo test --test chaos_soak`.
//!
//! Invariants exercised:
//!
//! * A loss-free randomized plan (delay spikes, duplication, reordering)
//!   cannot change the training outcome: whenever the faulted session's
//!   leadership trajectory matches its fault-free twin, the global model
//!   is bit-for-bit identical — the paper's claim that faults which do not
//!   destroy shares cannot change the aggregate.
//! * Lossy chaos epochs with plan-scheduled crash/restart of a subgroup
//!   leader (a FedAvg-layer member) and a follower are absorbed: rounds
//!   keep completing during the chaos window, and once the plan is cleared
//!   the deployment heals back to all subgroups participating.

use p2pfl::runner::{ResilientConfig, ResilientSession};
use p2pfl_fed::Client;
use p2pfl_hierraft::HierActor;
use p2pfl_ml::data::{features_like, partition_dataset, train_test_split, Dataset, Partition};
use p2pfl_ml::models::mlp;
use p2pfl_simnet::{FaultPlan, NodeId, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeds for one soak sweep; `CHAOS_SOAK_SEED` narrows to a single seed
/// for replaying a failure.
fn soak_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SOAK_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SOAK_SEED must be a u64")],
        Err(_) => (0..3).collect(),
    }
}

fn session(seed: u64) -> (ResilientSession, Dataset) {
    let cfg = ResilientConfig::small(seed);
    let n_total = cfg.deployment.total_peers();
    let (train, test) =
        train_test_split(&features_like(16, n_total * 50 + 300, seed), n_total * 50);
    let parts = partition_dataset(&train, n_total, Partition::Iid, seed + 1);
    let mut rng = StdRng::seed_from_u64(seed + 2);
    let clients: Vec<Client> = parts
        .into_iter()
        .enumerate()
        .map(|(i, d)| {
            Client::new(
                i,
                mlp(&[16, 24, 10], &mut rng),
                d,
                5e-3,
                seed + 10 + i as u64,
            )
        })
        .collect();
    let eval = mlp(&[16, 24, 10], &mut rng);
    (ResilientSession::new(cfg, clients, eval), test)
}

fn all_nodes(s: &ResilientSession) -> Vec<NodeId> {
    s.dep.subgroups.iter().flatten().copied().collect()
}

#[test]
fn loss_free_chaos_matches_fault_free_twin() {
    let mut trajectories_matched = 0usize;
    for seed in soak_seeds() {
        println!("chaos soak (loss-free): seed {seed} (replay with CHAOS_SOAK_SEED={seed})");
        let (mut clean, test) = session(seed);
        let (mut faulted, _) = session(seed);

        let plan = FaultPlan::randomized(seed, &all_nodes(&faulted), SimTime::from_secs(8), false);
        assert!(
            !plan.can_drop_messages(),
            "loss-free plan must not contain drop-capable faults"
        );
        faulted.apply_fault_plan(&plan);

        let clean_rounds = clean.run(6, &test);
        let faulted_rounds = faulted.run(6, &test);

        // Link faults only touch the Raft control plane, so the outcome can
        // differ only by electing different leaders. If the trajectory
        // matched, every aggregation drew the same randomness and the
        // global must be bitwise identical.
        let same_trajectory = clean_rounds
            .iter()
            .zip(&faulted_rounds)
            .all(|(c, f)| c.leaders == f.leaders && c.fed_leader == f.fed_leader);
        if same_trajectory {
            trajectories_matched += 1;
            let clean_bits: Vec<u64> = clean.global().iter().map(|x| x.to_bits()).collect();
            let faulted_bits: Vec<u64> = faulted.global().iter().map(|x| x.to_bits()).collect();
            assert_eq!(
                clean_bits, faulted_bits,
                "seed {seed}: same leaders, divergent global under loss-free faults"
            );
        } else {
            println!("chaos soak: seed {seed} diverged in leadership, checking recovery only");
        }

        // Either way the faulted session must heal once the plan is gone.
        faulted.clear_fault_plan();
        faulted.run(2, &test);
        let last = faulted.run_round(9, &test);
        assert_eq!(
            last.record.groups_used, 3,
            "seed {seed}: session did not heal after clearing the plan"
        );
        assert!(last.fed_leader.is_some(), "seed {seed}: no FedAvg leader");
    }
    assert!(
        trajectories_matched >= 1,
        "no seed exercised the digest invariant; widen the sweep"
    );
}

/// Per-round membership churn: every round for 50 rounds, a random
/// follower is killed, stays down long enough for the failure detector to
/// react, and restarts before aggregation. Because every victim is back by
/// aggregation time, both runs aggregate the same surviving set (everyone),
/// so the crash-free twin is an exact oracle: churn that never removes a
/// contributor at aggregation time must be bit-for-bit invisible in the
/// final global model. Every 10th round the outage crosses the detector's
/// confirm window, forcing a real roster eviction + re-admission cycle
/// through the subgroup Raft log underneath the unchanged aggregate.
///
/// Victims are followers by construction: killing a leader changes the
/// election trajectory (already covered by the lossy soak above), which
/// would turn this bitwise oracle into a statement about elections.
#[test]
fn per_round_follower_churn_matches_crash_free_twin() {
    const ROUNDS: usize = 50;
    // ResilientConfig::small: round_settle = 600 ms, detector windows
    // suspect = 100 ms / dead = 300 ms (paper T = 100 ms).
    const SETTLE: SimDuration = SimDuration::from_millis(600);
    let seed = soak_seeds()[0];
    println!("chaos soak (churn): seed {seed} (replay with CHAOS_SOAK_SEED={seed})");
    let (mut clean, test) = session(seed);
    let (mut churned, _) = session(seed);
    let mut pick = StdRng::seed_from_u64(seed ^ 0xc0411);

    for round in 1..=ROUNDS {
        let g = pick.random_range(0..churned.dep.subgroups.len());
        let leader = churned
            .dep
            .sub_leader_of(g)
            .expect("subgroup leaderless at pick time");
        let followers: Vec<NodeId> = churned.dep.subgroups[g]
            .iter()
            .copied()
            .filter(|&m| m != leader)
            .collect();
        let victim = followers[pick.random_range(0..followers.len())];

        // Kill -> wait -> restart. The usual outage crosses the suspect
        // window (probes fire, the victim revives on restart); every 10th
        // crosses the confirm window too, so the leader evicts the victim
        // from the replicated roster and must re-admit it after restart.
        let down_ms = if round % 10 == 0 { 350 } else { 150 };
        churned.crash(victim);
        churned.dep.sim.run_for(SimDuration::from_millis(down_ms));
        churned.restart(victim);

        let t0 = churned.dep.sim.now();
        let r = churned.run_round(round, &test);
        // Bounded round time: the supervisor salvages a round inside the
        // settle window — it never extends the virtual round.
        assert!(
            churned.dep.sim.now() <= t0 + SETTLE + SimDuration::from_millis(10),
            "round {round}: churn round exceeded the settle window"
        );
        assert_eq!(
            r.record.groups_used, 3,
            "round {round}: churn excluded a subgroup (leaders {:?})",
            r.leaders
        );
        let c = clean.run_round(round, &test);
        assert_eq!(
            c.record.groups_used, 3,
            "round {round}: clean twin degraded"
        );
    }

    // Same surviving set every round => identical share randomness and
    // contributor sets => the global model digests must agree exactly.
    let clean_bits: Vec<u64> = clean.global().iter().map(|x| x.to_bits()).collect();
    let churn_bits: Vec<u64> = churned.global().iter().map(|x| x.to_bits()).collect();
    assert_eq!(
        clean_bits, churn_bits,
        "seed {seed}: churn with full recovery changed the global model"
    );

    // The deep-churn rounds really did drive the self-healing machinery:
    // at least one eviction went through the replicated roster, every
    // eviction was paired with a re-admission, and all rosters healed.
    let (mut evictions, mut readmissions) = (0usize, 0usize);
    for g in 0..churned.dep.subgroups.len() {
        for &m in &churned.dep.subgroups[g].clone() {
            let a = churned.dep.sim.actor::<HierActor>(m);
            evictions += a.roster_changes.iter().filter(|(_, _, e)| *e).count();
            readmissions += a.roster_changes.iter().filter(|(_, _, e)| !*e).count();
        }
        let leader = churned.dep.sub_leader_of(g).expect("leader after churn");
        let roster = churned
            .dep
            .sim
            .actor::<HierActor>(leader)
            .live_sub_members();
        assert_eq!(
            roster,
            &churned.dep.subgroups[g][..],
            "subgroup {g}: roster did not heal"
        );
    }
    assert!(evictions >= 1, "no deep-churn round triggered an eviction");
    assert_eq!(
        evictions, readmissions,
        "an evicted member was never re-admitted"
    );
}

#[test]
fn lossy_chaos_with_crash_epochs_heals() {
    for seed in soak_seeds() {
        println!("chaos soak (lossy): seed {seed} (replay with CHAOS_SOAK_SEED={seed})");
        let (mut s, test) = session(seed);
        s.run(2, &test); // healthy warm-up establishes leaders

        // Randomized link chaos plus plan-scheduled process faults: kill a
        // subgroup leader (holding a FedAvg seat) and a follower from a
        // different subgroup, restarting both before the horizon ends.
        let leader0 = s.dep.sub_leader_of(0).expect("warm-up elected a leader");
        let follower = *s.dep.subgroups[1]
            .iter()
            .find(|&&m| Some(m) != s.dep.sub_leader_of(1))
            .expect("subgroup 1 has a follower");
        let plan = FaultPlan::randomized(seed, &all_nodes(&s), SimTime::from_secs(4), true)
            .crash(SimTime::from_millis(400), leader0)
            .restart(SimTime::from_millis(2400), leader0)
            .crash(SimTime::from_millis(900), follower)
            .restart(SimTime::from_millis(2900), follower);
        s.apply_fault_plan(&plan);

        // Rounds keep completing during the chaos window: the dead leader's
        // subgroup is skipped as "slow" at worst, never wedging the round.
        let chaos_rounds = s.run(5, &test);
        assert!(
            chaos_rounds.iter().all(|r| r.record.groups_used >= 1),
            "seed {seed}: a chaos round produced no aggregate at all"
        );

        // After the plan clears (restarts included), the session heals.
        s.clear_fault_plan();
        s.run(3, &test);
        let last = s.run_round(11, &test);
        assert_eq!(
            last.record.groups_used, 3,
            "seed {seed}: subgroups missing after chaos cleared"
        );
        assert!(
            last.fed_leader.is_some(),
            "seed {seed}: no FedAvg leader after chaos cleared"
        );
    }
}
