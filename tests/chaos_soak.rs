//! Seeded, bounded chaos soak over the integrated Raft-backed session.
//!
//! Every sweep prints its seed in a replayable form; rerun a single epoch
//! with `CHAOS_SOAK_SEED=<n> cargo test --test chaos_soak`.
//!
//! Invariants exercised:
//!
//! * A loss-free randomized plan (delay spikes, duplication, reordering)
//!   cannot change the training outcome: whenever the faulted session's
//!   leadership trajectory matches its fault-free twin, the global model
//!   is bit-for-bit identical — the paper's claim that faults which do not
//!   destroy shares cannot change the aggregate.
//! * Lossy chaos epochs with plan-scheduled crash/restart of a subgroup
//!   leader (a FedAvg-layer member) and a follower are absorbed: rounds
//!   keep completing during the chaos window, and once the plan is cleared
//!   the deployment heals back to all subgroups participating.

use p2pfl::runner::{ResilientConfig, ResilientSession};
use p2pfl_fed::Client;
use p2pfl_ml::data::{features_like, partition_dataset, train_test_split, Dataset, Partition};
use p2pfl_ml::models::mlp;
use p2pfl_simnet::{FaultPlan, NodeId, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seeds for one soak sweep; `CHAOS_SOAK_SEED` narrows to a single seed
/// for replaying a failure.
fn soak_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SOAK_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SOAK_SEED must be a u64")],
        Err(_) => (0..3).collect(),
    }
}

fn session(seed: u64) -> (ResilientSession, Dataset) {
    let cfg = ResilientConfig::small(seed);
    let n_total = cfg.deployment.total_peers();
    let (train, test) =
        train_test_split(&features_like(16, n_total * 50 + 300, seed), n_total * 50);
    let parts = partition_dataset(&train, n_total, Partition::Iid, seed + 1);
    let mut rng = StdRng::seed_from_u64(seed + 2);
    let clients: Vec<Client> = parts
        .into_iter()
        .enumerate()
        .map(|(i, d)| {
            Client::new(
                i,
                mlp(&[16, 24, 10], &mut rng),
                d,
                5e-3,
                seed + 10 + i as u64,
            )
        })
        .collect();
    let eval = mlp(&[16, 24, 10], &mut rng);
    (ResilientSession::new(cfg, clients, eval), test)
}

fn all_nodes(s: &ResilientSession) -> Vec<NodeId> {
    s.dep.subgroups.iter().flatten().copied().collect()
}

#[test]
fn loss_free_chaos_matches_fault_free_twin() {
    let mut trajectories_matched = 0usize;
    for seed in soak_seeds() {
        println!("chaos soak (loss-free): seed {seed} (replay with CHAOS_SOAK_SEED={seed})");
        let (mut clean, test) = session(seed);
        let (mut faulted, _) = session(seed);

        let plan = FaultPlan::randomized(seed, &all_nodes(&faulted), SimTime::from_secs(8), false);
        assert!(
            !plan.can_drop_messages(),
            "loss-free plan must not contain drop-capable faults"
        );
        faulted.apply_fault_plan(&plan);

        let clean_rounds = clean.run(6, &test);
        let faulted_rounds = faulted.run(6, &test);

        // Link faults only touch the Raft control plane, so the outcome can
        // differ only by electing different leaders. If the trajectory
        // matched, every aggregation drew the same randomness and the
        // global must be bitwise identical.
        let same_trajectory = clean_rounds
            .iter()
            .zip(&faulted_rounds)
            .all(|(c, f)| c.leaders == f.leaders && c.fed_leader == f.fed_leader);
        if same_trajectory {
            trajectories_matched += 1;
            let clean_bits: Vec<u64> = clean.global().iter().map(|x| x.to_bits()).collect();
            let faulted_bits: Vec<u64> = faulted.global().iter().map(|x| x.to_bits()).collect();
            assert_eq!(
                clean_bits, faulted_bits,
                "seed {seed}: same leaders, divergent global under loss-free faults"
            );
        } else {
            println!("chaos soak: seed {seed} diverged in leadership, checking recovery only");
        }

        // Either way the faulted session must heal once the plan is gone.
        faulted.clear_fault_plan();
        faulted.run(2, &test);
        let last = faulted.run_round(9, &test);
        assert_eq!(
            last.record.groups_used, 3,
            "seed {seed}: session did not heal after clearing the plan"
        );
        assert!(last.fed_leader.is_some(), "seed {seed}: no FedAvg leader");
    }
    assert!(
        trajectories_matched >= 1,
        "no seed exercised the digest invariant; widen the sweep"
    );
}

#[test]
fn lossy_chaos_with_crash_epochs_heals() {
    for seed in soak_seeds() {
        println!("chaos soak (lossy): seed {seed} (replay with CHAOS_SOAK_SEED={seed})");
        let (mut s, test) = session(seed);
        s.run(2, &test); // healthy warm-up establishes leaders

        // Randomized link chaos plus plan-scheduled process faults: kill a
        // subgroup leader (holding a FedAvg seat) and a follower from a
        // different subgroup, restarting both before the horizon ends.
        let leader0 = s.dep.sub_leader_of(0).expect("warm-up elected a leader");
        let follower = *s.dep.subgroups[1]
            .iter()
            .find(|&&m| Some(m) != s.dep.sub_leader_of(1))
            .expect("subgroup 1 has a follower");
        let plan = FaultPlan::randomized(seed, &all_nodes(&s), SimTime::from_secs(4), true)
            .crash(SimTime::from_millis(400), leader0)
            .restart(SimTime::from_millis(2400), leader0)
            .crash(SimTime::from_millis(900), follower)
            .restart(SimTime::from_millis(2900), follower);
        s.apply_fault_plan(&plan);

        // Rounds keep completing during the chaos window: the dead leader's
        // subgroup is skipped as "slow" at worst, never wedging the round.
        let chaos_rounds = s.run(5, &test);
        assert!(
            chaos_rounds.iter().all(|r| r.record.groups_used >= 1),
            "seed {seed}: a chaos round produced no aggregate at all"
        );

        // After the plan clears (restarts included), the session heals.
        s.clear_fault_plan();
        s.run(3, &test);
        let last = s.run_round(11, &test);
        assert_eq!(
            last.record.groups_used, 3,
            "seed {seed}: subgroups missing after chaos cleared"
        );
        assert!(
            last.fed_leader.is_some(),
            "seed {seed}: no FedAvg leader after chaos cleared"
        );
    }
}
