//! End-to-end over real sockets: the SAC engine completes aggregation
//! rounds on localhost TCP, survives an injected connection blackout via
//! the transport's reconnect/backoff machinery, and produces results
//! bit-for-bit identical to the same protocol executed under the
//! deterministic simulator with the same seeds and models.

use p2pfl_net::PeerRuntime;
use p2pfl_secagg::{
    SacConfig, SacEngine, SacMsg, SacPeerActor, SacPhase, ShareScheme, WeightVector,
};
use p2pfl_simnet::{NodeId, Sim, SimDuration};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const N: usize = 5;
const K: usize = 3;
const DIM: usize = 32;
const SEED: u64 = 0xA57;

fn models() -> Vec<WeightVector> {
    let mut rng = StdRng::seed_from_u64(SEED + 999);
    (0..N)
        .map(|_| WeightVector::random(DIM, 1.0, &mut rng))
        .collect()
}

/// One peer's config. The deadlines only bound how long the leader waits
/// for stragglers; with full participation it freezes as soon as all `n`
/// blocks arrive, so the result does not depend on these values as long as
/// they exceed worst-case delivery (which differs wildly between the
/// simulator and TCP-with-reconnects — hence the parameter).
fn config(ids: &[NodeId], position: usize, deadline: SimDuration) -> SacConfig {
    SacConfig {
        group: ids.to_vec(),
        position,
        leader_pos: 0,
        k: K,
        scheme: ShareScheme::Masked,
        engine: SacEngine::Pairwise,
        share_deadline: deadline,
        collect_deadline: deadline,
        round_deadline: None,
        seed: SEED + position as u64,
    }
}

/// Runs `rounds` aggregation rounds under the simulator and returns the
/// leader's result digest after each round.
fn simulator_digests(rounds: u64) -> Vec<u64> {
    let mut sim: Sim<SacMsg> = Sim::new(SEED);
    let ids: Vec<NodeId> = (0..N).map(|i| NodeId(i as u32)).collect();
    let models = models();
    for (i, model) in models.iter().enumerate() {
        let cfg = config(&ids, i, SimDuration::from_millis(500));
        sim.add_node(SacPeerActor::new(cfg, model.clone()));
    }
    sim.run_until_quiet(100);
    let mut digests = Vec::new();
    for round in 1..=rounds {
        sim.exec::<SacPeerActor, _, _>(ids[0], move |a, ctx| a.start_round(ctx, round));
        sim.run_until(sim.now() + SimDuration::from_secs(5));
        let leader = sim.actor::<SacPeerActor>(ids[0]);
        assert_eq!(
            leader.phase,
            SacPhase::Done,
            "sim round {round}: {:?}",
            leader.phase
        );
        digests.push(leader.result.as_ref().unwrap().digest());
    }
    digests
}

fn wait_done(leader: &PeerRuntime<SacMsg, SacPeerActor>, round: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let state = leader.with(|a, _| (a.phase.clone(), a.result.as_ref().map(|r| r.digest())));
        match state {
            (SacPhase::Done, Some(d)) => return d,
            (SacPhase::Failed(e), _) => panic!("round {round} failed: {e}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "round {round} stalled");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn tcp_rounds_match_simulator_bitwise_across_connection_drops() {
    let expected = simulator_digests(2);

    // Same actors, same seeds and models — but on real sockets. Generous
    // deadlines (wall-clock here!) so reconnect backoff after the injected
    // blackout can never shrink the contributor set.
    let ids: Vec<NodeId> = (0..N).map(|i| NodeId(i as u32)).collect();
    let models = models();
    let runtimes: Vec<PeerRuntime<SacMsg, SacPeerActor>> = (0..N)
        .map(|i| {
            let actor = SacPeerActor::new(
                config(&ids, i, SimDuration::from_secs(10)),
                models[i].clone(),
            );
            PeerRuntime::start(ids[i], "127.0.0.1:0", &[], actor).expect("bind")
        })
        .collect();
    for a in &runtimes {
        for b in &runtimes {
            if a.node_id() != b.node_id() {
                a.add_peer(b.node_id(), b.local_addr());
            }
        }
    }

    // Round 1 on a healthy network.
    runtimes[0].with(|a, ctx| a.start_round(ctx, 1));
    assert_eq!(
        wait_done(&runtimes[0], 1),
        expected[0],
        "round 1 diverged from simulator"
    );

    // Sever every TCP connection in the mesh, then immediately run round 2:
    // the first sends hit dead sockets and the writers must reconnect
    // (with backoff) before any share can flow.
    for rt in &runtimes {
        rt.kill_connections();
    }
    runtimes[0].with(|a, ctx| a.start_round(ctx, 2));
    assert_eq!(
        wait_done(&runtimes[0], 2),
        expected[1],
        "round 2 diverged from simulator"
    );

    let reconnects: u64 = runtimes.iter().map(|rt| rt.stats().reconnects).sum();
    assert!(
        reconnects >= 1,
        "blackout did not exercise the reconnect path"
    );
    for rt in &runtimes {
        assert_eq!(
            rt.decode_errors(),
            0,
            "peer {:?} dropped frames",
            rt.node_id()
        );
    }
}
