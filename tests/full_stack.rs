//! End-to-end scenarios across every crate: the integrated Raft-backed
//! training session surviving compound failures, and the distributed SAC
//! engine agreeing with the synchronous reference implementation.

use p2pfl::runner::{ResilientConfig, ResilientSession};
use p2pfl_fed::Client;
use p2pfl_ml::data::{features_like, partition_dataset, train_test_split, Dataset, Partition};
use p2pfl_ml::models::mlp;
use p2pfl_secagg::{
    secure_average, SacConfig, SacEngine, SacMsg, SacPeerActor, SacPhase, ShareScheme, WeightVector,
};
use p2pfl_simnet::{NodeId, Sim, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn session(seed: u64) -> (ResilientSession, Dataset) {
    let cfg = ResilientConfig::small(seed);
    let n_total = cfg.deployment.total_peers();
    let (train, test) =
        train_test_split(&features_like(16, n_total * 50 + 300, seed), n_total * 50);
    let parts = partition_dataset(&train, n_total, Partition::Iid, seed + 1);
    let mut rng = StdRng::seed_from_u64(seed + 2);
    let clients: Vec<Client> = parts
        .into_iter()
        .enumerate()
        .map(|(i, d)| {
            Client::new(
                i,
                mlp(&[16, 24, 10], &mut rng),
                d,
                5e-3,
                seed + 10 + i as u64,
            )
        })
        .collect();
    let eval = mlp(&[16, 24, 10], &mut rng);
    (ResilientSession::new(cfg, clients, eval), test)
}

#[test]
fn compound_failure_sequence_recovers_fully() {
    // The crash_drill example as an assertion: follower, then a subgroup
    // leader, then the FedAvg leader die in sequence; the system heals
    // after each and finishes with all groups aggregating.
    let (mut s, test) = session(42);
    s.run(2, &test);

    let leader0 = s.dep.sub_leader_of(0).unwrap();
    let follower = *s.dep.subgroups[0].iter().find(|&&m| m != leader0).unwrap();
    s.crash(follower);
    let r = s.run_round(3, &test);
    assert_eq!(r.record.groups_used, 3, "follower crash must be absorbed");

    let sub_leader = s.dep.sub_leader_of(1).unwrap();
    s.crash(sub_leader);
    s.run_round(4, &test);
    let r = s.run_round(5, &test);
    assert_eq!(r.record.groups_used, 3, "leaders: {:?}", r.leaders);

    // Return the first two casualties before the final blow: the FedAvg
    // leader may be subgroup 0's leader, and a subgroup that has already
    // lost a follower would drop below quorum when its leader dies too
    // (that quorum arithmetic is asserted separately below).
    s.restart(follower);
    s.restart(sub_leader);
    let fed = s.dep.fed_leader().expect("fed leader must exist");
    s.crash(fed);
    s.run_round(6, &test);
    let r = s.run_round(7, &test);
    assert_eq!(r.record.groups_used, 3, "leaders: {:?}", r.leaders);
    assert!(r.fed_leader.is_some());
    assert_ne!(r.fed_leader, Some(fed));

    // The last casualty returns; training still improves.
    s.restart(fed);
    let recs = s.run(8, &test);
    let last = recs.last().unwrap();
    assert_eq!(last.record.groups_used, 3);
    assert!(
        last.record.test_accuracy > 0.15,
        "acc {}",
        last.record.test_accuracy
    );
}

#[test]
fn two_simultaneous_fed_member_crashes_halt_the_fed_layer() {
    // Sec. VII-D's negative result: with m = 3 FedAvg members, two
    // simultaneous subgroup-leader crashes are a FedAvg-layer majority,
    // so the layer loses quorum and no aggregation can complete until
    // peers return.
    let (mut s, test) = session(7);
    s.run(2, &test);
    // Two of the three subgroup leaders, always including the current
    // FedAvg-layer leader so the stale-leader role cannot linger on the
    // surviving member (which leader that is depends on election timing).
    let fl = s.dep.fed_leader().expect("stable session has a fed leader");
    let mut downed: Vec<NodeId> = (0..3)
        .filter_map(|g| s.dep.sub_leader_of(g))
        .filter(|&l| l != fl)
        .collect();
    downed.truncate(1);
    downed.insert(0, fl);
    s.crash(downed[0]);
    s.crash(downed[1]);
    s.run_round(3, &test);
    let r = s.run_round(4, &test);
    assert!(
        r.fed_leader.is_none(),
        "2 of 3 FedAvg members down = no quorum"
    );

    // Once one casualty returns, the layer has 2 of 3 again and heals:
    // elections complete and the replacement leaders join.
    s.restart(downed[1]);
    s.run_round(5, &test);
    s.run_round(6, &test);
    let r = s.run_round(7, &test);
    assert!(r.fed_leader.is_some(), "quorum restored, layer must heal");
    assert_eq!(r.record.groups_used, 3, "leaders: {:?}", r.leaders);
}

#[test]
fn distributed_engine_agrees_with_synchronous_reference() {
    // The same models aggregated (a) by the message-driven engine over the
    // simulator and (b) by the synchronous Alg. 2 must agree to float
    // accumulation precision.
    let n = 5usize;
    let dim = 32usize;
    let mut rng = StdRng::seed_from_u64(5);
    let models: Vec<WeightVector> = (0..n)
        .map(|_| WeightVector::random(dim, 1.0, &mut rng))
        .collect();

    let mut sim: Sim<SacMsg> = Sim::new(9);
    let ids: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    for (i, model) in models.iter().enumerate() {
        let cfg = SacConfig {
            group: ids.clone(),
            position: i,
            leader_pos: 0,
            k: 3,
            scheme: ShareScheme::Masked,
            engine: SacEngine::Pairwise,
            share_deadline: SimDuration::from_millis(100),
            collect_deadline: SimDuration::from_millis(100),
            round_deadline: None,
            seed: 100 + i as u64,
        };
        sim.add_node(SacPeerActor::new(cfg, model.clone()));
    }
    sim.run_until_quiet(100);
    sim.exec::<SacPeerActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 1));
    sim.run_until(SimTime::from_secs(2));

    let leader = sim.actor::<SacPeerActor>(ids[0]);
    assert_eq!(leader.phase, SacPhase::Done);
    let distributed = leader.result.clone().unwrap();

    let reference = secure_average(&models, ShareScheme::Masked, &mut rng).average;
    assert!(
        distributed.linf_distance(&reference) < 1e-8,
        "distributed vs reference error {}",
        distributed.linf_distance(&reference)
    );
}

#[test]
fn aggregation_traffic_is_separate_from_raft_traffic() {
    // The ledger split the paper's analysis relies on: SAC/FedAvg bytes in
    // the TransferLog, Raft control bytes in the simulator metrics.
    let (mut s, test) = session(11);
    let before_raft = s.dep.sim.metrics().total().bytes;
    s.run(3, &test);
    assert!(s.log.bytes() > 0, "aggregation must move bytes");
    assert!(
        s.dep.sim.metrics().total().bytes > before_raft,
        "raft heartbeats must keep flowing during training"
    );
    // Raft control traffic is orders of magnitude below model traffic in
    // any realistic deployment; with tiny test models it is still the
    // aggregation that dominates per-message size.
    let raft = s.dep.sim.metrics();
    assert!(raft.kind("hier.sub").msgs > 0);
}
