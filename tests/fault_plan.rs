//! Acceptance: one declarative [`FaultPlan`] value is interpreted
//! identically by the discrete-event simulator and the real TCP transport.
//!
//! * The same loss-free plan (delay spikes + duplication) applied to both
//!   transports lets a full SAC round complete, with the leader's
//!   aggregate bit-for-bit equal to the fault-free digest — the paper's
//!   invariant that faults which do not destroy shares cannot change the
//!   result.
//! * The same plan applied to the two-layer Raft deployment on the
//!   simulator still reaches a stable elected state and commits a round
//!   marker through the FedAvg layer.
//! * A crash/restart event pair taken from a plan's process-fault schedule
//!   kills a real `PeerRuntime` peer mid-deployment and recovers it from
//!   its on-disk Raft record: the rebuilt actor restores term, log, and
//!   its FedAvg-layer seat from the files alone, and the deployment then
//!   commits a fresh round marker.

use p2pfl_hierraft::{
    Deployment, DeploymentSpec, FedCmd, HierActor, HierMsg, HierPeerConfig, RobustCombiner, SubCmd,
};
use p2pfl_net::PeerRuntime;
use p2pfl_raft::FileStorage;
use p2pfl_secagg::{
    SacConfig, SacEngine, SacMsg, SacPeerActor, SacPhase, ShareScheme, WeightVector,
};
use p2pfl_simnet::{FaultPlan, NodeId, ProcessFault, Sim, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const N: usize = 5;
const K: usize = 3;
const DIM: usize = 16;
const SEED: u64 = 0xFA17;

/// The one plan both transports interpret: constant delay spikes plus
/// aggressive duplication, active for the whole test horizon. Loss-free,
/// so every share survives and the digest invariant must hold exactly.
fn shared_plan() -> FaultPlan {
    FaultPlan::new(SEED)
        .delay(
            SimTime::ZERO,
            SimTime::from_secs(600),
            SimDuration::from_millis(5),
            SimDuration::ZERO,
        )
        .duplicate(SimTime::ZERO, SimTime::from_secs(600), 0.5)
}

fn models() -> Vec<WeightVector> {
    let mut rng = StdRng::seed_from_u64(SEED + 999);
    (0..N)
        .map(|_| WeightVector::random(DIM, 1.0, &mut rng))
        .collect()
}

fn sac_config(ids: &[NodeId], position: usize, deadline: SimDuration) -> SacConfig {
    SacConfig {
        group: ids.to_vec(),
        position,
        leader_pos: 0,
        k: K,
        scheme: ShareScheme::Masked,
        engine: SacEngine::Pairwise,
        share_deadline: deadline,
        collect_deadline: deadline,
        round_deadline: None,
        seed: SEED + position as u64,
    }
}

/// One SAC round on the simulator, optionally under a fault plan; returns
/// the leader's result digest.
fn sim_sac_digest(plan: Option<&FaultPlan>) -> u64 {
    let mut sim: Sim<SacMsg> = Sim::new(SEED);
    let ids: Vec<NodeId> = (0..N).map(|i| NodeId(i as u32)).collect();
    for (i, model) in models().iter().enumerate() {
        let cfg = sac_config(&ids, i, SimDuration::from_millis(500));
        sim.add_node(SacPeerActor::new(cfg, model.clone()));
    }
    if let Some(p) = plan {
        sim.apply_fault_plan(p);
    }
    sim.run_until_quiet(100);
    sim.exec::<SacPeerActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 1));
    sim.run_until(sim.now() + SimDuration::from_secs(5));
    let leader = sim.actor::<SacPeerActor>(ids[0]);
    assert_eq!(
        leader.phase,
        SacPhase::Done,
        "sim round: {:?}",
        leader.phase
    );
    leader.result.as_ref().unwrap().digest()
}

#[test]
fn plan_preserves_sac_digest_on_simulator() {
    let clean = sim_sac_digest(None);
    let faulted = sim_sac_digest(Some(&shared_plan()));
    assert_eq!(
        faulted, clean,
        "loss-free faults must not change the aggregate"
    );
}

#[test]
fn same_plan_preserves_sac_digest_on_tcp() {
    let clean = sim_sac_digest(None);

    let ids: Vec<NodeId> = (0..N).map(|i| NodeId(i as u32)).collect();
    let models = models();
    let plan = shared_plan();
    let runtimes: Vec<PeerRuntime<SacMsg, SacPeerActor>> = (0..N)
        .map(|i| {
            let actor = SacPeerActor::new(
                sac_config(&ids, i, SimDuration::from_secs(30)),
                models[i].clone(),
            );
            PeerRuntime::start_with_faults(ids[i], "127.0.0.1:0", &[], actor, &plan).expect("bind")
        })
        .collect();
    for a in &runtimes {
        for b in &runtimes {
            if a.node_id() != b.node_id() {
                a.add_peer(b.node_id(), b.local_addr());
            }
        }
    }

    runtimes[0].with(|a, ctx| a.start_round(ctx, 1));
    let deadline = Instant::now() + Duration::from_secs(30);
    let digest = loop {
        let state =
            runtimes[0].with(|a, _| (a.phase.clone(), a.result.as_ref().map(|r| r.digest())));
        match state {
            (SacPhase::Done, Some(d)) => break d,
            (SacPhase::Failed(e), _) => panic!("tcp round failed: {e}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "tcp round stalled");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(digest, clean, "tcp aggregate diverged under the fault plan");

    // The duplication window must actually have fired: more frames hit the
    // wire than a clean all-to-all round needs.
    let dup_extra: u64 = runtimes.iter().map(|rt| rt.stats().frames_sent).sum();
    let clean_run: u64 = (N * (N - 1)) as u64 * 2; // generous clean-round bound
    assert!(
        dup_extra > clean_run,
        "duplication never fired: {dup_extra} frames"
    );
}

/// One SAC round on the reactor (single loop thread hosting all peers),
/// every peer filtering its sends through `plan`; returns the leader's
/// digest.
fn reactor_sac_digest(plan: &FaultPlan) -> u64 {
    use p2pfl_net::{PeerHandle, Reactor, ReactorConfig};
    let reactor: Reactor<SacMsg, SacPeerActor> =
        Reactor::start(ReactorConfig::default()).expect("bind reactor");
    let ids: Vec<NodeId> = (0..N).map(|i| NodeId(i as u32)).collect();
    let models = models();
    let handles: Vec<PeerHandle<SacMsg, SacPeerActor>> = (0..N)
        .map(|i| {
            let actor = SacPeerActor::new(
                sac_config(&ids, i, SimDuration::from_secs(30)),
                models[i].clone(),
            );
            reactor
                .spawn_peer_with_faults(ids[i], actor, plan)
                .expect("spawn")
        })
        .collect();
    for a in &handles {
        for b in &handles {
            if a.node_id() != b.node_id() {
                a.add_peer(b.node_id(), reactor.local_addr());
            }
        }
    }
    handles[0].with(|a, ctx| a.start_round(ctx, 1));
    let deadline = Instant::now() + Duration::from_secs(30);
    let digest = loop {
        let state =
            handles[0].with(|a, _| (a.phase.clone(), a.result.as_ref().map(|r| r.digest())));
        match state {
            (SacPhase::Done, Some(d)) => break d,
            (SacPhase::Failed(e), _) => panic!("reactor round failed: {e}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "reactor round stalled");
        std::thread::sleep(Duration::from_millis(20));
    };
    // The plan's duplication window must have fired on this transport too.
    let frames: u64 = handles.iter().map(|h| h.stats().frames_sent).sum();
    let clean_run: u64 = (N * (N - 1)) as u64 * 2;
    assert!(
        frames > clean_run,
        "duplication never fired: {frames} frames"
    );
    for h in &handles {
        assert_eq!(
            h.decode_errors(),
            0,
            "peer {:?} dropped frames",
            h.node_id()
        );
    }
    digest
}

/// The acceptance differential for the async runtime: the same seed,
/// models, and declarative fault plan produce a bit-identical aggregate
/// on all three executions — discrete-event simulator, thread-per-peer
/// TCP transport, and the single-thread reactor transport.
#[test]
fn plan_digest_identical_across_sim_threaded_and_reactor() {
    let clean = sim_sac_digest(None);
    let plan = shared_plan();
    assert_eq!(sim_sac_digest(Some(&plan)), clean, "simulator leg diverged");
    assert_eq!(reactor_sac_digest(&plan), clean, "reactor leg diverged");

    // Threaded leg, same plan (mirrors `same_plan_preserves_sac_digest_on_tcp`).
    let ids: Vec<NodeId> = (0..N).map(|i| NodeId(i as u32)).collect();
    let models = models();
    let runtimes: Vec<PeerRuntime<SacMsg, SacPeerActor>> = (0..N)
        .map(|i| {
            let actor = SacPeerActor::new(
                sac_config(&ids, i, SimDuration::from_secs(30)),
                models[i].clone(),
            );
            PeerRuntime::start_with_faults(ids[i], "127.0.0.1:0", &[], actor, &plan).expect("bind")
        })
        .collect();
    for a in &runtimes {
        for b in &runtimes {
            if a.node_id() != b.node_id() {
                a.add_peer(b.node_id(), b.local_addr());
            }
        }
    }
    runtimes[0].with(|a, ctx| a.start_round(ctx, 1));
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let state =
            runtimes[0].with(|a, _| (a.phase.clone(), a.result.as_ref().map(|r| r.digest())));
        match state {
            (SacPhase::Done, Some(d)) => {
                assert_eq!(d, clean, "threaded leg diverged");
                break;
            }
            (SacPhase::Failed(e), _) => panic!("threaded round failed: {e}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "threaded round stalled");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn plan_leaves_two_layer_backend_electable_on_simulator() {
    let mut spec = DeploymentSpec::paper(100, SEED);
    spec.num_subgroups = 3;
    spec.subgroup_size = 3;
    let mut d = Deployment::build(spec);
    d.sim.apply_fault_plan(&shared_plan());
    assert!(
        d.wait_stable(SimTime::from_secs(20)),
        "two-layer backend failed to stabilize under the plan"
    );
    let fl = d.fed_leader().unwrap();
    d.sim.exec::<HierActor, _, _>(fl, |a, ctx| {
        a.propose_fed(ctx, FedCmd::Round(77)).unwrap();
    });
    d.sim.run_for(SimDuration::from_secs(2));
    for g in 0..3 {
        let l = d.sub_leader_of(g).unwrap();
        assert!(
            d.sim
                .actor::<HierActor>(l)
                .fed_rounds_applied()
                .contains(&77),
            "subgroup {g} missed the round marker under faults"
        );
    }
}

// ---------------------------------------------------------------------
// TCP crash/restart recovery from on-disk Raft state
// ---------------------------------------------------------------------

const GROUPS: usize = 2;
const SIZE: usize = 3;

fn hier_cfg(id: NodeId, subgroups: &[Vec<NodeId>], founding: &[NodeId]) -> HierPeerConfig {
    let gi = (id.0 as usize) / SIZE;
    HierPeerConfig {
        id,
        subgroup: subgroups[gi].clone(),
        subgroup_index: gi,
        founding_fed: founding.to_vec(),
        t: SimDuration::from_millis(300),
        heartbeat: SimDuration::from_millis(60),
        config_commit_interval: SimDuration::from_millis(200),
        join_poll_interval: SimDuration::from_millis(100),
        probe_interval: SimDuration::from_millis(60),
        suspect_after: SimDuration::from_millis(300),
        dead_after: SimDuration::from_millis(900),
        engine: SacEngine::Pairwise,
        combiner: RobustCombiner::FedAvg,
        seed: SEED ^ (0x9e37 + id.0 as u64 * 0x85eb_ca6b),
        elastic: None,
    }
}

fn storage_paths(dir: &std::path::Path, id: NodeId) -> (PathBuf, PathBuf) {
    (
        dir.join(format!("n{}-sub.raft", id.0)),
        dir.join(format!("n{}-fed.raft", id.0)),
    )
}

fn storage_actor(dir: &std::path::Path, cfg: HierPeerConfig) -> HierActor {
    let (sub, fed) = storage_paths(dir, cfg.id);
    HierActor::with_storage(
        cfg,
        Box::new(FileStorage::<SubCmd>::open(sub).expect("open sub storage")),
        Box::new(FileStorage::<FedCmd>::open(fed).expect("open fed storage")),
    )
}

type HierRt = PeerRuntime<HierMsg, HierActor>;

fn wait_for(what: &str, timeout: Duration, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Whether the TCP deployment is stable: per subgroup exactly one leader
/// who holds a FedAvg-layer seat, and exactly one FedAvg leader overall.
fn tcp_stable(rts: &HashMap<NodeId, HierRt>, subgroups: &[Vec<NodeId>]) -> bool {
    let mut fed_leaders = 0;
    for rt in rts.values() {
        if rt.with(|a, _| a.is_fed_leader()) {
            fed_leaders += 1;
        }
    }
    if fed_leaders != 1 {
        return false;
    }
    subgroups.iter().all(|g| {
        let leaders: Vec<&HierRt> = g
            .iter()
            .filter_map(|id| rts.get(id))
            .filter(|rt| rt.with(|a, _| a.is_sub_leader()))
            .collect();
        leaders.len() == 1 && leaders[0].with(|a, _| a.is_fed_member())
    })
}

fn commit_marker(rts: &HashMap<NodeId, HierRt>, subgroups: &[Vec<NodeId>], marker: u64) {
    let fl = rts
        .values()
        .find(|rt| rt.with(|a, _| a.is_fed_leader()))
        .expect("fed leader");
    fl.with(move |a, ctx| a.propose_fed(ctx, FedCmd::Round(marker)).unwrap());
    wait_for(
        &format!("marker {marker} at every subgroup leader"),
        Duration::from_secs(30),
        || {
            subgroups.iter().all(|g| {
                g.iter().filter_map(|id| rts.get(id)).any(|rt| {
                    rt.with(move |a, _| {
                        a.is_sub_leader() && a.fed_rounds_applied().contains(&marker)
                    })
                })
            })
        },
    );
}

#[test]
fn plan_crash_restart_recovers_tcp_peer_from_disk() {
    let dir = std::env::temp_dir().join(format!("p2pfl-fault-plan-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let subgroups: Vec<Vec<NodeId>> = (0..GROUPS)
        .map(|g| (0..SIZE).map(|i| NodeId((g * SIZE + i) as u32)).collect())
        .collect();
    let founding: Vec<NodeId> = subgroups.iter().map(|g| g[0]).collect();
    let all: Vec<NodeId> = subgroups.iter().flatten().copied().collect();

    let mut rts: HashMap<NodeId, HierRt> = all
        .iter()
        .map(|&id| {
            let actor = storage_actor(&dir, hier_cfg(id, &subgroups, &founding));
            let rt = PeerRuntime::start(id, "127.0.0.1:0", &[], actor).expect("bind");
            (id, rt)
        })
        .collect();
    for a in &all {
        for b in &all {
            if a != b {
                rts[a].add_peer(*b, rts[b].local_addr());
            }
        }
    }

    wait_for(
        "initial two-layer stability",
        Duration::from_secs(30),
        || tcp_stable(&rts, &subgroups),
    );
    commit_marker(&rts, &subgroups, 1);

    // The fault plan's process schedule: kill subgroup 0's representative,
    // bring it back 2 s later. Everything below is driven by the plan.
    let victim = founding[0];
    let plan = FaultPlan::new(SEED ^ 0xdead)
        .crash(SimTime::from_millis(10), victim)
        .restart(SimTime::from_millis(2000), victim);
    let origin = Instant::now();
    let (pre_term, pre_last) = rts[&victim].with(|a, _| {
        let r = a.sub_raft();
        (r.term(), r.log().last_index())
    });
    assert!(pre_last > 0, "no durable log before the crash");

    for ev in plan.process_events() {
        let due = origin + Duration::from_nanos(ev.at.as_nanos());
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        match ev.fault {
            ProcessFault::Crash => {
                rts.remove(&ev.node).expect("victim running").kill();
            }
            ProcessFault::Restart => {
                let actor = storage_actor(&dir, hier_cfg(ev.node, &subgroups, &founding));
                // Recovery happens *before* any network traffic: the files
                // alone restore term, log, and the FedAvg-layer seat.
                assert!(actor.sub_raft().term() >= pre_term, "term lost");
                assert!(
                    actor.sub_raft().log().last_index() >= pre_last,
                    "log entries lost"
                );
                assert!(actor.is_fed_member(), "fed seat not restored from disk");
                let peers: Vec<(NodeId, std::net::SocketAddr)> =
                    rts.iter().map(|(&id, rt)| (id, rt.local_addr())).collect();
                let rt = PeerRuntime::start(ev.node, "127.0.0.1:0", &peers, actor).expect("rebind");
                for other in rts.values() {
                    other.add_peer(ev.node, rt.local_addr());
                }
                rts.insert(ev.node, rt);
            }
        }
    }

    // The deployment absorbs the crash (subgroup 0 re-elects, the new
    // leader replaces the victim in the FedAvg layer or the victim's
    // restored seat resumes) and commits another round marker.
    wait_for("post-restart stability", Duration::from_secs(60), || {
        tcp_stable(&rts, &subgroups)
    });
    commit_marker(&rts, &subgroups, 2);

    for (_, rt) in rts.drain() {
        drop(rt.stop());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
