//! Raft safety properties under randomized fault schedules — the paper's
//! backend must never elect two leaders for one term or diverge its logs,
//! no matter when peers crash, restart, or lose messages.

use p2pfl_raft::{Entry, LogCmd, RaftActor, RaftConfig, RaftMsg, StateMachine, Term};
use p2pfl_simnet::{NodeId, Sim, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

type Msg = RaftMsg<u64>;

struct Recorder {
    applied: Vec<(u64, Term)>,
}

impl StateMachine<u64> for Recorder {
    fn apply(&mut self, entry: &Entry<u64>) {
        if let LogCmd::App(v) = &entry.cmd {
            self.applied.push((*v, entry.term));
        }
    }
}

type Node = RaftActor<u64, Recorder>;

fn build(n: u32, t_ms: u64, seed: u64) -> (Sim<Msg>, Vec<NodeId>) {
    let mut sim = Sim::new(seed);
    let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
    for &id in &ids {
        let cfg = RaftConfig::paper(
            id,
            ids.clone(),
            SimDuration::from_millis(t_ms),
            seed + id.0 as u64,
        );
        sim.add_node(RaftActor::new(cfg, Recorder { applied: vec![] }));
    }
    (sim, ids)
}

fn check_election_safety(sim: &Sim<Msg>, ids: &[NodeId], tag: &str) {
    let mut by_term: HashMap<Term, Vec<NodeId>> = HashMap::new();
    for &id in ids {
        for ev in &sim.actor::<Node>(id).leadership_history {
            by_term.entry(ev.term).or_default().push(id);
        }
    }
    for (term, winners) in by_term {
        assert_eq!(winners.len(), 1, "{tag}: term {term} won by {winners:?}");
    }
}

fn check_applied_prefix(sim: &Sim<Msg>, ids: &[NodeId], tag: &str) {
    // State-machine safety: applied command sequences must be prefixes of
    // each other (they are all prefixes of the longest).
    let seqs: Vec<Vec<(u64, Term)>> = ids
        .iter()
        .map(|&id| sim.actor::<Node>(id).sm.applied.clone())
        .collect();
    let longest = seqs.iter().max_by_key(|s| s.len()).unwrap().clone();
    for (i, s) in seqs.iter().enumerate() {
        assert_eq!(
            &longest[..s.len()],
            s.as_slice(),
            "{tag}: node {i} diverged"
        );
    }
}

#[test]
fn safety_under_random_crashes_and_restarts() {
    for seed in 0..10u64 {
        let (mut sim, ids) = build(5, 50, 777 + seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut proposal = 0u64;
        // 12 chaos epochs of 400 ms each.
        for _ in 0..12 {
            sim.run_for(SimDuration::from_millis(400));
            // Propose on whoever claims leadership.
            for &id in &ids {
                if !sim.is_crashed(id) && sim.actor::<Node>(id).is_leader() {
                    proposal += 1;
                    let v = proposal;
                    sim.exec::<Node, _, _>(id, |a, ctx| {
                        let _ = a.propose(ctx, v);
                    });
                }
            }
            // Random crash or restart of one node (keep a majority alive).
            let victim = ids[rng.random_range(0..ids.len())];
            let crashed = ids.iter().filter(|&&i| sim.is_crashed(i)).count();
            let at = sim.now() + SimDuration::from_millis(1);
            if sim.is_crashed(victim) {
                sim.schedule_restart(victim, at);
            } else if crashed < 2 {
                sim.schedule_crash(victim, at);
            }
        }
        // Heal everything and let the cluster converge.
        for &id in &ids {
            if sim.is_crashed(id) {
                let at = sim.now() + SimDuration::from_millis(1);
                sim.schedule_restart(id, at);
            }
        }
        sim.run_for(SimDuration::from_secs(4));
        let tag = format!("seed {seed}");
        check_election_safety(&sim, &ids, &tag);
        check_applied_prefix(&sim, &ids, &tag);
    }
}

#[test]
fn safety_under_message_loss() {
    for seed in 0..6u64 {
        let (mut sim, ids) = build(5, 50, 99 + seed);
        sim.set_loss_probability(0.15);
        sim.run_until(SimTime::from_secs(6));
        let tag = format!("lossy seed {seed}");
        check_election_safety(&sim, &ids, &tag);
        // Despite 15% loss, a leader must eventually emerge and stay.
        let leaders = ids
            .iter()
            .filter(|&&id| sim.actor::<Node>(id).is_leader())
            .count();
        assert_eq!(leaders, 1, "{tag}: {leaders} leaders");
    }
}

#[test]
fn committed_entries_survive_any_single_crash() {
    for seed in 0..8u64 {
        let (mut sim, ids) = build(3, 50, 3000 + seed);
        sim.run_until(SimTime::from_secs(2));
        let leader = *ids
            .iter()
            .find(|&&id| sim.actor::<Node>(id).is_leader())
            .expect("no leader");
        sim.exec::<Node, _, _>(leader, |a, ctx| {
            let _ = a.propose(ctx, 4242);
        });
        // Wait for the entry to commit on the leader.
        sim.run_for(SimDuration::from_millis(300));
        assert!(
            sim.actor::<Node>(leader)
                .sm
                .applied
                .iter()
                .any(|(v, _)| *v == 4242),
            "seed {seed}: entry not committed"
        );
        // Now crash the leader; the committed entry must survive on the
        // new leader (Leader Completeness).
        let at = sim.now() + SimDuration::from_millis(1);
        sim.schedule_crash(leader, at);
        sim.run_for(SimDuration::from_secs(3));
        let new_leader = ids
            .iter()
            .find(|&&id| !sim.is_crashed(id) && sim.actor::<Node>(id).is_leader());
        let new_leader = *new_leader.expect("no new leader");
        assert!(
            sim.actor::<Node>(new_leader)
                .sm
                .applied
                .iter()
                .any(|(v, _)| *v == 4242),
            "seed {seed}: committed entry lost after leader crash"
        );
    }
}

#[test]
fn log_matching_across_cluster_after_convergence() {
    let (mut sim, ids) = build(5, 50, 515);
    sim.run_until(SimTime::from_secs(2));
    let leader = *ids
        .iter()
        .find(|&&id| sim.actor::<Node>(id).is_leader())
        .unwrap();
    for v in 0..20u64 {
        sim.exec::<Node, _, _>(leader, |a, ctx| {
            let _ = a.propose(ctx, v);
        });
    }
    sim.run_for(SimDuration::from_secs(2));
    // Log Matching: same (index, term) => identical entries; after quiet
    // convergence all logs are simply identical.
    let reference: Vec<(u64, Term)> = sim
        .actor::<Node>(ids[0])
        .raft()
        .log()
        .iter()
        .map(|e| (e.index, e.term))
        .collect();
    for &id in &ids[1..] {
        let log: Vec<(u64, Term)> = sim
            .actor::<Node>(id)
            .raft()
            .log()
            .iter()
            .map(|e| (e.index, e.term))
            .collect();
        assert_eq!(log, reference, "node {id} log differs");
    }
}
