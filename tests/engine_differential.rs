//! Differential acceptance: the pairwise (Alg. 4) and Ring-SAC engines,
//! run with the same seed, the same input models, and the same fault
//! plan, must publish the same aggregate.
//!
//! The two engines use independent mask randomness (different message
//! schedules consume the shared seed differently), so cross-engine
//! results are *not* bit-identical — each engine's masks cancel to float
//! rounding, leaving a documented `RING_DIFF_TOL` gap between them. What
//! *is* bit-identical is each engine against itself across transports:
//! in the no-dropout case the same engine run under the simulator and
//! over real TCP sockets freezes the same contributor set and sums in
//! the same (position-sorted) order, so its digests must match exactly.

use p2pfl_net::PeerRuntime;
use p2pfl_secagg::{
    RingMsg, RingSacActor, SacConfig, SacEngine, SacMsg, SacPeerActor, SacPhase, ShareScheme,
    WeightVector,
};
use p2pfl_simnet::{FaultPlan, NodeId, Sim, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const N: usize = 6;
const K: usize = 2;
const DIM: usize = 24;
const SEED: u64 = 0xD1FF;

/// Documented cross-engine bound. Each engine's result is the plain mean
/// of its contributors up to mask-cancellation rounding (masks are drawn
/// in `[-1e3, 1e3]`, so cancellation error is ~1e-12 at this scale); the
/// two engines therefore agree within a comfortable 1e-6.
const RING_DIFF_TOL: f64 = 1e-6;

fn models() -> Vec<WeightVector> {
    let mut rng = StdRng::seed_from_u64(SEED + 999);
    (0..N)
        .map(|_| WeightVector::random(DIM, 1.0, &mut rng))
        .collect()
}

fn config(ids: &[NodeId], position: usize, engine: SacEngine, deadline: SimDuration) -> SacConfig {
    SacConfig {
        group: ids.to_vec(),
        position,
        leader_pos: 0,
        k: K,
        scheme: ShareScheme::Masked,
        engine,
        share_deadline: deadline,
        collect_deadline: deadline,
        round_deadline: None,
        seed: SEED + position as u64,
    }
}

/// One simulated pairwise round under `plan`; returns the leader's frozen
/// contributor set and result.
fn sim_pairwise(plan: Option<&FaultPlan>) -> (Vec<usize>, WeightVector) {
    let mut sim: Sim<SacMsg> = Sim::new(SEED);
    let ids: Vec<NodeId> = (0..N).map(|i| NodeId(i as u32)).collect();
    for (i, model) in models().iter().enumerate() {
        let cfg = config(&ids, i, SacEngine::Pairwise, SimDuration::from_millis(100));
        sim.add_node(SacPeerActor::new(cfg, model.clone()));
    }
    if let Some(p) = plan {
        sim.apply_fault_plan(p);
    }
    sim.exec::<SacPeerActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 1));
    sim.run_until(sim.now() + SimDuration::from_secs(5));
    let leader = sim.actor::<SacPeerActor>(ids[0]);
    assert_eq!(leader.phase, SacPhase::Done, "pairwise: {:?}", leader.phase);
    (leader.contributors.clone(), leader.result.clone().unwrap())
}

/// One simulated ring round under `plan`; returns the leader's frozen
/// contributor set and result.
fn sim_ring(plan: Option<&FaultPlan>) -> (Vec<usize>, WeightVector) {
    let mut sim: Sim<RingMsg> = Sim::new(SEED);
    let ids: Vec<NodeId> = (0..N).map(|i| NodeId(i as u32)).collect();
    for (i, model) in models().iter().enumerate() {
        let cfg = config(&ids, i, SacEngine::Ring, SimDuration::from_millis(100));
        sim.add_node(RingSacActor::new(cfg, model.clone()));
    }
    if let Some(p) = plan {
        sim.apply_fault_plan(p);
    }
    sim.exec::<RingSacActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 1));
    sim.run_until(sim.now() + SimDuration::from_secs(5));
    let leader = sim.actor::<RingSacActor>(ids[0]);
    assert_eq!(leader.phase, SacPhase::Done, "ring: {:?}", leader.phase);
    (leader.contributors.clone(), leader.result.clone().unwrap())
}

#[test]
fn no_dropout_engines_agree_on_sim() {
    let (pc, pv) = sim_pairwise(None);
    let (rc, rv) = sim_ring(None);
    assert_eq!(pc, (0..N).collect::<Vec<_>>());
    assert_eq!(pc, rc, "contributor sets diverged");
    let gap = pv.linf_distance(&rv);
    assert!(gap <= RING_DIFF_TOL, "engines {gap} apart");
    // Both sit on the plain mean of all inputs.
    let mean = WeightVector::mean(models().iter());
    assert!(pv.linf_distance(&mean) <= RING_DIFF_TOL);
    assert!(rv.linf_distance(&mean) <= RING_DIFF_TOL);
}

#[test]
fn same_fault_plan_engines_agree_on_sim() {
    // One declarative plan interpreted by both engines: peer 4 crashes
    // mid-round, after shares have flowed but before the round closes.
    // Each engine must recover the lost peer's material from replicas and
    // still count it as a contributor.
    let plan = FaultPlan::new(SEED ^ 0xc4a5).crash(SimTime::from_millis(40), NodeId(4));
    let (pc, pv) = sim_pairwise(Some(&plan));
    let (rc, rv) = sim_ring(Some(&plan));
    assert_eq!(
        pc,
        (0..N).collect::<Vec<_>>(),
        "pairwise lost a contributor"
    );
    assert_eq!(pc, rc, "contributor sets diverged under the same plan");
    let gap = pv.linf_distance(&rv);
    assert!(gap <= RING_DIFF_TOL, "engines {gap} apart under faults");
}

#[test]
fn pre_round_crash_excludes_the_same_peer_from_both_engines() {
    // Crash before any share flows: both engines must exclude exactly the
    // crashed peer and average the surviving five.
    let plan = FaultPlan::new(SEED ^ 0xdead).crash(SimTime::ZERO, NodeId(5));
    let (pc, pv) = sim_pairwise(Some(&plan));
    let (rc, rv) = sim_ring(Some(&plan));
    assert_eq!(pc, (0..N - 1).collect::<Vec<_>>());
    assert_eq!(pc, rc, "exclusion diverged");
    let gap = pv.linf_distance(&rv);
    assert!(gap <= RING_DIFF_TOL, "engines {gap} apart after exclusion");
    let mean = WeightVector::mean(models()[..N - 1].iter());
    assert!(rv.linf_distance(&mean) <= RING_DIFF_TOL);
}

/// Simulator digests for `rounds` consecutive no-dropout rounds, pairwise.
fn sim_pairwise_digests(rounds: u64) -> Vec<u64> {
    let mut sim: Sim<SacMsg> = Sim::new(SEED);
    let ids: Vec<NodeId> = (0..N).map(|i| NodeId(i as u32)).collect();
    for (i, model) in models().iter().enumerate() {
        let cfg = config(&ids, i, SacEngine::Pairwise, SimDuration::from_millis(500));
        sim.add_node(SacPeerActor::new(cfg, model.clone()));
    }
    let mut out = Vec::new();
    for round in 1..=rounds {
        sim.exec::<SacPeerActor, _, _>(ids[0], move |a, ctx| a.start_round(ctx, round));
        sim.run_until(sim.now() + SimDuration::from_secs(5));
        let leader = sim.actor::<SacPeerActor>(ids[0]);
        assert_eq!(leader.phase, SacPhase::Done, "{:?}", leader.phase);
        out.push(leader.result.as_ref().unwrap().digest());
    }
    out
}

/// Simulator digests for `rounds` consecutive no-dropout rounds, ring.
fn sim_ring_digests(rounds: u64) -> Vec<u64> {
    let mut sim: Sim<RingMsg> = Sim::new(SEED);
    let ids: Vec<NodeId> = (0..N).map(|i| NodeId(i as u32)).collect();
    for (i, model) in models().iter().enumerate() {
        let cfg = config(&ids, i, SacEngine::Ring, SimDuration::from_millis(500));
        sim.add_node(RingSacActor::new(cfg, model.clone()));
    }
    let mut out = Vec::new();
    for round in 1..=rounds {
        sim.exec::<RingSacActor, _, _>(ids[0], move |a, ctx| a.start_round(ctx, round));
        sim.run_until(sim.now() + SimDuration::from_secs(5));
        let leader = sim.actor::<RingSacActor>(ids[0]);
        assert_eq!(leader.phase, SacPhase::Done, "{:?}", leader.phase);
        out.push(leader.result.as_ref().unwrap().digest());
    }
    out
}

fn wait_result<A, M, F>(leader: &PeerRuntime<M, A>, round: u64, state: F) -> WeightVector
where
    M: p2pfl_net::WireMsg + Send + 'static,
    A: p2pfl_simnet::Actor<M> + Send + 'static,
    F: Fn(&A) -> (SacPhase, Option<WeightVector>) + Send + Copy + 'static,
{
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match leader.with(move |a, _| state(a)) {
            (SacPhase::Done, Some(v)) => return v,
            (SacPhase::Failed(e), _) => panic!("round {round} failed: {e}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "round {round} stalled");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn mesh<M, A>(runtimes: &[PeerRuntime<M, A>])
where
    M: p2pfl_net::WireMsg + Send + 'static,
    A: p2pfl_simnet::Actor<M> + Send + 'static,
{
    for a in runtimes {
        for b in runtimes {
            if a.node_id() != b.node_id() {
                a.add_peer(b.node_id(), b.local_addr());
            }
        }
    }
}

#[test]
fn tcp_engines_agree_and_match_their_simulator_runs_bitwise() {
    let expected_pairwise = sim_pairwise_digests(2);
    let expected_ring = sim_ring_digests(2);
    let ids: Vec<NodeId> = (0..N).map(|i| NodeId(i as u32)).collect();
    let ms = models();

    let pairwise: Vec<PeerRuntime<SacMsg, SacPeerActor>> = (0..N)
        .map(|i| {
            let cfg = config(&ids, i, SacEngine::Pairwise, SimDuration::from_secs(10));
            PeerRuntime::start(
                ids[i],
                "127.0.0.1:0",
                &[],
                SacPeerActor::new(cfg, ms[i].clone()),
            )
            .expect("bind")
        })
        .collect();
    mesh(&pairwise);
    let ring: Vec<PeerRuntime<RingMsg, RingSacActor>> = (0..N)
        .map(|i| {
            let cfg = config(&ids, i, SacEngine::Ring, SimDuration::from_secs(10));
            PeerRuntime::start(
                ids[i],
                "127.0.0.1:0",
                &[],
                RingSacActor::new(cfg, ms[i].clone()),
            )
            .expect("bind")
        })
        .collect();
    mesh(&ring);

    // Round 1 on a healthy network.
    pairwise[0].with(|a, ctx| a.start_round(ctx, 1));
    ring[0].with(|a, ctx| a.start_round(ctx, 1));
    let pv = wait_result(&pairwise[0], 1, |a| (a.phase.clone(), a.result.clone()));
    let rv = wait_result(&ring[0], 1, |a| (a.phase.clone(), a.result.clone()));
    assert_eq!(pv.digest(), expected_pairwise[0], "pairwise TCP != sim");
    assert_eq!(rv.digest(), expected_ring[0], "ring TCP != sim");
    let gap = pv.linf_distance(&rv);
    assert!(gap <= RING_DIFF_TOL, "TCP engines {gap} apart");

    // The same transport fault against both engines: sever every TCP
    // connection, then run round 2 straight through the reconnect path.
    for rt in &pairwise {
        rt.kill_connections();
    }
    for rt in &ring {
        rt.kill_connections();
    }
    pairwise[0].with(|a, ctx| a.start_round(ctx, 2));
    ring[0].with(|a, ctx| a.start_round(ctx, 2));
    let pv = wait_result(&pairwise[0], 2, |a| (a.phase.clone(), a.result.clone()));
    let rv = wait_result(&ring[0], 2, |a| (a.phase.clone(), a.result.clone()));
    assert_eq!(pv.digest(), expected_pairwise[1], "pairwise TCP != sim");
    assert_eq!(rv.digest(), expected_ring[1], "ring TCP != sim");
    let gap = pv.linf_distance(&rv);
    assert!(
        gap <= RING_DIFF_TOL,
        "TCP engines {gap} apart after blackout"
    );
    for rt in &ring {
        assert_eq!(rt.decode_errors(), 0, "ring peer dropped frames");
    }
}
