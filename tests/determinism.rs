//! Whole-stack determinism: the repository's core promise that any
//! distributed failure scenario replays bit-for-bit from a seed.

use p2pfl::experiment::{accuracy_sweep, SweepSpec};
use p2pfl::runner::{ResilientConfig, ResilientSession};
use p2pfl_fed::Client;
use p2pfl_hierraft::experiments::subgroup_leader_crash_trial;
use p2pfl_ml::data::{features_like, partition_dataset, train_test_split, Partition};
use p2pfl_ml::models::mlp;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn accuracy_sweep_replays_exactly() {
    let spec = SweepSpec {
        n_total: 6,
        rounds: 8,
        ..SweepSpec::default()
    };
    let a = accuracy_sweep(&spec, &[3], &[Partition::NON_IID_5]);
    let b = accuracy_sweep(&spec, &[3], &[Partition::NON_IID_5]);
    for (sa, sb) in a.iter().zip(&b) {
        assert_eq!(sa.records, sb.records, "series {} diverged", sa.label);
    }
}

#[test]
fn parallel_and_serial_training_produce_identical_models() {
    // The `parallel` feature fans per-peer local training out over scoped
    // threads. Each client owns its RNG and optimizer state, so thread
    // scheduling must not leak into the result: a 3-round N=6 sweep has to
    // produce bit-identical global models either way.
    use p2pfl::experiment::build_system;
    use p2pfl::system::SystemKind;
    use p2pfl_fed::parallel::{reset_parallel, set_parallel};
    use p2pfl_secagg::WeightVector;

    fn digests(parallel: bool) -> Vec<u64> {
        set_parallel(parallel);
        let spec = SweepSpec {
            n_total: 6,
            rounds: 3,
            ..SweepSpec::default()
        };
        let (mut sys, test) = build_system(&spec, SystemKind::TwoLayer, 3, 1.0, Partition::Iid);
        (1..=3)
            .map(|r| {
                sys.run_round(r, &test);
                WeightVector::new(sys.global().to_vec()).digest()
            })
            .collect()
    }

    let serial = digests(false);
    let threaded = digests(true);
    reset_parallel();
    assert_eq!(
        serial, threaded,
        "parallel local training diverged from serial"
    );
}

#[test]
fn reactor_sac_round_replays_exactly() {
    // The single-thread reactor transport inherits the stack's replay
    // promise: the same seed, models, and fault plan give a bit-identical
    // aggregate on every run, even though TCP delivery timing differs.
    // (Cross-transport equality — sim vs threaded vs reactor — is covered
    // in `fault_plan.rs`; this pins run-to-run stability of one leg.)
    use p2pfl_net::{PeerHandle, Reactor, ReactorConfig};
    use p2pfl_secagg::{
        SacConfig, SacEngine, SacMsg, SacPeerActor, SacPhase, ShareScheme, WeightVector,
    };
    use p2pfl_simnet::{FaultPlan, NodeId, SimDuration, SimTime};
    use std::time::{Duration, Instant};

    const N: usize = 5;
    const SEED: u64 = 0xD3;

    fn run_once() -> u64 {
        let plan = FaultPlan::new(SEED)
            .delay(
                SimTime::ZERO,
                SimTime::from_secs(600),
                SimDuration::from_millis(3),
                SimDuration::ZERO,
            )
            .duplicate(SimTime::ZERO, SimTime::from_secs(600), 0.4);
        let mut rng = StdRng::seed_from_u64(SEED + 999);
        let models: Vec<WeightVector> = (0..N)
            .map(|_| WeightVector::random(24, 1.0, &mut rng))
            .collect();
        let ids: Vec<NodeId> = (0..N).map(|i| NodeId(i as u32)).collect();
        let reactor: Reactor<SacMsg, SacPeerActor> =
            Reactor::start(ReactorConfig::default()).expect("bind");
        let handles: Vec<PeerHandle<SacMsg, SacPeerActor>> = (0..N)
            .map(|i| {
                let cfg = SacConfig {
                    group: ids.clone(),
                    position: i,
                    leader_pos: 0,
                    k: 3,
                    scheme: ShareScheme::Masked,
                    engine: SacEngine::Pairwise,
                    share_deadline: SimDuration::from_secs(30),
                    collect_deadline: SimDuration::from_secs(30),
                    round_deadline: None,
                    seed: SEED + i as u64,
                };
                reactor
                    .spawn_peer_with_faults(
                        ids[i],
                        SacPeerActor::new(cfg, models[i].clone()),
                        &plan,
                    )
                    .expect("spawn")
            })
            .collect();
        for a in &handles {
            for b in &handles {
                if a.node_id() != b.node_id() {
                    a.add_peer(b.node_id(), reactor.local_addr());
                }
            }
        }
        handles[0].with(|a, ctx| a.start_round(ctx, 1));
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let state =
                handles[0].with(|a, _| (a.phase.clone(), a.result.as_ref().map(|r| r.digest())));
            match state {
                (SacPhase::Done, Some(d)) => return d,
                (SacPhase::Failed(e), _) => panic!("reactor round failed: {e}"),
                _ => {}
            }
            assert!(Instant::now() < deadline, "reactor round stalled");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    assert_eq!(run_once(), run_once(), "reactor run diverged from itself");
}

#[test]
fn raft_crash_trial_replays_exactly() {
    let a = subgroup_leader_crash_trial(100, 9).unwrap();
    let b = subgroup_leader_crash_trial(100, 9).unwrap();
    assert_eq!(a, b);
    // And a different seed gives a different trajectory.
    let c = subgroup_leader_crash_trial(100, 10).unwrap();
    assert!(a != c, "distinct seeds should differ");
}

#[test]
fn resilient_session_replays_exactly() {
    fn run(seed: u64) -> Vec<(f64, usize, u64)> {
        let cfg = ResilientConfig::small(seed);
        let n_total = cfg.deployment.total_peers();
        let (train, test) =
            train_test_split(&features_like(16, n_total * 40 + 200, seed), n_total * 40);
        let parts = partition_dataset(&train, n_total, Partition::Iid, seed + 1);
        let mut rng = StdRng::seed_from_u64(seed + 2);
        let clients: Vec<Client> = parts
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                Client::new(
                    i,
                    mlp(&[16, 16, 10], &mut rng),
                    d,
                    5e-3,
                    seed + 10 + i as u64,
                )
            })
            .collect();
        let eval = mlp(&[16, 16, 10], &mut rng);
        let mut s = ResilientSession::new(cfg, clients, eval);
        s.run(2, &test);
        let victim = s.dep.sub_leader_of(1).unwrap();
        s.crash(victim);
        s.run(3, &test)
            .into_iter()
            .map(|r| (r.record.test_accuracy, r.record.groups_used, r.record.bytes))
            .collect()
    }
    assert_eq!(run(5), run(5));
}
