//! Whole-stack determinism: the repository's core promise that any
//! distributed failure scenario replays bit-for-bit from a seed.

use p2pfl::experiment::{accuracy_sweep, SweepSpec};
use p2pfl::runner::{ResilientConfig, ResilientSession};
use p2pfl_fed::Client;
use p2pfl_hierraft::experiments::subgroup_leader_crash_trial;
use p2pfl_ml::data::{features_like, partition_dataset, train_test_split, Partition};
use p2pfl_ml::models::mlp;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn accuracy_sweep_replays_exactly() {
    let spec = SweepSpec {
        n_total: 6,
        rounds: 8,
        ..SweepSpec::default()
    };
    let a = accuracy_sweep(&spec, &[3], &[Partition::NON_IID_5]);
    let b = accuracy_sweep(&spec, &[3], &[Partition::NON_IID_5]);
    for (sa, sb) in a.iter().zip(&b) {
        assert_eq!(sa.records, sb.records, "series {} diverged", sa.label);
    }
}

#[test]
fn parallel_and_serial_training_produce_identical_models() {
    // The `parallel` feature fans per-peer local training out over scoped
    // threads. Each client owns its RNG and optimizer state, so thread
    // scheduling must not leak into the result: a 3-round N=6 sweep has to
    // produce bit-identical global models either way.
    use p2pfl::experiment::build_system;
    use p2pfl::system::SystemKind;
    use p2pfl_fed::parallel::{reset_parallel, set_parallel};
    use p2pfl_secagg::WeightVector;

    fn digests(parallel: bool) -> Vec<u64> {
        set_parallel(parallel);
        let spec = SweepSpec {
            n_total: 6,
            rounds: 3,
            ..SweepSpec::default()
        };
        let (mut sys, test) = build_system(&spec, SystemKind::TwoLayer, 3, 1.0, Partition::Iid);
        (1..=3)
            .map(|r| {
                sys.run_round(r, &test);
                WeightVector::new(sys.global().to_vec()).digest()
            })
            .collect()
    }

    let serial = digests(false);
    let threaded = digests(true);
    reset_parallel();
    assert_eq!(
        serial, threaded,
        "parallel local training diverged from serial"
    );
}

#[test]
fn raft_crash_trial_replays_exactly() {
    let a = subgroup_leader_crash_trial(100, 9).unwrap();
    let b = subgroup_leader_crash_trial(100, 9).unwrap();
    assert_eq!(a, b);
    // And a different seed gives a different trajectory.
    let c = subgroup_leader_crash_trial(100, 10).unwrap();
    assert!(a != c, "distinct seeds should differ");
}

#[test]
fn resilient_session_replays_exactly() {
    fn run(seed: u64) -> Vec<(f64, usize, u64)> {
        let cfg = ResilientConfig::small(seed);
        let n_total = cfg.deployment.total_peers();
        let (train, test) =
            train_test_split(&features_like(16, n_total * 40 + 200, seed), n_total * 40);
        let parts = partition_dataset(&train, n_total, Partition::Iid, seed + 1);
        let mut rng = StdRng::seed_from_u64(seed + 2);
        let clients: Vec<Client> = parts
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                Client::new(
                    i,
                    mlp(&[16, 16, 10], &mut rng),
                    d,
                    5e-3,
                    seed + 10 + i as u64,
                )
            })
            .collect();
        let eval = mlp(&[16, 16, 10], &mut rng);
        let mut s = ResilientSession::new(cfg, clients, eval);
        s.run(2, &test);
        let victim = s.dep.sub_leader_of(1).unwrap();
        s.crash(victim);
        s.run(3, &test)
            .into_iter()
            .map(|r| (r.record.test_accuracy, r.record.groups_used, r.record.bytes))
            .collect()
    }
    assert_eq!(run(5), run(5));
}
