//! Acceptance: a `p2pfl-check` counterexample JSON is a *replayable*
//! artifact.
//!
//! * The schedule re-executes deterministically on the simulator through
//!   the same explorer that produced it — byte-identical state
//!   fingerprints across runs, and (against unmutated code) no violation.
//! * Its projected [`FaultPlan`] re-executes the fault pattern on both
//!   transports: applied to a fresh simulator deployment and to a real
//!   TCP `PeerRuntime` deployment, the fault-tolerant SAC round still
//!   completes and the published result is exactly the mean of the frozen
//!   contributor set — the KofNReconstructability oracle, checked by hand
//!   on the transport the explorer cannot drive.

use p2pfl_check::models::Sac3Model;
use p2pfl_check::{Counterexample, ExploreConfig, Explorer, Model};
use p2pfl_net::PeerRuntime;
use p2pfl_secagg::{
    SacConfig, SacEngine, SacMsg, SacPeerActor, SacPhase, ShareScheme, WeightVector,
};
use p2pfl_simnet::{NodeId, Sim, SimDuration};
use std::time::{Duration, Instant};

const SEED: u64 = 0xCE11;

/// A counterexample-format schedule as the mutation self-check writes
/// them: drop the first in-flight delivery (the leader's `Begin` to peer
/// 1), then let the round run. Labels are informational only.
const SCHEDULE_JSON: &str = r#"{
  "model": "sac3",
  "oracle": "(none: clean-code replay probe)",
  "detail": "drops the leader's Begin to n1, round must still complete",
  "steps": [
    {"index": 0, "mode": 1, "label": "deliver sac.begin n0->n1"},
    {"index": 0, "mode": 0, "label": "deliver sac.begin n0->n2"},
    {"index": 0, "mode": 0, "label": "deliver sac.share n0->n2"},
    {"index": 1, "mode": 0, "label": "deliver sac.share n2->n0"},
    {"index": 0, "mode": 0, "label": "deliver sac.share n2->n1"}
  ]
}"#;

fn explorer() -> Explorer<Sac3Model> {
    Explorer::new(
        Sac3Model,
        ExploreConfig {
            max_depth: 32,
            max_states: 10_000,
            max_branch: 8,
            enable_drops: true,
            enable_dups: true,
            fault_choice_limit: 4,
        },
    )
}

#[test]
fn counterexample_json_reexecutes_deterministically_on_simulator() {
    let cx = Counterexample::from_json(SCHEDULE_JSON).expect("parse schedule");
    let ex = explorer();
    let (mut a, va) = ex.replay(&cx.choices());
    let (mut b, vb) = ex.replay(&cx.choices());
    assert!(va.is_none(), "clean code must not violate: {va:?}");
    assert!(vb.is_none());
    assert_eq!(
        Sac3Model.fingerprint(&mut a),
        Sac3Model.fingerprint(&mut b),
        "schedule replay must be deterministic"
    );
    assert_eq!(a.queue_digest(), b.queue_digest());
}

/// The 3-peer SAC deployment of [`Sac3Model`], rebuilt on a plain
/// simulator so a fault plan can be applied to it.
fn sim_round_under(plan: &p2pfl_simnet::FaultPlan) -> (Vec<usize>, WeightVector) {
    let ids: Vec<NodeId> = (0..3).map(NodeId).collect();
    let mut sim: Sim<SacMsg> = Sim::new(SEED);
    for pos in 0..3 {
        sim.add_node(SacPeerActor::new(
            sac_cfg(&ids, pos, SimDuration::from_millis(400)),
            peer_model(pos),
        ));
    }
    sim.apply_fault_plan(plan);
    sim.run_until_quiet(50);
    sim.exec::<SacPeerActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 1));
    sim.run_for(SimDuration::from_secs(10));
    let leader = sim.actor::<SacPeerActor>(ids[0]);
    assert_eq!(
        leader.phase,
        SacPhase::Done,
        "sim round: {:?}",
        leader.phase
    );
    (
        leader.contributors.clone(),
        leader.result.clone().expect("Done implies result"),
    )
}

fn sac_cfg(ids: &[NodeId], pos: usize, deadline: SimDuration) -> SacConfig {
    SacConfig {
        group: ids.to_vec(),
        position: pos,
        leader_pos: 0,
        k: 2,
        scheme: ShareScheme::Masked,
        engine: SacEngine::Pairwise,
        share_deadline: deadline,
        collect_deadline: deadline,
        round_deadline: None,
        seed: SEED + pos as u64,
    }
}

fn peer_model(pos: usize) -> WeightVector {
    let b = (pos + 1) as f64;
    WeightVector::new(vec![b, -2.0 * b, 0.5 * b])
}

fn assert_kofn(contributors: &[usize], result: &WeightVector) {
    assert!(!contributors.is_empty());
    let expected = WeightVector::mean(contributors.iter().map(|&c| &MODELS[c]));
    assert!(
        result.linf_distance(&expected) < 1e-6,
        "result is not the mean of contributors {contributors:?}"
    );
}

// peer_model(pos) materialized once for the oracle comparison.
static MODELS: std::sync::LazyLock<Vec<WeightVector>> =
    std::sync::LazyLock::new(|| (0..3).map(peer_model).collect());

#[test]
fn projected_fault_plan_reexecutes_on_simulator() {
    let cx = Counterexample::from_json(SCHEDULE_JSON).expect("parse schedule");
    let plan = explorer().project_fault_plan(&cx.choices(), SEED);
    assert!(
        plan.can_drop_messages(),
        "the schedule's drop must survive projection"
    );
    let (contributors, result) = sim_round_under(&plan);
    assert_kofn(&contributors, &result);
}

#[test]
fn projected_fault_plan_reexecutes_on_tcp() {
    let cx = Counterexample::from_json(SCHEDULE_JSON).expect("parse schedule");
    let mut plan = explorer().project_fault_plan(&cx.choices(), SEED);
    // Sim partition windows are a few virtual milliseconds; stretch them to
    // cover the real round so the fault actually bites on the wire.
    for e in &mut plan.entries {
        e.until = Some(p2pfl_simnet::SimTime::from_secs(600));
    }

    let ids: Vec<NodeId> = (0..3).map(NodeId).collect();
    let runtimes: Vec<PeerRuntime<SacMsg, SacPeerActor>> = (0..3)
        .map(|pos| {
            let actor = SacPeerActor::new(
                sac_cfg(&ids, pos, SimDuration::from_secs(2)),
                peer_model(pos),
            );
            PeerRuntime::start_with_faults(ids[pos], "127.0.0.1:0", &[], actor, &plan)
                .expect("bind")
        })
        .collect();
    for a in &runtimes {
        for b in &runtimes {
            if a.node_id() != b.node_id() {
                a.add_peer(b.node_id(), b.local_addr());
            }
        }
    }

    runtimes[0].with(|a, ctx| a.start_round(ctx, 1));
    let deadline = Instant::now() + Duration::from_secs(30);
    let (contributors, result) = loop {
        let state =
            runtimes[0].with(|a, _| (a.phase.clone(), a.contributors.clone(), a.result.clone()));
        match state {
            (SacPhase::Done, contributors, Some(result)) => break (contributors, result),
            (SacPhase::Failed(e), _, _) => panic!("tcp round failed under projected plan: {e}"),
            _ => {}
        }
        assert!(
            Instant::now() < deadline,
            "tcp round stalled under projected plan"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_kofn(&contributors, &result);
}
