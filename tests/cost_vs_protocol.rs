//! The paper's closed-form cost model (Eqs. 4, 5, 10) against the byte
//! ledgers of the *executed* protocols — the formulas must describe the
//! code, not just the paper.

use p2pfl::cost::{
    even_groups, sac_baseline_units, two_layer_ft_units_eq5, two_layer_units_eq4,
    two_layer_units_exact,
};
use p2pfl::multilayer::MultilayerTree;
use p2pfl::system::{SystemKind, TwoLayerConfig, TwoLayerSystem};
use p2pfl_fed::{Client, LocalTrainConfig};
use p2pfl_ml::data::{features_like, partition_dataset, train_test_split, Partition};
use p2pfl_ml::models::mlp;
use p2pfl_secagg::{fault_tolerant_secure_average, secure_average, ShareScheme, WeightVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 16;

fn wire(dim: usize) -> u64 {
    dim as u64 * 4
}

#[test]
fn alg2_ledger_matches_2n_nminus1() {
    let mut rng = StdRng::seed_from_u64(1);
    for n in 1..12usize {
        let models: Vec<WeightVector> = (0..n)
            .map(|_| WeightVector::random(DIM, 1.0, &mut rng))
            .collect();
        let out = secure_average(&models, ShareScheme::Masked, &mut rng);
        assert_eq!(
            out.log.bytes(),
            sac_baseline_units(n) as u64 * wire(DIM),
            "n={n}"
        );
    }
}

#[test]
fn alg4_ledger_matches_eq5_sac_terms() {
    // Eq. 5's per-subgroup terms: shares n(n-1)(n-k+1)|w| + subtotals
    // (k-1)|w| when nobody drops.
    let mut rng = StdRng::seed_from_u64(2);
    for n in 2..9usize {
        for k in 1..=n {
            let models: Vec<WeightVector> = (0..n)
                .map(|_| WeightVector::random(DIM, 1.0, &mut rng))
                .collect();
            let out =
                fault_tolerant_secure_average(&models, k, 0, &[], ShareScheme::Masked, &mut rng)
                    .unwrap();
            let expected = (n * (n - 1) * (n - k + 1) + (k - 1)) as u64 * wire(DIM);
            assert_eq!(out.log.bytes(), expected, "n={n} k={k}");
        }
    }
}

fn system_for(
    n_total: usize,
    kind: SystemKind,
    subgroup: usize,
    threshold: Option<usize>,
    seed: u64,
) -> (TwoLayerSystem, p2pfl_ml::data::Dataset, u64) {
    let (train, test) =
        train_test_split(&features_like(DIM, n_total * 30 + 100, seed), n_total * 30);
    let parts = partition_dataset(&train, n_total, Partition::Iid, seed + 1);
    let mut rng = StdRng::seed_from_u64(seed + 2);
    let clients: Vec<Client> = parts
        .into_iter()
        .enumerate()
        .map(|(i, d)| {
            Client::new(
                i,
                mlp(&[DIM, 8, 10], &mut rng),
                d,
                1e-2,
                seed + 3 + i as u64,
            )
        })
        .collect();
    let eval = mlp(&[DIM, 8, 10], &mut rng);
    let model_bytes = eval.num_params() as u64 * 4;
    let cfg = TwoLayerConfig {
        kind,
        subgroup_size: subgroup,
        threshold,
        scheme: ShareScheme::Masked,
        fraction: 1.0,
        train: LocalTrainConfig {
            epochs: 1,
            batch_size: 16,
        },
        seed: seed + 50,
        dp: None,
        fed_layer_sac: false,
    };
    (TwoLayerSystem::new(clients, eval, cfg), test, model_bytes)
}

#[test]
fn full_round_matches_eq4_for_divisible_n() {
    for (n_total, n) in [(6usize, 3usize), (12, 3), (10, 5), (8, 4)] {
        let (mut sys, test, w) = system_for(n_total, SystemKind::TwoLayer, n, None, 7);
        let rec = sys.run_round(1, &test);
        let m = n_total / n;
        assert_eq!(
            rec.bytes,
            two_layer_units_eq4(m, n) as u64 * w,
            "N={n_total} n={n}"
        );
    }
}

#[test]
fn full_round_matches_exact_formula_for_uneven_groups() {
    // N = 10, n = 3 -> groups 4, 3, 3 (the paper's Fig. 6 arrangement).
    let (mut sys, test, w) = system_for(10, SystemKind::TwoLayer, 3, None, 8);
    let rec = sys.run_round(1, &test);
    let expected = two_layer_units_exact(&even_groups(10, 3)) as u64 * w;
    assert_eq!(rec.bytes, expected);
}

#[test]
fn ft_round_matches_eq5() {
    for (n, k, n_total) in [(3usize, 2usize, 6usize), (3, 3, 9), (5, 3, 10)] {
        let (mut sys, test, w) = system_for(n_total, SystemKind::TwoLayer, n, Some(k), 9);
        let rec = sys.run_round(1, &test);
        assert_eq!(
            rec.bytes,
            two_layer_ft_units_eq5(n, k, n_total) as u64 * w,
            "n={n} k={k} N={n_total}"
        );
    }
}

#[test]
fn headline_ratio_10_36x_holds_in_executed_system() {
    // The abstract's claim: N = 30, (n,k) = (3,2) reduces communication
    // 10.36x vs the one-layer SAC — measured on real rounds, not formulas.
    let (mut two, test, _) = system_for(30, SystemKind::TwoLayer, 3, Some(2), 10);
    let rec2 = two.run_round(1, &test);
    let (mut base, test_b, w) = system_for(30, SystemKind::OriginalSac, 30, None, 10);
    let rec1 = base.run_round(1, &test_b);
    // The baseline runner charges an extra (N-1)|w| global distribution
    // that Alg. 2 strictly doesn't need; remove it for the paper's ratio.
    let baseline_bytes = rec1.bytes - (29 * w);
    let ratio = baseline_bytes as f64 / rec2.bytes as f64;
    assert!(
        (ratio - 10.36).abs() < 0.05,
        "measured ratio {ratio:.2}, paper 10.36"
    );
}

#[test]
fn multilayer_ledger_matches_eq10_at_scale() {
    let mut rng = StdRng::seed_from_u64(11);
    let tree = MultilayerTree::build(3, 4); // 45 peers
    let models: Vec<WeightVector> = (0..tree.total_peers())
        .map(|_| WeightVector::random(DIM, 1.0, &mut rng))
        .collect();
    let (avg, log) = tree.aggregate(&models, ShareScheme::Masked, &mut rng);
    let plain = WeightVector::mean(models.iter());
    assert!(avg.linf_distance(&plain) < 1e-6);
    let expected = p2pfl::cost::multilayer_units_eq10(3, 4) as u64 * wire(DIM);
    assert_eq!(log.bytes(), expected);
}
