//! Acceptance: the integrated system survives *malicious* peers, not just
//! crashed ones.
//!
//! One seeded [`FaultPlan`] makes 1 of 8 peers Byzantine — it skews its
//! outgoing SAC shares *and* poisons its local update. With the defenses
//! on (commitment verification + the replicated `TrimmedMean` combiner)
//! the session completes with a global model within bound `B` of the
//! honest-only twin and the offender convicted and evicted. The pinned
//! negative: with the defenses off (no verification, plain FedAvg) the
//! very same plan drags the global model far outside `B`.

use p2pfl::runner::{ResilientConfig, ResilientSession};
use p2pfl_fed::Client;
use p2pfl_hierraft::{HierActor, RobustCombiner};
use p2pfl_ml::data::{features_like, partition_dataset, train_test_split, Dataset, Partition};
use p2pfl_ml::models::mlp;
use p2pfl_simnet::{FaultPlan, NodeId, PoisonMode, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 0xb1_2a17;
const ROUNDS: usize = 3;
/// Bound `B` on the adversary's influence: the defended run's global model
/// may differ from the honest-only twin per coordinate by at most this
/// (the honest subgroup averages are IID-close, so losing the Byzantine
/// subgroup shifts the weighted mean only slightly). The attack factors
/// below push an undefended run three orders of magnitude past it.
const BOUND_B: f64 = 1.0;

/// 8 peers: 4 subgroups of 2. The Byzantine peer is `NodeId(1)` — the
/// follower of subgroup 0 (founding leaders are the first peer of each
/// subgroup).
fn config(seed: u64, combiner: RobustCombiner, verify: bool) -> ResilientConfig {
    let mut cfg = ResilientConfig::small(seed);
    cfg.deployment.num_subgroups = 4;
    cfg.deployment.subgroup_size = 2;
    cfg.deployment.combiner = combiner;
    cfg.verify_commitments = verify;
    cfg
}

fn build(cfg: ResilientConfig) -> (ResilientSession, Dataset) {
    let seed = cfg.seed;
    let n_total = cfg.deployment.total_peers();
    let (train, test) =
        train_test_split(&features_like(16, n_total * 50 + 300, seed), n_total * 50);
    let parts = partition_dataset(&train, n_total, Partition::Iid, seed + 1);
    let mut rng = StdRng::seed_from_u64(seed + 2);
    let clients: Vec<Client> = parts
        .into_iter()
        .enumerate()
        .map(|(i, d)| {
            Client::new(
                i,
                mlp(&[16, 24, 10], &mut rng),
                d,
                5e-3,
                seed + 10 + i as u64,
            )
        })
        .collect();
    let eval = mlp(&[16, 24, 10], &mut rng);
    (ResilientSession::new(cfg, clients, eval), test)
}

/// The seeded plan: peer 1 runs the commit-then-skew share attack and
/// norm-boosts its local update, for the whole horizon.
fn byzantine_plan() -> FaultPlan {
    FaultPlan::new(SEED ^ 0xeb)
        .share_skew(SimTime::ZERO, None, NodeId(1), 5.0)
        .poison(
            SimTime::ZERO,
            None,
            NodeId(1),
            PoisonMode::NormBoost { factor: 1e4 },
        )
}

/// Runs `ROUNDS` rounds under `plan` (if any) and returns the session.
fn run(cfg: ResilientConfig, plan: Option<&FaultPlan>) -> ResilientSession {
    let (mut s, test) = build(cfg);
    if let Some(p) = plan {
        s.apply_fault_plan(p);
    }
    s.run(ROUNDS, &test);
    s
}

fn linf(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn defended_session_stays_within_bound_b_and_evicts_the_offender() {
    let honest = run(config(SEED, RobustCombiner::TrimmedMean, true), None);
    let defended = run(
        config(SEED, RobustCombiner::TrimmedMean, true),
        Some(&byzantine_plan()),
    );

    // The offender was caught and convicted through the supervision path.
    assert!(
        defended.supervisor.shares_rejected >= 1,
        "skewed shares never rejected"
    );
    assert!(
        defended
            .supervisor
            .peers_evicted_byzantine
            .iter()
            .any(|&(_, p)| p == NodeId(1)),
        "offender never evicted: {:?}",
        defended.supervisor.peers_evicted_byzantine
    );
    // The conviction is permanent state on the subgroup leader.
    assert!(defended
        .dep
        .sim
        .actor::<HierActor>(NodeId(0))
        .byzantine_peers
        .contains(&NodeId(1)));

    // The combiner really came from the replicated config, not a local
    // default.
    let fl = defended.dep.fed_leader().expect("fed leader");
    assert_eq!(
        defended.dep.sim.actor::<HierActor>(fl).fed_config.combiner,
        RobustCombiner::TrimmedMean
    );

    // Bound B: the defended global model tracks the honest-only twin.
    let d = linf(defended.global(), honest.global());
    assert!(
        d <= BOUND_B,
        "defended run drifted {d} from the honest twin (bound {BOUND_B})"
    );
    assert!(defended.global().iter().all(|x| x.is_finite()));
}

#[test]
fn undefended_fedavg_violates_bound_b_under_the_same_plan() {
    // Pinned negative: same plan, but commitment checks off and plain
    // FedAvg. The skew and the poisoned update both land, and the global
    // model leaves the bound by orders of magnitude.
    let honest = run(config(SEED, RobustCombiner::FedAvg, true), None);
    let undefended = run(
        config(SEED, RobustCombiner::FedAvg, false),
        Some(&byzantine_plan()),
    );
    assert_eq!(undefended.supervisor.shares_rejected, 0);
    let d = linf(undefended.global(), honest.global());
    assert!(
        d > 10.0 * BOUND_B,
        "attack unexpectedly absorbed without defenses: drift {d}"
    );
}
