//! Property tests for the cost model (paper Sec. VII).

use p2pfl::cost::{
    even_groups, multilayer_total_peers, multilayer_units_eq10, sac_baseline_units,
    two_layer_ft_units_eq5, two_layer_ft_units_exact, two_layer_units_eq4, two_layer_units_exact,
    two_layer_units_fed_sac,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// even_groups conserves peers, never differs by more than one, and
    /// is sorted descending.
    #[test]
    fn even_groups_invariants(n_total in 1usize..200, m_off in 0usize..200) {
        let m = 1 + m_off % n_total;
        let groups = even_groups(n_total, m);
        prop_assert_eq!(groups.len(), m);
        prop_assert_eq!(groups.iter().sum::<usize>(), n_total);
        let max = *groups.iter().max().unwrap();
        let min = *groups.iter().min().unwrap();
        prop_assert!(max - min <= 1);
        prop_assert!(groups.windows(2).all(|w| w[0] >= w[1]));
    }

    /// Eq. 4 equals the exact formula whenever groups are equal.
    #[test]
    fn eq4_is_exact_special_case(m in 1usize..20, n in 1usize..20) {
        prop_assert_eq!(two_layer_units_eq4(m, n), two_layer_units_exact(&vec![n; m]));
    }

    /// Eq. 5 with k = n collapses to Eq. 4, and redundancy (smaller k)
    /// only ever costs more.
    #[test]
    fn eq5_monotone_in_redundancy(n in 2usize..12, m in 1usize..10) {
        let n_total = n * m;
        let mut prev = two_layer_ft_units_eq5(n, n, n_total);
        prop_assert_eq!(prev, two_layer_units_eq4(m, n));
        for k in (1..n).rev() {
            let cost = two_layer_ft_units_eq5(n, k, n_total);
            prop_assert!(cost >= prev, "k={k}: {cost} < {prev}");
            prev = cost;
        }
    }

    /// The exact uneven-group FT formula agrees with Eq. 5 on even groups.
    #[test]
    fn ft_exact_matches_eq5_for_even_groups(n in 1usize..12, m in 1usize..10, k_off in 0usize..12) {
        let k = 1 + k_off % n;
        prop_assert_eq!(
            two_layer_ft_units_exact(&vec![n; m], k),
            two_layer_ft_units_eq5(n, k, n * m)
        );
    }

    /// The two-layer system always beats one-layer SAC once N is large
    /// enough relative to n (the paper's scalability claim), for every
    /// valid (n, k).
    #[test]
    fn two_layer_beats_baseline_at_scale(n in 3usize..8, k_off in 0usize..8, m in 4usize..20) {
        let k = 1 + k_off % n;
        let n_total = n * m;
        let two = two_layer_ft_units_eq5(n, k, n_total);
        let base = sac_baseline_units(n_total);
        prop_assert!(two < base, "n={n} k={k} N={n_total}: {two} >= {base}");
    }

    /// Fed-layer SAC costs strictly more than plain FedAvg in the upper
    /// layer (for m > 1) but stays below one-layer SAC at scale.
    #[test]
    fn fed_sac_premium_is_bounded(n in 3usize..8, m in 2usize..15) {
        let plain = two_layer_units_eq4(m, n);
        let strong = two_layer_units_fed_sac(m, n);
        prop_assert!(strong > plain);
        prop_assert_eq!(strong - plain, (m * m - m) as f64);
        if m >= 4 {
            prop_assert!(strong < sac_baseline_units(n * m));
        }
    }

    /// Eq. 10 growth: multilayer cost is O(nN) — the cost per peer is
    /// bounded by (n + 2) exactly.
    #[test]
    fn eq10_cost_per_peer_is_constant(n in 2usize..6, layers in 1usize..5) {
        let n_total = multilayer_total_peers(n, layers);
        let per_peer = multilayer_units_eq10(n, layers) / n_total as f64;
        prop_assert!(per_peer < (n + 2) as f64);
        prop_assert!(per_peer >= (n + 2) as f64 * (1.0 - 1.0 / n_total as f64) - 1e-9);
    }
}
