//! The integrated system: two-layer Raft (on the discrete-event simulator)
//! electing the aggregation leaders, with federated training and
//! fault-tolerant SAC running over the elected topology.
//!
//! Each round advances the simulated network — elections, joins, crash
//! recovery all happen on the virtual clock — then runs one Alg. 3
//! aggregation using whatever leaders Raft currently reports, exactly as
//! the paper's system does: a subgroup without a leader (or whose leader
//! has not rejoined the FedAvg layer yet) is a "slow subgroup" and is
//! skipped for that round, and crashed peers appear as SAC dropouts.

use crate::system::RoundRecord;
use p2pfl_fed::{combine, Client, LocalTrainConfig};
use p2pfl_hierraft::{Deployment, DeploymentSpec, FedCmd, HierActor, TopologyCmd};
use p2pfl_ml::data::Dataset;
use p2pfl_ml::metrics::evaluate;
use p2pfl_ml::Sequential;
use p2pfl_secagg::{
    fault_tolerant_secure_average, ring_secure_average, DropPhase, Dropout, SacEngine, ShareScheme,
    TransferLog, WeightVector, WIRE_BYTES_PER_PARAM,
};
use p2pfl_simnet::{FaultPlan, NodeId, PoisonMode, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Configuration of a [`ResilientSession`].
#[derive(Debug, Clone)]
pub struct ResilientConfig {
    /// The two-layer Raft deployment parameters.
    pub deployment: DeploymentSpec,
    /// SAC reconstruction threshold `k`.
    pub threshold: usize,
    /// Share construction scheme.
    pub scheme: ShareScheme,
    /// Local training hyperparameters.
    pub train: LocalTrainConfig,
    /// Virtual time the network runs between aggregation rounds (enough
    /// for heartbeats, elections, and joins to settle).
    pub round_settle: SimDuration,
    /// Consecutive FedAvg rounds a subgroup may miss before it is evicted
    /// from the weighted average (`w`). It is re-admitted as soon as its
    /// leader is back — the existing election + join path.
    pub eviction_window: u32,
    /// Whether share commitments are verified (the runner-level mirror of
    /// [`p2pfl_secagg::SacPeerActor`]'s `verify_commitments`). With this
    /// off, a Byzantine member's skewed shares silently contaminate its
    /// subgroup average instead of being rejected.
    pub verify_commitments: bool,
    /// RNG seed for share randomness.
    pub seed: u64,
}

impl ResilientConfig {
    /// A small default: 3 subgroups × 3 peers, k = 2, T = 100 ms.
    pub fn small(seed: u64) -> Self {
        let mut deployment = DeploymentSpec::paper(100, seed);
        deployment.num_subgroups = 3;
        deployment.subgroup_size = 3;
        ResilientConfig {
            deployment,
            threshold: 2,
            scheme: ShareScheme::Masked,
            train: LocalTrainConfig {
                epochs: 1,
                batch_size: 32,
            },
            round_settle: SimDuration::from_millis(600),
            eviction_window: 3,
            verify_commitments: true,
            seed,
        }
    }
}

/// Counters kept by the per-round supervisor.
#[derive(Debug, Clone, Default)]
pub struct SupervisorStats {
    /// Subgroup rounds aborted because FT-SAC could not complete with the
    /// advertised roster.
    pub aborts: u64,
    /// Aborted rounds salvaged by a degraded restart with the surviving
    /// `n'` members and `k' = min(k, n')`.
    pub degraded_retries: u64,
    /// Subgroup rounds refused because fewer than two members survived.
    pub refusals: u64,
    /// `(round, subgroup)` pairs at which a subgroup was evicted from the
    /// FedAvg layer after missing [`ResilientConfig::eviction_window`]
    /// consecutive rounds.
    pub evictions: Vec<(usize, usize)>,
    /// `(round, subgroup)` pairs at which an evicted subgroup re-entered
    /// the average.
    pub readmissions: Vec<(usize, usize)>,
    /// Share blocks rejected because they failed the commitment check
    /// (one per Byzantine sender per round it attempted to contribute).
    pub shares_rejected: u64,
    /// Total conflicting config echoes observed across all peers (summed
    /// from the per-peer [`HierActor::equivocations_detected`] counters).
    pub equivocations_detected: u64,
    /// `(round, peer)` pairs at which a peer was convicted as Byzantine
    /// and evicted from its aggregation roster — by the runner's
    /// commitment check or by the in-protocol equivocation detector.
    pub peers_evicted_byzantine: Vec<(usize, NodeId)>,
    /// Elastic subgroup splits applied through the replicated topology
    /// log (mirror of the FedAvg members' [`HierActor::splits`] counter).
    pub splits: u64,
    /// Elastic subgroup merges applied the same way.
    pub merges: u64,
    /// Elastic re-key transitions summed across all peers: every adoption
    /// of a changed roster derives a fresh mask-domain key.
    pub rekeys: u64,
}

/// Per-round outcome of the integrated system.
#[derive(Debug, Clone)]
pub struct ResilientRound {
    /// The usual training metrics.
    pub record: RoundRecord,
    /// The subgroup leaders Raft reported this round (`None` = leaderless,
    /// i.e. a slow subgroup that was skipped).
    pub leaders: Vec<Option<NodeId>>,
    /// The FedAvg-layer leader this round.
    pub fed_leader: Option<NodeId>,
    /// Subgroups that completed only after an abort and degraded retry.
    pub degraded: Vec<usize>,
    /// Subgroups excluded from the average this round (evicted after too
    /// many consecutive misses, not yet re-admitted).
    pub evicted: Vec<usize>,
}

/// The integrated Raft-backed training session.
pub struct ResilientSession {
    /// The two-layer Raft deployment (publicly drivable for fault
    /// injection beyond the helpers below).
    pub dep: Deployment,
    clients: Vec<Client>,
    eval_model: Sequential,
    global: Vec<f64>,
    cfg: ResilientConfig,
    rng: StdRng,
    /// Cumulative communication ledger for the aggregation traffic. Raft
    /// control traffic is accounted separately in `dep.sim.metrics()`.
    pub log: TransferLog,
    /// Per-subgroup streak of consecutive missed FedAvg rounds.
    miss_streak: Vec<u32>,
    /// Per-subgroup eviction flag (see [`SupervisorStats::evictions`]).
    evicted: Vec<bool>,
    /// Round-supervisor counters.
    pub supervisor: SupervisorStats,
    /// The active fault plan, kept so rounds can interpret its Byzantine
    /// entries (link faults and crashes are handled by the simulator).
    fault_plan: Option<FaultPlan>,
    /// Peers already convicted as Byzantine (each is recorded in
    /// [`SupervisorStats::peers_evicted_byzantine`] exactly once).
    convicted: BTreeSet<NodeId>,
    /// The layout version the per-subgroup supervision state (miss
    /// streaks, eviction flags) was built against. A version change means
    /// the rosters are new lineages, so the state is reset.
    topology_seen: u64,
}

impl ResilientSession {
    /// Builds the deployment and waits for the initial stable state.
    /// `clients.len()` must equal the deployment's total peer count;
    /// client `i` runs on simulated peer `NodeId(i)`.
    pub fn new(cfg: ResilientConfig, clients: Vec<Client>, eval_model: Sequential) -> Self {
        assert_eq!(
            clients.len(),
            cfg.deployment.total_peers(),
            "one client per simulated peer"
        );
        let mut dep = Deployment::build(cfg.deployment.clone());
        let stable = dep.wait_stable(SimTime::from_secs(30));
        assert!(stable, "deployment failed to stabilize");
        let global = eval_model.params_flat();
        let num_groups = dep.subgroups.len();
        let mut s = ResilientSession {
            dep,
            clients,
            eval_model,
            global,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x7e51),
            cfg,
            log: TransferLog::new(),
            miss_streak: vec![0; num_groups],
            evicted: vec![false; num_groups],
            supervisor: SupervisorStats::default(),
            fault_plan: None,
            convicted: BTreeSet::new(),
            topology_seen: 0,
        };
        s.push_global();
        s
    }

    /// The current global parameters.
    pub fn global(&self) -> &[f64] {
        &self.global
    }

    /// Crashes peer `id` (takes effect immediately on the virtual clock).
    pub fn crash(&mut self, id: NodeId) {
        let at = self.dep.sim.now() + SimDuration::from_millis(1);
        self.dep.sim.schedule_crash(id, at);
        self.dep.sim.run_for(SimDuration::from_millis(2));
    }

    /// Restarts peer `id`.
    pub fn restart(&mut self, id: NodeId) {
        let at = self.dep.sim.now() + SimDuration::from_millis(1);
        self.dep.sim.schedule_restart(id, at);
        self.dep.sim.run_for(SimDuration::from_millis(2));
    }

    /// Whether the session runs the elastic topology protocol.
    pub fn is_elastic(&self) -> bool {
        self.cfg.deployment.elastic.is_some()
    }

    /// Admits a new peer mid-session (elastic only): spawns an unplaced
    /// simulated peer that rendezvouses for a subgroup assignment, and
    /// registers `client` as its training client. The assignment lands
    /// once the FedAvg leader commits the `Admit` — usually within the
    /// next round's settle window.
    pub fn add_peer(&mut self, client: Client) -> NodeId {
        assert!(self.is_elastic(), "add_peer requires an elastic session");
        let id = self.dep.spawn_joiner();
        assert_eq!(
            id.index(),
            self.clients.len(),
            "one client per simulated peer, in id order"
        );
        self.clients.push(client);
        let global = self.global.clone();
        self.clients[id.index()].set_params(&global);
        id
    }

    /// Removes peer `id` from the session (elastic only): the FedAvg
    /// leader commits a `Depart` so the layout sheds the peer cleanly
    /// (emptied groups retire; runts merge on the next planning pass),
    /// then the process is crashed.
    pub fn remove_peer(&mut self, id: NodeId) {
        assert!(self.is_elastic(), "remove_peer requires an elastic session");
        // A mass exodus routinely takes the FedAvg leader with it, so the
        // layer may be mid-re-election when we get here. Re-propose until
        // the Depart is actually adopted — dropping it would leave `id`
        // as a ghost member that keeps its group looking healthy and
        // starves the merge planner.
        let deadline = self.dep.sim.now() + SimDuration::from_secs(10);
        loop {
            if let Some(fl) = self.dep.fed_leader() {
                let _ = self.dep.sim.exec::<HierActor, _, _>(fl, |a, ctx| {
                    a.propose_topology(ctx, TopologyCmd::Depart { peer: id })
                });
            }
            self.dep.sim.run_for(SimDuration::from_millis(100));
            if self.dep.latest_topology().group_of(id).is_none() || self.dep.sim.now() >= deadline {
                break;
            }
        }
        self.crash(id);
        // Let the crashed peer's FedAvg seat be repaired before returning:
        // a mass leave that kills seat holders back-to-back can otherwise
        // outrun the config-repair path and cost the layer its quorum.
        let deadline = self.dep.sim.now() + SimDuration::from_secs(10);
        while self.dep.sim.now() < deadline {
            self.adopt_layout();
            if self.dep.is_stable() {
                break;
            }
            self.dep.sim.run_for(SimDuration::from_millis(50));
        }
    }

    /// Adopts the freshest committed layout into the deployment view and
    /// re-dimensions the per-subgroup supervision state. A version change
    /// means the rosters are new lineages: the miss streaks and eviction
    /// flags of the retired rosters do not transfer.
    fn adopt_layout(&mut self) {
        let t = self.dep.refresh_subgroups();
        let n = self.dep.subgroups.len();
        if t.version != self.topology_seen {
            self.topology_seen = t.version;
            self.miss_streak = vec![0; n];
            self.evicted = vec![false; n];
        } else {
            self.miss_streak.resize(n, 0);
            self.evicted.resize(n, false);
        }
    }

    /// Elastic pre-round supervision: adopt the freshest layout, have the
    /// FedAvg leader propose the deterministic rebalancing plan for any
    /// out-of-band subgroup, then settle so the transitions (fresh Raft
    /// instances, re-keys, FedAvg-seat repairs) land before aggregation.
    fn supervise_topology(&mut self) {
        let Some(bounds) = self.cfg.deployment.elastic else {
            return;
        };
        self.adopt_layout();
        if let Some(fl) = self.dep.fed_leader() {
            let t = self.dep.latest_topology();
            for cmd in t.plan(bounds) {
                let _ = self
                    .dep
                    .sim
                    .exec::<HierActor, _, _>(fl, |a, ctx| a.propose_topology(ctx, cmd.clone()));
            }
        }
        self.dep.sim.run_for(self.cfg.round_settle);
        self.adopt_layout();
    }

    /// Applies a declarative fault plan to the underlying network: link
    /// faults (loss, delay, duplication, partitions, blackouts) interpose
    /// on every subsequent send, and the plan's crash/restart entries are
    /// scheduled on the virtual clock relative to now.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        self.dep.sim.apply_fault_plan(plan);
        // Byzantine entries are interpreted by the runner itself: poison /
        // share-skew at aggregation time, equivocation / bogus rosters by
        // flagging the hierraft actors each round.
        self.fault_plan = Some(plan.clone());
    }

    /// Removes the link faults of an applied plan (crash/restart events
    /// already on the virtual clock still fire), and stops interpreting
    /// its Byzantine entries.
    pub fn clear_fault_plan(&mut self) {
        self.dep.sim.clear_fault_plan();
        self.fault_plan = None;
        self.sync_byzantine_flags();
    }

    /// Pushes the plan's currently-active equivocation / bogus-roster
    /// behaviors onto the simulated hierraft actors (and clears them on
    /// peers whose Byzantine window has passed).
    fn sync_byzantine_flags(&mut self) {
        let now = self.dep.sim.now();
        for i in 0..self.clients.len() {
            let id = NodeId(i as u32);
            if self.dep.sim.is_crashed(id) {
                continue;
            }
            let spec = self
                .fault_plan
                .as_ref()
                .map(|p| p.byzantine(id, now))
                .unwrap_or_default();
            self.dep.sim.exec::<HierActor, _, _>(id, |a, _| {
                a.byz_equivocate = spec.equivocate;
                a.byz_bogus_roster = spec.bogus_roster;
            });
        }
    }

    fn push_global(&mut self) {
        for (i, c) in self.clients.iter_mut().enumerate() {
            if !self.dep.sim.is_crashed(NodeId(i as u32)) {
                c.set_params(&self.global);
            }
        }
    }

    fn model_bytes(&self) -> u64 {
        self.global.len() as u64 * WIRE_BYTES_PER_PARAM
    }

    /// Books a missed FedAvg round for subgroup `g`; `w` consecutive
    /// misses evict it from the average until its leader reappears.
    fn note_miss(&mut self, g: usize, round: usize) {
        self.miss_streak[g] += 1;
        if !self.evicted[g] && self.miss_streak[g] >= self.cfg.eviction_window {
            self.evicted[g] = true;
            self.supervisor.evictions.push((round, g));
        }
    }

    /// One SAC attempt over `members` with `dropouts`, weighted by each
    /// contributor's sample count. `engine` selects between the pairwise
    /// all-to-all scheme (Alg. 4) and the staged Ring-SAC scheme; it comes
    /// from the leader's *replicated* `FedConfig`, so every member of the
    /// subgroup agrees on it for the round.
    fn sac_attempt(
        &mut self,
        members: &[NodeId],
        leader: NodeId,
        k: usize,
        dropouts: &[Dropout],
        engine: SacEngine,
        skews: &[(NodeId, f64)],
    ) -> Result<(Vec<f64>, usize), p2pfl_secagg::FtSacError> {
        let leader_pos = members.iter().position(|&m| m == leader).unwrap();
        let models: Vec<WeightVector> = members
            .iter()
            .map(|&m| {
                let mut v = WeightVector::new(self.clients[m.index()].params());
                if let Some(&(_, f)) = skews.iter().find(|&&(s, _)| s == m) {
                    // Undetected share skew: every partition scaled by `f`
                    // still sums, so the member effectively contributes a
                    // scaled model — exactly what the commitment check
                    // would have caught.
                    v.scale(f);
                }
                v
            })
            .collect();
        let out = match engine {
            SacEngine::Pairwise => fault_tolerant_secure_average(
                &models,
                k,
                leader_pos,
                dropouts,
                self.cfg.scheme,
                &mut self.rng,
            )?,
            SacEngine::Ring => ring_secure_average(
                &models,
                k,
                leader_pos,
                dropouts,
                self.cfg.scheme,
                &mut self.rng,
            )?,
        };
        self.log.absorb(&out.log);
        let count: usize = out
            .contributors
            .iter()
            .map(|&pos| self.clients[members[pos].index()].num_samples())
            .sum();
        Ok((out.average.into_inner(), count))
    }

    /// Runs one round: settle the network, train, aggregate with the
    /// Raft-elected leaders, evaluate on `test`.
    pub fn run_round(&mut self, round: usize, test: &Dataset) -> ResilientRound {
        // 1. Let the network settle (elections, joins, heartbeats). Active
        //    Byzantine control-plane behaviors (equivocation, bogus roster
        //    proposals) are flagged on the actors first so the settle
        //    window exercises — and the protocol detects — them.
        self.sync_byzantine_flags();
        self.dep.sim.run_for(self.cfg.round_settle);
        // 1b. Elastic supervision: commit any pending split/merge plan and
        //     let the transitions settle, so this round aggregates over
        //     the post-transition rosters.
        self.supervise_topology();
        let bytes_before = self.log.bytes();

        // 2. Local updates on live peers, fanned out over worker threads
        //    (the `parallel` feature; each client owns its RNG and
        //    optimizer, so the fan-out is bit-identical to the serial
        //    loop). Crashed peers are masked out and left untouched.
        let alive: Vec<bool> = (0..self.clients.len())
            .map(|i| !self.dep.sim.is_crashed(NodeId(i as u32)))
            .collect();
        let losses =
            p2pfl_fed::parallel::local_updates_masked(&mut self.clients, &alive, self.cfg.train);
        let trained = losses.iter().flatten().count();
        let mut train_loss: f64 = losses.iter().flatten().sum();
        if trained > 0 {
            train_loss /= trained as f64;
        }

        // 2b. Byzantine peers corrupt their local update after training —
        //     a poisoned model is statistically well-formed (consistent
        //     shares), so SAC cannot catch it; the robust combiner at the
        //     FedAvg layer is the defense.
        if let Some(plan) = self.fault_plan.clone() {
            let now = self.dep.sim.now();
            for i in 0..self.clients.len() {
                let id = NodeId(i as u32);
                if self.dep.sim.is_crashed(id) {
                    continue;
                }
                if let Some(mode) = plan.byzantine(id, now).poison {
                    let mut p = self.clients[i].params();
                    match mode {
                        PoisonMode::SignFlip => p.iter_mut().for_each(|x| *x = -*x),
                        PoisonMode::NormBoost { factor } => p.iter_mut().for_each(|x| *x *= factor),
                    }
                    self.clients[i].set_params(&p);
                }
            }
        }

        // 3. Subgroup aggregation, gated by the live Raft state and
        //    supervised per round: an attempt that cannot complete is
        //    aborted and restarted once with the surviving `n'` members
        //    and `k' = min(k, n')`; a subgroup that keeps missing rounds
        //    is evicted from the average until its leader reappears.
        let fed_leader = self.dep.fed_leader();
        let num_groups = self.dep.subgroups.len();
        let mut leaders = Vec::with_capacity(num_groups);
        let mut degraded = Vec::new();
        let mut group_avgs = Vec::new();
        let mut group_counts = Vec::new();
        for g in 0..num_groups {
            let leader = self
                .dep
                .sub_leader_of(g)
                .filter(|&l| self.dep.sim.actor::<HierActor>(l).is_fed_member());
            leaders.push(leader);
            if self.evicted[g] {
                if leader.is_some() {
                    // Re-admission: the election + join path brought the
                    // subgroup's leader back into the FedAvg layer.
                    self.evicted[g] = false;
                    self.miss_streak[g] = 0;
                    self.supervisor.readmissions.push((round, g));
                } else {
                    leaders[g] = None;
                    continue;
                }
            }
            let Some(leader) = leader else {
                self.note_miss(g, round); // slow subgroup
                continue;
            };
            // Aggregate over the leader's *replicated roster*, not the
            // static subgroup: members the failure detector confirmed dead
            // were already evicted from it, shrinking n' (and k) outright
            // instead of counting as dropouts every round.
            let mut members = self
                .dep
                .sim
                .actor::<HierActor>(leader)
                .live_sub_members()
                .to_vec();
            if !members.contains(&leader) {
                // A re-elected leader can predate its own re-admission;
                // fall back to the full subgroup until the roster heals.
                members = self.dep.subgroups[g].clone();
            }
            // Byzantine supervision — the synchronous mirror of the
            // engine-level commitment checks: a member whose plan entry
            // skews its shares fails the per-partition digests when
            // verification is on, so the leader rejects its block, drops
            // it from the round, and convicts it through the replicated
            // roster path. With verification off the skewed shares still
            // sum (to a scaled model) and silently poison the subgroup
            // average.
            let mut skews: Vec<(NodeId, f64)> = Vec::new();
            if let Some(plan) = &self.fault_plan {
                let now = self.dep.sim.now();
                let flagged: Vec<(NodeId, f64)> = members
                    .iter()
                    .filter(|&&m| m != leader && !self.dep.sim.is_crashed(m))
                    .filter_map(|&m| plan.byzantine(m, now).share_skew.map(|f| (m, f)))
                    .collect();
                for (m, factor) in flagged {
                    if self.cfg.verify_commitments {
                        self.supervisor.shares_rejected += 1;
                        members.retain(|&x| x != m);
                        if self.convicted.insert(m) {
                            self.supervisor.peers_evicted_byzantine.push((round, m));
                        }
                        self.dep
                            .sim
                            .exec::<HierActor, _, _>(leader, |a, ctx| a.convict(ctx, m));
                    } else {
                        skews.push((m, factor));
                    }
                }
            }
            if members.len() < 2 {
                self.supervisor.refusals += 1;
                leaders[g] = None;
                self.note_miss(g, round);
                continue;
            }
            // Crashed members not yet evicted from the roster never shared
            // this round: they are SAC dropouts.
            let dropouts: Vec<Dropout> = members
                .iter()
                .enumerate()
                .filter(|(_, &m)| self.dep.sim.is_crashed(m))
                .map(|(pos, _)| Dropout {
                    peer: pos,
                    phase: DropPhase::BeforeShare,
                })
                .collect();
            let k = self.cfg.threshold.min(members.len()).max(1);
            // The engine for this round is whatever the leader's replicated
            // FedAvg-layer config says, not a local setting: the whole
            // `FedConfig` advances atomically under the version max-advance
            // rule, so every member that follows the leader runs the same
            // engine and a round can never mix schemes.
            let engine = self.dep.sim.actor::<HierActor>(leader).fed_config.engine;
            let outcome = match self.sac_attempt(&members, leader, k, &dropouts, engine, &skews) {
                Ok(out) => Some(out),
                Err(_) => {
                    // Abort and restart once with the survivors.
                    self.supervisor.aborts += 1;
                    let survivors: Vec<NodeId> = members
                        .iter()
                        .copied()
                        .filter(|&m| !self.dep.sim.is_crashed(m))
                        .collect();
                    if survivors.len() >= 2 && survivors.contains(&leader) {
                        let k2 = self.cfg.threshold.min(survivors.len()).max(1);
                        match self.sac_attempt(&survivors, leader, k2, &[], engine, &skews) {
                            Ok(out) => {
                                self.supervisor.degraded_retries += 1;
                                degraded.push(g);
                                Some(out)
                            }
                            Err(_) => None,
                        }
                    } else {
                        self.supervisor.refusals += 1;
                        None
                    }
                }
            };
            match outcome {
                Some((avg, count)) => {
                    self.miss_streak[g] = 0;
                    group_avgs.push(avg);
                    group_counts.push(count);
                }
                None => {
                    leaders[g] = None;
                    self.note_miss(g, round);
                }
            }
        }
        let groups_used = group_avgs.len();

        // 4. FedAvg at the FedAvg leader; subgroup leaders upload. The
        //    leader also commits the round number to the FedAvg-layer log,
        //    sequencing rounds across leader changes (the log-replication
        //    use the paper describes alongside the config replication).
        if let Some(fl) = fed_leader {
            if groups_used > 0 {
                self.dep.sim.exec::<HierActor, _, _>(fl, |a, ctx| {
                    let _ = a.propose_fed(ctx, FedCmd::Round(round as u64));
                });
            }
        }
        if let Some(fl) = fed_leader.filter(|_| groups_used > 0) {
            for _ in 1..groups_used {
                self.log.record("fedavg.upload", self.model_bytes());
            }
            // The combining rule, like the engine, comes from the FedAvg
            // leader's *replicated* config: it advances atomically with
            // the version max-advance rule, so a round never mixes a
            // robust combiner with plain FedAvg across leader changes.
            let combiner = self.dep.sim.actor::<HierActor>(fl).fed_config.combiner;
            self.global = combine(combiner, &group_avgs, &group_counts);
            // 5. Broadcast back down.
            for (g, leader) in leaders.iter().enumerate() {
                if leader.is_some() && Some(self.dep.subgroups[g][0]) != fed_leader {
                    self.log.record("fedavg.download", self.model_bytes());
                }
                let live_members = self.dep.subgroups[g]
                    .iter()
                    .filter(|&&m| !self.dep.sim.is_crashed(m))
                    .count();
                for _ in 1..live_members.max(1) {
                    self.log.record("bcast.member", self.model_bytes());
                }
            }
            self.push_global();
        }

        // 5b. Harvest what the protocol layer detected on its own this
        //     round: config-echo equivocations and in-protocol Byzantine
        //     convictions (the counters on the actors are cumulative, so
        //     the totals are assigned, not incremented).
        let mut equivocations = 0;
        let mut in_protocol: Vec<NodeId> = Vec::new();
        let mut splits = 0u64;
        let mut merges = 0u64;
        let mut rekeys = 0u64;
        for i in 0..self.clients.len() {
            let a = self.dep.sim.actor::<HierActor>(NodeId(i as u32));
            equivocations += a.equivocations_detected;
            in_protocol.extend(a.byzantine_peers.iter().copied());
            // Every FedAvg member applies every topology command, so each
            // one's counter is already the total: mirror the max, not the
            // sum. Re-keys are per-peer transitions, so those do sum.
            splits = splits.max(a.splits);
            merges = merges.max(a.merges);
            rekeys += a.rekeys;
        }
        self.supervisor.equivocations_detected = equivocations;
        self.supervisor.splits = splits;
        self.supervisor.merges = merges;
        self.supervisor.rekeys = rekeys;
        for p in in_protocol {
            if self.convicted.insert(p) {
                self.supervisor.peers_evicted_byzantine.push((round, p));
            }
        }

        // 6. Evaluate.
        self.eval_model.set_params_flat(&self.global);
        let (test_loss, test_accuracy) = evaluate(&mut self.eval_model, test, 256);
        ResilientRound {
            record: RoundRecord {
                round,
                train_loss,
                test_loss,
                test_accuracy,
                bytes: self.log.bytes() - bytes_before,
                groups_used,
            },
            leaders,
            fed_leader,
            degraded,
            evicted: (0..num_groups).filter(|&g| self.evicted[g]).collect(),
        }
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: usize, test: &Dataset) -> Vec<ResilientRound> {
        (1..=rounds).map(|r| self.run_round(r, test)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pfl_hierraft::RobustCombiner;
    use p2pfl_ml::data::{features_like, partition_dataset, train_test_split, Partition};
    use p2pfl_ml::models::mlp;

    fn build(seed: u64) -> (ResilientSession, Dataset) {
        build_with(ResilientConfig::small(seed))
    }

    fn build_with(cfg: ResilientConfig) -> (ResilientSession, Dataset) {
        let seed = cfg.seed;
        let n_total = cfg.deployment.total_peers();
        let (train, test) =
            train_test_split(&features_like(16, n_total * 50 + 300, seed), n_total * 50);
        let parts = partition_dataset(&train, n_total, Partition::Iid, seed + 1);
        let mut rng = StdRng::seed_from_u64(seed + 2);
        let clients: Vec<Client> = parts
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                Client::new(
                    i,
                    mlp(&[16, 24, 10], &mut rng),
                    d,
                    5e-3,
                    seed + 10 + i as u64,
                )
            })
            .collect();
        let eval = mlp(&[16, 24, 10], &mut rng);
        (ResilientSession::new(cfg, clients, eval), test)
    }

    #[test]
    fn ring_engine_session_uses_all_groups_and_learns() {
        let mut cfg = ResilientConfig::small(1);
        cfg.deployment.engine = SacEngine::Ring;
        let (mut s, test) = build_with(cfg);
        let rounds = s.run(12, &test);
        assert!(rounds.iter().all(|r| r.record.groups_used == 3));
        let first = rounds.first().unwrap().record.test_accuracy;
        let last = rounds.last().unwrap().record.test_accuracy;
        assert!(last > first, "accuracy {first:.3} -> {last:.3}");
        // The ring share phase actually ran (engine really was dispatched).
        assert!(s.log.phase("ringsac.share").0 > 0);
        assert_eq!(s.log.phase("ftsac.share").0, 0);
    }

    #[test]
    fn ring_engine_tolerates_follower_crash() {
        let mut cfg = ResilientConfig::small(2);
        cfg.deployment.engine = SacEngine::Ring;
        let (mut s, test) = build_with(cfg);
        s.run(2, &test);
        let leader0 = s.dep.sub_leader_of(0).unwrap();
        let victim = *s.dep.subgroups[0].iter().find(|&&m| m != leader0).unwrap();
        s.crash(victim);
        let r = s.run_round(3, &test);
        assert_eq!(r.record.groups_used, 3, "ring must absorb the loss");
    }

    #[test]
    fn healthy_session_uses_all_groups_and_learns() {
        let (mut s, test) = build(1);
        let rounds = s.run(12, &test);
        assert!(rounds.iter().all(|r| r.record.groups_used == 3));
        assert!(rounds.iter().all(|r| r.fed_leader.is_some()));
        let first = rounds.first().unwrap().record.test_accuracy;
        let last = rounds.last().unwrap().record.test_accuracy;
        assert!(last > first, "accuracy {first:.3} -> {last:.3}");
    }

    #[test]
    fn follower_crash_is_tolerated_by_ft_sac() {
        let (mut s, test) = build(2);
        s.run(2, &test);
        // Crash a follower (not a subgroup leader).
        let leader0 = s.dep.sub_leader_of(0).unwrap();
        let victim = *s.dep.subgroups[0].iter().find(|&&m| m != leader0).unwrap();
        s.crash(victim);
        let r = s.run_round(3, &test);
        assert_eq!(r.record.groups_used, 3, "k-out-of-n must absorb the loss");
    }

    #[test]
    fn leader_crash_recovers_via_election() {
        let (mut s, test) = build(3);
        s.run(2, &test);
        let victim = s.dep.sub_leader_of(1).unwrap();
        s.crash(victim);
        // The settle window lets Raft elect a replacement and join it to
        // the FedAvg layer; aggregation then proceeds with all groups.
        let r = s.run_round(3, &test);
        assert!(r.record.groups_used >= 2);
        let r = s.run_round(4, &test);
        assert_eq!(r.record.groups_used, 3, "leaders: {:?}", r.leaders);
        assert_ne!(r.leaders[1], Some(victim));
    }

    #[test]
    fn fed_leader_crash_rebuilds_whole_backend() {
        let (mut s, test) = build(4);
        s.run(2, &test);
        let victim = s.dep.fed_leader().unwrap();
        s.crash(victim);
        let _ = s.run_round(3, &test);
        let r = s.run_round(4, &test);
        assert!(r.fed_leader.is_some());
        assert_ne!(r.fed_leader, Some(victim));
        assert_eq!(r.record.groups_used, 3, "leaders: {:?}", r.leaders);
    }

    #[test]
    fn round_markers_commit_to_the_fed_log() {
        let (mut s, test) = build(6);
        s.run(3, &test);
        // Let the commit propagate, then check every subgroup leader's
        // applied FedAvg-layer commands contain the round sequence.
        s.dep.sim.run_for(SimDuration::from_millis(500));
        for g in 0..3 {
            let leader = s.dep.sub_leader_of(g).unwrap();
            let a = s.dep.sim.actor::<HierActor>(leader);
            assert_eq!(a.fed_rounds_applied(), vec![1, 2, 3], "subgroup {g}");
        }
    }

    #[test]
    fn fault_plan_window_degrades_then_recovers() {
        let (mut s, test) = build(7);
        s.run(1, &test);
        // A bounded window of light loss plus delay spikes: rounds may
        // degrade while it is active, but the session must keep making
        // progress and return to full strength once it expires.
        let plan = FaultPlan::new(0xfa11)
            .loss(SimTime::ZERO, SimTime::from_millis(1500), 0.05)
            .delay(
                SimTime::ZERO,
                SimTime::from_millis(1500),
                SimDuration::from_millis(10),
                SimDuration::from_millis(10),
            );
        s.apply_fault_plan(&plan);
        s.run(2, &test); // rounds 1..=2 under faults: must not wedge
        s.clear_fault_plan();
        let _ = s.run_round(4, &test); // settle round after the window
        let r = s.run_round(5, &test);
        assert_eq!(r.record.groups_used, 3, "leaders: {:?}", r.leaders);
        assert!(r.fed_leader.is_some());
    }

    #[test]
    fn late_crash_aborts_and_retries_degraded() {
        // n = k = 3: one dropout makes a partition unrecoverable, so the
        // supervisor must abort and restart with the two survivors.
        let mut cfg = ResilientConfig::small(8);
        cfg.threshold = 3;
        let (mut s, test) = build_with(cfg);
        s.run(2, &test);
        let leader0 = s.dep.sub_leader_of(0).unwrap();
        let victim = *s.dep.subgroups[0].iter().find(|&&m| m != leader0).unwrap();
        // Crash just before the settle window ends: the failure detector
        // has no time to evict the victim from the roster, so it shows up
        // as a SAC dropout inside the round.
        let at = s.dep.sim.now() + SimDuration::from_millis(590);
        s.dep.sim.schedule_crash(victim, at);
        let r = s.run_round(3, &test);
        assert_eq!(r.degraded, vec![0], "leaders: {:?}", r.leaders);
        assert_eq!(r.record.groups_used, 3);
        assert_eq!(s.supervisor.aborts, 1);
        assert_eq!(s.supervisor.degraded_retries, 1);
        // Next round the detector has evicted the victim: the shrunken
        // roster aggregates cleanly, with no further aborts.
        let r = s.run_round(4, &test);
        assert_eq!(r.record.groups_used, 3);
        assert!(r.degraded.is_empty());
        assert_eq!(s.supervisor.aborts, 1);
    }

    #[test]
    fn leaderless_subgroup_is_evicted_then_readmitted() {
        let (mut s, test) = build(9);
        s.run(1, &test);
        let group: Vec<NodeId> = s.dep.subgroups[2].clone();
        for &m in &group {
            s.crash(m);
        }
        // Three consecutive misses (the default window) trigger eviction.
        for r in 2..=4 {
            let rr = s.run_round(r, &test);
            assert_eq!(rr.record.groups_used, 2, "round {r}");
        }
        assert_eq!(s.supervisor.evictions, vec![(4, 2)]);
        let rr = s.run_round(5, &test);
        assert_eq!(rr.evicted, vec![2]);
        // Restart the subgroup; its leader re-enters the FedAvg layer via
        // the join path, which re-admits the subgroup to the average.
        for &m in &group {
            s.restart(m);
        }
        let mut readmitted = false;
        for r in 6..=9 {
            let rr = s.run_round(r, &test);
            if rr.record.groups_used == 3 {
                readmitted = true;
                break;
            }
            assert!(r < 9, "never re-admitted: {:?}", rr.leaders);
        }
        assert!(readmitted);
        assert_eq!(s.supervisor.readmissions.len(), 1);
        assert_eq!(s.supervisor.readmissions[0].1, 2);
    }

    #[test]
    fn elastic_session_splits_on_join_burst_and_merges_on_decay() {
        use p2pfl_hierraft::ElasticBounds;
        let seed = 42u64;
        let mut cfg = ResilientConfig::small(seed);
        cfg.deployment.num_subgroups = 2;
        cfg.deployment.subgroup_size = 3;
        let bounds = ElasticBounds::new(2, 4);
        cfg.deployment.elastic = Some(bounds);
        // Partition the data for the initial peers *and* the joiners, so
        // the flash crowd brings real training clients with it.
        let n_initial = cfg.deployment.total_peers();
        let extra = 4;
        let n_all = n_initial + extra;
        let (train, test) =
            train_test_split(&features_like(16, n_all * 50 + 300, seed), n_all * 50);
        let parts = partition_dataset(&train, n_all, Partition::Iid, seed + 1);
        let mut rng = StdRng::seed_from_u64(seed + 2);
        let mut clients: Vec<Client> = parts
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                Client::new(
                    i,
                    mlp(&[16, 24, 10], &mut rng),
                    d,
                    5e-3,
                    seed + 10 + i as u64,
                )
            })
            .collect();
        let joiners: Vec<Client> = clients.split_off(n_initial);
        let eval = mlp(&[16, 24, 10], &mut rng);
        let mut s = ResilientSession::new(cfg, clients, eval);
        s.run(2, &test);
        assert_eq!(s.supervisor.splits, 0);
        assert_eq!(s.supervisor.rekeys, 0);

        // Join burst: 10 peers cannot fit in 2 groups of <= 4, so the
        // supervisor must split at least once to restore the band.
        for c in joiners {
            s.add_peer(c);
        }
        for round in 3..=8 {
            s.run_round(round, &test);
            if s.supervisor.splits >= 1 {
                break;
            }
        }
        assert!(s.supervisor.splits >= 1, "join burst never forced a split");
        assert!(s.supervisor.rekeys >= 1, "a split is a re-key");
        s.run_round(9, &test);
        let t = s.dep.latest_topology();
        assert!(t.converged(bounds), "post-burst layout out of band: {t:?}");

        // Decay: shrink the smallest group below n_min; the next planning
        // pass must merge the runt into a sibling. Keep the FedAvg leader
        // alive if it happens to live there, so the decay exercises the
        // merge path rather than a fed-layer election.
        let small = t
            .groups
            .iter()
            .min_by_key(|g| (g.members.len(), g.gid))
            .unwrap()
            .clone();
        let keep = small
            .members
            .iter()
            .copied()
            .find(|&m| Some(m) == s.dep.fed_leader())
            .unwrap_or(small.members[0]);
        for m in small.members.clone() {
            if m != keep {
                s.remove_peer(m);
            }
        }
        for round in 10..=15 {
            s.run_round(round, &test);
            if s.supervisor.merges >= 1 {
                break;
            }
        }
        assert!(s.supervisor.merges >= 1, "decay never forced a merge");
        let r = s.run_round(16, &test);
        let t = s.dep.latest_topology();
        assert!(t.converged(bounds), "post-decay layout out of band: {t:?}");
        assert!(r.fed_leader.is_some());
        assert!(r.record.groups_used >= 1, "training wedged after churn");

        // No live peer is orphaned: everyone not departed lives in exactly
        // one subgroup of the committed layout.
        for i in 0..n_all {
            let id = NodeId(i as u32);
            if s.dep.sim.is_crashed(id) {
                continue;
            }
            let homes = t.groups.iter().filter(|g| g.members.contains(&id)).count();
            assert_eq!(homes, 1, "peer {id:?} lives in {homes} subgroups");
        }

        // The supervisor counters mirror the actor-side truth: splits and
        // merges are applied identically at every FedAvg member (max), and
        // re-keys are per-peer transitions (sum).
        let mut actor_splits = 0u64;
        let mut actor_merges = 0u64;
        let mut actor_rekeys = 0u64;
        for i in 0..n_all {
            let a = s.dep.sim.actor::<HierActor>(NodeId(i as u32));
            actor_splits = actor_splits.max(a.splits);
            actor_merges = actor_merges.max(a.merges);
            actor_rekeys += a.rekeys;
        }
        assert_eq!(s.supervisor.splits, actor_splits);
        assert_eq!(s.supervisor.merges, actor_merges);
        assert_eq!(s.supervisor.rekeys, actor_rekeys);
    }

    #[test]
    fn byzantine_share_skew_detected_convicted_and_excluded() {
        let (mut s, test) = build(11);
        s.run(1, &test);
        let leader0 = s.dep.sub_leader_of(0).unwrap();
        let byz = *s.dep.subgroups[0].iter().find(|&&m| m != leader0).unwrap();
        let plan = FaultPlan::new(0xb1).share_skew(SimTime::ZERO, None, byz, 7.0);
        s.apply_fault_plan(&plan);
        let r = s.run_round(2, &test);
        // Detection: the block was rejected, the sender convicted, and the
        // subgroup still aggregated with its two honest members.
        assert_eq!(s.supervisor.shares_rejected, 1);
        assert_eq!(s.supervisor.peers_evicted_byzantine, vec![(2, byz)]);
        assert_eq!(r.record.groups_used, 3, "leaders: {:?}", r.leaders);
        // The conviction replicates: the leader marked the peer Byzantine
        // and evicted it from the aggregation roster.
        s.dep.sim.run_for(SimDuration::from_millis(400));
        let a = s.dep.sim.actor::<HierActor>(leader0);
        assert!(a.byzantine_peers.contains(&byz));
        assert!(!a.live_sub_members().contains(&byz));
        // Once the roster excludes the peer there is nothing left to
        // reject — and the round completes with honest members only.
        let r = s.run_round(3, &test);
        assert_eq!(s.supervisor.shares_rejected, 1);
        assert_eq!(r.record.groups_used, 3);
    }

    #[test]
    fn unverified_share_skew_contaminates_the_average() {
        // Pinned negative: with commitment checks off, the same skew lands
        // in the subgroup sum and blows up the global model.
        let mut cfg = ResilientConfig::small(13);
        cfg.verify_commitments = false;
        let (mut s, test) = build_with(cfg);
        s.run(1, &test);
        let leader0 = s.dep.sub_leader_of(0).unwrap();
        let byz = *s.dep.subgroups[0].iter().find(|&&m| m != leader0).unwrap();
        let plan = FaultPlan::new(0xb2).share_skew(SimTime::ZERO, None, byz, 1e4);
        s.apply_fault_plan(&plan);
        let r = s.run_round(2, &test);
        assert_eq!(s.supervisor.shares_rejected, 0);
        assert!(s.supervisor.peers_evicted_byzantine.is_empty());
        assert_eq!(r.record.groups_used, 3);
        let max = s.global().iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(max > 10.0, "skew should have poisoned the average: {max}");
    }

    #[test]
    fn replicated_trimmed_mean_bounds_a_poisoned_update() {
        // A poisoned update has consistent shares, so SAC passes it
        // through; the replicated robust combiner absorbs it at the
        // FedAvg layer.
        let plan = FaultPlan::new(0xb0).poison(
            SimTime::ZERO,
            None,
            NodeId(1),
            PoisonMode::NormBoost { factor: 1e4 },
        );
        let run = |combiner: RobustCombiner| {
            let mut cfg = ResilientConfig::small(12);
            cfg.deployment.combiner = combiner;
            let (mut s, test) = build_with(cfg);
            s.run(1, &test);
            let leader0 = s.dep.sub_leader_of(0).unwrap();
            assert_ne!(leader0, NodeId(1), "poisoned peer must be a follower");
            s.apply_fault_plan(&plan);
            let r = s.run_round(2, &test);
            assert_eq!(r.record.groups_used, 3, "leaders: {:?}", r.leaders);
            s.global().iter().fold(0.0f64, |m, &x| m.max(x.abs()))
        };
        let robust = run(RobustCombiner::TrimmedMean);
        assert!(
            robust < 10.0,
            "poison leaked through the trimmed mean: {robust}"
        );
        // Control (same seed, same plan): plain FedAvg is overwhelmed.
        let plain = run(RobustCombiner::FedAvg);
        assert!(
            plain > 10.0,
            "fedavg unexpectedly bounded the poison: {plain}"
        );
    }

    #[test]
    fn equivocating_peer_is_detected_and_convicted() {
        let (mut s, test) = build(14);
        s.run(1, &test);
        // Subgroup 0 is {0, 1, 2}. Peer 2 advertises conflicting config
        // digests; peer 1 receives the flipped one, compares it against
        // its own applied config, and convicts the sender.
        let byz = NodeId(2);
        let plan = FaultPlan::new(0xb3).equivocate(SimTime::ZERO, None, byz);
        s.apply_fault_plan(&plan);
        s.run(2, &test);
        assert!(s.supervisor.equivocations_detected >= 1);
        assert!(
            s.supervisor
                .peers_evicted_byzantine
                .iter()
                .any(|&(_, p)| p == byz),
            "equivocator never convicted: {:?}",
            s.supervisor.peers_evicted_byzantine
        );
    }

    #[test]
    fn bogus_roster_proposals_are_rejected_by_followers() {
        let (mut s, test) = build(15);
        s.run(1, &test);
        // Make subgroup 1's leader propose rosters with a phantom member;
        // every applier (including the proposer) refuses them, and the
        // previous roster stays in force.
        let byz = s.dep.sub_leader_of(1).unwrap();
        let plan = FaultPlan::new(0xb4).bogus_roster(SimTime::ZERO, None, byz);
        s.apply_fault_plan(&plan);
        let rounds = s.run(2, &test);
        let rejected: u64 = s.dep.subgroups[1]
            .iter()
            .map(|&m| s.dep.sim.actor::<HierActor>(m).bogus_rosters_rejected)
            .sum();
        assert!(rejected > 0, "no bogus roster was ever rejected");
        for &m in &s.dep.subgroups[1] {
            let a = s.dep.sim.actor::<HierActor>(m);
            assert!(!a.live_sub_members().contains(&NodeId(u32::MAX)));
        }
        assert!(rounds.iter().all(|r| r.record.groups_used == 3));
    }

    #[test]
    fn restarted_peer_rejoins_training() {
        let (mut s, test) = build(5);
        s.run(1, &test);
        let leader0 = s.dep.sub_leader_of(0).unwrap();
        let victim = *s.dep.subgroups[0].iter().find(|&&m| m != leader0).unwrap();
        s.crash(victim);
        s.run(2, &test);
        s.restart(victim);
        let r = s.run_round(5, &test);
        assert_eq!(r.record.groups_used, 3);
        // The restarted peer participates again (its model got the global
        // push and its subgroup aggregated all members).
        assert!(!s.dep.sim.is_crashed(victim));
    }
}
