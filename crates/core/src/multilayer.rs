//! X-layer aggregation (paper Sec. VII-C) — the generalization of the
//! two-layer system to a tree of SAC subgroups.
//!
//! The tree has degree `n`: every peer of layer `x < X` leads a subgroup
//! of `n` peers at layer `x + 1` (itself plus `n − 1` fresh peers), so the
//! total peer count is `N = Σ_{k=1..X} n(n−1)^{k−1}` (Eq. 6). Aggregation
//! runs bottom-up: each leader SAC-averages its subgroup — inputs are
//! pre-scaled by subtree size so the plain SAC average reconstructs the
//! sample-exact subtree mean — and the topmost result is distributed back
//! down. The total communication is `(N − 1)(n + 2)|w|` (Eq. 10), which
//! the tests verify against the executed ledger.

use crate::cost::multilayer_total_peers;
use p2pfl_secagg::{secure_average_with_leader, ShareScheme, TransferLog, WeightVector};
use rand::Rng;

/// The aggregation tree.
#[derive(Debug, Clone)]
pub struct MultilayerTree {
    n: usize,
    layers: usize,
    /// `groups[x]` lists the subgroups of layer `x+1`; each subgroup is
    /// `(leader peer id, member peer ids)` with the leader living in layer
    /// `x` (`usize::MAX` marks the virtual root of the topmost group).
    groups: Vec<Vec<(usize, Vec<usize>)>>,
    total: usize,
}

impl MultilayerTree {
    /// Builds the tree for degree `n` (≥ 2) and `layers` (≥ 1).
    pub fn build(n: usize, layers: usize) -> Self {
        let total = multilayer_total_peers(n, layers);
        let mut groups: Vec<Vec<(usize, Vec<usize>)>> = Vec::with_capacity(layers);
        // Layer 1: one subgroup of the first n peers; its leader is peer 0.
        let mut next_id = 0usize;
        let top: Vec<usize> = (0..n)
            .map(|_| {
                let id = next_id;
                next_id += 1;
                id
            })
            .collect();
        groups.push(vec![(usize::MAX, top.clone())]);
        let mut frontier = top;
        for _ in 1..layers {
            let mut layer_groups = Vec::new();
            let mut new_frontier = Vec::new();
            for &leader in &frontier {
                let mut members = vec![leader];
                for _ in 0..n - 1 {
                    members.push(next_id);
                    new_frontier.push(next_id);
                    next_id += 1;
                }
                layer_groups.push((leader, members));
            }
            groups.push(layer_groups);
            frontier = new_frontier;
        }
        assert_eq!(next_id, total, "tree construction mismatch");
        MultilayerTree {
            n,
            layers,
            groups,
            total,
        }
    }

    /// Total number of peers (Eq. 6).
    pub fn total_peers(&self) -> usize {
        self.total
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Tree degree `n`.
    pub fn degree(&self) -> usize {
        self.n
    }

    /// Number of SAC aggregations performed per round.
    pub fn num_aggregations(&self) -> usize {
        self.groups.iter().map(|g| g.len()).sum()
    }

    /// Aggregates `models` (indexed by peer id) bottom-up with SAC at
    /// every layer, returning the exact global mean and the communication
    /// ledger. Subtree sizes are public (they weight the SAC inputs).
    pub fn aggregate<R: Rng + ?Sized>(
        &self,
        models: &[WeightVector],
        scheme: ShareScheme,
        rng: &mut R,
    ) -> (WeightVector, TransferLog) {
        assert_eq!(models.len(), self.total, "model count mismatch");
        let mut log = TransferLog::new();
        // acc[p] = (subtree mean rooted at p, subtree size); initially the
        // peer's own model.
        let mut acc: Vec<(WeightVector, usize)> =
            models.iter().map(|m| (m.clone(), 1usize)).collect();

        // Bottom-up: deepest layer first.
        for layer_groups in self.groups.iter().rev() {
            for (_, members) in layer_groups {
                let group_size = members.len();
                // Scale each input by its subtree count so the plain SAC
                // mean times group_size recovers the weighted sum.
                let inputs: Vec<WeightVector> = members
                    .iter()
                    .map(|&p| acc[p].0.scaled(acc[p].1 as f64))
                    .collect();
                let leader_pos = 0; // members[0] is the layer-above leader
                let out = secure_average_with_leader(&inputs, leader_pos, scheme, rng);
                log.absorb(&out.log);
                let total_count: usize = members.iter().map(|&p| acc[p].1).sum();
                let mut mean = out.average;
                mean.scale(group_size as f64 / total_count as f64);
                let root = members[0];
                acc[root] = (mean, total_count);
            }
        }
        // Distribute the global model back to every other peer: (N-1)|w|.
        let result = acc[self.groups[0][0].1[0]].0.clone();
        let wire = result.wire_bytes();
        for _ in 1..self.total {
            log.record("multilayer.distribute", wire);
        }
        (result, log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::multilayer_units_eq10;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tree_counts_match_eq6() {
        for n in 2..6 {
            for layers in 1..4 {
                let t = MultilayerTree::build(n, layers);
                assert_eq!(t.total_peers(), multilayer_total_peers(n, layers));
            }
        }
    }

    #[test]
    fn aggregation_count_matches_derivation() {
        // #aggregations = Σ_{k=1..X-1} n(n-1)^{k-1} + 1.
        let t = MultilayerTree::build(3, 3);
        assert_eq!(t.num_aggregations(), 1 + 3 + 6);
    }

    #[test]
    fn aggregate_equals_global_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        for (n, layers) in [(2usize, 2usize), (3, 2), (3, 3), (4, 2)] {
            let t = MultilayerTree::build(n, layers);
            let models: Vec<WeightVector> = (0..t.total_peers())
                .map(|_| WeightVector::random(12, 1.0, &mut rng))
                .collect();
            let plain = WeightVector::mean(models.iter());
            let (got, _) = t.aggregate(&models, ShareScheme::Masked, &mut rng);
            assert!(
                got.linf_distance(&plain) < 1e-6,
                "n={n} X={layers}: err {}",
                got.linf_distance(&plain)
            );
        }
    }

    #[test]
    fn ledger_matches_eq10() {
        let mut rng = StdRng::seed_from_u64(2);
        for (n, layers) in [(3usize, 2usize), (3, 3), (4, 2)] {
            let t = MultilayerTree::build(n, layers);
            let models: Vec<WeightVector> = (0..t.total_peers())
                .map(|_| WeightVector::random(8, 1.0, &mut rng))
                .collect();
            let wire = models[0].wire_bytes();
            let (_, log) = t.aggregate(&models, ShareScheme::Masked, &mut rng);
            let expected = multilayer_units_eq10(n, layers) as u64 * wire;
            assert_eq!(log.bytes(), expected, "n={n} X={layers}");
        }
    }

    #[test]
    fn single_layer_is_one_sac_group() {
        let t = MultilayerTree::build(4, 1);
        assert_eq!(t.total_peers(), 4);
        assert_eq!(t.num_aggregations(), 1);
    }
}
