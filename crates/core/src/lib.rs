//! # p2pfl — two-layer secure fault-tolerant aggregation for P2P FL
//!
//! The paper's primary contribution, assembled from the workspace
//! substrates:
//!
//! * [`system::TwoLayerSystem`] — the two-layer aggregation (paper
//!   Alg. 3): SAC inside subgroups, sample-weighted FedAvg across them,
//!   with n-out-of-n or fault-tolerant k-out-of-n subgroup aggregation and
//!   fraction-`p` slow-subgroup timeouts;
//! * [`runner::ResilientSession`] — the same system running on top of the
//!   two-layer Raft backend: elections, joins, and crash recovery happen
//!   on the simulated network, and whichever leaders Raft reports run the
//!   aggregation;
//! * [`cost`] — the closed-form communication model (Eqs. 4, 5, 10),
//!   verified against the executable protocols;
//! * [`multilayer::MultilayerTree`] — the X-layer generalization of
//!   Sec. VII-C;
//! * [`experiment`] — sweep harnesses behind the paper's Figs. 6–9.
//!
//! ```
//! use p2pfl::experiment::{accuracy_sweep, SweepSpec};
//! use p2pfl_ml::data::Partition;
//!
//! let spec = SweepSpec { n_total: 6, rounds: 3, ..SweepSpec::default() };
//! let series = accuracy_sweep(&spec, &[3], &[Partition::Iid]);
//! assert_eq!(series[0].records.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod experiment;
pub mod multilayer;
pub mod runner;
pub mod system;
