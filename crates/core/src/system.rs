//! The two-layer aggregation system (paper Alg. 3), synchronous form.
//!
//! This is the trainer behind the accuracy experiments (Figs. 6–9): peers
//! train locally, every subgroup aggregates its members' models with
//! (fault-tolerant) SAC — executing the real share arithmetic, including
//! its floating-point error — and the FedAvg leader combines the subgroup
//! averages weighted by subgroup sample counts. The full message-level
//! deployment with Raft-elected leaders lives in [`crate::runner`]; this
//! synchronous form factors out wall-clock concerns so thousand-round
//! sweeps are tractable, while charging every logical transfer to a
//! [`TransferLog`] that the cost model is tested against.

use crate::cost::even_groups;
use p2pfl_fed::{fedavg, Client, LocalTrainConfig};
use p2pfl_ml::data::Dataset;
use p2pfl_ml::metrics::evaluate;
use p2pfl_ml::Sequential;
use p2pfl_secagg::dp::{privatize, GaussianDp};
use p2pfl_secagg::{
    fault_tolerant_secure_average, secure_average, secure_average_with_leader, DropPhase, Dropout,
    FtSacError, ShareScheme, TransferLog, WeightVector,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which aggregation topology to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// The paper's proposal: SAC inside subgroups, FedAvg across them.
    TwoLayer,
    /// The baseline: one-layer SAC over all peers with full subtotal
    /// broadcast (paper Alg. 2; the `n = N` curves in Figs. 6–7).
    OriginalSac,
}

/// Configuration of a [`TwoLayerSystem`].
#[derive(Debug, Clone)]
pub struct TwoLayerConfig {
    /// Aggregation topology.
    pub kind: SystemKind,
    /// Subgroup size `n` (ignored for [`SystemKind::OriginalSac`]).
    pub subgroup_size: usize,
    /// Reconstruction threshold `k`; `None` means n-out-of-n per group.
    pub threshold: Option<usize>,
    /// Share construction scheme.
    pub scheme: ShareScheme,
    /// Fraction `p` of subgroups whose models the FedAvg leader waits for
    /// each round (Figs. 8–9); the rest time out and are skipped.
    pub fraction: f64,
    /// Local training hyperparameters.
    pub train: LocalTrainConfig,
    /// System RNG seed (subgroup sampling, share randomness).
    pub seed: u64,
    /// Optional per-peer differential privacy: each peer clips its model
    /// and adds Gaussian-mechanism noise *before* sharing (paper
    /// Sec. IV-D's suggested hardening).
    pub dp: Option<GaussianDp>,
    /// Run SAC among the subgroup leaders too, instead of plain FedAvg —
    /// the "stronger privacy guarantees in the higher layer" variant the
    /// paper sketches. Raises the upper-layer cost from `2(m-1)|w|` to
    /// `(m²-1)|w|` (see [`crate::cost::two_layer_units_fed_sac`]).
    pub fed_layer_sac: bool,
}

impl Default for TwoLayerConfig {
    fn default() -> Self {
        TwoLayerConfig {
            kind: SystemKind::TwoLayer,
            subgroup_size: 3,
            threshold: None,
            scheme: ShareScheme::Masked,
            fraction: 1.0,
            train: LocalTrainConfig::default(),
            seed: 0,
            dp: None,
            fed_layer_sac: false,
        }
    }
}

/// Per-round measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundRecord {
    /// Round number (1-based).
    pub round: usize,
    /// Mean training loss over participating peers.
    pub train_loss: f64,
    /// Global model test loss after aggregation.
    pub test_loss: f64,
    /// Global model test accuracy after aggregation.
    pub test_accuracy: f64,
    /// Bytes transferred this round (SAC + FedAvg + broadcast).
    pub bytes: u64,
    /// Number of subgroups whose aggregate made it into FedAvg.
    pub groups_used: usize,
}

/// The synchronous two-layer training system.
pub struct TwoLayerSystem {
    cfg: TwoLayerConfig,
    groups: Vec<Vec<usize>>,
    clients: Vec<Client>,
    eval_model: Sequential,
    global: Vec<f64>,
    rng: StdRng,
    pending_dropouts: Vec<Dropout>,
    /// Cumulative communication ledger across all rounds.
    pub log: TransferLog,
}

impl TwoLayerSystem {
    /// Builds the system. Peers are grouped evenly in index order (the
    /// paper's Fig. 6 rule: `N = 10, n = 3` gives groups of 3, 3, 4).
    /// `eval_model` supplies both the architecture twin for evaluation and
    /// the initial global parameters.
    pub fn new(clients: Vec<Client>, eval_model: Sequential, cfg: TwoLayerConfig) -> Self {
        assert!(!clients.is_empty(), "need at least one peer");
        assert!(
            (0.0..=1.0).contains(&cfg.fraction) && cfg.fraction > 0.0,
            "fraction must be in (0, 1]"
        );
        let n_total = clients.len();
        let groups: Vec<Vec<usize>> = match cfg.kind {
            SystemKind::OriginalSac => vec![(0..n_total).collect()],
            SystemKind::TwoLayer => {
                assert!(
                    cfg.subgroup_size >= 1 && cfg.subgroup_size <= n_total,
                    "subgroup size out of range"
                );
                let m = n_total / cfg.subgroup_size;
                let m = m.max(1);
                let sizes = even_groups(n_total, m);
                let mut groups = Vec::with_capacity(m);
                let mut next = 0usize;
                for s in sizes {
                    groups.push((next..next + s).collect());
                    next += s;
                }
                groups
            }
        };
        let global = eval_model.params_flat();
        let mut sys = TwoLayerSystem {
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x2fa7),
            cfg,
            groups,
            clients,
            eval_model,
            global,
            pending_dropouts: Vec::new(),
            log: TransferLog::new(),
        };
        sys.push_global();
        sys
    }

    /// The subgroup memberships (peer indices).
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// The current global parameters.
    pub fn global(&self) -> &[f64] {
        &self.global
    }

    /// Schedules peer dropouts for the next round only (exercises the
    /// fault-tolerant SAC path; requires a `threshold`).
    pub fn inject_dropouts(&mut self, dropouts: &[(usize, DropPhase)]) {
        self.pending_dropouts = dropouts
            .iter()
            .map(|&(peer, phase)| Dropout { peer, phase })
            .collect();
    }

    fn push_global(&mut self) {
        for c in &mut self.clients {
            c.set_params(&self.global);
        }
    }

    fn select_groups(&mut self) -> Vec<usize> {
        let m = self.groups.len();
        let take = ((m as f64 * self.cfg.fraction).round() as usize).clamp(1, m);
        if take == m {
            return (0..m).collect();
        }
        let mut idx: Vec<usize> = (0..m).collect();
        for i in (1..m).rev() {
            let j = self.rng.random_range(0..=i);
            idx.swap(i, j);
        }
        idx.truncate(take);
        idx.sort_unstable();
        idx
    }

    /// Runs one full round (paper Alg. 3) and evaluates on `test`.
    pub fn run_round(&mut self, round: usize, test: &Dataset) -> RoundRecord {
        let bytes_before = self.log.bytes();

        // 1. Local updates on every peer (paper: peers train, then models
        //    are aggregated via SAC in subgroups). Peers are independent,
        //    so their training runs on scoped worker threads (the
        //    `parallel` feature); each client owns its RNG/optimizer, so
        //    the result is deterministic regardless of scheduling.
        let train_cfg = self.cfg.train;
        let losses = p2pfl_fed::parallel::local_updates(&mut self.clients, train_cfg);
        let train_loss = losses.iter().sum::<f64>() / losses.len() as f64;

        // 2. Subgroup SAC for each selected subgroup.
        let selected = self.select_groups();
        let dropouts = std::mem::take(&mut self.pending_dropouts);
        let mut group_avgs: Vec<Vec<f64>> = Vec::new();
        let mut group_counts: Vec<usize> = Vec::new();
        for &g in &selected {
            match self.aggregate_group(g, &dropouts) {
                Some((avg, count)) => {
                    group_avgs.push(avg.into_inner());
                    group_counts.push(count);
                }
                None => continue, // subgroup lost this round
            }
        }
        let groups_used = group_avgs.len();

        // 3. FedAvg across subgroup aggregates, weighted by sample counts
        //    (Alg. 3 line 10). Upload cost: one model per non-leading
        //    subgroup leader (the FedAvg leader's own subgroup is local).
        if groups_used > 0 {
            if self.cfg.fed_layer_sac && groups_used > 1 {
                // Secure aggregation among the leaders themselves: SAC the
                // count-scaled subgroup means, then renormalize (counts are
                // public metadata). Cost: (m'^2 - 1)|w| instead of the
                // plain uploads.
                let total: usize = group_counts.iter().sum();
                let inputs: Vec<WeightVector> = group_avgs
                    .iter()
                    .zip(&group_counts)
                    .map(|(a, &c)| WeightVector::new(a.clone()).scaled(c as f64))
                    .collect();
                let out = secure_average_with_leader(&inputs, 0, self.cfg.scheme, &mut self.rng);
                self.log.absorb(&out.log);
                let mut global = out.average;
                global.scale(groups_used as f64 / total as f64);
                self.global = global.into_inner();
            } else {
                for _ in 1..groups_used {
                    self.log.record("fedavg.upload", self.model_bytes());
                }
                self.global = fedavg(&group_avgs, &group_counts);
            }
        }

        // 4. Broadcast the new global model: FedAvg leader -> subgroup
        //    leaders -> members (all peers resume from it).
        for (gi, group) in self.groups.iter().enumerate() {
            if gi != 0 {
                self.log.record("fedavg.download", self.model_bytes());
            }
            for _ in 1..group.len() {
                self.log.record("bcast.member", self.model_bytes());
            }
        }
        self.push_global();

        // 5. Evaluate the global model.
        self.eval_model.set_params_flat(&self.global);
        let (test_loss, test_accuracy) = evaluate(&mut self.eval_model, test, 256);
        RoundRecord {
            round,
            train_loss,
            test_loss,
            test_accuracy,
            bytes: self.log.bytes() - bytes_before,
            groups_used,
        }
    }

    fn model_bytes(&self) -> u64 {
        self.global.len() as u64 * p2pfl_secagg::WIRE_BYTES_PER_PARAM
    }

    /// Aggregates subgroup `g`, honoring this round's dropout schedule.
    /// Returns the subgroup average and its total sample count, or `None`
    /// if the subgroup could not aggregate.
    fn aggregate_group(&mut self, g: usize, dropouts: &[Dropout]) -> Option<(WeightVector, usize)> {
        let members = &self.groups[g];
        let local: Vec<Dropout> = dropouts
            .iter()
            .filter_map(|d| {
                members
                    .iter()
                    .position(|&p| p == d.peer)
                    .map(|pos| Dropout {
                        peer: pos,
                        phase: d.phase,
                    })
            })
            .collect();
        let models: Vec<WeightVector> = members
            .iter()
            .map(|&p| {
                let mut w = WeightVector::new(self.clients[p].params());
                if let Some(dp) = self.cfg.dp {
                    // Noise is injected on the peer, before any share
                    // leaves it, so the guarantee holds against everyone.
                    privatize(&mut w, dp, &mut self.rng);
                }
                w
            })
            .collect();

        match (self.cfg.kind, self.cfg.threshold) {
            (SystemKind::OriginalSac, _) => {
                // Alg. 2 aborts outright on any dropout.
                if !local.is_empty() {
                    return None;
                }
                let out = secure_average(&models, self.cfg.scheme, &mut self.rng);
                self.log.absorb(&out.log);
                let count: usize = members.iter().map(|&p| self.clients[p].num_samples()).sum();
                Some((out.average, count))
            }
            (SystemKind::TwoLayer, None) => {
                if !local.is_empty() {
                    return None; // n-out-of-n subgroup cannot tolerate loss
                }
                let out = p2pfl_secagg::secure_average_with_leader(
                    &models,
                    0,
                    self.cfg.scheme,
                    &mut self.rng,
                );
                self.log.absorb(&out.log);
                let count: usize = members.iter().map(|&p| self.clients[p].num_samples()).sum();
                Some((out.average, count))
            }
            (SystemKind::TwoLayer, Some(k)) => {
                let k = k.min(members.len());
                // Leader: lowest-index member that is not dropping out. In
                // the full system Raft makes this choice (crate::runner).
                let leader =
                    (0..members.len()).find(|pos| !local.iter().any(|d| d.peer == *pos))?;
                match fault_tolerant_secure_average(
                    &models,
                    k,
                    leader,
                    &local,
                    self.cfg.scheme,
                    &mut self.rng,
                ) {
                    Ok(out) => {
                        self.log.absorb(&out.log);
                        let count: usize = out
                            .contributors
                            .iter()
                            .map(|&pos| self.clients[members[pos]].num_samples())
                            .sum();
                        Some((out.average, count))
                    }
                    Err(FtSacError::TooManyDropouts { .. }) | Err(FtSacError::NoContributors) => {
                        None
                    }
                    Err(e) => panic!("unexpected FT-SAC failure: {e}"),
                }
            }
        }
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: usize, test: &Dataset) -> Vec<RoundRecord> {
        (1..=rounds).map(|r| self.run_round(r, test)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pfl_ml::data::{features_like, partition_dataset, train_test_split, Partition};
    use p2pfl_ml::models::mlp;

    fn build(
        n_total: usize,
        cfg: TwoLayerConfig,
        partition: Partition,
        seed: u64,
    ) -> (TwoLayerSystem, Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, test) =
            train_test_split(&features_like(16, 60 * n_total + 300, seed), 60 * n_total);
        let parts = partition_dataset(&train, n_total, partition, seed + 1);
        let clients: Vec<Client> = parts
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                Client::new(
                    i,
                    mlp(&[16, 24, 10], &mut rng),
                    d,
                    5e-3,
                    seed + 2 + i as u64,
                )
            })
            .collect();
        let eval = mlp(&[16, 24, 10], &mut rng);
        (TwoLayerSystem::new(clients, eval, cfg), test)
    }

    fn base_cfg(n: usize) -> TwoLayerConfig {
        TwoLayerConfig {
            subgroup_size: n,
            train: LocalTrainConfig {
                epochs: 1,
                batch_size: 32,
            },
            ..TwoLayerConfig::default()
        }
    }

    #[test]
    fn grouping_matches_paper_fig6_caption() {
        // "in case of n = 3, the N = 10 peers are divided into three
        // subgroups with 3, 3, and 4 peers each".
        let (sys, _) = build(10, base_cfg(3), Partition::Iid, 1);
        let sizes: Vec<usize> = sys.groups().iter().map(|g| g.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn two_layer_learns() {
        let (mut sys, test) = build(6, base_cfg(3), Partition::Iid, 2);
        let recs = sys.run(20, &test);
        let first = recs.first().unwrap().test_accuracy;
        let last = recs.last().unwrap().test_accuracy;
        assert!(last > first + 0.15, "accuracy {first:.3} -> {last:.3}");
    }

    #[test]
    fn two_layer_tracks_original_sac_accuracy() {
        // Fig. 6's core claim: same accuracy as the baseline.
        let mut cfg = base_cfg(3);
        let (mut two, test) = build(6, cfg.clone(), Partition::Iid, 3);
        cfg.kind = SystemKind::OriginalSac;
        let (mut base, _) = build(6, cfg, Partition::Iid, 3);
        let a2 = two.run(15, &test).last().unwrap().test_accuracy;
        let a1 = base.run(15, &test).last().unwrap().test_accuracy;
        assert!(
            (a1 - a2).abs() < 0.08,
            "two-layer {a2:.3} vs baseline {a1:.3}"
        );
    }

    #[test]
    fn round_cost_matches_eq4() {
        // Equal groups, n-out-of-n: Eq. 4 = (m n² + m n − 2)|w|.
        let (mut sys, test) = build(6, base_cfg(3), Partition::Iid, 4);
        let rec = sys.run_round(1, &test);
        let w = sys.model_bytes();
        let expected = crate::cost::two_layer_units_eq4(2, 3) as u64 * w;
        assert_eq!(rec.bytes, expected);
    }

    #[test]
    fn baseline_cost_matches_alg2_plus_broadcast() {
        let mut cfg = base_cfg(3);
        cfg.kind = SystemKind::OriginalSac;
        let (mut sys, test) = build(5, cfg, Partition::Iid, 5);
        let rec = sys.run_round(1, &test);
        let w = sys.model_bytes();
        // 2N(N-1) for SAC; everyone already holds the result, but our
        // runner still counts the (N-1) global distribution it performs.
        assert_eq!(rec.bytes, (2 * 5 * 4 + 4) as u64 * w);
    }

    #[test]
    fn fraction_uses_subset_of_groups() {
        let mut cfg = base_cfg(3);
        cfg.fraction = 0.5;
        let (mut sys, test) = build(12, cfg, Partition::Iid, 6);
        let rec = sys.run_round(1, &test);
        assert_eq!(rec.groups_used, 2, "half of 4 groups");
    }

    #[test]
    fn ft_threshold_survives_dropout() {
        let mut cfg = base_cfg(3);
        cfg.threshold = Some(2);
        let (mut sys, test) = build(6, cfg, Partition::Iid, 7);
        sys.run_round(1, &test);
        sys.inject_dropouts(&[(1, DropPhase::AfterShare)]);
        let rec = sys.run_round(2, &test);
        assert_eq!(rec.groups_used, 2, "both groups still aggregate");
        assert!(rec.test_accuracy > 0.0);
    }

    #[test]
    fn n_out_of_n_drops_group_on_dropout() {
        let (mut sys, test) = build(6, base_cfg(3), Partition::Iid, 8);
        sys.inject_dropouts(&[(1, DropPhase::BeforeShare)]);
        let rec = sys.run_round(1, &test);
        assert_eq!(rec.groups_used, 1, "affected group must be skipped");
    }

    #[test]
    fn dp_noise_perturbs_but_preserves_learning_signal() {
        use p2pfl_secagg::dp::GaussianDp;
        let mut cfg = base_cfg(3);
        let (mut clean, test) = build(6, cfg.clone(), Partition::Iid, 11);
        cfg.dp = Some(GaussianDp {
            epsilon: 1.0,
            delta: 1e-5,
            sensitivity: 5.0,
        });
        let (mut noisy, _) = build(6, cfg, Partition::Iid, 11);
        let rc = clean.run_round(1, &test);
        let rn = noisy.run_round(1, &test);
        // Same seed, same data: any difference comes from the mechanism.
        assert_ne!(
            clean.global()[..8].to_vec(),
            noisy.global()[..8].to_vec(),
            "DP must perturb the aggregate"
        );
        // Communication cost is unchanged: noise travels for free.
        assert_eq!(rc.bytes, rn.bytes);
    }

    #[test]
    fn fed_layer_sac_matches_plain_fedavg_result() {
        // The stronger-privacy variant must compute the same weighted mean
        // (SAC over count-scaled inputs, renormalized), just at higher
        // upper-layer cost.
        let mut cfg = base_cfg(3);
        let (mut plain, test) = build(9, cfg.clone(), Partition::Iid, 12);
        cfg.fed_layer_sac = true;
        let (mut strong, _) = build(9, cfg, Partition::Iid, 12);
        let rp = plain.run_round(1, &test);
        let rs = strong.run_round(1, &test);
        let err = plain
            .global()
            .iter()
            .zip(strong.global())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-6, "results diverge by {err}");
        // Cost: the upload leg goes from (m-1) to (m^2-1) model units.
        let w = plain.model_bytes();
        assert_eq!(
            rs.bytes - rp.bytes,
            ((3 * 3 - 1) - (3 - 1)) as u64 * w,
            "fed-layer SAC premium"
        );
        assert_eq!(
            rs.bytes,
            crate::cost::two_layer_units_fed_sac(3, 3) as u64 * w
        );
    }

    #[test]
    fn dropouts_only_apply_to_next_round() {
        let mut cfg = base_cfg(3);
        cfg.threshold = Some(2);
        let (mut sys, test) = build(6, cfg, Partition::Iid, 9);
        sys.inject_dropouts(&[(0, DropPhase::BeforeShare)]);
        sys.run_round(1, &test);
        let rec = sys.run_round(2, &test);
        assert_eq!(rec.groups_used, 2, "dropout schedule must not persist");
    }
}
