//! Closed-form communication-cost model (paper Sec. VII, Eqs. 4, 5, 10).
//!
//! All formulas count transferred *model-sized units* `|w|`; helpers
//! convert to bits/bytes given a parameter count (32-bit wire floats, as
//! in the paper's PyTorch models). The property tests in
//! `crates/core/tests` verify these formulas against the byte ledgers of
//! the executable protocols in `p2pfl-secagg`.

/// Size of one model on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelSize {
    /// Number of scalar parameters.
    pub params: u64,
}

impl ModelSize {
    /// The paper's Fig. 5 CNN (~1.25 M parameters) at its nominal size, as
    /// used by the cost figures.
    pub const PAPER_CNN: ModelSize = ModelSize { params: 1_250_000 };

    /// `|w|` in bits (32 bits per parameter).
    pub fn bits(self) -> f64 {
        self.params as f64 * 32.0
    }

    /// `|w|` in bytes.
    pub fn bytes(self) -> u64 {
        self.params * 4
    }
}

/// Formats a bit count the way the paper's figures do (Gb = 1e9 bits).
pub fn gigabits(bits: f64) -> f64 {
    bits / 1e9
}

/// Splits `n_total` peers into `m` subgroups as evenly as possible
/// (Fig. 13's rule: `N mod m` groups get one extra peer).
pub fn even_groups(n_total: usize, m: usize) -> Vec<usize> {
    assert!(m >= 1 && m <= n_total, "need 1 <= m <= N");
    let base = n_total / m;
    let extra = n_total % m;
    (0..m).map(|i| base + usize::from(i < extra)).collect()
}

// ----------------------------------------------------------------------
// Cost in |w| units
// ----------------------------------------------------------------------

/// Original one-layer SAC (Alg. 2): `2N(N-1)` — both share and subtotal
/// phases are all-to-all (paper Sec. III-B).
pub fn sac_baseline_units(n_total: usize) -> f64 {
    (2 * n_total * (n_total.saturating_sub(1))) as f64
}

/// Eq. 4: two-layer aggregation with n-out-of-n SAC and equal subgroups:
/// `(m n² + m n − 2)`.
pub fn two_layer_units_eq4(m: usize, n: usize) -> f64 {
    (m * n * n + m * n) as f64 - 2.0
}

/// Exact two-layer n-out-of-n cost for (possibly uneven) `groups`:
/// `Σ (n_g² − 1)` for subgroup SAC + `2(m−1)` for FedAvg + `Σ (n_g − 1)`
/// for broadcasting the aggregate back to all peers.
pub fn two_layer_units_exact(groups: &[usize]) -> f64 {
    assert!(!groups.is_empty(), "need at least one subgroup");
    let m = groups.len();
    let sac: usize = groups.iter().map(|&n| n * n - 1).sum();
    let bcast: usize = groups.iter().map(|&n| n - 1).sum();
    (sac + 2 * (m - 1) + bcast) as f64
}

/// Cost of the "SAC in both layers" variant (paper Sec. IV-D's stronger
/// privacy option): the upper layer's `(m-1)` upload leg becomes a
/// leader-collect SAC at `(m²-1)`; the `(m-1)` result-download leg and
/// everything else stay as in Eq. 4.
pub fn two_layer_units_fed_sac(m: usize, n: usize) -> f64 {
    let groups = vec![n; m];
    two_layer_units_exact(&groups) - (m - 1) as f64 + (m * m - 1) as f64
}

/// Eq. 5: two-layer aggregation with k-out-of-n fault-tolerant SAC and
/// equal subgroups (`N = n·m`): `(n² − kn + k)N + km − 2`.
pub fn two_layer_ft_units_eq5(n: usize, k: usize, n_total: usize) -> f64 {
    assert!(n_total.is_multiple_of(n), "Eq. 5 assumes N divisible by n");
    assert!(k >= 1 && k <= n, "threshold out of range");
    let m = n_total / n;
    ((n * n - k * n + k) * n_total + k * m) as f64 - 2.0
}

/// Exact two-layer k-out-of-n cost for uneven `groups`. Each subgroup of
/// size `n_g` uses threshold `min(k, n_g)` (a group smaller than `k`
/// degrades to n-out-of-n): share exchange `n_g(n_g−1)(n_g−k'+1)`,
/// subtotal collection `k'−1`, plus the FedAvg and broadcast terms.
pub fn two_layer_ft_units_exact(groups: &[usize], k: usize) -> f64 {
    assert!(!groups.is_empty(), "need at least one subgroup");
    let m = groups.len();
    let mut total = 0usize;
    for &n in groups {
        let kk = k.min(n).max(1);
        total += n * (n - 1) * (n - kk + 1) + (kk - 1);
    }
    let bcast: usize = groups.iter().map(|&n| n - 1).sum();
    (total + 2 * (m - 1) + bcast) as f64
}

/// Total peers of an `x`-layer tree with degree `n` (paper Eq. 6):
/// `N = Σ_{i=1..x} n(n−1)^{i−1}`.
pub fn multilayer_total_peers(n: usize, layers: usize) -> usize {
    assert!(n >= 2, "tree degree must be at least 2");
    assert!(layers >= 1, "need at least one layer");
    let mut total = 0usize;
    let mut level = n;
    for _ in 0..layers {
        total += level;
        level *= n - 1;
    }
    total
}

/// Eq. 10: total cost of the `x`-layer aggregation with n-out-of-n SAC at
/// every layer: `(N − 1)(n + 2)`.
pub fn multilayer_units_eq10(n: usize, layers: usize) -> f64 {
    let n_total = multilayer_total_peers(n, layers);
    ((n_total - 1) * (n + 2)) as f64
}

// ----------------------------------------------------------------------
// Reports
// ----------------------------------------------------------------------

/// A comparison row as printed in Figs. 13–14.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostRow {
    /// Cost in `|w|` units.
    pub units: f64,
    /// Cost in bits for the given model.
    pub bits: f64,
    /// Ratio of the one-layer SAC baseline to this cost (the paper's
    /// "x-times more efficient").
    pub improvement: f64,
}

/// Builds a comparison row against the one-layer SAC baseline at `n_total`.
pub fn row(units: f64, n_total: usize, model: ModelSize) -> CostRow {
    let baseline = sac_baseline_units(n_total);
    CostRow {
        units,
        bits: units * model.bits(),
        improvement: baseline / units,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_groups_match_fig13_caption() {
        // "N = 30 and m = 4: two groups of eight and two of seven".
        assert_eq!(even_groups(30, 4), vec![8, 8, 7, 7]);
        assert_eq!(even_groups(30, 6), vec![5; 6]);
        assert_eq!(even_groups(10, 3), vec![4, 3, 3]);
    }

    #[test]
    fn eq4_matches_exact_for_equal_groups() {
        for m in 1..8 {
            for n in 1..8 {
                let groups = vec![n; m];
                assert_eq!(
                    two_layer_units_eq4(m, n),
                    two_layer_units_exact(&groups),
                    "m={m} n={n}"
                );
            }
        }
    }

    #[test]
    fn fig13_m6_is_7_12_gigabits_and_one_tenth_of_sac() {
        // Paper Sec. VII-A: "When m = 6, the communication cost is 7.12Gb,
        // ... about one-tenth of that of the one-layer SAC."
        let groups = even_groups(30, 6);
        let units = two_layer_units_exact(&groups);
        let bits = units * ModelSize::PAPER_CNN.bits();
        assert!(
            (gigabits(bits) - 7.12).abs() < 0.01,
            "got {}",
            gigabits(bits)
        );
        let baseline_bits = sac_baseline_units(30) * ModelSize::PAPER_CNN.bits();
        let ratio = baseline_bits / bits;
        assert!((ratio - 9.78).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn fig14_headline_ratios() {
        // Paper Sec. VII-B: 14.75x for (n,k,N)=(3,3,30); 10.36x for
        // (3,2,30); 4.29x for (5,3,30).
        let cases = [
            (3usize, 3usize, 30usize, 14.75),
            (3, 2, 30, 10.36),
            (5, 3, 30, 4.29),
            (3, 3, 20, 8.84), // the paper's N=20 headline
        ];
        for (n, k, nt, expect) in cases {
            let units = if nt % n == 0 {
                two_layer_ft_units_eq5(n, k, nt)
            } else {
                two_layer_ft_units_exact(&even_groups(nt, nt.div_ceil(n)), k)
            };
            let ratio = sac_baseline_units(nt) / units;
            if nt % n == 0 {
                assert!(
                    (ratio - expect).abs() < 0.01,
                    "(n,k,N)=({n},{k},{nt}): got {ratio:.2}, paper {expect}"
                );
            } else {
                // The paper does not specify its uneven-group accounting;
                // require the same ballpark (within 15%).
                assert!(
                    (ratio - expect).abs() / expect < 0.15,
                    "(n,k,N)=({n},{k},{nt}): got {ratio:.2}, paper {expect}"
                );
            }
        }
    }

    #[test]
    fn eq5_reduces_to_eq4_when_k_equals_n() {
        // k = n means one partition per peer; share cost n(n-1)·1 and
        // subtotal n-1 reproduce the n-out-of-n subgroup cost (n²-1).
        for n in 1..8 {
            for m in 1..6 {
                let nt = n * m;
                assert_eq!(
                    two_layer_ft_units_eq5(n, n, nt),
                    two_layer_units_eq4(m, n),
                    "n={n} m={m}"
                );
            }
        }
    }

    #[test]
    fn ft_cost_exceeds_plain_but_beats_baseline() {
        // Redundancy costs more than n-out-of-n but far less than one-layer
        // SAC (the trade-off of Sec. VII-B).
        let plain = two_layer_ft_units_eq5(3, 3, 30);
        let ft = two_layer_ft_units_eq5(3, 2, 30);
        let baseline = sac_baseline_units(30);
        assert!(ft > plain);
        assert!(ft < baseline / 5.0);
    }

    #[test]
    fn multilayer_peer_count_eq6() {
        // X=1: N=n. X=2: n + n(n-1).
        assert_eq!(multilayer_total_peers(3, 1), 3);
        assert_eq!(multilayer_total_peers(3, 2), 3 + 6);
        assert_eq!(multilayer_total_peers(4, 3), 4 + 12 + 36);
    }

    #[test]
    fn eq10_matches_summed_construction() {
        // Rebuild Eq. 10 from its derivation: (n²−1) per aggregation,
        // #aggregations = Σ_{k=1..X−1} n(n−1)^{k−1} + 1, plus (N−1) for
        // distribution.
        for n in 2..6usize {
            for layers in 1..5usize {
                let n_total = multilayer_total_peers(n, layers);
                let mut aggs = 1usize;
                let mut level = n;
                for _ in 0..layers - 1 {
                    aggs += level;
                    level *= n - 1;
                }
                let derived = ((n * n - 1) * aggs + (n_total - 1)) as f64;
                assert_eq!(
                    multilayer_units_eq10(n, layers),
                    derived,
                    "n={n} X={layers}"
                );
            }
        }
    }

    #[test]
    fn model_size_conversions() {
        let m = ModelSize { params: 1_000_000 };
        assert_eq!(m.bits(), 3.2e7);
        assert_eq!(m.bytes(), 4_000_000);
        assert_eq!(gigabits(1e9), 1.0);
    }

    #[test]
    fn report_row_improvement() {
        let r = row(100.0, 30, ModelSize::PAPER_CNN);
        assert!((r.improvement - 17.4).abs() < 1e-9);
    }
}
