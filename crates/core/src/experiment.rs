//! Experiment harnesses for the accuracy/loss figures (Figs. 6–9).
//!
//! The paper trains the Fig. 5 CNN on CIFAR-10 for 1000 rounds; our
//! offline stand-in (see DESIGN.md) trains an MLP on synthetic
//! class-prototype features, which preserves the findings under test:
//! two-layer SAC tracks the one-layer baseline, accuracy orders
//! IID > Non-IID(5%) > Non-IID(0%), and dropping slow subgroups (p = 0.5)
//! costs only a small accuracy delta. The CNN path is available by
//! swapping the model builder.

use crate::system::{RoundRecord, SystemKind, TwoLayerConfig, TwoLayerSystem};
use p2pfl_fed::{Client, LocalTrainConfig};
use p2pfl_ml::data::{
    features_like, mnist_like, partition_dataset, train_test_split, Dataset, Partition,
};
use p2pfl_ml::models::{mlp, small_cnn};
use p2pfl_secagg::ShareScheme;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters shared by the sweep harnesses.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Total number of peers `N`.
    pub n_total: usize,
    /// Training rounds (paper: 1000; default here is smaller for CI).
    pub rounds: usize,
    /// Training samples per peer.
    pub samples_per_peer: usize,
    /// Feature dimension of the synthetic dataset.
    pub feature_dim: usize,
    /// Hidden width of the MLP.
    pub hidden: usize,
    /// Local learning rate.
    pub lr: f32,
    /// Local epochs and batch size per round.
    pub train: LocalTrainConfig,
    /// Base seed.
    pub seed: u64,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            n_total: 10,
            rounds: 150,
            samples_per_peer: 60,
            feature_dim: 32,
            hidden: 24,
            lr: 3e-3,
            train: LocalTrainConfig {
                epochs: 1,
                batch_size: 50,
            },
            seed: 42,
        }
    }
}

/// One labeled curve of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Curve label, e.g. `"n=3 IID"`.
    pub label: String,
    /// Per-round records.
    pub records: Vec<RoundRecord>,
}

/// Builds a ready-to-run system for the given topology and partition.
pub fn build_system(
    spec: &SweepSpec,
    kind: SystemKind,
    subgroup_size: usize,
    fraction: f64,
    partition: Partition,
) -> (TwoLayerSystem, Dataset) {
    let total_train = spec.n_total * spec.samples_per_peer;
    let (train, test) = train_test_split(
        &features_like(spec.feature_dim, total_train + 500, spec.seed),
        total_train,
    );
    let parts = partition_dataset(&train, spec.n_total, partition, spec.seed + 1);
    let mut rng = StdRng::seed_from_u64(spec.seed + 2);
    let dims = [spec.feature_dim, spec.hidden, 10];
    let clients: Vec<Client> = parts
        .into_iter()
        .enumerate()
        .map(|(i, d)| {
            Client::new(
                i,
                mlp(&dims, &mut rng),
                d,
                spec.lr,
                spec.seed + 10 + i as u64,
            )
        })
        .collect();
    let eval = mlp(&dims, &mut rng);
    let cfg = TwoLayerConfig {
        kind,
        subgroup_size,
        threshold: None,
        scheme: ShareScheme::Masked,
        fraction,
        train: spec.train,
        seed: spec.seed + 3,
        dp: None,
        fed_layer_sac: false,
    };
    (TwoLayerSystem::new(clients, eval, cfg), test)
}

/// Figs. 6–7: two-layer SAC with `n ∈ subgroup_sizes` versus the original
/// one-layer SAC baseline (`n = N`), for each data distribution.
pub fn accuracy_sweep(
    spec: &SweepSpec,
    subgroup_sizes: &[usize],
    partitions: &[Partition],
) -> Vec<Series> {
    // Every (n, partition) configuration is an independent training run;
    // fan them out over scoped threads. Each run seeds its own RNGs, so
    // the output is identical to the sequential order.
    let mut configs = Vec::new();
    for &partition in partitions {
        for &n in subgroup_sizes {
            configs.push((n, partition));
        }
    }
    let mut out: Vec<Option<Series>> = (0..configs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for ((n, partition), slot) in configs.iter().copied().zip(out.iter_mut()) {
            scope.spawn(move || {
                let kind = if n >= spec.n_total {
                    SystemKind::OriginalSac
                } else {
                    SystemKind::TwoLayer
                };
                let (mut sys, test) = build_system(spec, kind, n.min(spec.n_total), 1.0, partition);
                let records = sys.run(spec.rounds, &test);
                let label = if kind == SystemKind::OriginalSac {
                    format!("baseline(n=N) {}", partition.label())
                } else {
                    format!("n={n} {}", partition.label())
                };
                *slot = Some(Series { label, records });
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("series computed"))
        .collect()
}

/// Figs. 8–9: two-layer SAC with a fraction `p` of subgroups contributing
/// each round (`N = 20, n = 5` in the paper).
pub fn fraction_sweep(
    spec: &SweepSpec,
    subgroup_size: usize,
    fractions: &[f64],
    partitions: &[Partition],
) -> Vec<Series> {
    let mut configs = Vec::new();
    for &partition in partitions {
        for &p in fractions {
            configs.push((p, partition));
        }
    }
    let mut out: Vec<Option<Series>> = (0..configs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for ((p, partition), slot) in configs.iter().copied().zip(out.iter_mut()) {
            scope.spawn(move || {
                let (mut sys, test) =
                    build_system(spec, SystemKind::TwoLayer, subgroup_size, p, partition);
                let records = sys.run(spec.rounds, &test);
                *slot = Some(Series {
                    label: format!("p={p} {}", partition.label()),
                    records,
                });
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("series computed"))
        .collect()
}

/// The convolutional variant of the sweep: `small_cnn` on MNIST-shaped
/// synthetic images, exercising the full image pipeline (im2col conv,
/// pooling, dropout) through the secure aggregation stack. Orders of
/// magnitude slower per round than the MLP path, so use tens of rounds:
/// the `fig06_cnn` binary defaults to 10.
pub fn cnn_probe(
    n_total: usize,
    subgroup_size: usize,
    partition: Partition,
    rounds: usize,
    samples_per_peer: usize,
    seed: u64,
) -> Series {
    let total_train = n_total * samples_per_peer;
    let (train, test) = train_test_split(&mnist_like(total_train + 200, seed), total_train);
    let parts = partition_dataset(&train, n_total, partition, seed + 1);
    let mut rng = StdRng::seed_from_u64(seed + 2);
    let clients: Vec<Client> = parts
        .into_iter()
        .enumerate()
        .map(|(i, d)| {
            Client::new(
                i,
                small_cnn(&mut rng, seed + 100 + i as u64),
                d,
                1e-3,
                seed + 10 + i as u64,
            )
        })
        .collect();
    let eval = small_cnn(&mut rng, seed + 99);
    let cfg = TwoLayerConfig {
        kind: SystemKind::TwoLayer,
        subgroup_size,
        threshold: None,
        scheme: ShareScheme::Masked,
        fraction: 1.0,
        train: LocalTrainConfig {
            epochs: 1,
            batch_size: 16,
        },
        seed: seed + 3,
        dp: None,
        fed_layer_sac: false,
    };
    let mut sys = TwoLayerSystem::new(clients, eval, cfg);
    let records = sys.run(rounds, &test);
    Series {
        label: format!("cnn n={subgroup_size} {}", partition.label()),
        records,
    }
}

/// Final-accuracy summary of a series, smoothed over the last quarter of
/// the rounds (the paper reports smoothed end-of-training accuracy).
pub fn final_accuracy(s: &Series) -> f64 {
    let n = s.records.len();
    if n == 0 {
        return 0.0;
    }
    let tail = &s.records[n - (n / 4).max(1)..];
    tail.iter().map(|r| r.test_accuracy).sum::<f64>() / tail.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> SweepSpec {
        SweepSpec {
            rounds: 25,
            n_total: 6,
            samples_per_peer: 50,
            ..SweepSpec::default()
        }
    }

    #[test]
    fn sweep_produces_expected_series() {
        let spec = quick_spec();
        let series = accuracy_sweep(&spec, &[3, 6], &[Partition::Iid]);
        assert_eq!(series.len(), 2);
        assert!(series[0].label.starts_with("n=3"));
        assert!(series[1].label.starts_with("baseline"));
        assert_eq!(series[0].records.len(), 25);
    }

    #[test]
    fn two_layer_accuracy_close_to_baseline() {
        let spec = quick_spec();
        let series = accuracy_sweep(&spec, &[3, 6], &[Partition::Iid]);
        let a_two = final_accuracy(&series[0]);
        let a_base = final_accuracy(&series[1]);
        assert!(
            (a_two - a_base).abs() < 0.1,
            "two-layer {a_two:.3} vs baseline {a_base:.3}"
        );
    }

    #[test]
    fn iid_beats_fully_skewed() {
        let spec = quick_spec();
        let series = accuracy_sweep(&spec, &[3], &[Partition::Iid, Partition::NON_IID_0]);
        let iid = final_accuracy(&series[0]);
        let skew = final_accuracy(&series[1]);
        assert!(iid >= skew - 0.02, "IID {iid:.3} vs Non-IID(0%) {skew:.3}");
    }

    #[test]
    fn cnn_probe_learns_through_secure_aggregation() {
        // Small on purpose: unoptimized conv is slow under `cargo test`.
        // Single-round accuracy on a 200-sample test set is noisy, so
        // compare two-round averages at both ends of the run.
        let series = cnn_probe(4, 2, Partition::Iid, 8, 40, 7);
        assert_eq!(series.records.len(), 8);
        let head: f64 = series.records[..2]
            .iter()
            .map(|r| r.test_accuracy)
            .sum::<f64>()
            / 2.0;
        let tail: f64 = series.records[6..]
            .iter()
            .map(|r| r.test_accuracy)
            .sum::<f64>()
            / 2.0;
        assert!(
            tail > head,
            "CNN accuracy {head:.3} -> {tail:.3} through two-layer SAC"
        );
    }

    #[test]
    fn fraction_sweep_runs_and_half_uses_half() {
        let spec = SweepSpec {
            rounds: 5,
            n_total: 12,
            ..quick_spec()
        };
        let series = fraction_sweep(&spec, 3, &[0.5, 1.0], &[Partition::Iid]);
        assert_eq!(series.len(), 2);
        assert!(series[0].records.iter().all(|r| r.groups_used == 2));
        assert!(series[1].records.iter().all(|r| r.groups_used == 4));
    }
}
