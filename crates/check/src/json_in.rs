//! A minimal JSON reader for counterexample replay.
//!
//! The workspace's vendored `serde` shim ships a write-only JSON backend,
//! so this module supplies the few hundred lines needed to read a
//! [`crate::Counterexample`] back. It is a general JSON value parser
//! (objects, arrays, strings, numbers, booleans, null) with the usual
//! escape handling; it does not aim to be a validator of exotic inputs —
//! schedules are machine-written by this crate.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like the writer emits them).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{s}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (strings are valid UTF-8 by
                    // construction of the &str input).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "non-utf8 string")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            out.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": null}, "e": true}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "{} x"] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn roundtrips_writer_output() {
        #[derive(serde::Serialize)]
        struct S {
            name: String,
            vals: Vec<u64>,
        }
        let s = S {
            name: "a \"quoted\" name".into(),
            vals: vec![1, 2, 3],
        };
        let v = Json::parse(&serde::json::to_string(&s)).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("a \"quoted\" name"));
        assert_eq!(v.get("vals").unwrap().as_arr().unwrap().len(), 3);
    }
}
