//! The invariant oracle catalog.
//!
//! Each oracle is a pure function over inspection accessors — it never
//! mutates protocol state — and returns the first [`Violation`] it finds.
//! [`crate::models`] compose these per deployment; DESIGN.md's "Invariant
//! catalog" maps each oracle to the paper claim it guards.

use crate::Violation;
use p2pfl_raft::{Command, RaftNode, Role};
use p2pfl_secagg::replicated::assigned_partitions;
use p2pfl_secagg::{RingSacActor, SacPeerActor, SacPhase, WeightVector};
use p2pfl_simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// Numerical tolerance for mask-cancellation and averaging checks. The
/// masked scheme adds and subtracts uniform masks of bounded magnitude, so
/// float error stays well below this at checker scale.
pub const TOL: f64 = 1e-6;

/// **ElectionSafety** — at most one leader per term within one Raft layer.
pub fn election_safety<'a, C: Command>(
    layer: &str,
    nodes: impl IntoIterator<Item = (NodeId, &'a RaftNode<C>)>,
) -> Result<(), Violation> {
    let mut leader_of_term: BTreeMap<u64, NodeId> = BTreeMap::new();
    for (id, node) in nodes {
        if node.role() != Role::Leader {
            continue;
        }
        if let Some(prev) = leader_of_term.insert(node.term(), id) {
            if prev != id {
                return Err(Violation::new(
                    "ElectionSafety",
                    format!(
                        "{layer}: nodes {prev} and {id} are both leader in term {}",
                        node.term()
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// **LogMatching** — across any two logs of one layer, entries with equal
/// `(index, term)` carry equal commands, and the committed prefixes agree
/// wherever both logs still hold the entry (compacted indices are skipped —
/// the snapshot already passed this check when it was taken).
pub fn log_matching<C>(layer: &str, nodes: &[(NodeId, &RaftNode<C>)]) -> Result<(), Violation>
where
    C: Command + PartialEq + std::fmt::Debug,
{
    for (ai, (a_id, a)) in nodes.iter().enumerate() {
        for (b_id, b) in nodes.iter().skip(ai + 1) {
            let hi = a.log().last_index().min(b.log().last_index());
            let lo = a
                .log()
                .snapshot_index()
                .max(b.log().snapshot_index())
                .saturating_add(1);
            let committed = a.commit_index().min(b.commit_index());
            for idx in lo..=hi {
                let (Some(ea), Some(eb)) = (a.log().get(idx), b.log().get(idx)) else {
                    continue;
                };
                if ea.term == eb.term && ea.cmd != eb.cmd {
                    return Err(Violation::new(
                        "LogMatching",
                        format!(
                            "{layer}: {a_id} and {b_id} disagree on command at index {idx} term {}",
                            ea.term
                        ),
                    ));
                }
                if idx <= committed && (ea.term != eb.term || ea.cmd != eb.cmd) {
                    return Err(Violation::new(
                        "LogMatching",
                        format!(
                            "{layer}: committed entry {idx} differs between {a_id} (term {}) and {b_id} (term {})",
                            ea.term, eb.term
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// **FedConfigReplication** — a peer's live FedAvg-layer config must be
/// exactly what folding the committed `SubCmd::FedConfig` entries of its own
/// subgroup log (newest version wins, ties to the later entry — the apply
/// rule of `hierraft`) over the founding config yields (paper Sec. V-A1).
pub fn fed_config_replication(
    peers: &[(
        NodeId,
        &p2pfl_hierraft::FedConfig,
        &RaftNode<p2pfl_hierraft::SubCmd>,
    )],
) -> Result<(), Violation> {
    use p2pfl_hierraft::SubCmd;
    use p2pfl_raft::LogCmd;
    for (id, live, sub) in peers {
        let mut expected: Option<&p2pfl_hierraft::FedConfig> = None;
        for entry in sub.log().iter() {
            if entry.index > sub.commit_index() {
                break;
            }
            if let LogCmd::App(SubCmd::FedConfig(c)) = &entry.cmd {
                if expected.is_none_or(|e| c.version >= e.version) {
                    expected = Some(c);
                }
            }
        }
        if let Some(exp) = expected {
            if live.version >= exp.version {
                // The peer may be ahead of its own log (it learned a newer
                // config before the entry committed locally); it must never
                // be behind it, and at equal versions must match exactly.
                if live.version == exp.version && **live != *exp {
                    return Err(Violation::new(
                        "FedConfigReplication",
                        format!(
                            "{id}: live fed config v{} differs from committed entry of the same version",
                            live.version
                        ),
                    ));
                }
            } else {
                return Err(Violation::new(
                    "FedConfigReplication",
                    format!(
                        "{id}: live fed config v{} is behind committed v{}",
                        live.version, exp.version
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// One share partition copy seen somewhere in the system — held by a peer
/// or still in flight.
pub struct ShareCopy<'a> {
    /// Contributor position `j` the partition belongs to.
    pub from_pos: usize,
    /// Partition index `p`.
    pub idx: usize,
    /// The partition value.
    pub value: &'a WeightVector,
    /// Where the copy was observed (for violation messages).
    pub site: String,
}

/// Collects every share partition copy held by the given actors for
/// `round`. The caller appends in-flight copies gathered from
/// [`p2pfl_simnet::Sim::pending_deliveries`].
pub fn held_share_copies<'a>(
    actors: impl IntoIterator<Item = (NodeId, &'a SacPeerActor)>,
    round: u64,
) -> Vec<ShareCopy<'a>> {
    let mut out = Vec::new();
    for (id, a) in actors {
        if a.round != round {
            continue;
        }
        for (&j, parts) in a.held_blocks() {
            for (&p, v) in parts {
                out.push(ShareCopy {
                    from_pos: j,
                    idx: p,
                    value: v,
                    site: format!("held by {id}"),
                });
            }
        }
    }
    out
}

/// **SacMaskCancellation** — paper Sec. IV / Alg. 1–2. Two parts:
///
/// 1. *Replica consistency*: every copy of partition `(j, p)` in the system
///    (held or in flight) is identical — replication must duplicate, never
///    re-randomize.
/// 2. *Cancellation*: whenever all `n` partitions of contributor `j`'s model
///    are visible somewhere, they sum back to `j`'s input model — the
///    masks cancel exactly.
pub fn mask_cancellation(
    copies: &[ShareCopy<'_>],
    models: &[&WeightVector],
) -> Result<(), Violation> {
    let mut by_key: BTreeMap<(usize, usize), Vec<&ShareCopy<'_>>> = BTreeMap::new();
    for c in copies {
        by_key.entry((c.from_pos, c.idx)).or_default().push(c);
    }
    for ((j, p), reps) in &by_key {
        for r in &reps[1..] {
            if reps[0].value.linf_distance(r.value) > TOL {
                return Err(Violation::new(
                    "SacMaskCancellation",
                    format!(
                        "replica divergence for partition (j={j}, p={p}): {} vs {}",
                        reps[0].site, r.site
                    ),
                ));
            }
        }
    }
    let n = models.len();
    for (j, model) in models.iter().enumerate() {
        let parts: Vec<&WeightVector> = (0..n)
            .filter_map(|p| by_key.get(&(j, p)).map(|reps| reps[0].value))
            .collect();
        if parts.len() < n {
            continue; // not fully visible yet — nothing to check
        }
        let sum = WeightVector::sum(parts);
        if sum.linf_distance(model) > TOL {
            return Err(Violation::new(
                "SacMaskCancellation",
                format!(
                    "partitions of contributor {j} sum to distance {} from its model",
                    sum.linf_distance(model)
                ),
            ));
        }
    }
    Ok(())
}

/// **KofNReconstructability** — paper Alg. 4. When the leader reports
/// `Done`, the frozen contributor set is a valid subset of positions, the
/// leader holds all `n` partition subtotals, and the published result is
/// the plain mean of the contributors' input models. Also sanity-checks
/// that every contributor's assigned-partition pattern is consistent with
/// the `(n, k)` replication scheme.
pub fn kofn_result<'a>(
    actors: impl IntoIterator<Item = (NodeId, &'a SacPeerActor)>,
    models: &[&WeightVector],
) -> Result<(), Violation> {
    let n = models.len();
    for (id, a) in actors {
        let cfg = a.sac_config();
        if cfg.position != cfg.leader_pos || a.phase != SacPhase::Done {
            continue;
        }
        let Some(result) = a.result.as_ref() else {
            return Err(Violation::new(
                "KofNReconstructability",
                format!("{id}: phase Done with no result"),
            ));
        };
        if a.contributors.is_empty() || a.contributors.iter().any(|&c| c >= n) {
            return Err(Violation::new(
                "KofNReconstructability",
                format!("{id}: bad contributor set {:?}", a.contributors),
            ));
        }
        if a.held_subtotals().len() != n {
            return Err(Violation::new(
                "KofNReconstructability",
                format!(
                    "{id}: Done with {} of {n} partition subtotals",
                    a.held_subtotals().len()
                ),
            ));
        }
        for &j in &a.contributors {
            if assigned_partitions(n, cfg.k, j).is_empty() {
                return Err(Violation::new(
                    "KofNReconstructability",
                    format!("{id}: contributor {j} has an empty partition assignment"),
                ));
            }
        }
        let expected = WeightVector::mean(a.contributors.iter().map(|&c| models[c]));
        if result.linf_distance(&expected) > TOL {
            return Err(Violation::new(
                "KofNReconstructability",
                format!(
                    "{id}: result is distance {} from the mean of contributors {:?}",
                    result.linf_distance(&expected),
                    a.contributors
                ),
            ));
        }
    }
    Ok(())
}

/// Collects every stage-share partition copy held by the given Ring-SAC
/// actors for `round`. The caller appends in-flight copies gathered from
/// [`p2pfl_simnet::Sim::pending_deliveries`].
pub fn ring_held_share_copies<'a>(
    actors: impl IntoIterator<Item = (NodeId, &'a RingSacActor)>,
    round: u64,
) -> Vec<ShareCopy<'a>> {
    let mut out = Vec::new();
    for (id, a) in actors {
        if a.round != round {
            continue;
        }
        for (&j, parts) in a.held_blocks() {
            for (&p, v) in parts {
                out.push(ShareCopy {
                    from_pos: j,
                    idx: p,
                    value: v,
                    site: format!("held by {id}"),
                });
            }
        }
    }
    out
}

/// **SacMaskCancellation**, ported to the ring scheme. Identical contract
/// to [`mask_cancellation`], except contributor `j`'s model is divided into
/// `parts_of[j]` blocks (the size of `j`'s successor stage) rather than a
/// uniform `n`: replicas of any block must be identical, and whenever all
/// of `j`'s blocks are visible somewhere they must sum back to `j`'s model.
pub fn ring_mask_cancellation(
    copies: &[ShareCopy<'_>],
    models: &[&WeightVector],
    parts_of: &[usize],
) -> Result<(), Violation> {
    let mut by_key: BTreeMap<(usize, usize), Vec<&ShareCopy<'_>>> = BTreeMap::new();
    for c in copies {
        by_key.entry((c.from_pos, c.idx)).or_default().push(c);
    }
    for ((j, p), reps) in &by_key {
        for r in &reps[1..] {
            if reps[0].value.linf_distance(r.value) > TOL {
                return Err(Violation::new(
                    "SacMaskCancellation",
                    format!(
                        "ring replica divergence for block (j={j}, p={p}): {} vs {}",
                        reps[0].site, r.site
                    ),
                ));
            }
        }
    }
    for (j, model) in models.iter().enumerate() {
        let m = parts_of[j];
        let parts: Vec<&WeightVector> = (0..m)
            .filter_map(|p| by_key.get(&(j, p)).map(|reps| reps[0].value))
            .collect();
        if parts.len() < m {
            continue; // not fully visible yet — nothing to check
        }
        let sum = WeightVector::sum(parts);
        if sum.linf_distance(model) > TOL {
            return Err(Violation::new(
                "SacMaskCancellation",
                format!(
                    "ring blocks of contributor {j} sum to distance {} from its model",
                    sum.linf_distance(model)
                ),
            ));
        }
    }
    Ok(())
}

/// **KofNReconstructability**, ported to the ring scheme. When the ring
/// leader reports `Done`, the frozen contributor set is a valid subset of
/// positions, the leader holds all `n` `(stage, partition)` totals of the
/// grid, every stage's share assignment is non-degenerate under the
/// per-stage threshold, and the published result is the plain mean of the
/// contributors' input models.
pub fn ring_kofn_result<'a>(
    actors: impl IntoIterator<Item = (NodeId, &'a RingSacActor)>,
    models: &[&WeightVector],
) -> Result<(), Violation> {
    let n = models.len();
    for (id, a) in actors {
        let cfg = a.sac_config();
        if cfg.position != cfg.leader_pos || a.phase != SacPhase::Done {
            continue;
        }
        let Some(result) = a.result.as_ref() else {
            return Err(Violation::new(
                "KofNReconstructability",
                format!("{id}: ring phase Done with no result"),
            ));
        };
        if a.contributors.is_empty() || a.contributors.iter().any(|&c| c >= n) {
            return Err(Violation::new(
                "KofNReconstructability",
                format!("{id}: bad ring contributor set {:?}", a.contributors),
            ));
        }
        let plan = a.plan();
        if a.held_totals().len() != plan.total_partitions() {
            return Err(Violation::new(
                "KofNReconstructability",
                format!(
                    "{id}: ring Done with {} of {} stage totals",
                    a.held_totals().len(),
                    plan.total_partitions()
                ),
            ));
        }
        for t in 0..plan.num_stages() {
            let m = plan.stage_len(t);
            for i in 0..m {
                if plan.assigned(t, i).is_empty() {
                    return Err(Violation::new(
                        "KofNReconstructability",
                        format!("{id}: stage {t} member {i} has an empty block assignment"),
                    ));
                }
            }
        }
        let expected = WeightVector::mean(a.contributors.iter().map(|&c| models[c]));
        if result.linf_distance(&expected) > TOL {
            return Err(Violation::new(
                "KofNReconstructability",
                format!(
                    "{id}: ring result is distance {} from the mean of contributors {:?}",
                    result.linf_distance(&expected),
                    a.contributors
                ),
            ));
        }
    }
    Ok(())
}

/// **RingShareConfinement** — the ring engine's receiver-side privacy
/// invariant (the reviewable core of the `k_m >= 2` stage-threshold
/// floor): no peer may ever be in a position to assemble all `m` additive
/// shares of another contributor's model, counting both the blocks it
/// already holds and in-flight `StageShare` deliveries addressed to it
/// (`(dst, from_pos, idx)` triples). A full share set sums back to the
/// contributor's individual model; any strict subset is
/// information-theoretically independent of it.
pub fn ring_share_confinement<'a>(
    actors: impl IntoIterator<Item = (NodeId, &'a RingSacActor)>,
    in_flight: &[(NodeId, usize, usize)],
    parts_of: &[usize],
) -> Result<(), Violation> {
    let mut pos_of: BTreeMap<NodeId, usize> = BTreeMap::new();
    let mut views: BTreeMap<(NodeId, usize), BTreeSet<usize>> = BTreeMap::new();
    for (id, a) in actors {
        pos_of.insert(id, a.sac_config().position);
        for (&j, parts) in a.held_blocks() {
            views
                .entry((id, j))
                .or_default()
                .extend(parts.keys().copied());
        }
    }
    for &(dst, j, p) in in_flight {
        views.entry((dst, j)).or_default().insert(p);
    }
    for ((dst, j), idxs) in &views {
        let m = parts_of[*j];
        if m >= 2 && pos_of.get(dst).copied() != Some(*j) && idxs.len() >= m {
            return Err(Violation::new(
                "RingShareConfinement",
                format!("{dst} can assemble all {m} shares of contributor {j}"),
            ));
        }
    }
    Ok(())
}

/// **StageAnonymity** — no peer (leader or follower) may adopt a frozen
/// contributor set that isolates a single contributor in a ring stage:
/// that stage's totals sum to the lone peer's individual model, shrinking
/// the anonymity set from "contributors" to "contributors per stage".
/// Single-stage plans are exempt — there the stage sum is the published
/// round aggregate, the same disclosure the pairwise engine makes.
pub fn ring_stage_anonymity<'a>(
    actors: impl IntoIterator<Item = (NodeId, &'a RingSacActor)>,
) -> Result<(), Violation> {
    for (id, a) in actors {
        if let Some(frozen) = a.frozen_set() {
            if let Some(t) = a.plan().lone_contributor_stage(|p| frozen.contains(&p)) {
                return Err(Violation::new(
                    "StageAnonymity",
                    format!("{id}: frozen set {frozen:?} isolates stage {t} to one contributor"),
                ));
            }
        }
    }
    Ok(())
}

/// **EngineAgreement** — no round may mix aggregation engines *or*
/// combining rules. Both selectors travel inside the replicated
/// [`p2pfl_hierraft::FedConfig`], which advances atomically under the
/// version max-advance rule, so any two peers whose live configs are at
/// the same version must agree on the engine and the robust combiner
/// (paper Sec. V-A1 extended with the two selectors).
pub fn engine_agreement(peers: &[(NodeId, &p2pfl_hierraft::FedConfig)]) -> Result<(), Violation> {
    type Choice = (
        NodeId,
        p2pfl_secagg::SacEngine,
        p2pfl_hierraft::RobustCombiner,
    );
    let mut choice_of_version: BTreeMap<u64, Choice> = BTreeMap::new();
    for (id, cfg) in peers {
        match choice_of_version.get(&cfg.version) {
            Some(&(prev, engine, _)) if engine != cfg.engine => {
                return Err(Violation::new(
                    "EngineAgreement",
                    format!(
                        "config v{}: {prev} runs {engine:?} but {id} runs {:?}",
                        cfg.version, cfg.engine
                    ),
                ));
            }
            Some(&(prev, _, combiner)) if combiner != cfg.combiner => {
                return Err(Violation::new(
                    "EngineAgreement",
                    format!(
                        "config v{}: {prev} combines with {combiner:?} but {id} with {:?}",
                        cfg.version, cfg.combiner
                    ),
                ));
            }
            Some(_) => {}
            None => {
                choice_of_version.insert(cfg.version, (*id, cfg.engine, cfg.combiner));
            }
        }
    }
    Ok(())
}

/// **RoundTermination** — a *supervised* round (one with a configured
/// round deadline) must terminate. Once the system is quiescent — no
/// deliveries or timers pending, so nothing can ever change state again —
/// a leader that started a round must sit in `Done` or `Failed`, never
/// mid-round: the supervisor's abort/retry machinery must convert every
/// dead end into one of the two terminal verdicts.
pub fn round_termination<'a>(
    quiescent: bool,
    actors: impl IntoIterator<Item = (NodeId, &'a SacPeerActor)>,
) -> Result<(), Violation> {
    if !quiescent {
        return Ok(());
    }
    for (id, a) in actors {
        let cfg = a.sac_config();
        if cfg.round_deadline.is_none() || cfg.position != cfg.leader_pos || a.round == 0 {
            continue;
        }
        if !matches!(a.phase, SacPhase::Done | SacPhase::Failed(_)) {
            return Err(Violation::new(
                "RoundTermination",
                format!(
                    "{id}: quiescent with round {} still open in phase {:?}",
                    a.round, a.phase
                ),
            ));
        }
    }
    Ok(())
}

/// **DegradedLiveness** — sub-threshold degradation is sound:
///
/// * a leader that finished `Done` holds a well-formed degraded config —
///   roster size `n' >= 2`, `k = min(k0, n')`, and at least `k`
///   contributors — whether or not aborts happened on the way;
/// * a leader may report `Failed` only after at least one abort: the
///   supervisor never gives up on a round it did not first try to salvage.
pub fn degraded_liveness<'a>(
    k0: usize,
    actors: impl IntoIterator<Item = (NodeId, &'a SacPeerActor)>,
) -> Result<(), Violation> {
    for (id, a) in actors {
        let cfg = a.sac_config();
        if cfg.round_deadline.is_none() || cfg.position != cfg.leader_pos {
            continue;
        }
        match &a.phase {
            SacPhase::Done => {
                let n = cfg.group.len();
                if n < 2 {
                    return Err(Violation::new(
                        "DegradedLiveness",
                        format!("{id}: Done with a degenerate roster of {n}"),
                    ));
                }
                if cfg.k != k0.min(n) {
                    return Err(Violation::new(
                        "DegradedLiveness",
                        format!("{id}: Done with k = {} instead of min({k0}, {n})", cfg.k),
                    ));
                }
                if a.contributors.len() < cfg.k {
                    return Err(Violation::new(
                        "DegradedLiveness",
                        format!(
                            "{id}: Done with {} contributors, below threshold {}",
                            a.contributors.len(),
                            cfg.k
                        ),
                    ));
                }
            }
            SacPhase::Failed(reason) if a.aborts == 0 => {
                return Err(Violation::new(
                    "DegradedLiveness",
                    format!("{id}: failed without ever aborting ({reason})"),
                ));
            }
            _ => {}
        }
    }
    Ok(())
}

/// **ByzantineBoundedInfluence** — the Byzantine-robustness claim for one
/// SAC subgroup with a known malicious subset:
///
/// 1. *Conviction is effective*: a position whose share block failed its
///    hash commitment never appears in the frozen contributor set.
/// 2. *Influence is bounded*: every coordinate of the leader's published
///    result lies inside the honest contributors' per-coordinate envelope
///    `[min, max]` (the convexity bound `B` — an adversary that escaped
///    detection still cannot drag the aggregate outside the honest hull).
pub fn byzantine_bounded_influence<'a>(
    actors: impl IntoIterator<Item = (NodeId, &'a SacPeerActor)>,
    models: &[&WeightVector],
    byzantine: &BTreeSet<usize>,
) -> Result<(), Violation> {
    for (id, a) in actors {
        let cfg = a.sac_config();
        if cfg.position != cfg.leader_pos || a.phase != SacPhase::Done {
            continue;
        }
        if let Some(&b) = a
            .contributors
            .iter()
            .find(|b| a.byzantine_detected.contains(b))
        {
            return Err(Violation::new(
                "ByzantineBoundedInfluence",
                format!("{id}: position {b} contributed after failing its commitment check"),
            ));
        }
        let Some(result) = a.result.as_ref() else {
            continue; // kofn_result reports the missing result
        };
        let honest: Vec<&WeightVector> = a
            .contributors
            .iter()
            .filter(|c| !byzantine.contains(c))
            .map(|&c| models[c])
            .collect();
        if honest.is_empty() {
            continue;
        }
        for d in 0..result.dim() {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for m in &honest {
                lo = lo.min(m.as_slice()[d]);
                hi = hi.max(m.as_slice()[d]);
            }
            let x = result.as_slice()[d];
            if x < lo - TOL || x > hi + TOL {
                return Err(Violation::new(
                    "ByzantineBoundedInfluence",
                    format!(
                        "{id}: result coordinate {d} = {x} escapes the honest envelope \
                         [{lo}, {hi}] (contributors {:?})",
                        a.contributors
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// **EquivocationDetection** — soundness of the config-echo witness
/// protocol with a known malicious subset:
///
/// 1. *No false convictions*: every peer a node holds in its Byzantine set
///    really is in the deployment's malicious subset — an honest peer is
///    never convicted, no matter the interleaving (Raft keeps honest
///    peers' applied configs identical per version, so only a fabricated
///    echo can conflict).
/// 2. *Detection convicts*: a node that counted a conflicting echo has
///    convicted at least one peer.
pub fn equivocation_detection<'a>(
    actors: impl IntoIterator<Item = (NodeId, &'a p2pfl_hierraft::HierActor)>,
    byzantine: &BTreeSet<NodeId>,
) -> Result<(), Violation> {
    for (id, a) in actors {
        if let Some(p) = a.byzantine_peers.iter().find(|p| !byzantine.contains(p)) {
            return Err(Violation::new(
                "EquivocationDetection",
                format!("{id}: convicted honest peer {p} as Byzantine"),
            ));
        }
        if a.equivocations_detected > 0 && a.byzantine_peers.is_empty() {
            return Err(Violation::new(
                "EquivocationDetection",
                format!(
                    "{id}: observed {} conflicting echoes but convicted no one",
                    a.equivocations_detected
                ),
            ));
        }
    }
    Ok(())
}

/// **StorageRoundTrip** — wraps a `verify_storage_roundtrip` result
/// (restoring the node from its persist stream must yield a bisimilar
/// node) into a [`Violation`].
pub fn storage_roundtrip(node: NodeId, result: Result<(), String>) -> Result<(), Violation> {
    result.map_err(|e| Violation::new("StorageRoundTrip", format!("{node}: {e}")))
}

/// **TopologyConvergence** — the elastic layout safety claims, checkable
/// on *every* reachable state (not just quiescent ones):
///
/// 1. *Agreement*: two peers that adopted the same layout version hold the
///    identical layout — topologies replicate through the FedAvg log, so
///    a version names exactly one layout.
/// 2. *Partition*: within any adopted layout, no peer lives in two
///    subgroups.
/// 3. *Convergence*: from the freshest adopted layout, iterating the
///    deterministic planner (`plan` → `apply` each command) reaches a
///    [`p2pfl_hierraft::Topology::converged`] fixpoint within a bounded
///    number of passes, never loses or invents a member along the way, and
///    only an empty plan may coexist with a non-converged layout when
///    there is genuinely nothing to do (single runt group).
pub fn topology_convergence<'a>(
    peers: impl IntoIterator<Item = (NodeId, &'a p2pfl_hierraft::Topology)>,
    bounds: p2pfl_hierraft::ElasticBounds,
) -> Result<(), Violation> {
    let peers: Vec<_> = peers.into_iter().collect();
    let mut by_version: BTreeMap<u64, (NodeId, &p2pfl_hierraft::Topology)> = BTreeMap::new();
    for &(id, t) in &peers {
        if let Some(&(prev, seen)) = by_version.get(&t.version) {
            if seen != t {
                return Err(Violation::new(
                    "TopologyConvergence",
                    format!(
                        "{prev} and {id} adopted different layouts at version {}",
                        t.version
                    ),
                ));
            }
        } else {
            by_version.insert(t.version, (id, t));
        }
        for g in &t.groups {
            for &m in &g.members {
                let homes = t.groups.iter().filter(|h| h.members.contains(&m)).count();
                if homes != 1 {
                    return Err(Violation::new(
                        "TopologyConvergence",
                        format!("{id} v{}: peer {m} lives in {homes} subgroups", t.version),
                    ));
                }
            }
        }
    }
    let Some((&_, &(id, freshest))) = by_version.iter().next_back() else {
        return Ok(());
    };
    let mut t = freshest.clone();
    let members = t.all_members();
    // Each pass retires or repairs at least one out-of-band group, so the
    // fixpoint must arrive within one pass per group plus slack for the
    // groups a pass itself mints.
    let budget = 2 * t.groups.len() + members.len() + 4;
    for _ in 0..budget {
        if t.converged(bounds) {
            return Ok(());
        }
        let cmds = t.plan(bounds);
        if cmds.is_empty() {
            return Err(Violation::new(
                "TopologyConvergence",
                format!("{id} v{}: not converged but the planner is idle", t.version),
            ));
        }
        for cmd in &cmds {
            if let Err(e) = t.apply(cmd) {
                return Err(Violation::new(
                    "TopologyConvergence",
                    format!(
                        "{id} v{}: planner command {cmd:?} rejected: {e:?}",
                        t.version
                    ),
                ));
            }
        }
        if t.all_members() != members {
            return Err(Violation::new(
                "TopologyConvergence",
                format!("{id} v{}: rebalancing changed the membership", t.version),
            ));
        }
    }
    Err(Violation::new(
        "TopologyConvergence",
        format!(
            "{id} v{}: planner failed to converge within {budget} passes",
            freshest.version
        ),
    ))
}

/// **NoMaskReuseAcrossRekey** — every roster transition a peer adopts
/// derives a mask-domain key it has never used before, and the recorded
/// history matches the transition counter (a transition that skipped its
/// key derivation would silently reuse the previous mask stream).
pub fn no_mask_reuse_across_rekey<'a>(
    actors: impl IntoIterator<Item = (NodeId, &'a p2pfl_hierraft::HierActor)>,
) -> Result<(), Violation> {
    for (id, a) in actors {
        if a.rekey_history.len() as u64 != a.rekeys {
            return Err(Violation::new(
                "NoMaskReuseAcrossRekey",
                format!(
                    "{id}: {} re-keys but {} recorded mask domains",
                    a.rekeys,
                    a.rekey_history.len()
                ),
            ));
        }
        let mut seen = BTreeSet::new();
        for &k in &a.rekey_history {
            if !seen.insert(k) {
                return Err(Violation::new(
                    "NoMaskReuseAcrossRekey",
                    format!("{id}: mask domain {k:#x} reused across re-keys"),
                ));
            }
        }
    }
    Ok(())
}
