//! A 6-peer, k=2 Ring-SAC subgroup running one round.
//!
//! Six peers split into two stages of three (`RingPlan::new(6, 2)` gives
//! stages `[3, 3]` with per-stage threshold `k_m = 2`: each member holds
//! two of its predecessor stage's three partitions, never a full share
//! set). The leader (position 0) kicks the round off in [`Model::init`];
//! the explorer then owns every delivery and timer ordering. The ring
//! ports of the mask-cancellation and k-of-n oracles see both held and
//! in-flight stage shares, so re-randomized replicas and skewed shares
//! are caught even before blocks land; the share-confinement and
//! stage-anonymity oracles check the same joint view for the two ways the
//! staged layout could disclose an individual model (a receiver
//! assembling a full share set; a frozen set isolating one contributor in
//! a stage).

use crate::oracles::{self, ShareCopy};
use crate::{Model, Violation};
use p2pfl_secagg::{RingMsg, RingSacActor, SacConfig, SacEngine, ShareScheme, WeightVector};
use p2pfl_simnet::{NodeId, Sim, SimDuration};
use std::hash::{Hash, Hasher};

const N: usize = 6;
const K: usize = 2;
const SEED: u64 = 0x5ac2;

/// See module docs.
#[derive(Clone, Copy)]
pub struct RingSacModel;

impl RingSacModel {
    fn ids() -> Vec<NodeId> {
        (0..N as u32).map(NodeId).collect()
    }

    /// Deterministic per-peer input models.
    fn peer_model(pos: usize) -> WeightVector {
        let b = (pos + 1) as f64;
        WeightVector::new(vec![b, -2.0 * b, 0.5 * b])
    }
}

impl Model for RingSacModel {
    type Msg = RingMsg;

    fn name(&self) -> &'static str {
        "ringsac"
    }

    fn build(&self) -> Sim<Self::Msg> {
        let mut sim = Sim::new(SEED);
        let group = Self::ids();
        for pos in 0..N {
            let cfg = SacConfig {
                group: group.clone(),
                position: pos,
                leader_pos: 0,
                k: K,
                scheme: ShareScheme::Masked,
                engine: SacEngine::Ring,
                share_deadline: SimDuration::from_millis(80),
                collect_deadline: SimDuration::from_millis(80),
                round_deadline: None,
                seed: SEED ^ (pos as u64 * 0x9e37_79b9),
            };
            sim.add_node(RingSacActor::new(cfg, Self::peer_model(pos)));
        }
        sim
    }

    fn init(&self, sim: &mut Sim<Self::Msg>) {
        sim.exec::<RingSacActor, _, _>(NodeId(0), |a, ctx| a.start_round(ctx, 1));
    }

    fn fingerprint(&self, sim: &mut Sim<Self::Msg>) -> u64 {
        let mut h = super::hasher();
        for id in Self::ids() {
            let a = sim.actor::<RingSacActor>(id);
            a.round.hash(&mut h);
            format!("{:?}", a.phase).hash(&mut h);
            a.result.as_ref().map(WeightVector::digest).hash(&mut h);
            a.contributors.hash(&mut h);
            a.recoveries.hash(&mut h);
            for (j, parts) in a.held_blocks() {
                for (p, v) in parts {
                    (j, p, v.digest()).hash(&mut h);
                }
            }
            format!("{:?}", a.frozen_set()).hash(&mut h);
            for ((t, p), v) in a.held_totals() {
                (t, p, v.digest()).hash(&mut h);
            }
        }
        h.finish()
    }

    fn check(&self, sim: &mut Sim<Self::Msg>) -> Result<(), Violation> {
        let ids = Self::ids();
        let sim = &*sim;
        let actors: Vec<(NodeId, &RingSacActor)> = ids
            .iter()
            .map(|&id| (id, sim.actor::<RingSacActor>(id)))
            .collect();
        let round = actors.iter().map(|(_, a)| a.round).max().unwrap_or(0);
        let mut copies = oracles::ring_held_share_copies(actors.iter().copied(), round);
        let mut in_flight: Vec<(NodeId, usize, usize)> = Vec::new();
        for (src, dst, msg) in sim.pending_deliveries() {
            if let RingMsg::StageShare {
                round: r,
                from_pos,
                parts,
            } = msg
            {
                if *r != round {
                    continue;
                }
                for (p, v) in parts {
                    copies.push(ShareCopy {
                        from_pos: *from_pos,
                        idx: *p,
                        value: v,
                        site: format!("in flight {src}->{dst}"),
                    });
                    in_flight.push((dst, *from_pos, *p));
                }
            }
        }
        let models: Vec<&WeightVector> = actors.iter().map(|(_, a)| a.model()).collect();
        let plan = actors[0].1.plan();
        let parts_of: Vec<usize> = (0..N).map(|pos| plan.parts_of(pos)).collect();
        oracles::ring_mask_cancellation(&copies, &models, &parts_of)?;
        oracles::ring_share_confinement(actors.iter().copied(), &in_flight, &parts_of)?;
        oracles::ring_stage_anonymity(actors.iter().copied())?;
        oracles::ring_kofn_result(actors.iter().copied(), &models)
    }
}
