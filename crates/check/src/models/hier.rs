//! A two-subgroup × three-peer two-layer deployment (the ISSUE's CI
//! topology): six `HierActor`s over `MemStorage`, founding FedAvg members
//! node 0 and node 3.
//!
//! The interesting interleavings are subgroup elections racing the
//! FedAvg-layer election and the periodic `FedConfig` commits, so the
//! oracles cover both layers plus the cross-layer replication claim.

use super::{hash_raft_node, hasher};
use crate::{oracles, Model, Violation};
use p2pfl_hierraft::{FedCmd, HierActor, HierMsg, HierPeerConfig, RobustCombiner, SubCmd};
use p2pfl_raft::MemStorage;
use p2pfl_secagg::SacEngine;
use p2pfl_simnet::{NodeId, Sim, SimDuration};
use std::hash::{Hash, Hasher};

const GROUPS: usize = 2;
const SIZE: usize = 3;
const SEED: u64 = 0x21e7;

/// See module docs.
#[derive(Clone, Copy)]
pub struct HierModel;

impl HierModel {
    fn subgroups() -> Vec<Vec<NodeId>> {
        (0..GROUPS)
            .map(|g| (0..SIZE).map(|i| NodeId((g * SIZE + i) as u32)).collect())
            .collect()
    }

    fn ids() -> Vec<NodeId> {
        (0..(GROUPS * SIZE) as u32).map(NodeId).collect()
    }

    fn founding() -> Vec<NodeId> {
        (0..GROUPS).map(|g| NodeId((g * SIZE) as u32)).collect()
    }

    fn cfg(id: NodeId, subgroups: &[Vec<NodeId>]) -> HierPeerConfig {
        let gi = (id.0 as usize) / SIZE;
        HierPeerConfig {
            id,
            subgroup: subgroups[gi].clone(),
            subgroup_index: gi,
            founding_fed: Self::founding(),
            t: SimDuration::from_millis(300),
            heartbeat: SimDuration::from_millis(60),
            config_commit_interval: SimDuration::from_millis(200),
            join_poll_interval: SimDuration::from_millis(100),
            probe_interval: SimDuration::from_millis(60),
            suspect_after: SimDuration::from_millis(300),
            dead_after: SimDuration::from_millis(900),
            engine: SacEngine::Pairwise,
            combiner: RobustCombiner::FedAvg,
            seed: SEED ^ (0x9e37 + id.0 as u64 * 0x85eb_ca6b),
            elastic: None,
        }
    }
}

impl Model for HierModel {
    type Msg = HierMsg;

    fn name(&self) -> &'static str {
        "hier"
    }

    fn build(&self) -> Sim<Self::Msg> {
        let mut sim = Sim::new(SEED);
        let subgroups = Self::subgroups();
        for id in Self::ids() {
            sim.add_node(HierActor::with_storage(
                Self::cfg(id, &subgroups),
                Box::new(MemStorage::<SubCmd>::new()),
                Box::new(MemStorage::<FedCmd>::new()),
            ));
        }
        sim
    }

    fn fingerprint(&self, sim: &mut Sim<Self::Msg>) -> u64 {
        let mut h = hasher();
        for id in Self::ids() {
            let a = sim.actor::<HierActor>(id);
            hash_raft_node(a.sub_raft(), &mut h);
            match a.fed_raft() {
                Some(fed) => {
                    true.hash(&mut h);
                    hash_raft_node(fed, &mut h);
                }
                None => false.hash(&mut h),
            }
            a.fed_config.version.hash(&mut h);
            for m in &a.fed_config.current {
                m.0.hash(&mut h);
            }
        }
        h.finish()
    }

    fn check(&self, sim: &mut Sim<Self::Msg>) -> Result<(), Violation> {
        let ids = Self::ids();
        for (gi, group) in Self::subgroups().iter().enumerate() {
            let layer = format!("sub{gi}");
            let nodes: Vec<_> = group
                .iter()
                .map(|&id| (id, sim.actor::<HierActor>(id).sub_raft()))
                .collect();
            oracles::election_safety(&layer, nodes.iter().map(|&(id, n)| (id, n)))?;
            oracles::log_matching(&layer, &nodes)?;
        }
        {
            let fed: Vec<_> = ids
                .iter()
                .filter_map(|&id| sim.actor::<HierActor>(id).fed_raft().map(|n| (id, n)))
                .collect();
            oracles::election_safety("fed", fed.iter().map(|&(id, n)| (id, n)))?;
            oracles::log_matching("fed", &fed)?;
        }
        let peers: Vec<_> = ids
            .iter()
            .map(|&id| {
                let a = sim.actor::<HierActor>(id);
                (id, &a.fed_config, a.sub_raft())
            })
            .collect();
        oracles::fed_config_replication(&peers)?;
        let configs: Vec<_> = peers.iter().map(|&(id, cfg, _)| (id, cfg)).collect();
        oracles::engine_agreement(&configs)?;
        // All peers honest: the echo protocol must never convict anyone.
        let actors: Vec<_> = ids
            .iter()
            .map(|&id| (id, sim.actor::<HierActor>(id)))
            .collect();
        oracles::equivocation_detection(
            actors.iter().copied(),
            &std::collections::BTreeSet::new(),
        )?;
        for id in ids {
            let rt = sim.actor_mut::<HierActor>(id).verify_storage_roundtrip();
            oracles::storage_roundtrip(id, rt)?;
        }
        Ok(())
    }
}
