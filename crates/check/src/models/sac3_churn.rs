//! A 3-peer, k = n = 3 *supervised* SAC subgroup with a mid-round follower
//! crash: the round cannot complete with the full roster, so the leader's
//! round deadline must abort it and restart with the two survivors
//! (`k' = min(3, 2) = 2`).
//!
//! The crash is a pending event like any delivery, so the explorer owns
//! its placement relative to share and subtotal traffic. Beyond the mask
//! and reconstruction oracles shared with `sac3`, this model gates the two
//! supervision invariants: **RoundTermination** (a quiescent system never
//! strands an open supervised round) and **DegradedLiveness** (a `Done`
//! after degradation carries a sane `n'`/`k'`/contributor set, and a
//! `Failed` is only ever issued after an abort was tried).

use crate::oracles::{self, ShareCopy};
use crate::{Model, Violation};
use p2pfl_secagg::{SacConfig, SacEngine, SacMsg, SacPeerActor, ShareScheme, WeightVector};
use p2pfl_simnet::{NodeId, Sim, SimDuration, SimTime};
use std::hash::{Hash, Hasher};

const N: usize = 3;
/// n-of-n: every partition has exactly one holder, so losing any member
/// makes the round unrecoverable and forces the supervisor to act.
const K: usize = 3;
const SEED: u64 = 0x5ac2;

/// See module docs.
#[derive(Clone, Copy)]
pub struct SacChurnModel;

impl SacChurnModel {
    fn ids() -> Vec<NodeId> {
        (0..N as u32).map(NodeId).collect()
    }

    /// Deterministic per-peer input models, keyed by node id (stable
    /// across roster reconfigurations).
    fn peer_model(id: NodeId) -> WeightVector {
        let b = (id.0 + 1) as f64;
        WeightVector::new(vec![b, -2.0 * b, 0.5 * b])
    }
}

impl Model for SacChurnModel {
    type Msg = SacMsg;

    fn name(&self) -> &'static str {
        "sacchurn"
    }

    fn build(&self) -> Sim<Self::Msg> {
        let mut sim = Sim::new(SEED);
        let group = Self::ids();
        for pos in 0..N {
            let cfg = SacConfig {
                group: group.clone(),
                position: pos,
                leader_pos: 0,
                k: K,
                scheme: ShareScheme::Masked,
                engine: SacEngine::Pairwise,
                share_deadline: SimDuration::from_millis(80),
                collect_deadline: SimDuration::from_millis(80),
                // > share + 2 * collect, so phase deadlines get their
                // chance before the supervisor pulls the plug.
                round_deadline: Some(SimDuration::from_millis(400)),
                seed: SEED ^ (pos as u64 * 0x9e37_79b9),
            };
            sim.add_node(SacPeerActor::new(cfg, Self::peer_model(group[pos])));
        }
        sim
    }

    fn init(&self, sim: &mut Sim<Self::Msg>) {
        sim.exec::<SacPeerActor, _, _>(NodeId(0), |a, ctx| a.start_round(ctx, 1));
        // Before any 15 ms share delivery lands; the explorer still owns
        // the ordering of the crash against everything else in flight.
        sim.schedule_crash(NodeId(2), SimTime::from_millis(5));
    }

    fn fingerprint(&self, sim: &mut Sim<Self::Msg>) -> u64 {
        let mut h = super::hasher();
        for id in Self::ids() {
            sim.is_crashed(id).hash(&mut h);
            let a = sim.actor::<SacPeerActor>(id);
            a.round.hash(&mut h);
            format!("{:?}", a.phase).hash(&mut h);
            a.result.as_ref().map(WeightVector::digest).hash(&mut h);
            a.contributors.hash(&mut h);
            a.recoveries.hash(&mut h);
            a.aborts.hash(&mut h);
            a.abandoned.hash(&mut h);
            let cfg = a.sac_config();
            cfg.group
                .iter()
                .map(|n| n.0)
                .collect::<Vec<_>>()
                .hash(&mut h);
            cfg.k.hash(&mut h);
            cfg.position.hash(&mut h);
            for (j, parts) in a.held_blocks() {
                for (p, v) in parts {
                    (j, p, v.digest()).hash(&mut h);
                }
            }
            format!("{:?}", a.frozen_set()).hash(&mut h);
            for (p, v) in a.held_subtotals() {
                (p, v.digest()).hash(&mut h);
            }
        }
        h.finish()
    }

    fn check(&self, sim: &mut Sim<Self::Msg>) -> Result<(), Violation> {
        let ids = Self::ids();
        let quiescent = sim.pending_events().is_empty();
        let sim = &*sim;
        let actors: Vec<(NodeId, &SacPeerActor)> = ids
            .iter()
            .map(|&id| (id, sim.actor::<SacPeerActor>(id)))
            .collect();
        oracles::round_termination(quiescent, actors.iter().copied())?;
        oracles::degraded_liveness(K, actors.iter().copied())?;
        // Mask and reconstruction checks run against the *current* roster:
        // the leader's group for the newest round in the system (positions
        // in share traffic are roster-relative after a reconfiguration).
        let round = actors.iter().map(|(_, a)| a.round).max().unwrap_or(0);
        let leader = sim.actor::<SacPeerActor>(NodeId(0));
        let roster: Vec<NodeId> = if leader.round == round {
            leader.sac_config().group.clone()
        } else {
            ids.clone()
        };
        let mut copies = oracles::held_share_copies(
            actors
                .iter()
                .copied()
                .filter(|(_, a)| a.sac_config().group == roster),
            round,
        );
        for (src, dst, msg) in sim.pending_deliveries() {
            if let SacMsg::ShareBlock {
                round: r,
                from_pos,
                parts,
            } = msg
            {
                if *r != round {
                    continue;
                }
                for (p, v) in parts {
                    copies.push(ShareCopy {
                        from_pos: *from_pos,
                        idx: *p,
                        value: v,
                        site: format!("in flight {src}->{dst}"),
                    });
                }
            }
        }
        let models: Vec<WeightVector> = roster.iter().map(|&m| Self::peer_model(m)).collect();
        let model_refs: Vec<&WeightVector> = models.iter().collect();
        oracles::mask_cancellation(&copies, &model_refs)?;
        oracles::kofn_result(
            actors
                .iter()
                .copied()
                .filter(|(_, a)| a.sac_config().group == roster),
            &model_refs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pfl_secagg::SacPhase;

    /// The natural (timestamp-ordered) execution: the crash beats every
    /// share delivery, the supervisor aborts round 1 and completes round 2
    /// with the two survivors.
    #[test]
    fn natural_execution_degrades_and_terminates() {
        let m = SacChurnModel;
        let mut sim = m.build();
        m.init(&mut sim);
        sim.run_until_quiet(100_000);
        m.check(&mut sim).expect("oracles clean at quiescence");
        let leader = sim.actor::<SacPeerActor>(NodeId(0));
        assert_eq!(leader.phase, SacPhase::Done);
        assert_eq!(leader.aborts, 1);
        assert_eq!(leader.round, 2);
        assert_eq!(leader.sac_config().group, vec![NodeId(0), NodeId(1)]);
        assert_eq!(leader.sac_config().k, 2);
        assert_eq!(leader.contributors, vec![0, 1]);
    }

    #[test]
    fn bounded_exploration_is_clean() {
        let ex = crate::Explorer::new(
            SacChurnModel,
            crate::ExploreConfig {
                max_depth: 5,
                max_states: 4_000,
                max_branch: 3,
                enable_drops: false,
                enable_dups: false,
                fault_choice_limit: 2,
            },
        );
        let report = ex.explore();
        assert!(report.counterexample.is_none(), "{report:?}");
        assert!(report.states_visited > 50);
    }

    /// Deep random walks reach quiescence, arming RoundTermination.
    #[test]
    fn random_walks_reach_clean_quiescence() {
        let ex = crate::Explorer::new(
            SacChurnModel,
            crate::ExploreConfig {
                max_depth: 150,
                max_states: u64::MAX,
                max_branch: 4,
                enable_drops: false,
                enable_dups: false,
                fault_choice_limit: 0,
            },
        );
        let report = ex.random_walk(30, 0xdeb);
        assert!(report.counterexample.is_none(), "{report:?}");
    }
}
