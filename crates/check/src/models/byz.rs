//! Byzantine checker models: small deployments with 1-of-n *malicious*
//! (not crashed) peers, exercising the two Byzantine oracles.
//!
//! [`ByzModel`] is a 4-peer, k=2 SAC subgroup in which position 2 runs the
//! commit-then-skew attack (`byz_share_skew`): it publishes honest hash
//! commitments, then scales every share block it sends. The
//! `ByzantineBoundedInfluence` oracle must hold on every reachable state —
//! the skewer never lands in a frozen contributor set, and the published
//! result never escapes the honest contributors' envelope.
//!
//! [`ByzEquivModel`] is one 3-peer subgroup of `HierActor`s in which peer 2
//! equivocates on its config echoes (conflicting digests to different
//! peers). The `EquivocationDetection` oracle must hold on every reachable
//! state: only peer 2 is ever convicted, and any counted conflict convicts.

use super::{hash_raft_node, hasher};
use crate::{oracles, Model, Violation};
use p2pfl_hierraft::{FedCmd, HierActor, HierMsg, HierPeerConfig, RobustCombiner, SubCmd};
use p2pfl_raft::MemStorage;
use p2pfl_secagg::{SacConfig, SacEngine, SacMsg, SacPeerActor, ShareScheme, WeightVector};
use p2pfl_simnet::{NodeId, Sim, SimDuration};
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

const N: usize = 4;
const K: usize = 2;
const BYZ_POS: usize = 2;
const SKEW: f64 = 4.0;
const SEED: u64 = 0xb42;

/// See module docs.
#[derive(Clone, Copy)]
pub struct ByzModel;

impl ByzModel {
    fn ids() -> Vec<NodeId> {
        (0..N as u32).map(NodeId).collect()
    }

    /// Deterministic per-peer input models.
    fn peer_model(pos: usize) -> WeightVector {
        let b = (pos + 1) as f64;
        WeightVector::new(vec![b, -2.0 * b, 0.5 * b])
    }
}

impl Model for ByzModel {
    type Msg = SacMsg;

    fn name(&self) -> &'static str {
        "byz"
    }

    fn build(&self) -> Sim<Self::Msg> {
        let mut sim = Sim::new(SEED);
        let group = Self::ids();
        for pos in 0..N {
            let cfg = SacConfig {
                group: group.clone(),
                position: pos,
                leader_pos: 0,
                k: K,
                scheme: ShareScheme::Masked,
                engine: SacEngine::Pairwise,
                share_deadline: SimDuration::from_millis(80),
                collect_deadline: SimDuration::from_millis(80),
                round_deadline: None,
                seed: SEED ^ (pos as u64 * 0x9e37_79b9),
            };
            sim.add_node(SacPeerActor::new(cfg, Self::peer_model(pos)));
        }
        sim.actor_mut::<SacPeerActor>(NodeId(BYZ_POS as u32))
            .byz_share_skew = Some(SKEW);
        sim
    }

    fn init(&self, sim: &mut Sim<Self::Msg>) {
        sim.exec::<SacPeerActor, _, _>(NodeId(0), |a, ctx| a.start_round(ctx, 1));
    }

    fn fingerprint(&self, sim: &mut Sim<Self::Msg>) -> u64 {
        let mut h = hasher();
        for id in Self::ids() {
            let a = sim.actor::<SacPeerActor>(id);
            a.round.hash(&mut h);
            format!("{:?}", a.phase).hash(&mut h);
            a.result.as_ref().map(WeightVector::digest).hash(&mut h);
            a.contributors.hash(&mut h);
            a.shares_rejected.hash(&mut h);
            a.byzantine_detected.hash(&mut h);
            for (j, parts) in a.held_blocks() {
                for (p, v) in parts {
                    (j, p, v.digest()).hash(&mut h);
                }
            }
            format!("{:?}", a.frozen_set()).hash(&mut h);
            for (p, v) in a.held_subtotals() {
                (p, v.digest()).hash(&mut h);
            }
        }
        h.finish()
    }

    fn check(&self, sim: &mut Sim<Self::Msg>) -> Result<(), Violation> {
        let sim = &*sim;
        let actors: Vec<(NodeId, &SacPeerActor)> = Self::ids()
            .iter()
            .map(|&id| (id, sim.actor::<SacPeerActor>(id)))
            .collect();
        // The honest inputs; position 2's *intended* contribution. The
        // mask-cancellation oracle is deliberately not run here — the
        // attacker's shares do not sum to any model, which is exactly the
        // point.
        let models: Vec<&WeightVector> = actors.iter().map(|(_, a)| a.model()).collect();
        let byzantine: BTreeSet<usize> = [BYZ_POS].into_iter().collect();
        oracles::byzantine_bounded_influence(actors.iter().copied(), &models, &byzantine)
    }
}

const EQUIV_SIZE: usize = 3;
const EQUIV_BYZ: u32 = 2;
const EQUIV_SEED: u64 = 0xeb42;

/// See module docs.
#[derive(Clone, Copy)]
pub struct ByzEquivModel;

impl ByzEquivModel {
    fn ids() -> Vec<NodeId> {
        (0..EQUIV_SIZE as u32).map(NodeId).collect()
    }

    fn cfg(id: NodeId) -> HierPeerConfig {
        HierPeerConfig {
            id,
            subgroup: Self::ids(),
            subgroup_index: 0,
            founding_fed: vec![NodeId(0)],
            t: SimDuration::from_millis(300),
            heartbeat: SimDuration::from_millis(60),
            config_commit_interval: SimDuration::from_millis(200),
            join_poll_interval: SimDuration::from_millis(100),
            probe_interval: SimDuration::from_millis(60),
            suspect_after: SimDuration::from_millis(300),
            dead_after: SimDuration::from_millis(900),
            engine: SacEngine::Pairwise,
            combiner: RobustCombiner::TrimmedMean,
            seed: EQUIV_SEED ^ (0x9e37 + id.0 as u64 * 0x85eb_ca6b),
            elastic: None,
        }
    }
}

impl Model for ByzEquivModel {
    type Msg = HierMsg;

    fn name(&self) -> &'static str {
        "byzequiv"
    }

    fn build(&self) -> Sim<Self::Msg> {
        let mut sim = Sim::new(EQUIV_SEED);
        for id in Self::ids() {
            sim.add_node(HierActor::with_storage(
                Self::cfg(id),
                Box::new(MemStorage::<SubCmd>::new()),
                Box::new(MemStorage::<FedCmd>::new()),
            ));
        }
        sim.actor_mut::<HierActor>(NodeId(EQUIV_BYZ)).byz_equivocate = true;
        sim
    }

    fn fingerprint(&self, sim: &mut Sim<Self::Msg>) -> u64 {
        let mut h = hasher();
        for id in Self::ids() {
            let a = sim.actor::<HierActor>(id);
            hash_raft_node(a.sub_raft(), &mut h);
            a.fed_config.version.hash(&mut h);
            a.equivocations_detected.hash(&mut h);
            for p in &a.byzantine_peers {
                p.0.hash(&mut h);
            }
            for m in a.live_sub_members() {
                m.0.hash(&mut h);
            }
        }
        h.finish()
    }

    fn check(&self, sim: &mut Sim<Self::Msg>) -> Result<(), Violation> {
        let ids = Self::ids();
        let nodes: Vec<_> = ids
            .iter()
            .map(|&id| (id, sim.actor::<HierActor>(id).sub_raft()))
            .collect();
        oracles::election_safety("sub0", nodes.iter().map(|&(id, n)| (id, n)))?;
        oracles::log_matching("sub0", &nodes)?;
        let byzantine: BTreeSet<NodeId> = [NodeId(EQUIV_BYZ)].into_iter().collect();
        let actors: Vec<(NodeId, &HierActor)> = ids
            .iter()
            .map(|&id| (id, sim.actor::<HierActor>(id)))
            .collect();
        oracles::equivocation_detection(actors.iter().copied(), &byzantine)
    }
}
