//! A bare 3-node single-layer Raft cluster over `MemStorage`.
//!
//! Pre-vote is disabled here (unlike the paper configuration) so that
//! vote-handling faults — like the `DoubleVote` mutant — are reachable
//! within a small depth bound: with pre-vote on, a double vote needs two
//! full pre-vote rounds to line up first.

use super::{hash_raft_node, hasher};
use crate::{oracles, Model, Violation};
use p2pfl_raft::{MemStorage, NullStateMachine, RaftActor, RaftConfig, RaftMsg};
use p2pfl_simnet::{NodeId, Sim, SimDuration};
use std::hash::Hasher;

type Cmd = u64;
type Actor = RaftActor<Cmd, NullStateMachine>;

const N: u32 = 3;
const SEED: u64 = 0xc0ffee;

/// See module docs.
#[derive(Clone, Copy)]
pub struct Raft3Model;

impl Raft3Model {
    fn ids() -> Vec<NodeId> {
        (0..N).map(NodeId).collect()
    }
}

impl Model for Raft3Model {
    type Msg = RaftMsg<Cmd>;

    fn name(&self) -> &'static str {
        "raft3"
    }

    fn build(&self) -> Sim<Self::Msg> {
        let mut sim = Sim::new(SEED);
        let ids = Self::ids();
        for &id in &ids {
            let mut cfg = RaftConfig::paper(
                id,
                ids.clone(),
                SimDuration::from_millis(100),
                SEED + id.0 as u64,
            );
            cfg.pre_vote = false;
            sim.add_node(Actor::with_storage(
                cfg,
                NullStateMachine,
                Box::new(MemStorage::<Cmd>::new()),
            ));
        }
        sim
    }

    fn fingerprint(&self, sim: &mut Sim<Self::Msg>) -> u64 {
        let mut h = hasher();
        for id in Self::ids() {
            hash_raft_node(sim.actor::<Actor>(id).raft(), &mut h);
        }
        h.finish()
    }

    fn check(&self, sim: &mut Sim<Self::Msg>) -> Result<(), Violation> {
        let ids = Self::ids();
        let nodes: Vec<_> = ids
            .iter()
            .map(|&id| (id, sim.actor::<Actor>(id).raft()))
            .collect();
        oracles::election_safety("raft3", nodes.iter().map(|&(id, n)| (id, n)))?;
        oracles::log_matching("raft3", &nodes)?;
        for id in ids {
            let rt = sim.actor_mut::<Actor>(id).verify_storage_roundtrip();
            oracles::storage_roundtrip(id, rt)?;
        }
        Ok(())
    }
}
