//! Elastic-topology checker model: six `HierActor`s in an asymmetric
//! layout — subgroup {0,1,2,3} and subgroup {4,5} — with elastic bounds,
//! stabilized deterministically and then handed a split, a merge, and a
//! departure to commit. The exploration starts with all three transitions
//! in flight, so the explorer drives every interleaving of their
//! replication and adoption traffic (fed-log entries, `TopologySync`
//! pushes, re-keyed subgroup elections) mid-round.
//!
//! The oracles cover both Raft layers plus the two elastic claims:
//! `TopologyConvergence` (layout agreement, partition, planner progress)
//! and `NoMaskReuseAcrossRekey` (every adopted roster transition derives a
//! fresh mask domain).

use super::{hash_raft_node, hasher};
use crate::{oracles, Model, Violation};
use p2pfl_hierraft::{
    ElasticBounds, ElasticPeerConfig, FedCmd, HierActor, HierMsg, HierPeerConfig, RobustCombiner,
    SubCmd, TopologyCmd,
};
use p2pfl_raft::{MemStorage, Role};
use p2pfl_secagg::SacEngine;
use p2pfl_simnet::{NodeId, Sim, SimDuration};
use std::hash::{Hash, Hasher};

const SEED: u64 = 0xe1a5;

/// See module docs.
#[derive(Clone, Copy)]
pub struct ElasticModel;

impl ElasticModel {
    fn bounds() -> ElasticBounds {
        ElasticBounds::new(2, 4)
    }

    fn subgroups() -> Vec<Vec<NodeId>> {
        vec![
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            vec![NodeId(4), NodeId(5)],
        ]
    }

    fn ids() -> Vec<NodeId> {
        (0..6).map(NodeId).collect()
    }

    fn cfg(id: NodeId, subgroups: &[Vec<NodeId>]) -> HierPeerConfig {
        let gi = subgroups
            .iter()
            .position(|g| g.contains(&id))
            .expect("every peer starts placed");
        HierPeerConfig {
            id,
            subgroup: subgroups[gi].clone(),
            subgroup_index: gi,
            founding_fed: vec![NodeId(0), NodeId(4)],
            t: SimDuration::from_millis(300),
            heartbeat: SimDuration::from_millis(60),
            config_commit_interval: SimDuration::from_millis(200),
            join_poll_interval: SimDuration::from_millis(100),
            probe_interval: SimDuration::from_millis(60),
            suspect_after: SimDuration::from_millis(300),
            dead_after: SimDuration::from_millis(900),
            engine: SacEngine::Pairwise,
            combiner: RobustCombiner::FedAvg,
            seed: SEED ^ (0x9e37 + id.0 as u64 * 0x85eb_ca6b),
            elastic: Some(ElasticPeerConfig {
                bounds: Self::bounds(),
                initial_groups: subgroups.to_vec(),
            }),
        }
    }
}

impl Model for ElasticModel {
    type Msg = HierMsg;

    fn name(&self) -> &'static str {
        "elastic"
    }

    fn build(&self) -> Sim<Self::Msg> {
        let mut sim = Sim::new(SEED);
        let subgroups = Self::subgroups();
        for id in Self::ids() {
            sim.add_node(HierActor::with_storage(
                Self::cfg(id, &subgroups),
                Box::new(MemStorage::<SubCmd>::new()),
                Box::new(MemStorage::<FedCmd>::new()),
            ));
        }
        sim
    }

    fn init(&self, sim: &mut Sim<Self::Msg>) {
        // Stabilize both layers deterministically, then inject the
        // transition commands. The exploration proper starts here, with
        // the transitions' replication traffic in flight:
        //   Split 0 -> {0,1} (gid 2) + {2,3} (gid 3)
        //   Merge gid 2 into gid 1 -> {0,1,4,5}
        //   Depart 5 -> {0,1,4}
        // Every intermediate layout stays repairable, which is exactly
        // what the TopologyConvergence oracle proves on each state.
        sim.run_for(SimDuration::from_secs(8));
        let fl = Self::ids().into_iter().find(|&id| {
            sim.actor::<HierActor>(id)
                .fed_raft()
                .is_some_and(|n| n.role() == Role::Leader)
        });
        if let Some(fl) = fl {
            let g0 = Self::subgroups()[0].clone();
            sim.exec::<HierActor, _, _>(fl, |a, ctx| {
                let _ = a.propose_topology(
                    ctx,
                    TopologyCmd::Split {
                        gid: 0,
                        left: g0[..2].to_vec(),
                        right: g0[2..].to_vec(),
                    },
                );
                let _ = a.propose_topology(ctx, TopologyCmd::Merge { into: 1, from: 2 });
                let _ = a.propose_topology(ctx, TopologyCmd::Depart { peer: NodeId(5) });
            });
        }
    }

    fn fingerprint(&self, sim: &mut Sim<Self::Msg>) -> u64 {
        let mut h = hasher();
        for id in Self::ids() {
            let a = sim.actor::<HierActor>(id);
            hash_raft_node(a.sub_raft(), &mut h);
            match a.fed_raft() {
                Some(fed) => {
                    true.hash(&mut h);
                    hash_raft_node(fed, &mut h);
                }
                None => false.hash(&mut h),
            }
            a.topology.version.hash(&mut h);
            for g in &a.topology.groups {
                g.gid.hash(&mut h);
                for m in &g.members {
                    m.0.hash(&mut h);
                }
            }
            a.rekeys.hash(&mut h);
            a.splits.hash(&mut h);
            a.merges.hash(&mut h);
        }
        h.finish()
    }

    fn check(&self, sim: &mut Sim<Self::Msg>) -> Result<(), Violation> {
        let ids = Self::ids();
        // Subgroup-layer safety per *adopted* roster: transitions re-seat
        // the subgroup Raft, so peers are grouped by the roster they
        // currently believe in, not the static layout.
        let mut rosters: Vec<Vec<NodeId>> = Vec::new();
        for &id in &ids {
            let roster = sim.actor::<HierActor>(id).subgroup().to_vec();
            if !rosters.contains(&roster) {
                rosters.push(roster);
            }
        }
        for roster in &rosters {
            let layer = format!("sub{:?}", roster.iter().map(|m| m.0).collect::<Vec<_>>());
            let nodes: Vec<_> = roster
                .iter()
                .filter(|&&id| sim.actor::<HierActor>(id).subgroup() == &roster[..])
                .map(|&id| (id, sim.actor::<HierActor>(id).sub_raft()))
                .collect();
            oracles::election_safety(&layer, nodes.iter().map(|&(id, n)| (id, n)))?;
            oracles::log_matching(&layer, &nodes)?;
        }
        {
            let fed: Vec<_> = ids
                .iter()
                .filter_map(|&id| sim.actor::<HierActor>(id).fed_raft().map(|n| (id, n)))
                .collect();
            oracles::election_safety("fed", fed.iter().map(|&(id, n)| (id, n)))?;
            oracles::log_matching("fed", &fed)?;
        }
        let topologies: Vec<_> = ids
            .iter()
            .map(|&id| (id, &sim.actor::<HierActor>(id).topology))
            .collect();
        oracles::topology_convergence(topologies.iter().copied(), Self::bounds())?;
        let actors: Vec<_> = ids
            .iter()
            .map(|&id| (id, sim.actor::<HierActor>(id)))
            .collect();
        oracles::no_mask_reuse_across_rekey(actors.iter().copied())
    }
}
