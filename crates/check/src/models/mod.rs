//! The model catalog: small, fixed deployments of the real protocol actors
//! wired for bounded exploration.
//!
//! Each model builds its simulation with fixed seeds (determinism is what
//! makes replay-based exploration sound), canonicalizes actor state into a
//! fingerprint, and composes the [`crate::oracles`] into one `check`.

mod byz;
mod elastic;
mod hier;
mod raft3;
mod ringsac;
mod sac3;
mod sac3_churn;

pub use byz::{ByzEquivModel, ByzModel};
pub use elastic::ElasticModel;
pub use hier::HierModel;
pub use raft3::Raft3Model;
pub use ringsac::RingSacModel;
pub use sac3::Sac3Model;
pub use sac3_churn::SacChurnModel;

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Hashes one node's Raft-visible state (role, term, vote, commit index,
/// leader hint, live log entries, snapshot bound) into `h`. Absolute time
/// is deliberately excluded — states differing only in virtual clock are
/// equivalent for the explorer.
pub(crate) fn hash_raft_node<C, H: Hasher>(node: &p2pfl_raft::RaftNode<C>, h: &mut H)
where
    C: p2pfl_raft::Command + std::fmt::Debug,
{
    format!("{:?}", node.role()).hash(h);
    node.term().hash(h);
    node.voted_for().map(|n| n.0).hash(h);
    node.commit_index().hash(h);
    node.leader_hint().map(|n| n.0).hash(h);
    node.log().snapshot_index().hash(h);
    node.log().snapshot_term().hash(h);
    for e in node.log().iter() {
        e.index.hash(h);
        e.term.hash(h);
        format!("{:?}", e.cmd).hash(h);
    }
    for id in node.cluster() {
        id.0.hash(h);
    }
}

/// A fresh `DefaultHasher` — the single hash implementation used for all
/// model fingerprints.
pub(crate) fn hasher() -> DefaultHasher {
    DefaultHasher::new()
}
