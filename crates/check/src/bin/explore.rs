//! Bounded-exhaustive exploration driver.
//!
//! ```text
//! explore [--model raft3|sac3|sacchurn|ringsac|hier|elastic|byz|byzequiv|all] [--depth N] [--branch N]
//!         [--states N] [--walks N] [--seed N] [--drops] [--dups] [--ci]
//! ```
//!
//! Explores each selected model to its bounds, prints coverage statistics,
//! and — on an invariant violation — writes the shrunk counterexample to
//! `target/check/cx-<model>.json` and exits nonzero. `--ci` selects the
//! acceptance-criteria configuration: all three models, with the `hier`
//! model being the 2-subgroup × 3-peer topology, exhausted to the depth
//! bound. `--walks N` adds a random-walk pass beyond the exhaustive depth.

#![forbid(unsafe_code)]

use p2pfl_check::models::{
    ByzEquivModel, ByzModel, ElasticModel, HierModel, Raft3Model, RingSacModel, Sac3Model,
    SacChurnModel,
};
use p2pfl_check::{ExploreConfig, ExploreReport, Explorer, Model};
use std::time::Instant;

struct Opts {
    model: String,
    cfg: ExploreConfig,
    walks: u64,
    seed: u64,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        model: "all".to_owned(),
        cfg: ExploreConfig::default(),
        walks: 0,
        seed: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |what: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{what} needs a numeric argument"))
        };
        match a.as_str() {
            "--model" => opts.model = args.next().expect("--model needs an argument"),
            "--depth" => opts.cfg.max_depth = num("--depth") as usize,
            "--branch" => opts.cfg.max_branch = num("--branch") as usize,
            "--states" => opts.cfg.max_states = num("--states"),
            "--walks" => opts.walks = num("--walks"),
            "--seed" => opts.seed = num("--seed"),
            "--drops" => opts.cfg.enable_drops = true,
            "--dups" => opts.cfg.enable_dups = true,
            "--ci" => {
                opts.model = "all".to_owned();
                opts.cfg = ExploreConfig {
                    max_depth: 6,
                    max_states: 60_000,
                    max_branch: 4,
                    enable_drops: false,
                    enable_dups: false,
                    fault_choice_limit: 2,
                };
                opts.walks = 200;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Explores one model; returns `false` if an invariant was violated.
/// `walk_depth_mult` scales the random-walk depth beyond the exhaustive
/// bound — the supervised-churn model needs walks long enough to reach
/// quiescence, where its RoundTermination oracle arms.
fn run_one<M: Model + Copy>(model: M, opts: &Opts, walk_depth_mult: usize) -> bool {
    let name = model.name();
    let ex = Explorer::new(model, opts.cfg);
    let t0 = Instant::now();
    let mut report = ex.explore();
    if report.counterexample.is_none() && opts.walks > 0 {
        let mut deep = opts.cfg;
        deep.max_depth = opts.cfg.max_depth * walk_depth_mult;
        deep.enable_drops = true;
        deep.enable_dups = true;
        let walk = Explorer::new(*ex.model(), deep);
        let wr = walk.random_walk(opts.walks, opts.seed);
        report.replays += wr.replays;
        report.states_visited += wr.states_visited;
        report.deepest = report.deepest.max(wr.deepest);
        report.counterexample = wr.counterexample;
    }
    summarize(name, &report, t0.elapsed().as_secs_f64(), opts)
}

fn summarize(name: &str, report: &ExploreReport, secs: f64, opts: &Opts) -> bool {
    println!(
        "{name}: {} states visited, {} replays, deepest {}, exhausted={}, {:.2}s \
         (depth {}, branch {})",
        report.states_visited,
        report.replays,
        report.deepest,
        report.exhausted,
        secs,
        opts.cfg.max_depth,
        opts.cfg.max_branch,
    );
    match &report.counterexample {
        None => true,
        Some(cx) => {
            let dir = std::path::Path::new("target/check");
            let _ = std::fs::create_dir_all(dir);
            let path = dir.join(format!("cx-{name}.json"));
            let _ = std::fs::write(&path, cx.to_json());
            eprintln!(
                "{name}: VIOLATION of {} — {} ({} steps, written to {})",
                cx.oracle,
                cx.detail,
                cx.steps.len(),
                path.display()
            );
            for (i, s) in cx.steps.iter().enumerate() {
                eprintln!("  step {i}: [{}] mode={} {}", s.index, s.mode, s.label);
            }
            false
        }
    }
}

fn main() {
    let opts = parse_opts();
    let mut ok = true;
    let selected = |m: &str| opts.model == "all" || opts.model == m;
    if selected("raft3") {
        ok &= run_one(Raft3Model, &opts, 4);
    }
    if selected("sac3") {
        ok &= run_one(Sac3Model, &opts, 4);
    }
    if selected("sacchurn") {
        ok &= run_one(SacChurnModel, &opts, 25);
    }
    if selected("ringsac") {
        ok &= run_one(RingSacModel, &opts, 4);
    }
    if selected("hier") {
        ok &= run_one(HierModel, &opts, 4);
    }
    if selected("elastic") {
        ok &= run_one(ElasticModel, &opts, 4);
    }
    if selected("byz") {
        ok &= run_one(ByzModel, &opts, 4);
    }
    if selected("byzequiv") {
        ok &= run_one(ByzEquivModel, &opts, 4);
    }
    if ![
        "all", "raft3", "sac3", "sacchurn", "ringsac", "hier", "elastic", "byz", "byzequiv",
    ]
    .contains(&opts.model.as_str())
    {
        eprintln!("unknown model '{}'", opts.model);
        std::process::exit(2);
    }
    std::process::exit(if ok { 0 } else { 1 });
}
