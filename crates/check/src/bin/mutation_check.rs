//! Mutation self-check: proves the invariant oracles have teeth.
//!
//! Built with `--features mutants`, this binary activates each deliberately
//! broken protocol variant in turn, re-runs the explorer, and asserts the
//! oracles catch it. Each caught mutant yields a shrunk counterexample that
//! is written to `target/check/mutant-<name>.json`, parsed back, and
//! re-replayed to confirm the artifact reproduces the violation on its own.
//!
//! Exit codes: 0 = every mutant caught; 1 = some mutant survived;
//! 2 = built without the `mutants` feature (nothing to do).

#![forbid(unsafe_code)]

#[cfg(not(feature = "mutants"))]
fn main() {
    eprintln!("mutation_check requires `--features mutants` (cargo run -p p2pfl-check --features mutants --bin mutation_check)");
    std::process::exit(2);
}

#[cfg(feature = "mutants")]
fn main() {
    mutants::main();
}

#[cfg(feature = "mutants")]
mod mutants {
    use p2pfl_check::models::{Raft3Model, Sac3Model};
    use p2pfl_check::{Counterexample, ExploreConfig, Explorer, Model};
    use std::time::Instant;

    /// One seeded fault: how to switch it on/off and the bounds that make
    /// it reachable.
    struct Mutant {
        name: &'static str,
        expect_oracle: &'static str,
        arm: fn(),
        disarm: fn(),
        cfg: ExploreConfig,
    }

    fn catalog() -> Vec<Mutant> {
        use p2pfl_raft::mutants as rm;
        use p2pfl_secagg::mutants as sm;
        vec![
            Mutant {
                // Votes twice in one term: classic ElectionSafety break.
                name: "raft-double-vote",
                expect_oracle: "ElectionSafety",
                arm: || rm::set(rm::Mutant::DoubleVote),
                disarm: rm::clear,
                cfg: ExploreConfig {
                    max_depth: 7,
                    max_states: 120_000,
                    max_branch: 5,
                    enable_drops: true,
                    enable_dups: false,
                    fault_choice_limit: 2,
                },
            },
            Mutant {
                // Election bumps the live term without persisting it.
                name: "raft-skip-persist",
                expect_oracle: "StorageRoundTrip",
                arm: || rm::set(rm::Mutant::SkipPersist),
                disarm: rm::clear,
                cfg: ExploreConfig {
                    max_depth: 3,
                    max_states: 20_000,
                    max_branch: 4,
                    enable_drops: false,
                    enable_dups: false,
                    fault_choice_limit: 0,
                },
            },
            Mutant {
                // A duplicated Begin re-randomizes the shares instead of
                // being idempotent: replicas of one partition diverge.
                name: "sac-begin-rerandomize",
                expect_oracle: "SacMaskCancellation",
                arm: || sm::set(sm::Mutant::BeginRerandomize),
                disarm: sm::clear,
                cfg: ExploreConfig {
                    max_depth: 4,
                    max_states: 40_000,
                    max_branch: 5,
                    enable_drops: false,
                    enable_dups: true,
                    fault_choice_limit: 4,
                },
            },
            Mutant {
                // Halves partition 0 of every share block: the masks no
                // longer cancel against the contributor's model.
                name: "sac-share-skew",
                expect_oracle: "SacMaskCancellation",
                arm: || sm::set(sm::Mutant::ShareSkew),
                disarm: sm::clear,
                cfg: ExploreConfig {
                    max_depth: 2,
                    max_states: 10_000,
                    max_branch: 4,
                    enable_drops: false,
                    enable_dups: false,
                    fault_choice_limit: 0,
                },
            },
        ]
    }

    /// Runs exploration (DFS, then a random-walk fallback at 4× depth) and
    /// returns the counterexample if the mutant was caught.
    fn hunt<M: Model + Copy>(model: M, cfg: ExploreConfig) -> Option<Counterexample> {
        let ex = Explorer::new(model, cfg);
        if let Some(cx) = ex.explore().counterexample {
            return Some(cx);
        }
        let mut deep = cfg;
        deep.max_depth = cfg.max_depth * 4;
        deep.enable_drops = true;
        deep.enable_dups = true;
        Explorer::new(model, deep)
            .random_walk(400, 7)
            .counterexample
    }

    /// Writes the counterexample JSON, parses it back, and re-replays it
    /// (with the mutant still armed) to confirm the artifact stands alone.
    fn confirm_replay<M: Model + Copy>(model: M, cfg: ExploreConfig, cx: &Counterexample) -> bool {
        let dir = std::path::Path::new("target/check");
        let _ = std::fs::create_dir_all(dir);
        let path = dir.join(format!("mutant-{}.json", cx.model));
        if std::fs::write(&path, cx.to_json()).is_err() {
            eprintln!("  warning: could not write {}", path.display());
        }
        let parsed = match Counterexample::from_json(&cx.to_json()) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("  counterexample does not parse back: {e}");
                return false;
            }
        };
        // Replay may need the deeper fault config the random walk used.
        let mut deep = cfg;
        deep.max_depth = deep.max_depth * 4 + 1;
        deep.max_branch = deep.max_branch.max(8);
        let (_, vio) = Explorer::new(model, deep).replay(&parsed.choices());
        match vio {
            Some((v, _)) => {
                if v.oracle == cx.oracle {
                    true
                } else {
                    eprintln!(
                        "  replay violated {} instead of recorded {}",
                        v.oracle, cx.oracle
                    );
                    true // still a caught violation; oracle drift is informational
                }
            }
            None => {
                eprintln!("  replay of the written counterexample found no violation");
                false
            }
        }
    }

    pub fn main() {
        let mut failures = 0u32;
        for m in catalog() {
            let t0 = Instant::now();
            (m.arm)();
            let raft = m.name.starts_with("raft");
            let caught = if raft {
                hunt(Raft3Model, m.cfg)
            } else {
                hunt(Sac3Model, m.cfg)
            };
            let ok = match &caught {
                Some(cx) => {
                    let replay_ok = if raft {
                        confirm_replay(Raft3Model, m.cfg, cx)
                    } else {
                        confirm_replay(Sac3Model, m.cfg, cx)
                    };
                    if cx.oracle != m.expect_oracle {
                        println!(
                            "  note: {} tripped {} (expected {})",
                            m.name, cx.oracle, m.expect_oracle
                        );
                    }
                    replay_ok
                }
                None => false,
            };
            (m.disarm)();
            match (&caught, ok) {
                (Some(cx), true) => println!(
                    "CAUGHT {} by {} in {} steps ({:.2}s): {}",
                    m.name,
                    cx.oracle,
                    cx.steps.len(),
                    t0.elapsed().as_secs_f64(),
                    cx.detail
                ),
                _ => {
                    eprintln!(
                        "MISSED {} ({:.2}s) — oracles failed to detect the mutant",
                        m.name,
                        t0.elapsed().as_secs_f64()
                    );
                    failures += 1;
                }
            }
        }
        if failures > 0 {
            eprintln!("{failures} mutant(s) survived");
            std::process::exit(1);
        }
        println!("all mutants caught");
    }
}
