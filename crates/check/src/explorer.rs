//! The bounded schedule explorer: stateless-replay DFS with a visited set,
//! an optional random-walk mode, and delta-debugging shrinking.
//!
//! `Sim` is not cloneable (actors are boxed trait objects), so the
//! explorer is *replay-based*: an execution is identified by its schedule
//! (a [`Choice`] sequence) and reconstructed from scratch on every visit —
//! cheap at model-checking scale because the models are tiny and the
//! simulator allocates nothing heavyweight. Determinism of the simulator
//! makes replays exact.

use crate::schedule::{Choice, Counterexample};
use p2pfl_simnet::{Payload, PendingEvent, PendingKind, Sim, StepMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// An invariant violation reported by a [`Model::check`].
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Name of the violated oracle (e.g. `"ElectionSafety"`).
    pub oracle: String,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl Violation {
    /// Convenience constructor.
    pub fn new(oracle: &str, detail: impl Into<String>) -> Self {
        Violation {
            oracle: oracle.to_owned(),
            detail: detail.into(),
        }
    }
}

/// A small deployment under test: how to build it, canonicalize its state,
/// and check its invariants.
pub trait Model {
    /// The wire message type of the deployment.
    type Msg: Payload + serde::Serialize;

    /// Stable name, recorded in counterexamples.
    fn name(&self) -> &'static str;

    /// Builds a fresh simulation. Must be deterministic: two calls must
    /// yield identical simulations (fixed seeds).
    fn build(&self) -> Sim<Self::Msg>;

    /// Runs once after every node's `on_start` (e.g. a leader kicking off
    /// a round). Default: nothing.
    fn init(&self, _sim: &mut Sim<Self::Msg>) {}

    /// Canonical fingerprint of all actor state, *excluding* absolute
    /// virtual time. The explorer combines it with
    /// [`Sim::queue_digest`] to key its visited set.
    fn fingerprint(&self, sim: &mut Sim<Self::Msg>) -> u64;

    /// Checks every invariant oracle against the current global state.
    fn check(&self, sim: &mut Sim<Self::Msg>) -> Result<(), Violation>;
}

/// Exploration bounds and fault toggles.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Maximum schedule length (exploration depth) after the start prelude.
    pub max_depth: usize,
    /// Stop after this many distinct states.
    pub max_states: u64,
    /// Consider at most this many enabled events per state (in canonical
    /// `(at, seq)` order) — the interleaving bound.
    pub max_branch: usize,
    /// Also branch on dropping message deliveries.
    pub enable_drops: bool,
    /// Also branch on duplicating message deliveries.
    pub enable_dups: bool,
    /// Drop/duplicate branches are only generated for the first this-many
    /// enabled deliveries, to keep the fault fan-out bounded.
    pub fault_choice_limit: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_depth: 6,
            max_states: 20_000,
            max_branch: 5,
            enable_drops: false,
            enable_dups: false,
            fault_choice_limit: 2,
        }
    }
}

/// What an exploration did and found.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Distinct canonical states visited.
    pub states_visited: u64,
    /// Schedules replayed (including revisits pruned by the visited set).
    pub replays: u64,
    /// Longest schedule reached.
    pub deepest: usize,
    /// Whether the state space was covered to the bounds (no early stop
    /// from `max_states`).
    pub exhausted: bool,
    /// The shrunk counterexample, if any oracle was violated.
    pub counterexample: Option<Counterexample>,
}

/// Drives a [`Model`] through bounded-exhaustive or random-walk schedule
/// exploration.
pub struct Explorer<M: Model> {
    model: M,
    cfg: ExploreConfig,
}

fn describe(ev: &PendingEvent) -> String {
    match &ev.kind {
        PendingKind::Start(n) => format!("start {n}"),
        PendingKind::Deliver {
            src,
            dst,
            kind,
            bytes,
        } => format!("deliver {kind} {src}->{dst} ({bytes}B)"),
        PendingKind::Timer { node, tag } => format!("timer {node} tag={tag}"),
        PendingKind::Crash(n) => format!("crash {n}"),
        PendingKind::Restart(n) => format!("restart {n}"),
    }
}

impl<M: Model> Explorer<M> {
    /// Creates an explorer over `model` with the given bounds.
    pub fn new(model: M, cfg: ExploreConfig) -> Self {
        Explorer { model, cfg }
    }

    /// The model under exploration.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Builds the simulation and runs the deterministic start prelude:
    /// every node's `on_start` (in creation order) and the model's
    /// [`Model::init`]. Start callbacks only arm timers or enqueue local
    /// sends here, so their relative order is immaterial.
    fn boot(&self) -> Sim<M::Msg> {
        let mut sim = self.model.build();
        loop {
            let starts: Vec<u64> = sim
                .pending_events()
                .into_iter()
                .filter(|e| matches!(e.kind, PendingKind::Start(_)))
                .map(|e| e.seq)
                .collect();
            if starts.is_empty() {
                break;
            }
            for s in starts {
                sim.step_chosen(s, StepMode::Deliver);
            }
        }
        self.model.init(&mut sim);
        sim
    }

    /// The enabled-event list offered at the current state: canonical
    /// `(at, seq)` order, truncated to the interleaving bound.
    fn enabled(&self, sim: &Sim<M::Msg>) -> Vec<PendingEvent> {
        let mut ev = sim.pending_events();
        ev.truncate(self.cfg.max_branch);
        ev
    }

    /// Replays `choices` from a fresh boot, checking the oracles after the
    /// prelude and after every step. Returns the final simulation plus, on
    /// violation, the violation and the number of choices consumed to
    /// reach it. Out-of-range indices are skipped, which keeps shrinking
    /// simple and sound (a skipped step is just a shorter schedule).
    pub fn replay(&self, choices: &[Choice]) -> (Sim<M::Msg>, Option<(Violation, usize)>) {
        let mut sim = self.boot();
        if let Err(v) = self.model.check(&mut sim) {
            return (sim, Some((v, 0)));
        }
        for (i, c) in choices.iter().enumerate() {
            let enabled = self.enabled(&sim);
            let Some(ev) = enabled.get(c.index) else {
                continue;
            };
            sim.step_chosen(ev.seq, c.mode);
            if let Err(v) = self.model.check(&mut sim) {
                return (sim, Some((v, i + 1)));
            }
        }
        (sim, None)
    }

    /// Attaches human-readable labels to a schedule by replaying it.
    fn label_schedule(&self, choices: &[Choice]) -> Vec<(Choice, String)> {
        let mut sim = self.boot();
        let mut out = Vec::with_capacity(choices.len());
        for c in choices {
            let enabled = self.enabled(&sim);
            let label = match enabled.get(c.index) {
                Some(ev) => {
                    let l = describe(ev);
                    sim.step_chosen(ev.seq, c.mode);
                    l
                }
                None => "(skipped: index out of range)".to_owned(),
            };
            out.push((*c, label));
        }
        out
    }

    /// Projects a schedule's drop pattern onto a declarative
    /// [`FaultPlan`](p2pfl_simnet::FaultPlan): each dropped delivery
    /// becomes an asymmetric partition window on its link, from time zero
    /// until just past the chosen delivery. The plan drops a *superset* of
    /// the schedule's drops (a window cuts every message on the link, and
    /// plan verdicts apply at send time, not delivery time) — it is the
    /// coarse-grained re-execution vehicle for transports without
    /// event-level scheduling, i.e. the real TCP runtime (see
    /// `tests/check_replay.rs`).
    pub fn project_fault_plan(&self, choices: &[Choice], seed: u64) -> p2pfl_simnet::FaultPlan {
        use p2pfl_simnet::{SimDuration, SimTime};
        let mut plan = p2pfl_simnet::FaultPlan::new(seed);
        let mut sim = self.boot();
        for c in choices {
            let enabled = self.enabled(&sim);
            let Some(ev) = enabled.get(c.index) else {
                continue;
            };
            if c.mode == StepMode::Drop {
                if let PendingKind::Deliver { src, dst, .. } = ev.kind {
                    plan = plan.partition(
                        SimTime::ZERO,
                        ev.at + SimDuration::from_millis(1),
                        vec![src],
                        vec![dst],
                    );
                }
            }
            sim.step_chosen(ev.seq, c.mode);
        }
        plan
    }

    /// Delta-debugging shrink: greedily removes chunks (halving the chunk
    /// size down to single steps) while the schedule still violates *some*
    /// oracle, then truncates at the violation point.
    pub fn shrink(&self, mut choices: Vec<Choice>) -> (Vec<Choice>, Violation) {
        let violates = |cs: &[Choice]| self.replay(cs).1;
        let (mut last, steps) = violates(&choices).expect("shrink needs a failing schedule");
        choices.truncate(steps);
        let mut chunk = (choices.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i + chunk <= choices.len() {
                let mut cand = choices.clone();
                cand.drain(i..i + chunk);
                if let Some((v, steps)) = violates(&cand) {
                    choices = cand;
                    choices.truncate(steps);
                    last = v;
                    // restart this chunk size from the front
                    i = 0;
                } else {
                    i += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        (choices, last)
    }

    fn counterexample(&self, failing_prefix: Vec<Choice>) -> Counterexample {
        let (min, v) = self.shrink(failing_prefix);
        let labeled = self.label_schedule(&min);
        Counterexample::from_parts(self.model.name(), &v.oracle, &v.detail, labeled)
    }

    fn state_key(&self, sim: &mut Sim<M::Msg>) -> u64 {
        let mut h = DefaultHasher::new();
        self.model.fingerprint(sim).hash(&mut h);
        sim.queue_digest().hash(&mut h);
        h.finish()
    }

    /// Bounded-exhaustive DFS over schedules, pruning states already seen
    /// (canonical fingerprint + queue digest). Stops at the first
    /// violation, which is shrunk into a replayable counterexample.
    pub fn explore(&self) -> ExploreReport {
        let mut report = ExploreReport {
            states_visited: 0,
            replays: 0,
            deepest: 0,
            exhausted: true,
            counterexample: None,
        };
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack: Vec<Vec<Choice>> = vec![Vec::new()];
        while let Some(sched) = stack.pop() {
            if report.states_visited >= self.cfg.max_states {
                report.exhausted = false;
                break;
            }
            report.replays += 1;
            let (mut sim, vio) = self.replay(&sched);
            if let Some((_, steps)) = vio {
                let mut prefix = sched;
                prefix.truncate(steps);
                report.counterexample = Some(self.counterexample(prefix));
                return report;
            }
            if !visited.insert(self.state_key(&mut sim)) {
                continue;
            }
            report.states_visited += 1;
            report.deepest = report.deepest.max(sched.len());
            if sched.len() >= self.cfg.max_depth {
                continue;
            }
            let enabled = self.enabled(&sim);
            // Reverse so the stack pops lower indices (earlier events) first.
            for i in (0..enabled.len()).rev() {
                let is_delivery = matches!(enabled[i].kind, PendingKind::Deliver { .. });
                if is_delivery && i < self.cfg.fault_choice_limit {
                    if self.cfg.enable_dups {
                        let mut s = sched.clone();
                        s.push(Choice {
                            index: i,
                            mode: StepMode::Duplicate,
                        });
                        stack.push(s);
                    }
                    if self.cfg.enable_drops {
                        let mut s = sched.clone();
                        s.push(Choice {
                            index: i,
                            mode: StepMode::Drop,
                        });
                        stack.push(s);
                    }
                }
                let mut s = sched.clone();
                s.push(Choice {
                    index: i,
                    mode: StepMode::Deliver,
                });
                stack.push(s);
            }
        }
        report
    }

    /// Random-walk mode for depths the exhaustive bound cannot reach:
    /// `walks` independent schedules of up to `max_depth` uniformly random
    /// choices (with drop/duplicate faults at low probability when
    /// enabled), all driven by one seeded RNG for reproducibility.
    pub fn random_walk(&self, walks: u64, seed: u64) -> ExploreReport {
        let mut report = ExploreReport {
            states_visited: 0,
            replays: 0,
            deepest: 0,
            exhausted: false,
            counterexample: None,
        };
        let mut visited: HashSet<u64> = HashSet::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..walks {
            report.replays += 1;
            let mut sim = self.boot();
            let mut taken: Vec<Choice> = Vec::new();
            if let Err(_v) = self.model.check(&mut sim) {
                report.counterexample = Some(self.counterexample(taken));
                return report;
            }
            for _ in 0..self.cfg.max_depth {
                let enabled = self.enabled(&sim);
                if enabled.is_empty() {
                    break;
                }
                let i = (rng.random::<u64>() % enabled.len() as u64) as usize;
                let mut mode = StepMode::Deliver;
                if matches!(enabled[i].kind, PendingKind::Deliver { .. }) {
                    let r: f64 = rng.random();
                    if self.cfg.enable_dups && r < 0.15 {
                        mode = StepMode::Duplicate;
                    } else if self.cfg.enable_drops && (0.15..0.3).contains(&r) {
                        mode = StepMode::Drop;
                    }
                }
                taken.push(Choice { index: i, mode });
                sim.step_chosen(enabled[i].seq, mode);
                if visited.insert(self.state_key(&mut sim)) {
                    report.states_visited += 1;
                }
                report.deepest = report.deepest.max(taken.len());
                if self.model.check(&mut sim).is_err() {
                    report.counterexample = Some(self.counterexample(taken));
                    return report;
                }
            }
        }
        report
    }
}
