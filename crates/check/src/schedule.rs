//! Replayable schedules and counterexamples.
//!
//! A schedule is a sequence of [`Choice`]s, each selecting one event (by
//! index into the canonically ordered enabled-event list of
//! [`p2pfl_simnet::Sim::pending_events`]) and a delivery mode. Indexing
//! into the *enabled list* rather than naming raw event ids keeps
//! schedules meaningful across replays and robust under shrinking.

use crate::json_in::Json;
use p2pfl_simnet::StepMode;

/// One scheduling decision: which enabled event fires next, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Choice {
    /// Index into the enabled-event list at this point of the execution.
    pub index: usize,
    /// Delivery mode for the chosen event.
    pub mode: StepMode,
}

fn mode_to_u8(m: StepMode) -> u8 {
    match m {
        StepMode::Deliver => 0,
        StepMode::Drop => 1,
        StepMode::Duplicate => 2,
    }
}

fn mode_from_u8(v: u64) -> Result<StepMode, String> {
    match v {
        0 => Ok(StepMode::Deliver),
        1 => Ok(StepMode::Drop),
        2 => Ok(StepMode::Duplicate),
        other => Err(format!("unknown step mode {other}")),
    }
}

/// One serialized schedule step, with a human-readable label of what the
/// chosen event was at record time.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CxStep {
    /// Index into the enabled-event list.
    pub index: u64,
    /// Delivery mode: 0 = deliver, 1 = drop, 2 = duplicate.
    pub mode: u8,
    /// Description of the event this choice selected (informational).
    pub label: String,
}

/// A minimized, replayable schedule that violates an invariant — the
/// checker's counterexample artifact, written as JSON next to the CI logs
/// (see DESIGN.md "Invariant catalog" for how to replay one).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Counterexample {
    /// Name of the [`crate::Model`] that produced it.
    pub model: String,
    /// The violated oracle.
    pub oracle: String,
    /// Human-readable description of the violation.
    pub detail: String,
    /// The shrunk schedule, applied after the model's start prelude.
    pub steps: Vec<CxStep>,
}

impl Counterexample {
    /// Serializes to JSON (via the workspace serde shim's JSON backend).
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }

    /// Parses a counterexample previously written by [`Self::to_json`].
    pub fn from_json(src: &str) -> Result<Self, String> {
        let v = Json::parse(src)?;
        let field = |k: &str| -> Result<&Json, String> {
            v.get(k).ok_or_else(|| format!("missing field '{k}'"))
        };
        let str_field = |k: &str| -> Result<String, String> {
            field(k)?
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("field '{k}' is not a string"))
        };
        let mut steps = Vec::new();
        for (i, s) in field("steps")?
            .as_arr()
            .ok_or("field 'steps' is not an array")?
            .iter()
            .enumerate()
        {
            let num = |k: &str| -> Result<u64, String> {
                s.get(k)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("step {i}: bad field '{k}'"))
            };
            let mode = num("mode")?;
            mode_from_u8(mode)?;
            steps.push(CxStep {
                index: num("index")?,
                mode: mode as u8,
                label: s
                    .get("label")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_owned(),
            });
        }
        Ok(Counterexample {
            model: str_field("model")?,
            oracle: str_field("oracle")?,
            detail: str_field("detail")?,
            steps,
        })
    }

    /// The schedule as replayable [`Choice`]s.
    pub fn choices(&self) -> Vec<Choice> {
        self.steps
            .iter()
            .map(|s| Choice {
                index: s.index as usize,
                mode: mode_from_u8(s.mode as u64).expect("validated on construction"),
            })
            .collect()
    }

    /// Builds the serialized form from raw choices and their labels.
    pub fn from_parts(
        model: &str,
        oracle: &str,
        detail: &str,
        steps: Vec<(Choice, String)>,
    ) -> Self {
        Counterexample {
            model: model.to_owned(),
            oracle: oracle.to_owned(),
            detail: detail.to_owned(),
            steps: steps
                .into_iter()
                .map(|(c, label)| CxStep {
                    index: c.index as u64,
                    mode: mode_to_u8(c.mode),
                    label,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counterexample_json_roundtrip() {
        let cx = Counterexample::from_parts(
            "sac3",
            "SacMaskCancellation",
            "replica divergence at (j=1, p=2)",
            vec![
                (
                    Choice {
                        index: 0,
                        mode: StepMode::Duplicate,
                    },
                    "deliver sac.begin 0->1".into(),
                ),
                (
                    Choice {
                        index: 3,
                        mode: StepMode::Deliver,
                    },
                    "deliver sac.begin 0->1 (dup)".into(),
                ),
            ],
        );
        let back = Counterexample::from_json(&cx.to_json()).unwrap();
        assert_eq!(back, cx);
        assert_eq!(back.choices().len(), 2);
        assert_eq!(back.choices()[0].mode, StepMode::Duplicate);
    }

    #[test]
    fn from_json_rejects_bad_modes_and_shapes() {
        assert!(Counterexample::from_json("{}").is_err());
        let bad_mode =
            r#"{"model":"m","oracle":"o","detail":"d","steps":[{"index":0,"mode":9,"label":""}]}"#;
        assert!(Counterexample::from_json(bad_mode).is_err());
        assert!(Counterexample::from_json("not json").is_err());
    }
}
