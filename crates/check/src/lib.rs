//! # p2pfl-check — bounded exhaustive model checker for the protocol stack
//!
//! The chaos soaks in `tests/` *sample* the schedule space; this crate
//! *covers* it (up to a bound). A [`Model`] builds a small deployment on
//! the deterministic `p2pfl-simnet` simulator; the [`Explorer`] then drives
//! it through every delivery ordering — optionally with message drops and
//! duplications — up to a depth and branching bound, using the scheduler
//! hook [`p2pfl_simnet::Sim::step_chosen`]. Each reached global state is
//! canonicalized ([`Model::fingerprint`] plus
//! [`p2pfl_simnet::Sim::queue_digest`]) for a visited set, and checked
//! against the invariant oracle catalog in [`oracles`]:
//!
//! * **ElectionSafety** — at most one Raft leader per term, per layer;
//! * **LogMatching** — equal `(index, term)` implies equal command, and
//!   committed prefixes agree;
//! * **FedConfigReplication** — each peer's FedAvg-layer config is exactly
//!   what its committed subgroup log says (paper Sec. V);
//! * **SacMaskCancellation** — every replica of a share partition agrees,
//!   and fully-visible partitions of a contribution sum back to the input
//!   (paper Sec. IV / Alg. 1-2);
//! * **KofNReconstructability** — a finished round's average is the plain
//!   mean over the frozen contributor set (paper Alg. 4);
//! * **StorageRoundTrip** — replaying a node's persist stream yields a
//!   bisimilar node (term, vote, log, snapshot);
//! * **RoundTermination** — a quiescent system never strands a supervised
//!   SAC round mid-flight: the leader ends in `Done` or `Failed`;
//! * **DegradedLiveness** — sub-threshold degradation keeps `n' >= 2`,
//!   `k' = min(k, n')`, and at least `k'` contributors, and a supervised
//!   round only fails after an abort/retry was attempted.
//!
//! On violation the failing schedule is shrunk by delta debugging and
//! emitted as a replayable JSON [`Counterexample`]. The `mutation_check`
//! binary (feature `mutants`) re-runs the explorer against deliberately
//! broken protocol variants and asserts each is caught — proving the
//! oracles have teeth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explorer;
mod json_in;
pub mod models;
pub mod oracles;
mod schedule;

pub use explorer::{ExploreConfig, ExploreReport, Explorer, Model, Violation};
pub use json_in::Json;
pub use schedule::{Choice, Counterexample, CxStep};
