//! Explorer acceptance: clean models stay clean under bounded-exhaustive
//! and random-walk exploration, and schedules round-trip + replay
//! deterministically.

use p2pfl_check::models::{HierModel, Raft3Model, Sac3Model};
use p2pfl_check::{Choice, Counterexample, ExploreConfig, Explorer, Model};
use p2pfl_simnet::StepMode;

fn quick(depth: usize, branch: usize) -> ExploreConfig {
    ExploreConfig {
        max_depth: depth,
        max_states: 50_000,
        max_branch: branch,
        enable_drops: false,
        enable_dups: false,
        fault_choice_limit: 2,
    }
}

#[test]
fn clean_models_explore_without_violations() {
    let raft = Explorer::new(Raft3Model, quick(5, 4)).explore();
    assert!(raft.counterexample.is_none(), "{:?}", raft.counterexample);
    assert!(raft.exhausted, "raft3 should exhaust its bounds");
    assert!(
        raft.states_visited > 50,
        "raft3 visited {}",
        raft.states_visited
    );

    let sac = Explorer::new(Sac3Model, quick(5, 4)).explore();
    assert!(sac.counterexample.is_none(), "{:?}", sac.counterexample);
    assert!(sac.exhausted);

    let hier = Explorer::new(HierModel, quick(4, 4)).explore();
    assert!(hier.counterexample.is_none(), "{:?}", hier.counterexample);
    assert!(hier.exhausted);
}

#[test]
fn clean_models_survive_faulty_random_walks() {
    let mut cfg = quick(16, 6);
    cfg.enable_drops = true;
    cfg.enable_dups = true;
    cfg.fault_choice_limit = 4;
    for (name, cx) in [
        (
            "raft3",
            Explorer::new(Raft3Model, cfg)
                .random_walk(60, 11)
                .counterexample,
        ),
        (
            "sac3",
            Explorer::new(Sac3Model, cfg)
                .random_walk(60, 11)
                .counterexample,
        ),
        (
            "hier",
            Explorer::new(HierModel, cfg)
                .random_walk(40, 11)
                .counterexample,
        ),
    ] {
        assert!(cx.is_none(), "{name}: unexpected violation {cx:?}");
    }
}

#[test]
fn replay_is_deterministic_and_schedules_roundtrip() {
    // A mixed schedule with an out-of-range index (must be skipped), a
    // drop, and a duplicate.
    let choices = vec![
        Choice {
            index: 1,
            mode: StepMode::Deliver,
        },
        Choice {
            index: 0,
            mode: StepMode::Drop,
        },
        Choice {
            index: 99,
            mode: StepMode::Deliver,
        },
        Choice {
            index: 0,
            mode: StepMode::Duplicate,
        },
        Choice {
            index: 2,
            mode: StepMode::Deliver,
        },
    ];
    let ex = Explorer::new(Sac3Model, quick(8, 6));
    let (mut a, va) = ex.replay(&choices);
    let (mut b, vb) = ex.replay(&choices);
    assert_eq!(va.is_some(), vb.is_some());
    assert_eq!(Sac3Model.fingerprint(&mut a), Sac3Model.fingerprint(&mut b));
    assert_eq!(a.queue_digest(), b.queue_digest());

    // The same schedule survives a JSON round trip and replays to the
    // same state.
    let cx = Counterexample::from_parts(
        "sac3",
        "none",
        "determinism probe",
        choices.iter().map(|&c| (c, String::new())).collect(),
    );
    let parsed = Counterexample::from_json(&cx.to_json()).expect("parse back");
    assert_eq!(parsed.choices(), choices);
    let (mut c, _) = ex.replay(&parsed.choices());
    assert_eq!(Sac3Model.fingerprint(&mut a), Sac3Model.fingerprint(&mut c));
}

#[test]
fn dropped_deliveries_project_onto_a_fault_plan() {
    // After the sac3 boot prelude the leader's Begin/ShareBlock sends are
    // already in flight, so dropping index 0 is guaranteed to hit a
    // delivery and must appear as a projected partition window.
    let ex = Explorer::new(Sac3Model, quick(6, 5));
    let choices = vec![
        Choice {
            index: 0,
            mode: StepMode::Drop,
        },
        Choice {
            index: 0,
            mode: StepMode::Deliver,
        },
        Choice {
            index: 0,
            mode: StepMode::Drop,
        },
    ];
    let plan = ex.project_fault_plan(&choices, 42);
    assert_eq!(
        plan.entries.len(),
        2,
        "each dropped delivery projects one partition window: {plan:?}"
    );
    assert!(plan.can_drop_messages());
}
