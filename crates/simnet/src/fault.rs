//! Declarative, seeded fault schedules.
//!
//! A [`FaultPlan`] is a list of timed fault windows — probabilistic message
//! loss, delay spikes, duplication, reordering, asymmetric partitions, node
//! blackouts — plus instantaneous crash/restart events. The same plan value
//! is interpreted by two transports:
//!
//! * the simulator ([`crate::Sim::apply_fault_plan`]) applies link faults at
//!   send time on the virtual clock and schedules crash/restart events;
//! * `p2pfl-net` wraps the TCP hub's send path with the same [`LinkFaults`]
//!   interpreter, mapping wall-clock elapsed time since runtime start onto
//!   the plan's [`SimTime`] axis, and its drivers execute the plan's
//!   crash/restart events as process kill/recover.
//!
//! All randomness comes from a single seed stored in the plan, so a failing
//! chaos run reproduces from its logged seed. Times are relative to when the
//! plan is applied (virtual time zero in the simulator, runtime start on the
//! real transport).

use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One kind of fault, active inside its entry's time window.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum FaultAction {
    /// Drop each message independently with this probability.
    Loss {
        /// Per-message drop probability in `[0, 1]`.
        probability: f64,
    },
    /// Add `extra` (+ uniform up to `jitter`) to every message's delivery.
    Delay {
        /// Deterministic extra delay added to every send.
        extra: SimDuration,
        /// Additional uniform random delay in `[0, jitter)`.
        jitter: SimDuration,
    },
    /// Deliver an extra copy of each message with this probability.
    Duplicate {
        /// Per-message duplication probability in `[0, 1]`.
        probability: f64,
    },
    /// Hold back each message with the given probability for a random slice
    /// of `window`, letting later sends overtake it.
    Reorder {
        /// Per-message reorder probability in `[0, 1]`.
        probability: f64,
        /// Maximum hold-back duration.
        window: SimDuration,
    },
    /// Asymmetric partition: drop messages from any node in `src` to any
    /// node in `dst` (the reverse direction is unaffected).
    Partition {
        /// Senders whose traffic is cut.
        src: Vec<NodeId>,
        /// Destinations that stop hearing from `src`.
        dst: Vec<NodeId>,
    },
    /// Asymmetric lossy link: drop messages from any node in `src` to any
    /// node in `dst` with the given probability, while the reverse
    /// direction stays clean. Unlike [`FaultAction::Partition`] the cut is
    /// probabilistic, so some traffic still gets through — the shape that
    /// provokes failure-detector false positives (A hears B, B half-hears
    /// A).
    LinkLoss {
        /// Senders whose outbound traffic is degraded.
        src: Vec<NodeId>,
        /// Destinations that only partially hear from `src`.
        dst: Vec<NodeId>,
        /// Per-message drop probability in `[0, 1]` for matching sends.
        probability: f64,
    },
    /// Cut all traffic to and from one node while leaving it running.
    Blackout {
        /// The isolated node.
        node: NodeId,
    },
    /// Kill the node's process at the window start (`until` is ignored).
    Crash {
        /// The node to kill.
        node: NodeId,
    },
    /// Bring a previously crashed node back at the window start.
    Restart {
        /// The node to revive.
        node: NodeId,
    },
    /// Byzantine: the node scales every masked share it *sends* by
    /// `factor`, while its broadcast commitments stay honest — the runtime
    /// promotion of the mutation self-check's `ShareSkew` mutant. Receivers
    /// with commitment verification enabled detect the mismatch and evict
    /// the sender.
    ShareSkew {
        /// The malicious contributor.
        node: NodeId,
        /// Multiplier applied to each outgoing share partition.
        factor: f64,
    },
    /// Byzantine: the node corrupts its local model update *before* secret
    /// sharing. The shares themselves are internally consistent, so this is
    /// undetectable cryptographically and must be absorbed by robust
    /// combining at the FedAvg layer.
    PoisonUpdate {
        /// The malicious contributor.
        node: NodeId,
        /// How the update is corrupted.
        mode: PoisonMode,
    },
    /// Byzantine: a subgroup leader advertises conflicting replicated
    /// configs (`FedConfig` digests) to different followers via the config
    /// echo channel. Raft keeps the committed truth consistent, so honest
    /// followers that compare echoes detect the equivocation.
    Equivocate {
        /// The equivocating leader.
        node: NodeId,
    },
    /// Byzantine: a leader proposes a roster (`SubMembers`) naming a peer
    /// outside the configured subgroup. Honest followers refuse to apply
    /// it.
    BogusRoster {
        /// The node injecting the bogus roster.
        node: NodeId,
    },
}

/// How a Byzantine peer corrupts its model update ([`FaultAction::PoisonUpdate`]).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum PoisonMode {
    /// Negate every parameter (gradient-ascent attack).
    SignFlip,
    /// Scale every parameter by `factor` (norm-boost attack).
    NormBoost {
        /// Multiplier, typically large (e.g. 25–100).
        factor: f64,
    },
}

/// The Byzantine behaviors a [`FaultPlan`] assigns one node at one instant
/// — the content-level companion to [`LinkFaults::on_send`]'s link-level
/// verdicts. Both transports derive it from the same plan via
/// [`FaultPlan::byzantine`], so adversarial behavior replays identically on
/// the simulator and over TCP.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ByzantineSpec {
    /// Scale outgoing shares by this factor ([`FaultAction::ShareSkew`]).
    pub share_skew: Option<f64>,
    /// Corrupt the local update ([`FaultAction::PoisonUpdate`]).
    pub poison: Option<PoisonMode>,
    /// Advertise conflicting configs ([`FaultAction::Equivocate`]).
    pub equivocate: bool,
    /// Propose out-of-subgroup rosters ([`FaultAction::BogusRoster`]).
    pub bogus_roster: bool,
}

impl ByzantineSpec {
    /// Whether any Byzantine behavior is active.
    pub fn is_byzantine(&self) -> bool {
        self.share_skew.is_some() || self.poison.is_some() || self.equivocate || self.bogus_roster
    }
}

/// A fault active from `from` until `until` (open-ended when `None`).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultEntry {
    /// Window start (inclusive), relative to plan application.
    pub from: SimTime,
    /// Window end (exclusive); `None` means until the end of the run.
    /// Ignored for [`FaultAction::Crash`] / [`FaultAction::Restart`],
    /// which are instantaneous events at `from`.
    pub until: Option<SimTime>,
    /// What goes wrong during the window.
    pub action: FaultAction,
}

impl FaultEntry {
    fn active_at(&self, now: SimTime) -> bool {
        self.from <= now && self.until.is_none_or(|u| now < u)
    }
}

/// An instantaneous process-level event extracted from a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessEvent {
    /// When it happens, relative to plan application.
    pub at: SimTime,
    /// Which node it happens to.
    pub node: NodeId,
    /// Kill or revive.
    pub fault: ProcessFault,
}

/// The two process-level fault kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessFault {
    /// The node's process dies; volatile state is lost.
    Crash,
    /// The node's process comes back (recovering persisted state, if any).
    Restart,
}

/// A seeded, declarative schedule of faults.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision the plan's interpreter makes.
    pub seed: u64,
    /// The scheduled faults, in no particular order.
    pub entries: Vec<FaultEntry>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given interpreter seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            entries: Vec::new(),
        }
    }

    fn with(mut self, from: SimTime, until: Option<SimTime>, action: FaultAction) -> Self {
        self.entries.push(FaultEntry {
            from,
            until,
            action,
        });
        self
    }

    /// Adds an i.i.d. message-loss window.
    pub fn loss(self, from: SimTime, until: SimTime, probability: f64) -> Self {
        assert!((0.0..=1.0).contains(&probability));
        self.with(from, Some(until), FaultAction::Loss { probability })
    }

    /// Adds a delay-spike window (`extra` plus uniform jitter).
    pub fn delay(
        self,
        from: SimTime,
        until: SimTime,
        extra: SimDuration,
        jitter: SimDuration,
    ) -> Self {
        self.with(from, Some(until), FaultAction::Delay { extra, jitter })
    }

    /// Adds a duplication window.
    pub fn duplicate(self, from: SimTime, until: SimTime, probability: f64) -> Self {
        assert!((0.0..=1.0).contains(&probability));
        self.with(from, Some(until), FaultAction::Duplicate { probability })
    }

    /// Adds a reordering window.
    pub fn reorder(
        self,
        from: SimTime,
        until: SimTime,
        probability: f64,
        window: SimDuration,
    ) -> Self {
        assert!((0.0..=1.0).contains(&probability));
        self.with(
            from,
            Some(until),
            FaultAction::Reorder {
                probability,
                window,
            },
        )
    }

    /// Adds an asymmetric partition window cutting `src -> dst` traffic.
    pub fn partition(
        self,
        from: SimTime,
        until: SimTime,
        src: Vec<NodeId>,
        dst: Vec<NodeId>,
    ) -> Self {
        self.with(from, Some(until), FaultAction::Partition { src, dst })
    }

    /// Adds an asymmetric lossy-link window: `src -> dst` sends drop with
    /// `probability`, the reverse direction is untouched.
    pub fn link_loss(
        self,
        from: SimTime,
        until: SimTime,
        src: Vec<NodeId>,
        dst: Vec<NodeId>,
        probability: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&probability));
        self.with(
            from,
            Some(until),
            FaultAction::LinkLoss {
                src,
                dst,
                probability,
            },
        )
    }

    /// Adds a full blackout window for one node (all its links cut).
    pub fn blackout(self, from: SimTime, until: SimTime, node: NodeId) -> Self {
        self.with(from, Some(until), FaultAction::Blackout { node })
    }

    /// Schedules a crash of `node` at `at`.
    pub fn crash(self, at: SimTime, node: NodeId) -> Self {
        self.with(at, None, FaultAction::Crash { node })
    }

    /// Schedules a restart of `node` at `at`.
    pub fn restart(self, at: SimTime, node: NodeId) -> Self {
        self.with(at, None, FaultAction::Restart { node })
    }

    /// Adds a share-skew window: `node` scales its outgoing shares by
    /// `factor` while committing to the honest values.
    pub fn share_skew(
        self,
        from: SimTime,
        until: Option<SimTime>,
        node: NodeId,
        factor: f64,
    ) -> Self {
        self.with(from, until, FaultAction::ShareSkew { node, factor })
    }

    /// Adds a poisoned-update window: `node` corrupts its local model
    /// before sharing it.
    pub fn poison(
        self,
        from: SimTime,
        until: Option<SimTime>,
        node: NodeId,
        mode: PoisonMode,
    ) -> Self {
        self.with(from, until, FaultAction::PoisonUpdate { node, mode })
    }

    /// Adds an equivocation window: `node` (as leader) advertises
    /// conflicting configs to different followers.
    pub fn equivocate(self, from: SimTime, until: Option<SimTime>, node: NodeId) -> Self {
        self.with(from, until, FaultAction::Equivocate { node })
    }

    /// Adds a bogus-roster window: `node` proposes rosters naming peers
    /// outside the configured subgroup.
    pub fn bogus_roster(self, from: SimTime, until: Option<SimTime>, node: NodeId) -> Self {
        self.with(from, until, FaultAction::BogusRoster { node })
    }

    /// The Byzantine behaviors the plan assigns `node` at `now` (relative
    /// to plan application). Both the simulator-backed runner and the TCP
    /// drivers consult this one query, so a plan's adversarial content is
    /// interpreted identically on both transports.
    pub fn byzantine(&self, node: NodeId, now: SimTime) -> ByzantineSpec {
        let mut spec = ByzantineSpec::default();
        for e in &self.entries {
            if !e.active_at(now) {
                continue;
            }
            match e.action {
                FaultAction::ShareSkew { node: n, factor } if n == node => {
                    spec.share_skew = Some(factor);
                }
                FaultAction::PoisonUpdate { node: n, mode } if n == node => {
                    spec.poison = Some(mode);
                }
                FaultAction::Equivocate { node: n } if n == node => spec.equivocate = true,
                FaultAction::BogusRoster { node: n } if n == node => spec.bogus_roster = true,
                _ => {}
            }
        }
        spec
    }

    /// The nodes with any Byzantine behavior scheduled anywhere in the
    /// plan, deduplicated.
    pub fn byzantine_nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        for e in &self.entries {
            let n = match e.action {
                FaultAction::ShareSkew { node, .. }
                | FaultAction::PoisonUpdate { node, .. }
                | FaultAction::Equivocate { node }
                | FaultAction::BogusRoster { node } => node,
                _ => continue,
            };
            if !out.contains(&n) {
                out.push(n);
            }
        }
        out
    }

    /// The plan's crash/restart events, sorted by time (ties keep entry
    /// order). Drivers for real transports execute these themselves; the
    /// simulator turns them into scheduled events.
    pub fn process_events(&self) -> Vec<ProcessEvent> {
        let mut evs: Vec<ProcessEvent> = self
            .entries
            .iter()
            .filter_map(|e| match e.action {
                FaultAction::Crash { node } => Some(ProcessEvent {
                    at: e.from,
                    node,
                    fault: ProcessFault::Crash,
                }),
                FaultAction::Restart { node } => Some(ProcessEvent {
                    at: e.from,
                    node,
                    fault: ProcessFault::Restart,
                }),
                _ => None,
            })
            .collect();
        evs.sort_by_key(|e| e.at);
        evs
    }

    /// Whether the plan contains any entry that can discard a message
    /// (loss, partition, or blackout windows). Plans without such entries
    /// preserve every send, so aggregation digests must match a fault-free
    /// run bit for bit.
    pub fn can_drop_messages(&self) -> bool {
        self.entries.iter().any(|e| {
            matches!(
                e.action,
                FaultAction::Loss { .. }
                    | FaultAction::LinkLoss { .. }
                    | FaultAction::Partition { .. }
                    | FaultAction::Blackout { .. }
            )
        })
    }

    /// Generates a randomized link-chaos plan over `horizon`: a handful of
    /// delay-spike, duplication, and reordering windows, plus — when `lossy`
    /// — loss windows and short single-node blackouts. Crash/restart events
    /// are deliberately left to the caller, which knows which roles (leader,
    /// follower, representative) it wants to hit.
    pub fn randomized(seed: u64, nodes: &[NodeId], horizon: SimTime, lossy: bool) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa_417);
        let mut plan = FaultPlan::new(seed);
        let span = horizon.as_nanos().max(1);
        let window = |rng: &mut StdRng| {
            let a = rng.random::<u64>() % span;
            let b = rng.random::<u64>() % span;
            (
                SimTime::from_nanos(a.min(b)),
                SimTime::from_nanos(a.max(b) + 1),
            )
        };
        for _ in 0..1 + rng.random::<u64>() % 3 {
            let (from, until) = window(&mut rng);
            let extra = SimDuration::from_millis(1 + rng.random::<u64>() % 20);
            let jitter = SimDuration::from_millis(rng.random::<u64>() % 10);
            plan = plan.delay(from, until, extra, jitter);
        }
        for _ in 0..1 + rng.random::<u64>() % 2 {
            let (from, until) = window(&mut rng);
            plan = plan.duplicate(from, until, 0.05 + rng.random::<f64>() * 0.25);
        }
        for _ in 0..1 + rng.random::<u64>() % 2 {
            let (from, until) = window(&mut rng);
            let w = SimDuration::from_millis(1 + rng.random::<u64>() % 30);
            plan = plan.reorder(from, until, 0.05 + rng.random::<f64>() * 0.2, w);
        }
        if lossy {
            for _ in 0..1 + rng.random::<u64>() % 2 {
                let (from, until) = window(&mut rng);
                plan = plan.loss(from, until, 0.01 + rng.random::<f64>() * 0.1);
            }
            if !nodes.is_empty() && rng.random::<f64>() < 0.5 {
                let victim = nodes[(rng.random::<u64>() % nodes.len() as u64) as usize];
                let start = SimTime::from_nanos(rng.random::<u64>() % span);
                let len = SimDuration::from_nanos(1 + rng.random::<u64>() % (span / 8).max(1));
                plan = plan.blackout(start, start + len, victim);
            }
        }
        plan
    }
}

/// Why [`LinkFaults`] discarded a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDropCause {
    /// A loss window sampled a drop.
    Loss,
    /// A partition or blackout window cut the link.
    Partitioned,
}

/// The per-send decision produced by [`LinkFaults::on_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkVerdict {
    /// How many copies to deliver (0 = dropped, 2+ = duplicated).
    pub copies: u32,
    /// Extra delay to add to each delivered copy.
    pub extra_delay: SimDuration,
    /// Set when `copies == 0`.
    pub cause: Option<LinkDropCause>,
}

impl LinkVerdict {
    /// The verdict for a healthy link: one copy, no extra delay.
    pub fn clean() -> Self {
        LinkVerdict {
            copies: 1,
            extra_delay: SimDuration::ZERO,
            cause: None,
        }
    }
}

/// The link-level interpreter of a [`FaultPlan`]: stateful (it owns the
/// plan's RNG) and consulted once per send by whichever transport hosts it.
#[derive(Debug)]
pub struct LinkFaults {
    entries: Vec<FaultEntry>,
    origin: SimTime,
    rng: StdRng,
}

impl LinkFaults {
    /// Builds the interpreter for `plan`, seeding its RNG from the plan.
    /// Plan times are interpreted relative to time zero; use
    /// [`LinkFaults::new_at`] when applying a plan mid-run.
    pub fn new(plan: &FaultPlan) -> Self {
        Self::new_at(plan, SimTime::ZERO)
    }

    /// Builds the interpreter with the plan's time axis anchored at
    /// `origin`: an entry with `from = 10ms` activates at `origin + 10ms`.
    pub fn new_at(plan: &FaultPlan, origin: SimTime) -> Self {
        LinkFaults {
            entries: plan.entries.clone(),
            origin,
            rng: StdRng::seed_from_u64(plan.seed ^ 0x11_4b_fa_17),
        }
    }

    /// Decides the fate of one `src -> dst` message sent at `now`.
    /// Loopback sends (`src == dst`) must not be routed through here —
    /// both transports deliver those locally, outside the fault layer.
    pub fn on_send(&mut self, now: SimTime, src: NodeId, dst: NodeId) -> LinkVerdict {
        let now = SimTime::from_nanos(now.as_nanos().saturating_sub(self.origin.as_nanos()));
        let mut verdict = LinkVerdict::clean();
        for e in &self.entries {
            if !e.active_at(now) {
                continue;
            }
            match &e.action {
                FaultAction::Partition { src: s, dst: d } => {
                    if s.contains(&src) && d.contains(&dst) {
                        return LinkVerdict {
                            copies: 0,
                            extra_delay: SimDuration::ZERO,
                            cause: Some(LinkDropCause::Partitioned),
                        };
                    }
                }
                FaultAction::Blackout { node } => {
                    if src == *node || dst == *node {
                        return LinkVerdict {
                            copies: 0,
                            extra_delay: SimDuration::ZERO,
                            cause: Some(LinkDropCause::Partitioned),
                        };
                    }
                }
                FaultAction::Loss { probability } => {
                    if self.rng.random::<f64>() < *probability {
                        return LinkVerdict {
                            copies: 0,
                            extra_delay: SimDuration::ZERO,
                            cause: Some(LinkDropCause::Loss),
                        };
                    }
                }
                FaultAction::LinkLoss {
                    src: s,
                    dst: d,
                    probability,
                } => {
                    if s.contains(&src)
                        && d.contains(&dst)
                        && self.rng.random::<f64>() < *probability
                    {
                        return LinkVerdict {
                            copies: 0,
                            extra_delay: SimDuration::ZERO,
                            cause: Some(LinkDropCause::Loss),
                        };
                    }
                }
                FaultAction::Duplicate { probability } => {
                    if self.rng.random::<f64>() < *probability {
                        verdict.copies += 1;
                    }
                }
                FaultAction::Delay { extra, jitter } => {
                    verdict.extra_delay = verdict.extra_delay + *extra;
                    if jitter.as_nanos() > 0 {
                        let j = self.rng.random::<u64>() % jitter.as_nanos();
                        verdict.extra_delay = verdict.extra_delay + SimDuration::from_nanos(j);
                    }
                }
                FaultAction::Reorder {
                    probability,
                    window,
                } => {
                    if window.as_nanos() > 0 && self.rng.random::<f64>() < *probability {
                        let j = self.rng.random::<u64>() % window.as_nanos();
                        verdict.extra_delay = verdict.extra_delay + SimDuration::from_nanos(j);
                    }
                }
                // Process events and content-level Byzantine behaviors are
                // not link faults: the former are executed by the drivers,
                // the latter by the actors via [`FaultPlan::byzantine`].
                FaultAction::Crash { .. }
                | FaultAction::Restart { .. }
                | FaultAction::ShareSkew { .. }
                | FaultAction::PoisonUpdate { .. }
                | FaultAction::Equivocate { .. }
                | FaultAction::BogusRoster { .. } => {}
            }
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn windows_gate_activity() {
        let plan = FaultPlan::new(1).loss(SimTime::from_millis(10), SimTime::from_millis(20), 1.0);
        let mut lf = LinkFaults::new(&plan);
        assert_eq!(lf.on_send(SimTime::from_millis(5), n(0), n(1)).copies, 1);
        assert_eq!(lf.on_send(SimTime::from_millis(10), n(0), n(1)).copies, 0);
        assert_eq!(lf.on_send(SimTime::from_millis(19), n(0), n(1)).copies, 0);
        // `until` is exclusive.
        assert_eq!(lf.on_send(SimTime::from_millis(20), n(0), n(1)).copies, 1);
    }

    #[test]
    fn partition_is_asymmetric_and_blackout_is_total() {
        let plan = FaultPlan::new(2)
            .partition(SimTime::ZERO, SimTime::from_secs(1), vec![n(0)], vec![n(1)])
            .blackout(SimTime::ZERO, SimTime::from_secs(1), n(3));
        let mut lf = LinkFaults::new(&plan);
        let t = SimTime::from_millis(1);
        assert_eq!(
            lf.on_send(t, n(0), n(1)).cause,
            Some(LinkDropCause::Partitioned)
        );
        assert_eq!(
            lf.on_send(t, n(1), n(0)).copies,
            1,
            "reverse direction open"
        );
        assert_eq!(lf.on_send(t, n(3), n(2)).copies, 0, "blackout cuts egress");
        assert_eq!(lf.on_send(t, n(2), n(3)).copies, 0, "blackout cuts ingress");
        assert_eq!(lf.on_send(t, n(2), n(1)).copies, 1);
    }

    #[test]
    fn link_loss_is_one_way() {
        // A -> B drops everything; B -> A (and unrelated links) stay clean.
        let plan = FaultPlan::new(6).link_loss(
            SimTime::ZERO,
            SimTime::from_secs(1),
            vec![n(0)],
            vec![n(1)],
            1.0,
        );
        let mut lf = LinkFaults::new(&plan);
        let t = SimTime::from_millis(1);
        let v = lf.on_send(t, n(0), n(1));
        assert_eq!(v.copies, 0);
        assert_eq!(v.cause, Some(LinkDropCause::Loss));
        assert_eq!(lf.on_send(t, n(1), n(0)).copies, 1, "reverse stays clean");
        assert_eq!(lf.on_send(t, n(0), n(2)).copies, 1, "other dsts clean");
        assert!(plan.can_drop_messages());
    }

    #[test]
    fn link_loss_is_probabilistic_per_matching_send() {
        let plan = FaultPlan::new(7).link_loss(
            SimTime::ZERO,
            SimTime::from_secs(1),
            vec![n(0)],
            vec![n(1)],
            0.5,
        );
        let mut lf = LinkFaults::new(&plan);
        let t = SimTime::from_millis(1);
        let dropped = (0..200)
            .filter(|_| lf.on_send(t, n(0), n(1)).copies == 0)
            .count();
        assert!(
            (40..160).contains(&dropped),
            "p=0.5 should drop roughly half, got {dropped}/200"
        );
    }

    #[test]
    fn duplicate_and_delay_compose() {
        let plan = FaultPlan::new(3)
            .duplicate(SimTime::ZERO, SimTime::from_secs(1), 1.0)
            .delay(
                SimTime::ZERO,
                SimTime::from_secs(1),
                SimDuration::from_millis(7),
                SimDuration::ZERO,
            );
        let mut lf = LinkFaults::new(&plan);
        let v = lf.on_send(SimTime::from_millis(1), n(0), n(1));
        assert_eq!(v.copies, 2);
        assert_eq!(v.extra_delay, SimDuration::from_millis(7));
    }

    #[test]
    fn same_seed_same_verdicts() {
        let plan = FaultPlan::new(44)
            .loss(SimTime::ZERO, SimTime::from_secs(1), 0.5)
            .reorder(
                SimTime::ZERO,
                SimTime::from_secs(1),
                0.5,
                SimDuration::from_millis(10),
            );
        let run = || {
            let mut lf = LinkFaults::new(&plan);
            (0..64)
                .map(|i| lf.on_send(SimTime::from_millis(i), n(0), n(1)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn process_events_sorted_and_typed() {
        let plan = FaultPlan::new(5)
            .restart(SimTime::from_millis(30), n(2))
            .crash(SimTime::from_millis(10), n(2))
            .loss(SimTime::ZERO, SimTime::from_secs(1), 0.1);
        let evs = plan.process_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].fault, ProcessFault::Crash);
        assert_eq!(evs[0].at, SimTime::from_millis(10));
        assert_eq!(evs[1].fault, ProcessFault::Restart);
        assert!(plan.can_drop_messages());
        assert!(!FaultPlan::new(0)
            .duplicate(SimTime::ZERO, SimTime::from_secs(1), 0.5)
            .can_drop_messages());
    }

    #[test]
    fn byzantine_spec_is_windowed_and_per_node() {
        let plan = FaultPlan::new(8)
            .share_skew(
                SimTime::from_millis(10),
                Some(SimTime::from_millis(20)),
                n(1),
                0.5,
            )
            .poison(SimTime::ZERO, None, n(1), PoisonMode::SignFlip)
            .equivocate(SimTime::ZERO, None, n(2))
            .bogus_roster(SimTime::ZERO, None, n(2));
        let at = |ms| SimTime::from_millis(ms);
        assert_eq!(plan.byzantine(n(1), at(15)).share_skew, Some(0.5));
        assert_eq!(
            plan.byzantine(n(1), at(25)).share_skew,
            None,
            "window closed"
        );
        assert_eq!(
            plan.byzantine(n(1), at(25)).poison,
            Some(PoisonMode::SignFlip)
        );
        assert!(plan.byzantine(n(2), at(0)).equivocate);
        assert!(plan.byzantine(n(2), at(0)).bogus_roster);
        assert!(!plan.byzantine(n(0), at(15)).is_byzantine(), "honest node");
        assert_eq!(plan.byzantine_nodes(), vec![n(1), n(2)]);
        // Byzantine entries never drop or mutate link-level verdicts.
        assert!(!plan.can_drop_messages());
        let mut lf = LinkFaults::new(&plan);
        assert_eq!(lf.on_send(at(15), n(1), n(0)), LinkVerdict::clean());
    }

    #[test]
    fn randomized_plans_are_reproducible_and_respect_lossiness() {
        let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
        let a = FaultPlan::randomized(9, &nodes, SimTime::from_secs(2), false);
        let b = FaultPlan::randomized(9, &nodes, SimTime::from_secs(2), false);
        assert_eq!(a, b);
        assert!(
            !a.can_drop_messages(),
            "clean generator must preserve messages"
        );
        assert!(!a.entries.is_empty());
        let c = FaultPlan::randomized(9, &nodes, SimTime::from_secs(2), true);
        assert!(c.can_drop_messages());
    }
}
