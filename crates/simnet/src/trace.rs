//! Optional event tracing for debugging simulations.
//!
//! Disabled by default; when enabled, the simulator appends one
//! [`TraceEvent`] per interesting occurrence. Tests assert on traces, and
//! the crash-drill example pretty-prints them.

use crate::node::NodeId;
use crate::time::SimTime;
use std::fmt;

/// One recorded simulator occurrence.
///
/// `Serialize` only (no `Deserialize`): the `kind` labels are `&'static
/// str` protocol constants, which can be exported but not re-interned.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub enum TraceKind {
    /// A message was handed to the network.
    Send {
        /// Sender.
        src: NodeId,
        /// Destination.
        dst: NodeId,
        /// Message kind label.
        kind: &'static str,
        /// Payload size.
        bytes: u64,
    },
    /// A message reached its destination actor.
    Deliver {
        /// Sender.
        src: NodeId,
        /// Destination.
        dst: NodeId,
        /// Message kind label.
        kind: &'static str,
    },
    /// A message was discarded before delivery.
    Drop {
        /// Sender.
        src: NodeId,
        /// Destination.
        dst: NodeId,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// A timer fired at its owner.
    TimerFired {
        /// Timer owner.
        node: NodeId,
        /// Application tag supplied when the timer was armed.
        tag: u64,
    },
    /// A node crashed.
    Crash {
        /// The crashed node.
        node: NodeId,
    },
    /// A node restarted.
    Restart {
        /// The restarted node.
        node: NodeId,
    },
}

/// Why a message failed to be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum DropReason {
    /// Destination was crashed at delivery time.
    DestinationCrashed,
    /// The directed link was partitioned at delivery time.
    Partitioned,
    /// Random loss injected by the fault plan.
    Lossy,
}

/// A timestamped trace entry.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.at)?;
        match &self.kind {
            TraceKind::Send {
                src,
                dst,
                kind,
                bytes,
            } => write!(f, "send  {src} -> {dst} {kind} ({bytes}B)"),
            TraceKind::Deliver { src, dst, kind } => {
                write!(f, "deliv {src} -> {dst} {kind}")
            }
            TraceKind::Drop { src, dst, reason } => {
                write!(f, "drop  {src} -> {dst} ({reason:?})")
            }
            TraceKind::TimerFired { node, tag } => write!(f, "timer {node} tag={tag}"),
            TraceKind::Crash { node } => write!(f, "CRASH {node}"),
            TraceKind::Restart { node } => write!(f, "START {node}"),
        }
    }
}

/// Collects trace events when enabled.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates a disabled trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables collection. Disabling does not clear history.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether collection is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event if enabled.
    pub fn record(&mut self, at: SimTime, kind: TraceKind) {
        if self.enabled {
            self.events.push(TraceEvent { at, kind });
        }
    }

    /// Everything recorded so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Clears the history.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Exports the recorded history as a JSON array, one object per event,
    /// for offline analysis (timelines, drop statistics) outside Rust.
    pub fn to_json(&self) -> String {
        serde::json::to_string(&self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_only_when_enabled() {
        let mut t = Trace::new();
        t.record(SimTime::ZERO, TraceKind::Crash { node: NodeId(0) });
        assert!(t.events().is_empty());
        t.set_enabled(true);
        t.record(SimTime::ZERO, TraceKind::Crash { node: NodeId(0) });
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn json_export() {
        let mut t = Trace::new();
        t.set_enabled(true);
        t.record(
            SimTime::from_millis(2),
            TraceKind::Drop {
                src: NodeId(0),
                dst: NodeId(1),
                reason: DropReason::Lossy,
            },
        );
        // Newtype wrappers (SimTime, NodeId) export as single-field tuple
        // structs under the workspace serde shim.
        assert_eq!(
            t.to_json(),
            concat!(
                r#"[{"at":{"0":2000000},"#,
                r#""kind":{"Drop":{"src":{"0":0},"dst":{"0":1},"reason":"Lossy"}}}]"#
            )
        );
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent {
            at: SimTime::from_millis(1),
            kind: TraceKind::Send {
                src: NodeId(0),
                dst: NodeId(1),
                kind: "x",
                bytes: 9,
            },
        };
        assert_eq!(format!("{e}"), "[1.000ms] send  n0 -> n1 x (9B)");
    }
}
