//! Link latency models.
//!
//! The paper's testbed injects a constant 15 ms one-way delay with
//! `tc netem`. We support that plus uniform and (truncated) normal jitter,
//! and per-link overrides so asymmetric topologies can be modeled.

use crate::node::NodeId;
use crate::time::SimDuration;
use rand::Rng;
use std::collections::HashMap;

/// A one-way link latency distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Latency {
    /// Every message takes exactly this long.
    Constant(SimDuration),
    /// Uniformly distributed in `[min, max]`.
    Uniform {
        /// Lower bound (inclusive).
        min: SimDuration,
        /// Upper bound (inclusive).
        max: SimDuration,
    },
    /// Normally distributed with the given mean and standard deviation,
    /// truncated below at `floor` so latency never goes negative or
    /// unrealistically small.
    Normal {
        /// Mean of the distribution.
        mean: SimDuration,
        /// Standard deviation.
        std_dev: SimDuration,
        /// Minimum latency after truncation.
        floor: SimDuration,
    },
}

impl Latency {
    /// The paper's `tc netem` setting: a constant 15 ms one-way delay.
    pub const fn paper_default() -> Latency {
        Latency::Constant(SimDuration::from_millis(15))
    }

    /// Draws a latency sample using `rng`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        match *self {
            Latency::Constant(d) => d,
            Latency::Uniform { min, max } => {
                debug_assert!(min <= max, "uniform latency bounds inverted");
                if min == max {
                    min
                } else {
                    SimDuration::from_nanos(rng.random_range(min.as_nanos()..=max.as_nanos()))
                }
            }
            Latency::Normal {
                mean,
                std_dev,
                floor,
            } => {
                // Box-Muller transform; we only need one of the pair.
                let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.random();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let ns = mean.as_nanos() as f64 + z * std_dev.as_nanos() as f64;
                SimDuration::from_nanos((ns.max(0.0)) as u64).max(floor)
            }
        }
    }
}

/// Network-wide latency configuration: a default distribution plus optional
/// per-directed-link overrides, and an optional shared bandwidth model
/// that adds a serialization delay proportional to message size (so a
/// 5 MB model transfer takes realistically longer than a 32-byte RPC).
#[derive(Debug, Clone)]
pub struct LatencyConfig {
    default: Latency,
    overrides: HashMap<(NodeId, NodeId), Latency>,
    bandwidth_bytes_per_sec: Option<u64>,
}

impl LatencyConfig {
    /// A configuration where every link follows `default`.
    pub fn uniform_default(default: Latency) -> Self {
        LatencyConfig {
            default,
            overrides: HashMap::new(),
            bandwidth_bytes_per_sec: None,
        }
    }

    /// Adds a per-link bandwidth: every message's delivery is delayed by
    /// an additional `bytes / bandwidth` on top of the propagation
    /// latency. `None` (the default) models infinitely fast links, which
    /// matches the paper's `tc netem`-only setup.
    pub fn with_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        self.bandwidth_bytes_per_sec = Some(bytes_per_sec);
        self
    }

    /// The serialization delay for a message of `bytes` bytes.
    pub fn transmission_delay(&self, bytes: u64) -> SimDuration {
        match self.bandwidth_bytes_per_sec {
            None => SimDuration::ZERO,
            Some(bw) => {
                let ns = (bytes as u128 * 1_000_000_000u128) / bw as u128;
                SimDuration::from_nanos(ns.min(u64::MAX as u128) as u64)
            }
        }
    }

    /// Samples the full delivery delay for a `bytes`-byte message on
    /// `src -> dst`: propagation plus serialization.
    pub fn sample_for<R: Rng + ?Sized>(
        &self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        rng: &mut R,
    ) -> SimDuration {
        self.link(src, dst).sample(rng) + self.transmission_delay(bytes)
    }

    /// The paper setting: constant 15 ms everywhere.
    pub fn paper_default() -> Self {
        Self::uniform_default(Latency::paper_default())
    }

    /// Overrides the latency of the directed link `src -> dst`.
    pub fn set_link(&mut self, src: NodeId, dst: NodeId, latency: Latency) {
        self.overrides.insert((src, dst), latency);
    }

    /// The model in effect for the directed link `src -> dst`.
    pub fn link(&self, src: NodeId, dst: NodeId) -> Latency {
        self.overrides
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.default)
    }

    /// Samples a delivery delay for `src -> dst`.
    pub fn sample<R: Rng + ?Sized>(&self, src: NodeId, dst: NodeId, rng: &mut R) -> SimDuration {
        self.link(src, dst).sample(rng)
    }
}

impl Default for LatencyConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = Latency::Constant(SimDuration::from_millis(15));
        for _ in 0..10 {
            assert_eq!(l.sample(&mut rng), SimDuration::from_millis(15));
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let min = SimDuration::from_millis(5);
        let max = SimDuration::from_millis(10);
        let l = Latency::Uniform { min, max };
        for _ in 0..1000 {
            let s = l.sample(&mut rng);
            assert!(s >= min && s <= max, "sample {s} out of bounds");
        }
    }

    #[test]
    fn uniform_degenerate_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = SimDuration::from_millis(7);
        let l = Latency::Uniform { min: d, max: d };
        assert_eq!(l.sample(&mut rng), d);
    }

    #[test]
    fn normal_respects_floor() {
        let mut rng = StdRng::seed_from_u64(3);
        let l = Latency::Normal {
            mean: SimDuration::from_millis(1),
            std_dev: SimDuration::from_millis(5),
            floor: SimDuration::from_micros(100),
        };
        for _ in 0..1000 {
            assert!(l.sample(&mut rng) >= SimDuration::from_micros(100));
        }
    }

    #[test]
    fn normal_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(4);
        let l = Latency::Normal {
            mean: SimDuration::from_millis(20),
            std_dev: SimDuration::from_millis(2),
            floor: SimDuration::ZERO,
        };
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| l.sample(&mut rng).as_millis_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 20.0).abs() < 0.2, "empirical mean {mean}");
    }

    #[test]
    fn bandwidth_adds_serialization_delay() {
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = LatencyConfig::uniform_default(Latency::Constant(SimDuration::from_millis(15)))
            .with_bandwidth(1_000_000); // 1 MB/s
        let a = NodeId(0);
        let b = NodeId(1);
        // 500 kB at 1 MB/s = 500 ms on top of the 15 ms propagation.
        let d = cfg.sample_for(a, b, 500_000, &mut rng);
        assert_eq!(d, SimDuration::from_millis(515));
        // Tiny control message: essentially just propagation.
        let d = cfg.sample_for(a, b, 16, &mut rng);
        assert_eq!(
            d.as_nanos(),
            SimDuration::from_millis(15).as_nanos() + 16_000
        );
        // Without bandwidth, size is free.
        let free = LatencyConfig::paper_default();
        assert_eq!(
            free.sample_for(a, b, 500_000, &mut rng),
            SimDuration::from_millis(15)
        );
    }

    #[test]
    fn overrides_take_precedence() {
        let mut cfg = LatencyConfig::paper_default();
        let a = NodeId(0);
        let b = NodeId(1);
        cfg.set_link(a, b, Latency::Constant(SimDuration::from_millis(1)));
        assert_eq!(
            cfg.link(a, b),
            Latency::Constant(SimDuration::from_millis(1))
        );
        // Reverse direction still uses the default.
        assert_eq!(cfg.link(b, a), Latency::paper_default());
    }
}
