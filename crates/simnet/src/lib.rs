//! # p2pfl-simnet — deterministic discrete-event network simulator
//!
//! This crate is the execution substrate for the whole `p2pfl` workspace.
//! The reproduced paper evaluates its two-layer Raft on a single machine
//! with virtual peers talking TCP through a `tc netem` 15 ms delay; we
//! replace that with a seeded discrete-event simulation, which reproduces
//! the same distributional experiments (election timeouts ~ U(T, 2T),
//! constant link delay) *deterministically*.
//!
//! ## Model
//!
//! * Every node is an [`Actor`] reacting to message deliveries and timers
//!   through a [`Context`].
//! * Virtual time ([`SimTime`]/[`SimDuration`]) advances only when events
//!   fire; there is no wall-clock dependence anywhere.
//! * Link latencies come from a [`Latency`] model (constant / uniform /
//!   truncated normal), optionally per directed link.
//! * Fault injection: scheduled crashes and restarts, link partitions, and
//!   i.i.d. message loss — plus declarative, seeded [`FaultPlan`] schedules
//!   (loss, delay, duplication, reordering, partitions, blackouts,
//!   crash/restart) interpreted identically here and by the real TCP
//!   transport in `p2pfl-net`.
//! * Every message is charged to a [`Metrics`] ledger (bytes and counts per
//!   link and per protocol phase) — the basis for the paper's communication
//!   cost figures.
//!
//! ## Example
//!
//! ```
//! use p2pfl_simnet::{Actor, Blob, NodeId, Sim, SimDuration, SimTime, Transport};
//!
//! struct Counter { seen: u32 }
//! impl Actor<Blob> for Counter {
//!     fn on_message(&mut self, _t: &mut dyn Transport<Blob>, _from: NodeId, _msg: Blob) {
//!         self.seen += 1;
//!     }
//! }
//!
//! let mut sim = Sim::new(7);
//! let receiver = sim.add_node(Counter { seen: 0 });
//! sim.inject(NodeId(0), receiver, Blob::of_size(64), SimDuration::from_millis(1));
//! sim.run_until(SimTime::from_millis(10));
//! assert_eq!(sim.actor::<Counter>(receiver).seen, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod fault;
mod latency;
mod metrics;
mod node;
mod payload;
mod sim;
mod time;
mod trace;
mod transport;

pub use fault::{
    ByzantineSpec, FaultAction, FaultEntry, FaultPlan, LinkDropCause, LinkFaults, LinkVerdict,
    PoisonMode, ProcessEvent, ProcessFault,
};
pub use latency::{Latency, LatencyConfig};
pub use metrics::{Counter, Metrics};
pub use node::{NodeId, TimerId};
pub use payload::{Blob, Payload};
pub use sim::{Actor, Context, PendingEvent, PendingKind, Sim, StepMode};
pub use time::{SimDuration, SimTime};
pub use trace::{DropReason, Trace, TraceEvent, TraceKind};
pub use transport::Transport;
