//! Communication-cost accounting.
//!
//! The reproduced paper's headline result is a communication-cost reduction
//! (Figs. 13–14), so the simulator maintains a precise ledger: every message
//! handed to the network is counted once, by directed link and by message
//! kind. Messages dropped later (crashed destination, partition) still count
//! as transmitted — the sender spent the bandwidth — but are also tallied
//! separately as drops.

use crate::node::NodeId;
use std::collections::HashMap;

/// A `(message count, byte count)` pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    /// Number of messages.
    pub msgs: u64,
    /// Total payload bytes.
    pub bytes: u64,
}

impl Counter {
    fn add(&mut self, bytes: u64) {
        self.msgs += 1;
        self.bytes += bytes;
    }
}

/// The network-wide communication ledger.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    total: Counter,
    dropped: Counter,
    by_link: HashMap<(NodeId, NodeId), Counter>,
    by_kind: HashMap<&'static str, Counter>,
}

impl Metrics {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a message of `bytes` bytes sent on `src -> dst`.
    pub fn record_send(&mut self, src: NodeId, dst: NodeId, kind: &'static str, bytes: u64) {
        self.total.add(bytes);
        self.by_link.entry((src, dst)).or_default().add(bytes);
        self.by_kind.entry(kind).or_default().add(bytes);
    }

    /// Records that a previously sent message was dropped before delivery.
    pub fn record_drop(&mut self, bytes: u64) {
        self.dropped.add(bytes);
    }

    /// Grand totals over all links.
    pub fn total(&self) -> Counter {
        self.total
    }

    /// Totals for messages that were transmitted but never delivered.
    pub fn dropped(&self) -> Counter {
        self.dropped
    }

    /// Ledger entry for one directed link.
    pub fn link(&self, src: NodeId, dst: NodeId) -> Counter {
        self.by_link.get(&(src, dst)).copied().unwrap_or_default()
    }

    /// Ledger entry for one message kind.
    pub fn kind(&self, kind: &str) -> Counter {
        self.by_kind.get(kind).copied().unwrap_or_default()
    }

    /// All kinds observed so far, sorted by label for stable output.
    pub fn kinds(&self) -> Vec<(&'static str, Counter)> {
        let mut v: Vec<_> = self.by_kind.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Total bytes sent by `src` to anyone.
    pub fn sent_by(&self, src: NodeId) -> Counter {
        let mut c = Counter::default();
        for ((s, _), v) in &self.by_link {
            if *s == src {
                c.msgs += v.msgs;
                c.bytes += v.bytes;
            }
        }
        c
    }

    /// Resets every counter to zero (used between aggregation rounds).
    pub fn reset(&mut self) {
        *self = Metrics::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_breakdowns_agree() {
        let mut m = Metrics::new();
        m.record_send(NodeId(0), NodeId(1), "a", 100);
        m.record_send(NodeId(0), NodeId(2), "a", 50);
        m.record_send(NodeId(1), NodeId(0), "b", 25);
        assert_eq!(m.total().msgs, 3);
        assert_eq!(m.total().bytes, 175);
        assert_eq!(m.link(NodeId(0), NodeId(1)).bytes, 100);
        assert_eq!(
            m.kind("a"),
            Counter {
                msgs: 2,
                bytes: 150
            }
        );
        assert_eq!(
            m.sent_by(NodeId(0)),
            Counter {
                msgs: 2,
                bytes: 150
            }
        );
        let byte_sum: u64 = m.kinds().iter().map(|(_, c)| c.bytes).sum();
        assert_eq!(byte_sum, m.total().bytes);
    }

    #[test]
    fn drops_are_separate() {
        let mut m = Metrics::new();
        m.record_send(NodeId(0), NodeId(1), "a", 10);
        m.record_drop(10);
        assert_eq!(m.total().bytes, 10, "drop does not undo the send");
        assert_eq!(m.dropped().bytes, 10);
    }

    #[test]
    fn reset_clears() {
        let mut m = Metrics::new();
        m.record_send(NodeId(0), NodeId(1), "a", 10);
        m.reset();
        assert_eq!(m.total(), Counter::default());
        assert!(m.kinds().is_empty());
    }
}
