//! Virtual time primitives.
//!
//! The simulator uses a nanosecond-resolution virtual clock. All protocol
//! timeouts and link latencies in the workspace are expressed with
//! [`SimDuration`], and instants on the virtual timeline with [`SimTime`].
//! Both are thin wrappers over `u64` nanoseconds, so arithmetic is exact and
//! the whole simulation is reproducible bit-for-bit from a seed.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated timeline, in nanoseconds since simulation
/// start.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds an instant from whole seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant expressed in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional milliseconds (negative clamps to 0).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1e6).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration expressed in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This duration expressed in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Checked subtraction; `None` if `other` is longer than `self`.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 - d.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(15).as_nanos(), 15_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_secs(2).as_millis_f64(), 2000.0);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_nanos(), 1_500_000);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
        assert_eq!(
            SimTime::from_millis(3).saturating_since(SimTime::from_millis(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_is_millis() {
        assert_eq!(format!("{}", SimTime::from_millis(15)), "15.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(1500)), "1.500ms");
    }

    #[test]
    fn checked_ops() {
        assert_eq!(SimTime::MAX.checked_add(SimDuration::from_nanos(1)), None);
        assert_eq!(
            SimDuration::from_millis(1).checked_sub(SimDuration::from_millis(2)),
            None
        );
        assert_eq!(
            SimDuration::from_millis(2).checked_sub(SimDuration::from_millis(1)),
            Some(SimDuration::from_millis(1))
        );
    }
}
