//! The discrete-event simulator core.
//!
//! A [`Sim`] owns a set of [`Actor`]s (one per [`NodeId`]), a virtual clock,
//! and a priority queue of pending events (message deliveries, timers,
//! crashes, restarts). Actors interact with the world exclusively through
//! [`Context`], which samples link latencies, arms timers, and accounts
//! communication cost. Identical seeds produce identical executions.

use crate::fault::{FaultAction, FaultPlan, LinkDropCause, LinkFaults};
use crate::latency::LatencyConfig;
use crate::metrics::Metrics;
use crate::node::{NodeId, TimerId};
use crate::payload::Payload;
use crate::time::{SimDuration, SimTime};
use crate::trace::{DropReason, Trace, TraceKind};
use crate::transport::Transport;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// A simulated node's behavior.
///
/// Implementations must also be `Any` so tests and experiments can downcast
/// back to the concrete type via [`Sim::actor`] to inspect final state.
pub trait Actor<M: Payload>: Any {
    /// Called once when the node is started (at the virtual time it was
    /// added) and never again, even across crash/restart cycles.
    fn on_start(&mut self, _t: &mut dyn Transport<M>) {}

    /// Called for every message delivered to this node.
    fn on_message(&mut self, t: &mut dyn Transport<M>, from: NodeId, msg: M);

    /// Called when a timer previously armed via [`Transport::set_timer`]
    /// fires. `tag` is the application tag supplied when arming.
    fn on_timer(&mut self, _t: &mut dyn Transport<M>, _tag: u64) {}

    /// Called when the fault plan crashes this node. The actor keeps its
    /// in-memory state (it models the process image plus any persistent
    /// storage); implementations decide what survives in [`Actor::on_restart`].
    fn on_crash(&mut self, _now: SimTime) {}

    /// Called when the fault plan restarts this node. All timers armed
    /// before the crash have been discarded.
    fn on_restart(&mut self, _t: &mut dyn Transport<M>) {}

    /// Cumulative messages this actor discarded at a bounded internal
    /// buffer (e.g. the SAC engine's `4n` next-round stash). Hosting
    /// transports mirror it into their counters so protocol-level drops
    /// show up next to transport-level ones; the default means "this
    /// actor has no such buffer".
    fn stash_evicted(&self) -> u64 {
        0
    }

    /// Cumulative share blocks this actor rejected because they failed a
    /// commitment check (Byzantine share skew). Hosting transports mirror
    /// it into their counters; the default means "this actor performs no
    /// such verification".
    fn shares_rejected(&self) -> u64 {
        0
    }
}

enum EventKind<M> {
    Start(NodeId),
    Deliver {
        src: NodeId,
        dst: NodeId,
        msg: M,
    },
    Timer {
        node: NodeId,
        id: TimerId,
        tag: u64,
        epoch: u64,
    },
    Crash(NodeId),
    Restart(NodeId),
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

/// How an externally chosen event is executed by [`Sim::step_chosen`].
///
/// This is the controlled-nondeterminism surface used by the bounded model
/// checker in `p2pfl-check`: instead of the one seeded order produced by
/// [`Sim::step`], an external scheduler enumerates [`Sim::pending_events`]
/// and picks which event happens next — and whether a message delivery is
/// delivered normally, dropped, or duplicated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepMode {
    /// Execute the event normally.
    Deliver,
    /// Discard the event without executing it (models message loss; for
    /// non-delivery events this simply removes them from the queue).
    Drop,
    /// Execute the event and re-enqueue a copy of it (models network
    /// duplication). Only meaningful for message deliveries; other event
    /// kinds are executed once, as with [`StepMode::Deliver`].
    Duplicate,
}

/// A lightweight, payload-free description of one pending queue event, as
/// enumerated by [`Sim::pending_events`] for external schedulers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingEvent {
    /// Unique, monotonically increasing id of the event; pass it to
    /// [`Sim::step_chosen`] to execute this event.
    pub seq: u64,
    /// The virtual time at which the default scheduler would fire it.
    pub at: SimTime,
    /// What the event is.
    pub kind: PendingKind,
}

/// The kind half of a [`PendingEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PendingKind {
    /// A node's one-time `on_start` callback.
    Start(NodeId),
    /// A message delivery.
    Deliver {
        /// Sender.
        src: NodeId,
        /// Receiver.
        dst: NodeId,
        /// [`Payload::kind`] label of the message.
        kind: &'static str,
        /// [`Payload::size_bytes`] of the message.
        bytes: u64,
    },
    /// A pending (non-cancelled, current-incarnation) timer.
    Timer {
        /// The node whose timer it is.
        node: NodeId,
        /// Application tag supplied when arming.
        tag: u64,
    },
    /// A scheduled crash.
    Crash(NodeId),
    /// A scheduled restart.
    Restart(NodeId),
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    // Reversed so the BinaryHeap (a max-heap) pops the earliest event;
    // ties broken by insertion order for determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct SimInner<M> {
    now: SimTime,
    queue: BinaryHeap<Event<M>>,
    seq: u64,
    next_timer: u64,
    cancelled: HashSet<TimerId>,
    crashed: Vec<bool>,
    epoch: Vec<u64>,
    partitions: HashSet<(NodeId, NodeId)>,
    loss_probability: f64,
    link_faults: Option<LinkFaults>,
    latency: LatencyConfig,
    metrics: Metrics,
    trace: Trace,
    rng: StdRng,
    node_rngs: Vec<StdRng>,
    // Earliest time each node's egress link is free again (store-and-
    // forward: serialization occupies the sender's NIC when a bandwidth
    // model is configured).
    tx_free: Vec<SimTime>,
    halted: bool,
}

impl<M: Payload> SimInner<M> {
    fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { at, seq, kind });
    }
}

/// Handle through which an actor interacts with the simulated world.
pub struct Context<'a, M: Payload> {
    node: NodeId,
    inner: &'a mut SimInner<M>,
}

impl<'a, M: Payload> Context<'a, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.now
    }

    /// The id of the node this context belongs to.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Sends `msg` to `to`. Latency is sampled from the link model; the
    /// bytes are charged to the communication ledger immediately.
    pub fn send(&mut self, to: NodeId, msg: M) {
        let src = self.node;
        if src == to {
            // Loopback delivery is free and instantaneous in the cost model,
            // matching the paper's accounting (a peer "sending to itself"
            // keeps the share locally).
            let at = self.inner.now;
            self.inner
                .push(at, EventKind::Deliver { src, dst: to, msg });
            return;
        }
        let bytes = msg.size_bytes();
        let kind = msg.kind();
        self.inner.metrics.record_send(src, to, kind, bytes);
        self.inner.trace.record(
            self.inner.now,
            TraceKind::Send {
                src,
                dst: to,
                kind,
                bytes,
            },
        );
        if self.inner.loss_probability > 0.0
            && self.inner.rng.random::<f64>() < self.inner.loss_probability
        {
            self.inner.metrics.record_drop(bytes);
            self.inner.trace.record(
                self.inner.now,
                TraceKind::Drop {
                    src,
                    dst: to,
                    reason: DropReason::Lossy,
                },
            );
            return;
        }
        // The scheduled fault plan (if any) rules on this send: it may drop
        // it, duplicate it, or hold it back. The same interpreter runs in
        // the real transport's fault layer, so one plan means one behavior.
        let (copies, extra_delay) = match self.inner.link_faults.as_mut() {
            Some(lf) => {
                let v = lf.on_send(self.inner.now, src, to);
                if v.copies == 0 {
                    self.inner.metrics.record_drop(bytes);
                    let reason = match v.cause {
                        Some(LinkDropCause::Partitioned) => DropReason::Partitioned,
                        _ => DropReason::Lossy,
                    };
                    self.inner.trace.record(
                        self.inner.now,
                        TraceKind::Drop {
                            src,
                            dst: to,
                            reason,
                        },
                    );
                    return;
                }
                (v.copies, v.extra_delay)
            }
            None => (1, SimDuration::ZERO),
        };
        // Store-and-forward: serialization occupies the sender's egress
        // link, so concurrent sends from one node queue behind each other;
        // propagation then overlaps freely.
        let tx = self.inner.latency.transmission_delay(bytes);
        let depart = if tx == SimDuration::ZERO {
            self.inner.now
        } else {
            let free = self.inner.tx_free[src.index()];
            let start = if free > self.inner.now {
                free
            } else {
                self.inner.now
            };
            let depart = start + tx;
            self.inner.tx_free[src.index()] = depart;
            depart
        };
        for _ in 0..copies {
            let prop = self.inner.latency.sample(src, to, &mut self.inner.rng);
            let at = depart + prop + extra_delay;
            self.inner.push(
                at,
                EventKind::Deliver {
                    src,
                    dst: to,
                    msg: msg.clone(),
                },
            );
        }
    }

    /// Sends `msg` to every node in `peers` except this node.
    pub fn broadcast<I: IntoIterator<Item = NodeId>>(&mut self, peers: I, msg: M)
    where
        M: Clone,
    {
        for p in peers {
            if p != self.node {
                self.send(p, msg.clone());
            }
        }
    }

    /// Arms a one-shot timer firing after `delay`, carrying `tag` back to
    /// [`Actor::on_timer`]. Returns an id usable with
    /// [`Context::cancel_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId(self.inner.next_timer);
        self.inner.next_timer += 1;
        let node = self.node;
        let epoch = self.inner.epoch[node.index()];
        let at = self.inner.now + delay;
        self.inner.push(
            at,
            EventKind::Timer {
                node,
                id,
                tag,
                epoch,
            },
        );
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired timer is a
    /// harmless no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.inner.cancelled.insert(id);
    }

    /// This node's private deterministic RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner.node_rngs[self.node.index()]
    }

    /// Stops the simulation after the current event completes.
    pub fn halt(&mut self) {
        self.inner.halted = true;
    }
}

impl<'a, M: Payload> Transport<M> for Context<'a, M> {
    fn now(&self) -> SimTime {
        Context::now(self)
    }

    fn node_id(&self) -> NodeId {
        Context::node_id(self)
    }

    fn send(&mut self, to: NodeId, msg: M) {
        Context::send(self, to, msg)
    }

    fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        Context::set_timer(self, delay, tag)
    }

    fn cancel_timer(&mut self, id: TimerId) {
        Context::cancel_timer(self, id)
    }
}

/// The discrete-event simulator. Generic over the application message type.
pub struct Sim<M: Payload> {
    inner: SimInner<M>,
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    seed: u64,
}

impl<M: Payload> Sim<M> {
    /// Creates a simulator with the paper-default latency (constant 15 ms)
    /// and the given seed. Identical seeds give identical executions.
    pub fn new(seed: u64) -> Self {
        Sim {
            inner: SimInner {
                now: SimTime::ZERO,
                queue: BinaryHeap::new(),
                seq: 0,
                next_timer: 0,
                cancelled: HashSet::new(),
                crashed: Vec::new(),
                epoch: Vec::new(),
                partitions: HashSet::new(),
                loss_probability: 0.0,
                link_faults: None,
                latency: LatencyConfig::paper_default(),
                metrics: Metrics::new(),
                trace: Trace::new(),
                rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
                node_rngs: Vec::new(),
                tx_free: Vec::new(),
                halted: false,
            },
            actors: Vec::new(),
            seed,
        }
    }

    /// Replaces the network latency configuration.
    pub fn set_latency(&mut self, cfg: LatencyConfig) {
        self.inner.latency = cfg;
    }

    /// Sets an i.i.d. per-message loss probability in `[0, 1]`.
    pub fn set_loss_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.inner.loss_probability = p;
    }

    /// Enables trace collection.
    pub fn enable_trace(&mut self) {
        self.inner.trace.set_enabled(true);
    }

    /// Adds a node running `actor`; its `on_start` runs at the current
    /// virtual time. Ids are dense and assigned in creation order.
    pub fn add_node<A: Actor<M>>(&mut self, actor: A) -> NodeId {
        let id = NodeId(self.actors.len() as u32);
        self.actors.push(Some(Box::new(actor)));
        self.inner.crashed.push(false);
        self.inner.epoch.push(0);
        self.inner.tx_free.push(SimTime::ZERO);
        let node_seed = self
            .seed
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(id.0 as u64 + 1);
        self.inner.node_rngs.push(StdRng::seed_from_u64(node_seed));
        let now = self.inner.now;
        self.inner.push(now, EventKind::Start(id));
        id
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.actors.len()
    }

    /// Whether `node` is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.inner.crashed[node.index()]
    }

    /// Schedules a crash of `node` at virtual time `at`.
    pub fn schedule_crash(&mut self, node: NodeId, at: SimTime) {
        assert!(at >= self.inner.now, "cannot schedule in the past");
        self.inner.push(at, EventKind::Crash(node));
    }

    /// Schedules a restart of `node` at virtual time `at`.
    pub fn schedule_restart(&mut self, node: NodeId, at: SimTime) {
        assert!(at >= self.inner.now, "cannot schedule in the past");
        self.inner.push(at, EventKind::Restart(node));
    }

    /// Applies a declarative [`FaultPlan`]: crash/restart entries become
    /// scheduled events (times are relative to the current virtual time)
    /// and all link-level entries are handed to a seeded [`LinkFaults`]
    /// interpreter consulted on every subsequent send. Applying a second
    /// plan replaces the first.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        let base = self.inner.now;
        for e in &plan.entries {
            match e.action {
                FaultAction::Crash { node } => {
                    self.schedule_crash(node, base + e.from.saturating_since(SimTime::ZERO))
                }
                FaultAction::Restart { node } => {
                    self.schedule_restart(node, base + e.from.saturating_since(SimTime::ZERO))
                }
                _ => {}
            }
        }
        self.inner.link_faults = Some(LinkFaults::new_at(plan, base));
    }

    /// Removes a previously applied fault plan's link-level effects.
    /// Already-scheduled crash/restart events still fire.
    pub fn clear_fault_plan(&mut self) {
        self.inner.link_faults = None;
    }

    /// Blocks the directed link `src -> dst` from now on. Messages already
    /// in flight are dropped at their delivery time.
    pub fn partition(&mut self, src: NodeId, dst: NodeId) {
        self.inner.partitions.insert((src, dst));
    }

    /// Blocks both directions between `a` and `b`.
    pub fn partition_pair(&mut self, a: NodeId, b: NodeId) {
        self.partition(a, b);
        self.partition(b, a);
    }

    /// Restores the directed link `src -> dst`.
    pub fn heal(&mut self, src: NodeId, dst: NodeId) {
        self.inner.partitions.remove(&(src, dst));
    }

    /// Injects a message from outside the simulation (e.g. an operator
    /// request), delivered to `dst` after `delay`, attributed to `src`.
    /// Injected messages do not enter the cost ledger.
    pub fn inject(&mut self, src: NodeId, dst: NodeId, msg: M, delay: SimDuration) {
        let at = self.inner.now + delay;
        self.inner.push(at, EventKind::Deliver { src, dst, msg });
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.now
    }

    /// Read access to the communication ledger.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Write access to the communication ledger (e.g. to reset between
    /// rounds).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.inner.metrics
    }

    /// The collected trace.
    pub fn trace(&self) -> &Trace {
        &self.inner.trace
    }

    /// Mutable access to the trace (to clear between phases).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.inner.trace
    }

    /// Immutable access to a node's actor, downcast to its concrete type.
    /// Panics if the type does not match.
    pub fn actor<A: Actor<M>>(&self, node: NodeId) -> &A {
        let a = self.actors[node.index()]
            .as_ref()
            .expect("actor is currently being executed");
        (a.as_ref() as &dyn Any)
            .downcast_ref::<A>()
            .expect("actor type mismatch")
    }

    /// Mutable access to a node's actor, downcast to its concrete type.
    pub fn actor_mut<A: Actor<M>>(&mut self, node: NodeId) -> &mut A {
        let a = self.actors[node.index()]
            .as_mut()
            .expect("actor is currently being executed");
        (a.as_mut() as &mut dyn Any)
            .downcast_mut::<A>()
            .expect("actor type mismatch")
    }

    /// Executes `f` against `node`'s actor with a live [`Context`] at the
    /// current virtual time — the hook through which external drivers (test
    /// harnesses, round orchestrators) invoke actor entry points that need
    /// to send messages or arm timers. Panics if the node is crashed or the
    /// concrete type does not match.
    pub fn exec<A, F, R>(&mut self, node: NodeId, f: F) -> R
    where
        A: Actor<M>,
        F: FnOnce(&mut A, &mut Context<'_, M>) -> R,
    {
        assert!(
            !self.inner.crashed[node.index()],
            "exec on crashed node {node}"
        );
        let mut actor = self.actors[node.index()]
            .take()
            .expect("re-entrant actor execution");
        let concrete = (actor.as_mut() as &mut dyn Any)
            .downcast_mut::<A>()
            .expect("actor type mismatch");
        let mut ctx = Context {
            node,
            inner: &mut self.inner,
        };
        let r = f(concrete, &mut ctx);
        self.actors[node.index()] = Some(actor);
        r
    }

    /// Processes a single event. Returns `false` when the queue is empty or
    /// the simulation was halted.
    pub fn step(&mut self) -> bool {
        if self.inner.halted {
            return false;
        }
        let Some(ev) = self.inner.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.inner.now, "time went backwards");
        self.inner.now = ev.at;
        self.dispatch_event(ev);
        true
    }

    /// Executes one event (clock already advanced to `ev.at`).
    fn dispatch_event(&mut self, ev: Event<M>) {
        match ev.kind {
            EventKind::Start(node) => {
                self.with_actor(node, |actor, ctx| actor.on_start(ctx));
            }
            EventKind::Deliver { src, dst, msg } => {
                if self.inner.crashed[dst.index()] {
                    self.inner.metrics.record_drop(msg.size_bytes());
                    self.inner.trace.record(
                        ev.at,
                        TraceKind::Drop {
                            src,
                            dst,
                            reason: DropReason::DestinationCrashed,
                        },
                    );
                } else if self.inner.partitions.contains(&(src, dst)) {
                    self.inner.metrics.record_drop(msg.size_bytes());
                    self.inner.trace.record(
                        ev.at,
                        TraceKind::Drop {
                            src,
                            dst,
                            reason: DropReason::Partitioned,
                        },
                    );
                } else {
                    self.inner.trace.record(
                        ev.at,
                        TraceKind::Deliver {
                            src,
                            dst,
                            kind: msg.kind(),
                        },
                    );
                    self.with_actor(dst, |actor, ctx| actor.on_message(ctx, src, msg));
                }
            }
            EventKind::Timer {
                node,
                id,
                tag,
                epoch,
            } => {
                if self.inner.cancelled.remove(&id) {
                    // cancelled; nothing to do
                } else if self.inner.crashed[node.index()]
                    || self.inner.epoch[node.index()] != epoch
                {
                    // timer belonged to a previous incarnation of the node
                } else {
                    self.inner
                        .trace
                        .record(ev.at, TraceKind::TimerFired { node, tag });
                    self.with_actor(node, |actor, ctx| actor.on_timer(ctx, tag));
                }
            }
            EventKind::Crash(node) => {
                if !self.inner.crashed[node.index()] {
                    self.inner.crashed[node.index()] = true;
                    self.inner.epoch[node.index()] += 1;
                    self.inner.trace.record(ev.at, TraceKind::Crash { node });
                    let now = self.inner.now;
                    if let Some(actor) = self.actors[node.index()].as_mut() {
                        actor.on_crash(now);
                    }
                }
            }
            EventKind::Restart(node) => {
                if self.inner.crashed[node.index()] {
                    self.inner.crashed[node.index()] = false;
                    self.inner.trace.record(ev.at, TraceKind::Restart { node });
                    self.with_actor(node, |actor, ctx| actor.on_restart(ctx));
                }
            }
        }
    }

    /// Whether a queued event would do anything if executed. Cancelled and
    /// stale-incarnation timers are dead weight; external schedulers should
    /// not waste exploration depth on them.
    fn event_is_live(&self, ev: &Event<M>) -> bool {
        match &ev.kind {
            EventKind::Timer {
                node, id, epoch, ..
            } => {
                !self.inner.cancelled.contains(id)
                    && !self.inner.crashed[node.index()]
                    && self.inner.epoch[node.index()] == *epoch
            }
            _ => true,
        }
    }

    /// Enumerates live pending events in canonical `(at, seq)` order — the
    /// choice points offered to an external scheduler. Cancelled and
    /// stale-incarnation timers are filtered out (executing them is a no-op).
    pub fn pending_events(&self) -> Vec<PendingEvent> {
        let mut out: Vec<PendingEvent> = self
            .inner
            .queue
            .iter()
            .filter(|ev| self.event_is_live(ev))
            .map(|ev| PendingEvent {
                seq: ev.seq,
                at: ev.at,
                kind: match &ev.kind {
                    EventKind::Start(n) => PendingKind::Start(*n),
                    EventKind::Deliver { src, dst, msg } => PendingKind::Deliver {
                        src: *src,
                        dst: *dst,
                        kind: msg.kind(),
                        bytes: msg.size_bytes(),
                    },
                    EventKind::Timer { node, tag, .. } => PendingKind::Timer {
                        node: *node,
                        tag: *tag,
                    },
                    EventKind::Crash(n) => PendingKind::Crash(*n),
                    EventKind::Restart(n) => PendingKind::Restart(*n),
                },
            })
            .collect();
        out.sort_by_key(|e| (e.at, e.seq));
        out
    }

    /// Borrows every in-flight message delivery `(src, dst, msg)`, so
    /// invariant oracles can reason about what is still on the wire.
    pub fn pending_deliveries(&self) -> Vec<(NodeId, NodeId, &M)> {
        let mut out: Vec<(u64, (NodeId, NodeId, &M))> = self
            .inner
            .queue
            .iter()
            .filter_map(|ev| match &ev.kind {
                EventKind::Deliver { src, dst, msg } => Some((ev.seq, (*src, *dst, msg))),
                _ => None,
            })
            .collect();
        out.sort_by_key(|(seq, _)| *seq);
        out.into_iter().map(|(_, d)| d).collect()
    }

    /// Executes the pending event with id `seq` out of queue order — the
    /// scheduler hook used by the bounded model checker. The virtual clock
    /// advances to `max(now, event.at)`; an event chosen "late" (after the
    /// clock moved past its deadline) executes at the current time, which
    /// models arbitrary network and timer delays elsewhere. Returns `false`
    /// if no live event with that id exists. The default [`Sim::step`] path
    /// is unaffected.
    pub fn step_chosen(&mut self, seq: u64, mode: StepMode) -> bool {
        let mut drained: Vec<Event<M>> = std::mem::take(&mut self.inner.queue).into_vec();
        let Some(pos) = drained.iter().position(|ev| ev.seq == seq) else {
            self.inner.queue = BinaryHeap::from(drained);
            return false;
        };
        let ev = drained.swap_remove(pos);
        self.inner.queue = BinaryHeap::from(drained);
        if !self.event_is_live(&ev) {
            return false;
        }
        if self.inner.now < ev.at {
            self.inner.now = ev.at;
        }
        let at = self.inner.now;
        match mode {
            StepMode::Drop => {
                if let EventKind::Deliver { src, dst, msg } = &ev.kind {
                    self.inner.metrics.record_drop(msg.size_bytes());
                    self.inner.trace.record(
                        at,
                        TraceKind::Drop {
                            src: *src,
                            dst: *dst,
                            reason: DropReason::Lossy,
                        },
                    );
                }
            }
            StepMode::Deliver => {
                self.dispatch_event(Event { at, ..ev });
            }
            StepMode::Duplicate => {
                if let EventKind::Deliver { src, dst, msg } = &ev.kind {
                    let copy = EventKind::Deliver {
                        src: *src,
                        dst: *dst,
                        msg: msg.clone(),
                    };
                    self.inner.push(at, copy);
                }
                self.dispatch_event(Event { at, ..ev });
            }
        }
        true
    }

    fn with_actor<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Actor<M>, &mut Context<'_, M>),
    {
        // Temporarily detach the actor so it can mutate itself while the
        // context mutably borrows the rest of the simulator.
        let mut actor = self.actors[node.index()]
            .take()
            .expect("re-entrant actor execution");
        let mut ctx = Context {
            node,
            inner: &mut self.inner,
        };
        f(actor.as_mut(), &mut ctx);
        self.actors[node.index()] = Some(actor);
    }

    /// Runs until the virtual clock reaches `deadline`, the queue drains, or
    /// an actor halts the simulation. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        loop {
            match self.inner.queue.peek() {
                Some(ev) if ev.at <= deadline && !self.inner.halted => {
                    self.step();
                    n += 1;
                }
                _ => break,
            }
        }
        if self.inner.now < deadline {
            self.inner.now = deadline;
        }
        n
    }

    /// Runs for `d` more virtual time.
    pub fn run_for(&mut self, d: SimDuration) -> u64 {
        let deadline = self.inner.now + d;
        self.run_until(deadline)
    }

    /// Runs until the event queue is empty, the simulation halts, or
    /// `max_events` events have been processed. Returns events processed.
    pub fn run_until_quiet(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Whether an actor has called [`Context::halt`].
    pub fn is_halted(&self) -> bool {
        self.inner.halted
    }

    /// Order-insensitive digest of the live event queue, independent of
    /// virtual time: two simulations whose queues hold the same multiset of
    /// deliveries (by wire bytes), timers (by node and tag) and process
    /// events digest equally even if they got there along different
    /// schedules. Combined with actor-state fingerprints this canonicalizes
    /// a global state for the model checker's visited set.
    pub fn queue_digest(&self) -> u64
    where
        M: serde::Serialize,
    {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut per_event: Vec<u64> = self
            .inner
            .queue
            .iter()
            .filter(|ev| self.event_is_live(ev))
            .map(|ev| {
                let mut h = DefaultHasher::new();
                match &ev.kind {
                    EventKind::Start(n) => (0u8, n.0).hash(&mut h),
                    EventKind::Deliver { src, dst, msg } => {
                        (1u8, src.0, dst.0).hash(&mut h);
                        crate::codec::to_bytes(msg).hash(&mut h);
                    }
                    EventKind::Timer { node, tag, .. } => (2u8, node.0, *tag).hash(&mut h),
                    EventKind::Crash(n) => (3u8, n.0).hash(&mut h),
                    EventKind::Restart(n) => (4u8, n.0).hash(&mut h),
                }
                h.finish()
            })
            .collect();
        per_event.sort_unstable();
        let mut h = DefaultHasher::new();
        per_event.hash(&mut h);
        h.finish()
    }

    /// Clears the halt flag so the simulation can be resumed.
    pub fn clear_halt(&mut self) {
        self.inner.halted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Blob;

    /// Echoes every blob back to the sender and counts deliveries.
    struct Echo {
        received: u64,
        echo: bool,
    }

    impl Actor<Blob> for Echo {
        fn on_message(&mut self, ctx: &mut dyn Transport<Blob>, from: NodeId, msg: Blob) {
            self.received += 1;
            if self.echo {
                ctx.send(
                    from,
                    Blob {
                        size: msg.size,
                        tag: msg.tag + 1,
                    },
                );
            }
        }
    }

    /// Sends one blob to a peer on start.
    struct Pinger {
        peer: NodeId,
        replies: u64,
        reply_at: Option<SimTime>,
    }

    impl Actor<Blob> for Pinger {
        fn on_start(&mut self, ctx: &mut dyn Transport<Blob>) {
            ctx.send(self.peer, Blob::of_size(100));
        }
        fn on_message(&mut self, ctx: &mut dyn Transport<Blob>, _from: NodeId, _msg: Blob) {
            self.replies += 1;
            self.reply_at = Some(ctx.now());
        }
    }

    #[test]
    fn ping_pong_round_trip_takes_two_link_delays() {
        let mut sim = Sim::new(42);
        let echo = sim.add_node(Echo {
            received: 0,
            echo: true,
        });
        let pinger = sim.add_node(Pinger {
            peer: echo,
            replies: 0,
            reply_at: None,
        });
        sim.run_until_quiet(1000);
        let p = sim.actor::<Pinger>(pinger);
        assert_eq!(p.replies, 1);
        // 15ms out + 15ms back with the paper-default constant latency.
        assert_eq!(p.reply_at, Some(SimTime::from_millis(30)));
        assert_eq!(sim.metrics().total().msgs, 2);
        assert_eq!(sim.metrics().total().bytes, 200);
    }

    #[test]
    fn crash_drops_deliveries_and_restart_resumes() {
        let mut sim = Sim::new(1);
        let echo = sim.add_node(Echo {
            received: 0,
            echo: false,
        });
        let pinger = sim.add_node(Pinger {
            peer: echo,
            replies: 0,
            reply_at: None,
        });
        let _ = pinger;
        sim.schedule_crash(echo, SimTime::from_millis(5));
        sim.run_until_quiet(1000);
        assert_eq!(sim.actor::<Echo>(echo).received, 0, "in-flight msg dropped");
        assert_eq!(sim.metrics().dropped().msgs, 1);

        // A later injection after restart is delivered. The clock has
        // advanced past the drop, so restart relative to `now`.
        let restart_at = sim.now() + SimDuration::from_millis(10);
        sim.schedule_restart(echo, restart_at);
        sim.inject(
            NodeId(1),
            echo,
            Blob::of_size(1),
            SimDuration::from_millis(20),
        );
        sim.run_until_quiet(1000);
        assert_eq!(sim.actor::<Echo>(echo).received, 1);
    }

    #[test]
    fn timers_fire_in_order_and_cancel_works() {
        struct TimerBox {
            fired: Vec<u64>,
            cancel_second: bool,
        }
        impl Actor<Blob> for TimerBox {
            fn on_start(&mut self, ctx: &mut dyn Transport<Blob>) {
                ctx.set_timer(SimDuration::from_millis(3), 3);
                let t2 = ctx.set_timer(SimDuration::from_millis(2), 2);
                ctx.set_timer(SimDuration::from_millis(1), 1);
                if self.cancel_second {
                    ctx.cancel_timer(t2);
                }
            }
            fn on_message(&mut self, _: &mut dyn Transport<Blob>, _: NodeId, _: Blob) {}
            fn on_timer(&mut self, _ctx: &mut dyn Transport<Blob>, tag: u64) {
                self.fired.push(tag);
            }
        }
        let mut sim = Sim::new(7);
        let n = sim.add_node(TimerBox {
            fired: vec![],
            cancel_second: true,
        });
        sim.run_until_quiet(100);
        assert_eq!(sim.actor::<TimerBox>(n).fired, vec![1, 3]);
    }

    #[test]
    fn crash_discards_pending_timers_across_restart() {
        struct T {
            fired: u64,
        }
        impl Actor<Blob> for T {
            fn on_start(&mut self, ctx: &mut dyn Transport<Blob>) {
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
            fn on_message(&mut self, _: &mut dyn Transport<Blob>, _: NodeId, _: Blob) {}
            fn on_timer(&mut self, _: &mut dyn Transport<Blob>, _: u64) {
                self.fired += 1;
            }
        }
        let mut sim = Sim::new(9);
        let n = sim.add_node(T { fired: 0 });
        sim.schedule_crash(n, SimTime::from_millis(1));
        sim.schedule_restart(n, SimTime::from_millis(2));
        sim.run_until_quiet(100);
        assert_eq!(
            sim.actor::<T>(n).fired,
            0,
            "pre-crash timer must not fire after restart"
        );
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        fn run(seed: u64) -> (u64, u64) {
            let mut sim = Sim::new(seed);
            sim.set_latency(LatencyConfig::uniform_default(
                crate::latency::Latency::Uniform {
                    min: SimDuration::from_millis(1),
                    max: SimDuration::from_millis(30),
                },
            ));
            let echo = sim.add_node(Echo {
                received: 0,
                echo: true,
            });
            for _ in 0..5 {
                sim.add_node(Pinger {
                    peer: echo,
                    replies: 0,
                    reply_at: None,
                });
            }
            sim.run_until_quiet(10_000);
            (sim.now().as_nanos(), sim.metrics().total().bytes)
        }
        assert_eq!(run(123), run(123));
        assert_ne!(run(123).0, run(124).0, "different seeds should differ");
    }

    #[test]
    fn partition_blocks_until_healed() {
        let mut sim = Sim::new(3);
        let echo = sim.add_node(Echo {
            received: 0,
            echo: false,
        });
        let pinger = sim.add_node(Pinger {
            peer: echo,
            replies: 0,
            reply_at: None,
        });
        sim.partition(pinger, echo);
        sim.run_until_quiet(100);
        assert_eq!(sim.actor::<Echo>(echo).received, 0);
        sim.heal(pinger, echo);
        sim.inject(pinger, echo, Blob::of_size(1), SimDuration::from_millis(1));
        sim.run_until_quiet(100);
        assert_eq!(sim.actor::<Echo>(echo).received, 1);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim: Sim<Blob> = Sim::new(5);
        sim.run_until(SimTime::from_millis(500));
        assert_eq!(sim.now(), SimTime::from_millis(500));
    }

    #[test]
    fn fault_plan_duplicates_delays_and_crashes() {
        use crate::fault::FaultPlan;
        let mut sim = Sim::new(21);
        let echo = sim.add_node(Echo {
            received: 0,
            echo: false,
        });
        let pinger = sim.add_node(Pinger {
            peer: echo,
            replies: 0,
            reply_at: None,
        });
        let _ = pinger;
        // Every message duplicated and held back 40 ms past the 15 ms link
        // latency; the node crashes at 100 ms and restarts at 150 ms.
        let plan = FaultPlan::new(77)
            .duplicate(SimTime::ZERO, SimTime::from_secs(1), 1.0)
            .delay(
                SimTime::ZERO,
                SimTime::from_secs(1),
                SimDuration::from_millis(40),
                SimDuration::ZERO,
            )
            .crash(SimTime::from_millis(100), echo)
            .restart(SimTime::from_millis(150), echo);
        sim.apply_fault_plan(&plan);
        sim.run_until(SimTime::from_millis(90));
        assert_eq!(
            sim.actor::<Echo>(echo).received,
            2,
            "duplicate fault must deliver two copies"
        );
        assert!(!sim.is_crashed(echo));
        sim.run_until(SimTime::from_millis(120));
        assert!(sim.is_crashed(echo), "plan crash must fire");
        sim.run_until(SimTime::from_millis(200));
        assert!(!sim.is_crashed(echo), "plan restart must fire");
    }

    #[test]
    fn fault_plan_loss_window_expires() {
        use crate::fault::FaultPlan;
        let mut sim = Sim::new(22);
        let echo = sim.add_node(Echo {
            received: 0,
            echo: false,
        });
        let plan = FaultPlan::new(3).loss(SimTime::ZERO, SimTime::from_millis(50), 1.0);
        sim.apply_fault_plan(&plan);
        sim.inject(
            NodeId(9),
            echo,
            Blob::of_size(1),
            SimDuration::from_millis(1),
        );
        // Injected messages bypass Context::send; drive a real send instead.
        let _p = sim.add_node(Pinger {
            peer: echo,
            replies: 0,
            reply_at: None,
        });
        sim.run_until(SimTime::from_millis(60));
        assert_eq!(sim.metrics().dropped().msgs, 1, "send inside window drops");
        let pinger2 = sim.add_node(Pinger {
            peer: echo,
            replies: 0,
            reply_at: None,
        });
        let _ = pinger2;
        sim.run_until(SimTime::from_millis(200));
        assert_eq!(
            sim.actor::<Echo>(echo).received,
            2,
            "the injected message and the post-window send must arrive"
        );
    }

    #[test]
    fn chosen_steps_reorder_drop_and_duplicate() {
        let mut sim = Sim::new(17);
        let echo = sim.add_node(Echo {
            received: 0,
            echo: false,
        });
        // Two senders, so two deliveries are pending at once.
        let p1 = sim.add_node(Pinger {
            peer: echo,
            replies: 0,
            reply_at: None,
        });
        let p2 = sim.add_node(Pinger {
            peer: echo,
            replies: 0,
            reply_at: None,
        });
        let _ = (p1, p2);
        // Run the three Start events under external control.
        for _ in 0..3 {
            let starts: Vec<_> = sim
                .pending_events()
                .into_iter()
                .filter(|e| matches!(e.kind, PendingKind::Start(_)))
                .collect();
            assert!(sim.step_chosen(starts[0].seq, StepMode::Deliver));
        }
        let pend = sim.pending_events();
        let delivers: Vec<_> = pend
            .iter()
            .filter(|e| matches!(e.kind, PendingKind::Deliver { .. }))
            .collect();
        assert_eq!(delivers.len(), 2);
        assert_eq!(sim.pending_deliveries().len(), 2);
        // Deliver the *later* one first (out of queue order), duplicated.
        assert!(sim.step_chosen(delivers[1].seq, StepMode::Duplicate));
        assert_eq!(sim.actor::<Echo>(echo).received, 1);
        // The duplicate copy is now pending alongside the first delivery.
        assert_eq!(sim.pending_deliveries().len(), 2);
        // Drop the first delivery.
        assert!(sim.step_chosen(delivers[0].seq, StepMode::Drop));
        assert_eq!(sim.actor::<Echo>(echo).received, 1);
        assert_eq!(sim.metrics().dropped().msgs, 1);
        // Deliver the duplicate copy.
        let last = sim.pending_events();
        assert_eq!(last.len(), 1);
        assert!(sim.step_chosen(last[0].seq, StepMode::Deliver));
        assert_eq!(sim.actor::<Echo>(echo).received, 2);
        assert!(sim.pending_events().is_empty());
        // Unknown seq is rejected without disturbing the queue.
        assert!(!sim.step_chosen(9999, StepMode::Deliver));
    }

    #[test]
    fn queue_digest_is_schedule_insensitive() {
        fn build() -> (Sim<Blob>, Vec<u64>) {
            let mut sim = Sim::new(23);
            let echo = sim.add_node(Echo {
                received: 0,
                echo: false,
            });
            sim.add_node(Pinger {
                peer: echo,
                replies: 0,
                reply_at: None,
            });
            sim.add_node(Pinger {
                peer: echo,
                replies: 0,
                reply_at: None,
            });
            let starts: Vec<u64> = sim.pending_events().iter().map(|e| e.seq).collect();
            (sim, starts)
        }
        // Same Start events executed in two different orders must leave
        // queues with identical digests (same multiset of deliveries).
        let (mut a, sa) = build();
        for &s in &sa {
            a.step_chosen(s, StepMode::Deliver);
        }
        let (mut b, sb) = build();
        for &s in sb.iter().rev() {
            b.step_chosen(s, StepMode::Deliver);
        }
        assert_eq!(a.queue_digest(), b.queue_digest());
        // Dropping a delivery changes the digest.
        let seq = a.pending_events()[0].seq;
        a.step_chosen(seq, StepMode::Drop);
        assert_ne!(a.queue_digest(), b.queue_digest());
    }

    #[test]
    fn pending_events_filter_cancelled_timers() {
        struct T;
        impl Actor<Blob> for T {
            fn on_start(&mut self, ctx: &mut dyn Transport<Blob>) {
                let a = ctx.set_timer(SimDuration::from_millis(5), 1);
                ctx.set_timer(SimDuration::from_millis(6), 2);
                ctx.cancel_timer(a);
            }
            fn on_message(&mut self, _: &mut dyn Transport<Blob>, _: NodeId, _: Blob) {}
        }
        let mut sim = Sim::new(3);
        sim.add_node(T);
        let start = sim.pending_events()[0].seq;
        sim.step_chosen(start, StepMode::Deliver);
        let pend = sim.pending_events();
        assert_eq!(pend.len(), 1, "cancelled timer filtered: {pend:?}");
        assert!(matches!(pend[0].kind, PendingKind::Timer { tag: 2, .. }));
    }

    #[test]
    fn loss_probability_one_drops_everything() {
        let mut sim = Sim::new(11);
        sim.set_loss_probability(1.0);
        let echo = sim.add_node(Echo {
            received: 0,
            echo: false,
        });
        let _p = sim.add_node(Pinger {
            peer: echo,
            replies: 0,
            reply_at: None,
        });
        sim.run_until_quiet(100);
        assert_eq!(sim.actor::<Echo>(echo).received, 0);
        assert_eq!(sim.metrics().dropped().msgs, 1);
        // The send is still charged: bandwidth was spent.
        assert_eq!(sim.metrics().total().msgs, 1);
    }
}
