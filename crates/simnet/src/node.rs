//! Node identity.

use std::fmt;

/// Identifier of a simulated node (peer). Dense indices assigned by the
/// simulator in creation order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The dense index behind this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a pending timer, unique over the lifetime of one simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct TimerId(pub u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(format!("{}", NodeId(3)), "n3");
        assert_eq!(NodeId(7).index(), 7);
    }
}
