//! Compact binary wire format and length-delimited framing.
//!
//! The codec implements the workspace serde data model
//! ([`serde::Serializer`] / [`serde::Deserializer`]) over a flat byte
//! buffer:
//!
//! * integers are fixed-width little-endian (`u64`/`i64` as 8 bytes,
//!   floats as their IEEE-754 bit patterns);
//! * strings and sequences carry a `u32` length prefix;
//! * struct and field names are *not* encoded — both ends agree on the
//!   schema, which is exactly the property the derived `Deserialize`
//!   impls guarantee;
//! * enum variants are a `u32` index, validated against the expected
//!   variant table on decode;
//! * options are a one-byte presence flag.
//!
//! On the wire each message is one *frame*: a `u32` little-endian payload
//! length followed by the payload, capped at [`MAX_FRAME`] so a corrupt or
//! hostile length prefix cannot trigger an unbounded allocation.

use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::io::{self, Read, Write};

/// Hard upper bound on a frame payload (64 MiB). The largest legitimate
/// message in this workspace is a `ShareBlock` of CNN-sized weight
/// partitions, well under this.
pub const MAX_FRAME: usize = 64 << 20;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    Eof,
    /// The value decoded, but bytes were left over.
    TrailingBytes,
    /// An enum variant index outside the expected table.
    InvalidVariant,
    /// Data parsed but is semantically invalid (bad bool byte, non-UTF-8
    /// string, out-of-range integer, ...).
    Invalid(&'static str),
    /// A length prefix claims more bytes than the input still holds — a
    /// truncated or hostile frame, rejected before any allocation or
    /// element loop is sized from it.
    LengthOverrun {
        /// The declared string/sequence length.
        declared: usize,
        /// The bytes actually remaining in the input.
        available: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Eof => write!(f, "unexpected end of input"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after value"),
            CodecError::InvalidVariant => write!(f, "invalid enum variant index"),
            CodecError::Invalid(msg) => write!(f, "invalid data: {msg}"),
            CodecError::LengthOverrun {
                declared,
                available,
            } => write!(
                f,
                "length prefix declares {declared} bytes but only {available} remain"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serializes `value` into a fresh byte buffer.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut ser = BinSerializer { buf: Vec::new() };
    // Encoding fails only for a sequence longer than `u32::MAX` elements,
    // which could never fit inside a MAX_FRAME-capped frame anyway. An
    // empty buffer is returned so the failure surfaces as a framing /
    // decode error instead of a crash in the send path.
    if value.serialize(&mut ser).is_err() {
        debug_assert!(false, "unencodable value: sequence longer than u32::MAX");
        return Vec::new();
    }
    ser.buf
}

/// Deserializes one `T` from `bytes`, requiring the value to consume the
/// whole buffer.
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut de = BinDeserializer { bytes, pos: 0 };
    let value = T::deserialize(&mut de)?;
    if de.pos != bytes.len() {
        return Err(CodecError::TrailingBytes);
    }
    Ok(value)
}

/// Event-stream serializer writing the compact binary format.
pub struct BinSerializer {
    buf: Vec<u8>,
}

impl Serializer for BinSerializer {
    type Error = CodecError;

    fn ser_bool(&mut self, v: bool) -> Result<(), CodecError> {
        self.buf.push(v as u8);
        Ok(())
    }
    fn ser_u64(&mut self, v: u64) -> Result<(), CodecError> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn ser_i64(&mut self, v: i64) -> Result<(), CodecError> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn ser_f32(&mut self, v: f32) -> Result<(), CodecError> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn ser_f64(&mut self, v: f64) -> Result<(), CodecError> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn ser_str(&mut self, v: &str) -> Result<(), CodecError> {
        self.write_len(v.len())?;
        self.buf.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn begin_seq(&mut self, len: usize) -> Result<(), CodecError> {
        self.write_len(len)
    }
    fn seq_element(&mut self) -> Result<(), CodecError> {
        Ok(())
    }
    fn end_seq(&mut self) -> Result<(), CodecError> {
        Ok(())
    }

    fn begin_struct(&mut self, _name: &'static str, _len: usize) -> Result<(), CodecError> {
        Ok(())
    }
    fn field(&mut self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }
    fn end_struct(&mut self) -> Result<(), CodecError> {
        Ok(())
    }

    fn begin_variant(
        &mut self,
        _name: &'static str,
        index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<(), CodecError> {
        self.buf.extend_from_slice(&index.to_le_bytes());
        Ok(())
    }
    fn end_variant(&mut self) -> Result<(), CodecError> {
        Ok(())
    }

    fn ser_none(&mut self) -> Result<(), CodecError> {
        self.buf.push(0);
        Ok(())
    }
    fn begin_some(&mut self) -> Result<(), CodecError> {
        self.buf.push(1);
        Ok(())
    }
}

impl BinSerializer {
    fn write_len(&mut self, len: usize) -> Result<(), CodecError> {
        let len =
            u32::try_from(len).map_err(|_| CodecError::Invalid("sequence longer than u32::MAX"))?;
        self.buf.extend_from_slice(&len.to_le_bytes());
        Ok(())
    }
}

/// Event-stream deserializer reading the compact binary format.
pub struct BinDeserializer<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BinDeserializer<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Eof)?;
        let slice = self.bytes.get(self.pos..end).ok_or(CodecError::Eof)?;
        self.pos = end;
        Ok(slice)
    }

    /// Takes exactly `N` bytes as an array; the fixed-width integer and
    /// float decoders build on this so no `try_into().unwrap()` sits in
    /// the hostile-byte path.
    fn take_arr<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        let slice = self.take(N)?;
        <[u8; N]>::try_from(slice).map_err(|_| CodecError::Eof)
    }

    fn read_len(&mut self) -> Result<usize, CodecError> {
        let raw = u32::from_le_bytes(self.take_arr()?) as usize;
        // Every string byte and sequence element costs at least one input
        // byte, so a declared length beyond the remaining input can never
        // complete. Rejecting it here keeps hostile prefixes from sizing
        // allocations or element loops.
        let available = self.bytes.len() - self.pos;
        if raw > available {
            return Err(CodecError::LengthOverrun {
                declared: raw,
                available,
            });
        }
        Ok(raw)
    }
}

impl Deserializer for BinDeserializer<'_> {
    type Error = CodecError;

    fn de_bool(&mut self) -> Result<bool, CodecError> {
        let [byte] = self.take_arr()?;
        match byte {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool byte")),
        }
    }
    fn de_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take_arr()?))
    }
    fn de_i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take_arr()?))
    }
    fn de_f32(&mut self) -> Result<f32, CodecError> {
        Ok(f32::from_le_bytes(self.take_arr()?))
    }
    fn de_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take_arr()?))
    }
    fn de_string(&mut self) -> Result<String, CodecError> {
        let len = self.read_len()?;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| CodecError::Invalid("utf-8"))
    }

    fn begin_seq(&mut self) -> Result<usize, CodecError> {
        self.read_len()
    }
    fn seq_element(&mut self) -> Result<(), CodecError> {
        Ok(())
    }
    fn end_seq(&mut self) -> Result<(), CodecError> {
        Ok(())
    }

    fn begin_struct(&mut self, _name: &'static str, _len: usize) -> Result<(), CodecError> {
        Ok(())
    }
    fn field(&mut self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }
    fn end_struct(&mut self) -> Result<(), CodecError> {
        Ok(())
    }

    fn begin_variant(
        &mut self,
        _name: &'static str,
        variants: &'static [&'static str],
    ) -> Result<u32, CodecError> {
        let index = u32::from_le_bytes(self.take_arr()?);
        if (index as usize) < variants.len() {
            Ok(index)
        } else {
            Err(CodecError::InvalidVariant)
        }
    }
    fn end_variant(&mut self) -> Result<(), CodecError> {
        Ok(())
    }

    fn de_option(&mut self) -> Result<bool, CodecError> {
        let [byte] = self.take_arr()?;
        match byte {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("option byte")),
        }
    }

    fn invalid(&mut self, msg: &'static str) -> CodecError {
        CodecError::Invalid(msg)
    }
}

/// Wraps an already-encoded payload into wire-frame form: the 4-byte
/// little-endian length prefix followed by the payload, in one buffer.
/// Returns `None` for payloads over [`MAX_FRAME`].
pub fn frame_bytes(payload: &[u8]) -> Option<Vec<u8>> {
    if payload.len() > MAX_FRAME {
        return None;
    }
    let mut framed = Vec::with_capacity(payload.len() + 4);
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(payload);
    Some(framed)
}

/// Serializes `value` directly into wire-frame form (length prefix +
/// payload) in a single allocation — the batched write path of the async
/// reactor queues these verbatim and hands them to vectored writes, so
/// no per-frame copy or extra syscall happens later. Returns `None` when
/// the value cannot be encoded or exceeds [`MAX_FRAME`].
pub fn to_frame_bytes<T: Serialize + ?Sized>(value: &T) -> Option<Vec<u8>> {
    let mut ser = BinSerializer { buf: vec![0u8; 4] };
    if value.serialize(&mut ser).is_err() {
        debug_assert!(false, "unencodable value: sequence longer than u32::MAX");
        return None;
    }
    let len = ser.buf.len().saturating_sub(4);
    if len > MAX_FRAME {
        return None;
    }
    let prefix = (len as u32).to_le_bytes();
    ser.buf.get_mut(..4)?.copy_from_slice(&prefix);
    Some(ser.buf)
}

/// Writes `payload` as one length-delimited frame. Prefix and payload go
/// out in a single `write_all`, so a `TCP_NODELAY` socket emits one
/// segment per frame instead of two.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let Some(framed) = frame_bytes(payload) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    };
    w.write_all(&framed)?;
    w.flush()
}

/// Incremental frame parser for non-blocking / timeout-driven readers.
///
/// [`FrameBuffer::extend`] appends raw received bytes;
/// [`FrameBuffer::next_frame`] yields complete frames as they become
/// available, preserving partial frames across reads so a read timeout in
/// the middle of a frame never desynchronizes the stream.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, if one is buffered.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, CodecError> {
        let Some(header) = self.buf.first_chunk::<4>() else {
            return Ok(None);
        };
        let len = u32::from_le_bytes(*header) as usize;
        if len > MAX_FRAME {
            return Err(CodecError::Invalid("frame exceeds MAX_FRAME"));
        }
        let Some(payload) = self.buf.get(4..4 + len) else {
            return Ok(None);
        };
        let frame = payload.to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(frame))
    }
}

/// Reads one frame from a blocking reader (test helper; the hub uses
/// [`FrameBuffer`] so it can interleave timeout checks).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Vec<u8>> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(serde::Serialize, serde::Deserialize, Debug, PartialEq, Clone)]
    enum Probe {
        Unit,
        Named { a: u64, b: Option<String> },
        Tuple(Vec<f64>, bool),
    }

    #[test]
    fn round_trips_enum_shapes() {
        for v in [
            Probe::Unit,
            Probe::Named {
                a: 7,
                b: Some("x".into()),
            },
            Probe::Named { a: 0, b: None },
            Probe::Tuple(vec![1.5, -2.25], true),
        ] {
            let bytes = to_bytes(&v);
            assert_eq!(from_bytes::<Probe>(&bytes), Ok(v));
        }
    }

    #[test]
    fn rejects_trailing_and_truncated() {
        let mut bytes = to_bytes(&Probe::Unit);
        bytes.push(0);
        assert_eq!(from_bytes::<Probe>(&bytes), Err(CodecError::TrailingBytes));

        let bytes = to_bytes(&Probe::Named { a: 1, b: None });
        assert_eq!(
            from_bytes::<Probe>(&bytes[..bytes.len() - 1]),
            Err(CodecError::Eof)
        );
    }

    #[test]
    fn rejects_unknown_variant() {
        let mut bytes = to_bytes(&Probe::Unit);
        bytes[..4].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(from_bytes::<Probe>(&bytes), Err(CodecError::InvalidVariant));
    }

    #[test]
    fn frame_buffer_reassembles_split_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"world!").unwrap();

        let mut fb = FrameBuffer::new();
        let mut frames = Vec::new();
        // Feed one byte at a time: every split point must be survivable.
        for &b in &wire {
            fb.extend(&[b]);
            while let Some(f) = fb.next_frame().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames, vec![b"hello".to_vec(), vec![], b"world!".to_vec()]);
    }

    #[test]
    fn frame_buffer_rejects_oversize_header() {
        let mut fb = FrameBuffer::new();
        fb.extend(&(u32::MAX).to_le_bytes());
        assert!(fb.next_frame().is_err());
    }

    #[test]
    fn blocking_read_frame_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abc").unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"abc");
    }
}
