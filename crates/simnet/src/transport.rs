//! The [`Transport`] abstraction: everything a protocol actor needs from
//! its execution environment.
//!
//! The actors in this workspace (Raft peers, the two-layer hierarchy, the
//! SAC engine) are written against this trait rather than the simulator's
//! [`Context`](crate::Context) directly, so the very same state machines
//! run in two worlds:
//!
//! * inside the deterministic discrete-event simulator, where
//!   [`Context`](crate::Context) implements `Transport` with virtual time
//!   and sampled link latencies, and
//! * on a real network, where `p2pfl-net`'s peer runtime implements it with
//!   wall-clock timers and TCP sockets.
//!
//! The trait is object-safe on purpose: actor callbacks take
//! `&mut dyn Transport<M>`, which keeps the actor code monomorphization-free
//! and lets both runtimes hand in their own context type.

use crate::node::{NodeId, TimerId};
use crate::payload::Payload;
use crate::time::{SimDuration, SimTime};

/// Handle through which an actor sends messages and arms timers, agnostic
/// of whether the world behind it is simulated or real.
///
/// Time is reported as [`SimTime`] in both worlds; a real-network
/// implementation maps it to elapsed wall-clock time since the runtime
/// started, which preserves the only property actors rely on:
/// monotonicity.
pub trait Transport<M: Payload> {
    /// Current time (virtual in the simulator, elapsed wall-clock on a
    /// real transport).
    fn now(&self) -> SimTime;

    /// The id of the node this transport belongs to.
    fn node_id(&self) -> NodeId;

    /// Sends `msg` to `to`. Sending to self is a local delivery.
    fn send(&mut self, to: NodeId, msg: M);

    /// Arms a one-shot timer firing after `delay`, carrying `tag` back to
    /// [`Actor::on_timer`](crate::Actor::on_timer). Returns an id usable
    /// with [`Transport::cancel_timer`].
    fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId;

    /// Cancels a pending timer. Cancelling an already-fired timer is a
    /// harmless no-op.
    fn cancel_timer(&mut self, id: TimerId);

    /// Sends `msg` to every node in `peers` except this node.
    fn broadcast(&mut self, peers: &[NodeId], msg: M)
    where
        M: Clone,
    {
        let me = self.node_id();
        for &p in peers {
            if p != me {
                self.send(p, msg.clone());
            }
        }
    }
}
