//! The [`Payload`] trait: what the simulator needs to know about messages.
//!
//! The simulator is generic over the application message type. To account
//! for communication cost (the central metric of the reproduced paper), each
//! message reports its serialized size in bytes; to break metrics down per
//! protocol phase, it reports a static kind label.

/// Application message carried by the simulated network.
///
/// `Clone` is required so the fault layer can deliver duplicate copies of a
/// message (the [`crate::FaultAction::Duplicate`] fault); every real payload
/// in the workspace is a cheaply cloneable enum or reference-counted blob.
pub trait Payload: Clone + Send + 'static {
    /// Serialized size of the message in bytes, used for the communication
    /// cost ledger. Implementations should count what a real wire format
    /// would carry (weight tensors dominate in this workspace).
    fn size_bytes(&self) -> u64;

    /// A short static label grouping messages of the same protocol step,
    /// e.g. `"sac.share"` or `"raft.append_entries"`.
    fn kind(&self) -> &'static str {
        "message"
    }
}

/// Blanket helper payload for tests and simple examples: a labeled blob with
/// an explicit size.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Blob {
    /// Declared size in bytes.
    pub size: u64,
    /// Free-form tag the receiving actor can dispatch on.
    pub tag: u64,
}

impl Blob {
    /// Creates a blob of `size` bytes with tag 0.
    pub fn of_size(size: u64) -> Self {
        Blob { size, tag: 0 }
    }
}

impl Payload for Blob {
    fn size_bytes(&self) -> u64 {
        self.size
    }

    fn kind(&self) -> &'static str {
        "blob"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_reports_declared_size() {
        let b = Blob::of_size(1234);
        assert_eq!(b.size_bytes(), 1234);
        assert_eq!(b.kind(), "blob");
    }
}
