//! Property tests for the simulator's core guarantees: time never goes
//! backwards, latencies respect their bounds, determinism holds, and the
//! cost ledger balances.

use p2pfl_simnet::{
    Actor, Blob, Latency, LatencyConfig, NodeId, Sim, SimDuration, SimTime, Transport,
};
use proptest::prelude::*;

/// Records every delivery timestamp and echoes a configurable number of
/// times so traffic patterns vary.
struct Chatter {
    peers: Vec<NodeId>,
    sends_on_start: usize,
    deliveries: Vec<SimTime>,
}

impl Actor<Blob> for Chatter {
    fn on_start(&mut self, ctx: &mut dyn Transport<Blob>) {
        for i in 0..self.sends_on_start {
            let to = self.peers[i % self.peers.len()];
            ctx.send(
                to,
                Blob {
                    size: 10 + i as u64,
                    tag: i as u64,
                },
            );
        }
    }
    fn on_message(&mut self, ctx: &mut dyn Transport<Blob>, from: NodeId, msg: Blob) {
        self.deliveries.push(ctx.now());
        if msg.tag > 0 && msg.tag < 4 {
            ctx.send(
                from,
                Blob {
                    size: msg.size,
                    tag: msg.tag - 1,
                },
            );
        }
    }
}

fn run_sim(seed: u64, nodes: usize, sends: usize, min_ms: u64, spread_ms: u64) -> Sim<Blob> {
    let mut sim = Sim::new(seed);
    sim.set_latency(LatencyConfig::uniform_default(Latency::Uniform {
        min: SimDuration::from_millis(min_ms),
        max: SimDuration::from_millis(min_ms + spread_ms),
    }));
    let ids: Vec<NodeId> = (0..nodes as u32).map(NodeId).collect();
    for i in 0..nodes {
        // Exclude self: loopback delivery is instantaneous by design and
        // would trivially violate the latency lower bound checked below.
        let peers: Vec<NodeId> = ids.iter().copied().filter(|p| p.index() != i).collect();
        sim.add_node(Chatter {
            peers,
            sends_on_start: sends,
            deliveries: vec![],
        });
    }
    sim.run_until_quiet(100_000);
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Virtual time is monotone at every actor, and no delivery happens
    /// before the minimum link latency.
    #[test]
    #[cfg_attr(miri, ignore = "full simulation runs are prohibitively slow under miri")]
    fn deliveries_monotone_and_bounded(
        seed in any::<u64>(),
        nodes in 2usize..6,
        sends in 1usize..6,
        min_ms in 1u64..20,
        spread_ms in 0u64..20,
    ) {
        let sim = run_sim(seed, nodes, sends, min_ms, spread_ms);
        for i in 0..nodes {
            let a = sim.actor::<Chatter>(NodeId(i as u32));
            let mut prev = SimTime::ZERO;
            for &t in &a.deliveries {
                prop_assert!(t >= prev, "time went backwards");
                prev = t;
            }
            for &t in &a.deliveries {
                prop_assert!(t >= SimTime::from_millis(min_ms));
            }
        }
    }

    /// Identical seeds give identical executions; the ledger's per-kind
    /// totals always sum to the grand total.
    #[test]
    #[cfg_attr(miri, ignore = "full simulation runs are prohibitively slow under miri")]
    fn determinism_and_ledger_balance(
        seed in any::<u64>(),
        nodes in 2usize..5,
        sends in 1usize..5,
    ) {
        let a = run_sim(seed, nodes, sends, 5, 10);
        let b = run_sim(seed, nodes, sends, 5, 10);
        prop_assert_eq!(a.now(), b.now());
        prop_assert_eq!(a.metrics().total().msgs, b.metrics().total().msgs);
        prop_assert_eq!(a.metrics().total().bytes, b.metrics().total().bytes);
        let kind_bytes: u64 = a.metrics().kinds().iter().map(|(_, c)| c.bytes).sum();
        prop_assert_eq!(kind_bytes, a.metrics().total().bytes);
        // Per-node sends also balance against the total.
        let sent: u64 = (0..nodes)
            .map(|i| a.metrics().sent_by(NodeId(i as u32)).bytes)
            .sum();
        prop_assert_eq!(sent, a.metrics().total().bytes);
    }

    /// A crashed destination drops everything addressed to it, and the
    /// drops are accounted.
    #[test]
    #[cfg_attr(miri, ignore = "full simulation runs are prohibitively slow under miri")]
    fn crashes_account_drops(seed in any::<u64>(), sends in 1usize..8) {
        let mut sim = Sim::new(seed);
        let ids = [NodeId(0), NodeId(1)];
        sim.add_node(Chatter { peers: vec![ids[1]], sends_on_start: sends, deliveries: vec![] });
        sim.add_node(Chatter { peers: vec![ids[0]], sends_on_start: 0, deliveries: vec![] });
        sim.schedule_crash(ids[1], SimTime::from_nanos(1));
        sim.run_until_quiet(10_000);
        prop_assert_eq!(sim.metrics().dropped().msgs, sends as u64);
        prop_assert!(sim.actor::<Chatter>(ids[1]).deliveries.is_empty());
    }
}
