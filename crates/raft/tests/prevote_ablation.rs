//! Demonstrates what Pre-Vote buys: a rejoining peer with a stale log
//! cannot inflate terms and disrupt a healthy cluster. This is the
//! scenario that livelocked the FedAvg layer during development (see
//! DESIGN.md, implementation note 1).

use p2pfl_raft::{NullStateMachine, RaftActor, RaftConfig, RaftMsg};
use p2pfl_simnet::{NodeId, Sim, SimDuration, SimTime};

type Node = RaftActor<u64, NullStateMachine>;

/// Builds a 3-node cluster, commits entries, crashes one follower so its
/// log goes stale, restarts it, and measures how much the cluster's term
/// inflates while the zombie campaigns.
fn run_scenario(pre_vote: bool, seed: u64) -> (u64, u64) {
    let mut sim: Sim<RaftMsg<u64>> = Sim::new(seed);
    let ids: Vec<NodeId> = (0..3).map(NodeId).collect();
    for &id in &ids {
        let mut cfg = RaftConfig::paper(
            id,
            ids.clone(),
            SimDuration::from_millis(100),
            seed + id.0 as u64,
        );
        cfg.pre_vote = pre_vote;
        sim.add_node(RaftActor::new(cfg, NullStateMachine));
    }
    sim.run_until(SimTime::from_secs(2));
    let leader = *ids
        .iter()
        .find(|&&id| sim.actor::<Node>(id).is_leader())
        .expect("no leader");
    let term_before = sim.actor::<Node>(leader).raft().term();

    // Make a follower stale: crash it, then commit entries without it.
    let victim = *ids.iter().find(|&&id| id != leader).unwrap();
    let at = sim.now() + SimDuration::from_millis(1);
    sim.schedule_crash(victim, at);
    sim.run_for(SimDuration::from_millis(200));
    for v in 0..5u64 {
        sim.exec::<Node, _, _>(leader, |a, ctx| {
            let _ = a.propose(ctx, v);
        });
        sim.run_for(SimDuration::from_millis(50));
    }
    // Isolate the zombie from the leader so it keeps timing out after its
    // restart, but let it reach the other follower (whose vote it will
    // solicit). This models the flaky-link rejoin that plagues real
    // clusters.
    let other = *ids
        .iter()
        .find(|&&id| id != leader && id != victim)
        .unwrap();
    sim.partition_pair(victim, leader);
    let at = sim.now() + SimDuration::from_millis(1);
    sim.schedule_restart(victim, at);
    sim.run_for(SimDuration::from_secs(5));

    let cluster_term = sim.actor::<Node>(other).raft().term();
    let step_downs = sim.actor::<Node>(leader).step_downs;
    (cluster_term - term_before, step_downs)
}

#[test]
fn pre_vote_prevents_term_inflation_by_stale_rejoiner() {
    for seed in 0..5u64 {
        let (inflation, step_downs) = run_scenario(true, 100 + seed);
        assert_eq!(
            inflation, 0,
            "seed {seed}: pre-vote must block the stale campaigner entirely"
        );
        assert_eq!(
            step_downs, 0,
            "seed {seed}: the healthy leader must never step down"
        );
    }
}

#[test]
fn without_pre_vote_the_stale_rejoiner_disrupts() {
    // The ablation: identical scenario, pre-vote off. The zombie's
    // RequestVotes carry ever-higher terms; the reachable follower adopts
    // them, and when the leader hears the higher term it steps down.
    let mut any_disruption = false;
    for seed in 0..5u64 {
        let (inflation, step_downs) = run_scenario(false, 100 + seed);
        if inflation > 0 || step_downs > 0 {
            any_disruption = true;
        }
    }
    assert!(
        any_disruption,
        "disabling pre-vote should reproduce the disruptive-rejoin problem"
    );
}
