//! Property tests for the Raft log and protocol invariants.

use p2pfl_raft::{Entry, LogCmd, RaftLog};
use proptest::prelude::*;

fn arbitrary_log() -> impl Strategy<Value = RaftLog<u64>> {
    // Terms are non-decreasing along any real Raft log.
    proptest::collection::vec(0u64..4, 0..30).prop_map(|increments| {
        let mut log = RaftLog::new();
        let mut term = 1u64;
        for (i, inc) in increments.into_iter().enumerate() {
            term += inc;
            log.append(term, LogCmd::App(i as u64));
        }
        log
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Terms along a log are non-decreasing and `term_at` is consistent
    /// with iteration.
    #[test]
    fn log_terms_non_decreasing(log in arbitrary_log()) {
        let mut prev = 0u64;
        for e in log.iter() {
            prop_assert!(e.term >= prev);
            prop_assert_eq!(log.term_at(e.index), Some(e.term));
            prev = e.term;
        }
        prop_assert_eq!(log.term_at(0), Some(0));
        prop_assert_eq!(log.term_at(log.last_index() + 1), None);
    }

    /// Truncation keeps exactly the prefix.
    #[test]
    fn truncate_keeps_prefix(log in arbitrary_log(), cut_off in 1u64..40) {
        let mut l = log.clone();
        let cut = cut_off.min(l.last_index() + 1).max(1);
        l.truncate_from(cut);
        prop_assert_eq!(l.last_index(), cut - 1);
        for e in l.iter() {
            prop_assert_eq!(Some(e), log.get(e.index));
        }
    }

    /// `entries_from` + `append_entry` round-trips a suffix onto another
    /// log sharing the prefix (the AppendEntries shipping path).
    #[test]
    fn shipping_suffix_reconstructs_log(log in arbitrary_log(), from_off in 1u64..40) {
        let from = from_off.min(log.last_index() + 1).max(1);
        let mut receiver = RaftLog::new();
        for e in log.iter().take(from as usize - 1) {
            receiver.append_entry(e.clone());
        }
        for e in log.entries_from(from) {
            receiver.append_entry(e);
        }
        prop_assert_eq!(receiver.last_index(), log.last_index());
        prop_assert_eq!(receiver.last_term(), log.last_term());
        for e in log.iter() {
            prop_assert_eq!(receiver.get(e.index), Some(e));
        }
    }

    /// The election restriction is a total preorder: for any two logs,
    /// at least one is "up-to-date" relative to the other, and a log is
    /// always up-to-date with itself.
    #[test]
    fn up_to_date_is_total(a in arbitrary_log(), b in arbitrary_log()) {
        let a_ok = b.candidate_is_up_to_date(a.last_term(), a.last_index());
        let b_ok = a.candidate_is_up_to_date(b.last_term(), b.last_index());
        prop_assert!(a_ok || b_ok, "neither log up-to-date wrt the other");
        prop_assert!(a.candidate_is_up_to_date(a.last_term(), a.last_index()));
    }

    /// Entry wire sizes are positive and additive over a batch.
    #[test]
    fn entry_sizes_additive(log in arbitrary_log()) {
        let total: u64 = log.iter().map(Entry::wire_bytes).sum();
        let shipped: u64 = log.entries_from(1).iter().map(Entry::wire_bytes).sum();
        prop_assert_eq!(total, shipped);
        for e in log.iter() {
            prop_assert!(e.wire_bytes() >= 16);
        }
    }
}
