//! Log compaction and InstallSnapshot: long-running deployments must keep
//! memory bounded, and a follower that slept through the compaction
//! window must still catch up — via the snapshot, not the (discarded)
//! entries.

use p2pfl_raft::{Entry, LogCmd, RaftActor, RaftConfig, RaftLog, RaftMsg, StateMachine};
use p2pfl_simnet::{NodeId, Sim, SimDuration, SimTime};

// ----------------------------------------------------------------------
// Log-level
// ----------------------------------------------------------------------

fn log_with(n: u64) -> RaftLog<u64> {
    let mut l = RaftLog::new();
    for i in 0..n {
        l.append(1 + i / 4, LogCmd::App(i));
    }
    l
}

#[test]
fn compaction_preserves_the_visible_suffix() {
    let mut l = log_with(10);
    assert_eq!(l.compact(6), 6);
    assert_eq!(l.snapshot_index(), 6);
    assert_eq!(l.last_index(), 10);
    assert_eq!(l.live_entries(), 4);
    // The suffix is intact and indexable by its original indices.
    for i in 7..=10u64 {
        assert_eq!(l.get(i).unwrap().index, i);
    }
    // The prefix is gone.
    assert!(l.get(6).is_none());
    assert!(l.is_compacted(3));
    // The boundary term is retained for the consistency check.
    assert_eq!(l.term_at(6), Some(l.snapshot_term()));
    // Appending continues from the true end.
    let appended = l.append(9, LogCmd::Noop);
    assert_eq!(appended.index, 11);
}

#[test]
fn repeated_compaction_is_idempotent_and_monotone() {
    let mut l = log_with(8);
    assert_eq!(l.compact(5), 5);
    assert_eq!(l.compact(5), 0, "same point: nothing more to drop");
    assert_eq!(l.compact(3), 0, "cannot go backwards");
    assert_eq!(l.compact(8), 3);
    assert_eq!(l.live_entries(), 0);
    assert_eq!(l.last_index(), 8);
}

#[test]
#[should_panic(expected = "compacted prefix")]
fn truncating_into_the_snapshot_panics() {
    let mut l = log_with(6);
    l.compact(4);
    l.truncate_from(3);
}

#[test]
#[should_panic(expected = "compacted prefix")]
fn shipping_compacted_entries_panics() {
    let mut l = log_with(6);
    l.compact(4);
    let _ = l.entries_from(2);
}

// ----------------------------------------------------------------------
// Cluster-level: snapshot catch-up through the simulator
// ----------------------------------------------------------------------

/// A state machine whose state is the sum of applied commands; snapshots
/// serialize that sum.
struct Summer {
    sum: u64,
    restored: bool,
}

impl StateMachine<u64> for Summer {
    fn apply(&mut self, entry: &Entry<u64>) {
        if let LogCmd::App(v) = &entry.cmd {
            self.sum += v;
        }
    }
    fn snapshot(&self) -> Vec<u8> {
        self.sum.to_le_bytes().to_vec()
    }
    fn restore(&mut self, data: &[u8]) {
        self.sum = u64::from_le_bytes(data.try_into().expect("8-byte snapshot"));
        self.restored = true;
    }
}

type Node = RaftActor<u64, Summer>;

#[test]
fn lagging_follower_catches_up_via_install_snapshot() {
    let mut sim: Sim<RaftMsg<u64>> = Sim::new(7);
    let ids: Vec<NodeId> = (0..3).map(NodeId).collect();
    for &id in &ids {
        let cfg = RaftConfig::paper(id, ids.clone(), SimDuration::from_millis(100), id.0 as u64);
        sim.add_node(RaftActor::new(
            cfg,
            Summer {
                sum: 0,
                restored: false,
            },
        ));
    }
    sim.run_until(SimTime::from_secs(2));
    let leader = *ids
        .iter()
        .find(|&&id| sim.actor::<Node>(id).is_leader())
        .unwrap();
    let victim = *ids.iter().find(|&&id| id != leader).unwrap();

    // The victim sleeps through a burst of commits...
    let at = sim.now() + SimDuration::from_millis(1);
    sim.schedule_crash(victim, at);
    sim.run_for(SimDuration::from_millis(100));
    let mut expect_sum = 0u64;
    for v in 1..=20u64 {
        expect_sum += v;
        sim.exec::<Node, _, _>(leader, |a, ctx| {
            a.propose(ctx, v).unwrap();
        });
        sim.run_for(SimDuration::from_millis(40));
    }
    // ... and the leader compacts them away.
    let dropped = sim.exec::<Node, _, _>(leader, |a, _| a.compact_log());
    assert!(dropped >= 20, "compaction dropped {dropped} entries");
    assert!(sim.actor::<Node>(leader).raft().log().live_entries() < 3);

    // Let the in-flight pre-compaction AppendEntries drain while the victim
    // is still down: a heartbeat carrying the burst entries could otherwise
    // race the restart and catch the victim up without the snapshot.
    sim.run_for(SimDuration::from_millis(500));

    // The victim returns: the entries it needs no longer exist, so the
    // leader must ship the snapshot.
    let at = sim.now() + SimDuration::from_millis(1);
    sim.schedule_restart(victim, at);
    sim.run_for(SimDuration::from_secs(3));
    let v = sim.actor::<Node>(victim);
    assert!(v.sm.restored, "snapshot must have been installed");
    assert_eq!(v.sm.sum, expect_sum, "state machine caught up");
    assert_eq!(
        v.raft().log().snapshot_index(),
        sim.actor::<Node>(leader).raft().log().snapshot_index()
    );

    // Replication continues normally past the snapshot.
    sim.exec::<Node, _, _>(leader, |a, ctx| {
        a.propose(ctx, 1000).unwrap();
    });
    sim.run_for(SimDuration::from_secs(1));
    assert_eq!(sim.actor::<Node>(victim).sm.sum, expect_sum + 1000);
}

#[test]
fn compaction_keeps_memory_bounded_over_many_rounds() {
    let mut sim: Sim<RaftMsg<u64>> = Sim::new(9);
    let ids: Vec<NodeId> = (0..3).map(NodeId).collect();
    for &id in &ids {
        let cfg = RaftConfig::paper(id, ids.clone(), SimDuration::from_millis(100), id.0 as u64);
        sim.add_node(RaftActor::new(
            cfg,
            Summer {
                sum: 0,
                restored: false,
            },
        ));
    }
    sim.run_until(SimTime::from_secs(2));
    let leader = *ids
        .iter()
        .find(|&&id| sim.actor::<Node>(id).is_leader())
        .unwrap();
    // Periodic commit + compact on every node, as a long-lived deployment
    // would run it.
    for burst in 0..10u64 {
        for v in 0..10u64 {
            sim.exec::<Node, _, _>(leader, |a, ctx| {
                a.propose(ctx, burst * 10 + v).unwrap();
            });
            sim.run_for(SimDuration::from_millis(30));
        }
        for &id in &ids {
            sim.exec::<Node, _, _>(id, |a, _| a.compact_log());
        }
    }
    // Let the tail of the last burst replicate and apply everywhere.
    sim.run_for(SimDuration::from_secs(1));
    for &id in &ids {
        let live = sim.actor::<Node>(id).raft().log().live_entries();
        assert!(
            live <= 15,
            "node {id} holds {live} live entries after compaction"
        );
    }
    // And all state machines agree.
    let expect: u64 = (0..100u64).sum();
    for &id in &ids {
        assert_eq!(sim.actor::<Node>(id).sm.sum, expect, "node {id}");
    }
}
