//! # p2pfl-raft — Raft consensus from scratch
//!
//! A complete Raft implementation (paper Sec. III-C; Ongaro & Ousterhout)
//! in a sans-IO style: [`RaftNode`] holds all protocol logic — leader
//! election with randomized `U(T, 2T)` timeouts and the up-to-date-log
//! restriction, log replication with conflict resolution, the
//! current-term-only commit rule, and single-server membership changes —
//! and emits [`Effect`]s instead of doing IO. [`RaftActor`] drives a node
//! over the `p2pfl-simnet` discrete-event simulator, which is how the
//! reproduced paper's election-time experiments (Figs. 10–12) are run.
//!
//! ```
//! use p2pfl_raft::{RaftActor, RaftConfig, NullStateMachine, RaftMsg};
//! use p2pfl_simnet::{NodeId, Sim, SimDuration, SimTime};
//!
//! let mut sim: Sim<RaftMsg<u64>> = Sim::new(7);
//! let ids: Vec<NodeId> = (0..3).map(NodeId).collect();
//! for &id in &ids {
//!     let cfg = RaftConfig::paper(id, ids.clone(), SimDuration::from_millis(100), id.0 as u64);
//!     sim.add_node(RaftActor::new(cfg, NullStateMachine));
//! }
//! sim.run_until(SimTime::from_secs(2));
//! let leaders = ids.iter().filter(|&&id| {
//!     sim.actor::<RaftActor<u64, NullStateMachine>>(id).is_leader()
//! }).count();
//! assert_eq!(leaders, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod log;
mod message;
#[cfg(feature = "mutants")]
pub mod mutants;
mod node;
mod storage;
mod types;

pub use driver::{LeadershipEvent, NullStateMachine, RaftActor, StateMachine};
pub use log::{Entry, RaftLog};
pub use message::RaftMsg;
pub use node::{Effect, NotLeader, RaftConfig, RaftNode};
pub use storage::{FileStorage, MemStorage, PersistOp, PersistentState, RaftStorage};
pub use types::{Command, LogCmd, LogIndex, Role, Term};
