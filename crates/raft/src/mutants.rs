//! Deliberately broken protocol variants for the checker's mutation
//! self-test (`p2pfl-check --features mutants`).
//!
//! Each mutant removes one safety-critical line of the protocol. The
//! bounded model checker must detect every one of them — proving the
//! invariant oracles have teeth. This module only exists under the
//! `mutants` cargo feature; release builds carry none of these paths.
//!
//! Selection is a process-global atomic so one test binary can cycle
//! through the mutants without rebuilding. Tests that use it must run
//! single-threaded over the selection window.

use std::sync::atomic::{AtomicU8, Ordering};

/// The seeded faults available in `p2pfl-raft`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Mutant {
    /// No fault active (the default).
    None = 0,
    /// `on_request_vote` ignores `voted_for` and grants every up-to-date
    /// request — a node can vote for two candidates in one term, breaking
    /// ElectionSafety.
    DoubleVote = 1,
    /// `start_election` skips the hard-state persist — the term/vote bump
    /// never reaches storage, breaking StorageRoundTrip.
    SkipPersist = 2,
}

static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// Activates `m` process-wide (pass [`Mutant::None`] to deactivate).
pub fn set(m: Mutant) {
    ACTIVE.store(m as u8, Ordering::SeqCst);
}

/// Deactivates any active mutant.
pub fn clear() {
    set(Mutant::None);
}

/// Whether `m` is the currently active mutant.
pub fn active(m: Mutant) -> bool {
    ACTIVE.load(Ordering::SeqCst) == m as u8
}
