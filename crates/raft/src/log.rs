//! The replicated log.

use crate::types::{Command, LogCmd, LogIndex, Term};

/// One log entry.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Entry<C> {
    /// Term in which the entry was created.
    pub term: Term,
    /// 1-based position in the log.
    pub index: LogIndex,
    /// The replicated command.
    pub cmd: LogCmd<C>,
}

impl<C: Command> Entry<C> {
    /// Serialized size: 16 bytes of header plus the command payload.
    pub fn wire_bytes(&self) -> u64 {
        16 + match &self.cmd {
            LogCmd::Noop => 0,
            LogCmd::App(c) => c.wire_bytes(),
            LogCmd::AddServer(_) | LogCmd::RemoveServer(_) => 8,
        }
    }
}

/// An in-memory log with 1-based indexing (index 0 is the empty prefix),
/// supporting prefix compaction: a snapshot at `snapshot_index` replaces
/// every entry up to and including that index.
#[derive(Debug, Clone, Default)]
pub struct RaftLog<C> {
    entries: Vec<Entry<C>>,
    snapshot_index: LogIndex,
    snapshot_term: Term,
}

impl<C: Command> RaftLog<C> {
    /// An empty log.
    pub fn new() -> Self {
        RaftLog {
            entries: Vec::new(),
            snapshot_index: 0,
            snapshot_term: 0,
        }
    }

    /// A log that starts from an installed snapshot.
    pub fn from_snapshot(snapshot_index: LogIndex, snapshot_term: Term) -> Self {
        RaftLog {
            entries: Vec::new(),
            snapshot_index,
            snapshot_term,
        }
    }

    /// Index covered by the compacted prefix (0 = nothing compacted).
    pub fn snapshot_index(&self) -> LogIndex {
        self.snapshot_index
    }

    /// Term of the last compacted entry.
    pub fn snapshot_term(&self) -> Term {
        self.snapshot_term
    }

    /// Number of entries currently held in memory.
    pub fn live_entries(&self) -> usize {
        self.entries.len()
    }

    fn slot(&self, index: LogIndex) -> Option<usize> {
        if index <= self.snapshot_index {
            None
        } else {
            Some((index - self.snapshot_index) as usize - 1)
        }
    }

    /// Index of the last entry (the snapshot index when empty).
    pub fn last_index(&self) -> LogIndex {
        self.snapshot_index + self.entries.len() as LogIndex
    }

    /// Term of the last entry (the snapshot term when empty).
    pub fn last_term(&self) -> Term {
        self.entries.last().map_or(self.snapshot_term, |e| e.term)
    }

    /// Term of the entry at `index`; `Some(0)` for index 0, the snapshot
    /// term at the snapshot boundary, `None` past the end *or inside the
    /// compacted prefix* (whose terms are gone).
    pub fn term_at(&self, index: LogIndex) -> Option<Term> {
        if index == 0 {
            return if self.snapshot_index == 0 {
                Some(0)
            } else {
                None
            };
        }
        if index == self.snapshot_index {
            return Some(self.snapshot_term);
        }
        self.slot(index)
            .and_then(|s| self.entries.get(s).map(|e| e.term))
    }

    /// The entry at `index`, if present (compacted entries are gone).
    pub fn get(&self, index: LogIndex) -> Option<&Entry<C>> {
        if index == 0 {
            None
        } else {
            self.slot(index).and_then(|s| self.entries.get(s))
        }
    }

    /// Appends a new entry created by the leader in `term`, returning a
    /// clone of the appended entry (the caller persists and replicates
    /// it, so handing it back saves a fallible lookup).
    pub fn append(&mut self, term: Term, cmd: LogCmd<C>) -> Entry<C> {
        let entry = Entry {
            term,
            index: self.last_index() + 1,
            cmd,
        };
        self.entries.push(entry.clone());
        entry
    }

    /// Appends an entry shipped by a leader, asserting index continuity.
    pub fn append_entry(&mut self, entry: Entry<C>) {
        assert_eq!(entry.index, self.last_index() + 1, "log gap");
        self.entries.push(entry);
    }

    /// Drops every entry with `index >= from` (conflict resolution).
    /// Panics when asked to truncate into the compacted prefix — committed
    /// (hence snapshotted) entries can never conflict.
    pub fn truncate_from(&mut self, from: LogIndex) {
        assert!(from >= 1, "cannot truncate index 0");
        assert!(
            from > self.snapshot_index,
            "cannot truncate the compacted prefix"
        );
        self.entries
            .truncate((from - self.snapshot_index) as usize - 1);
    }

    /// All entries with `index >= from`, cloned for shipping. Panics if
    /// `from` lies inside the compacted prefix (callers must check
    /// [`RaftLog::is_compacted`] and ship a snapshot instead).
    pub fn entries_from(&self, from: LogIndex) -> Vec<Entry<C>> {
        if from == 0 || from > self.last_index() {
            return Vec::new();
        }
        assert!(
            !self.is_compacted(from),
            "entries_from({from}) reaches into the compacted prefix"
        );
        self.entries[(from - self.snapshot_index) as usize - 1..].to_vec()
    }

    /// Whether `index` falls inside the compacted prefix (its entry is no
    /// longer available).
    pub fn is_compacted(&self, index: LogIndex) -> bool {
        index <= self.snapshot_index && self.snapshot_index > 0 && index >= 1
    }

    /// Compacts the prefix up to and including `upto`, which must be a
    /// live index (callers compact only committed entries). Returns the
    /// number of entries dropped.
    pub fn compact(&mut self, upto: LogIndex) -> usize {
        assert!(upto <= self.last_index(), "cannot compact beyond the log");
        if upto <= self.snapshot_index {
            return 0;
        }
        let Some(term) = self.term_at(upto) else {
            // Callers compact only committed (hence live) indices; an
            // index past the live suffix is a caller inconsistency, but a
            // no-op compaction beats crashing the node over it.
            return 0;
        };
        let drop = (upto - self.snapshot_index) as usize;
        self.entries.drain(..drop);
        self.snapshot_index = upto;
        self.snapshot_term = term;
        drop
    }

    /// Raft's election restriction (paper Sec. III-C3): whether a candidate
    /// whose log ends at `(last_term, last_index)` is at least as up-to-date
    /// as this log.
    pub fn candidate_is_up_to_date(&self, last_term: Term, last_index: LogIndex) -> bool {
        (last_term, last_index) >= (self.last_term(), self.last_index())
    }

    /// Iterates all entries in order.
    pub fn iter(&self) -> impl Iterator<Item = &Entry<C>> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_with(terms: &[Term]) -> RaftLog<u64> {
        let mut l = RaftLog::new();
        for (i, &t) in terms.iter().enumerate() {
            l.append(t, LogCmd::App(i as u64));
        }
        l
    }

    #[test]
    fn empty_log_boundaries() {
        let l: RaftLog<u64> = RaftLog::new();
        assert_eq!(l.last_index(), 0);
        assert_eq!(l.last_term(), 0);
        assert_eq!(l.term_at(0), Some(0));
        assert_eq!(l.term_at(1), None);
        assert!(l.get(0).is_none());
    }

    #[test]
    fn append_and_lookup() {
        let l = log_with(&[1, 1, 2]);
        assert_eq!(l.last_index(), 3);
        assert_eq!(l.last_term(), 2);
        assert_eq!(l.term_at(2), Some(1));
        assert_eq!(l.get(3).unwrap().cmd, LogCmd::App(2));
    }

    #[test]
    fn truncate_resolves_conflicts() {
        let mut l = log_with(&[1, 1, 2, 2]);
        l.truncate_from(3);
        assert_eq!(l.last_index(), 2);
        assert_eq!(l.last_term(), 1);
    }

    #[test]
    fn entries_from_clones_suffix() {
        let l = log_with(&[1, 2, 3]);
        let tail = l.entries_from(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].index, 2);
        assert!(l.entries_from(4).is_empty());
    }

    #[test]
    fn up_to_date_compares_term_then_index() {
        let l = log_with(&[1, 2]);
        assert!(l.candidate_is_up_to_date(2, 2)); // equal
        assert!(l.candidate_is_up_to_date(3, 1)); // higher term wins
        assert!(l.candidate_is_up_to_date(2, 5)); // same term, longer log
        assert!(!l.candidate_is_up_to_date(1, 10)); // lower term loses
        assert!(!l.candidate_is_up_to_date(2, 1)); // same term, shorter
    }

    #[test]
    #[should_panic(expected = "log gap")]
    fn append_entry_rejects_gaps() {
        let mut l: RaftLog<u64> = RaftLog::new();
        l.append_entry(Entry {
            term: 1,
            index: 5,
            cmd: LogCmd::Noop,
        });
    }

    #[test]
    fn wire_bytes_by_kind() {
        let e = Entry {
            term: 1,
            index: 1,
            cmd: LogCmd::App(9u64),
        };
        assert_eq!(e.wire_bytes(), 24);
        let n: Entry<u64> = Entry {
            term: 1,
            index: 1,
            cmd: LogCmd::Noop,
        };
        assert_eq!(n.wire_bytes(), 16);
    }
}
