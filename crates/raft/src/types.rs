//! Core Raft identifiers and roles.

use std::fmt;

/// A Raft term — the logical clock of the protocol (paper Sec. III-C).
pub type Term = u64;

/// 1-based index into the replicated log; 0 means "before the first entry".
pub type LogIndex = u64;

/// The three server states of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Passive replica responding to leaders and candidates.
    Follower,
    /// Election in progress, gathering votes.
    Candidate,
    /// Handles client requests and drives replication.
    Leader,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Role::Follower => "follower",
            Role::Candidate => "candidate",
            Role::Leader => "leader",
        };
        f.write_str(s)
    }
}

/// Commands the replicated log can carry: an application command or a
/// single-server membership change (Raft's cluster membership change
/// protocol, used when a new subgroup leader joins the FedAvg layer).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LogCmd<C> {
    /// No-op committed by a fresh leader to finalize prior-term entries.
    Noop,
    /// An application command.
    App(C),
    /// Adds a server to the cluster configuration.
    AddServer(p2pfl_simnet::NodeId),
    /// Removes a server from the cluster configuration.
    RemoveServer(p2pfl_simnet::NodeId),
}

/// Commands must report their wire size so Raft traffic enters the
/// communication ledger faithfully.
pub trait Command: Clone + Send + 'static {
    /// Serialized size of the command in bytes.
    fn wire_bytes(&self) -> u64 {
        8
    }
}

impl Command for u64 {}
impl Command for () {
    fn wire_bytes(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_display() {
        assert_eq!(Role::Leader.to_string(), "leader");
        assert_eq!(Role::Follower.to_string(), "follower");
        assert_eq!(Role::Candidate.to_string(), "candidate");
    }

    #[test]
    fn default_command_sizes() {
        assert_eq!(7u64.wire_bytes(), 8);
        assert_eq!(().wire_bytes(), 0);
    }
}
