//! Durable Raft state.
//!
//! Raft requires `current_term`, `voted_for`, and the log (plus any
//! snapshot) to be on stable storage before a server answers an RPC —
//! otherwise a crashed-and-restarted server can vote twice in one term or
//! silently lose committed entries. [`RaftNode`](crate::RaftNode) stays
//! sans-IO: every mutation of persistent state is emitted as an
//! [`Effect::Persist`](crate::Effect) carrying a [`PersistOp`], *before*
//! any message send in the same effect batch, so a driver that records
//! ops in effect order gets write-ahead semantics for free.
//!
//! Two [`RaftStorage`] implementations ship here:
//!
//! * [`MemStorage`] — an `Arc`-shared in-memory op list. Survives actor
//!   teardown (the handle outlives the node), which is exactly what the
//!   simulator's kill/restart tests need.
//! * [`FileStorage`] — an append-only file of length-prefixed records in
//!   the workspace wire codec ([`p2pfl_simnet::codec`]). Loading tolerates
//!   a torn final record (a crash mid-write), recovering every op before
//!   it.
//!
//! Replaying the op list yields a [`PersistentState`], from which
//! [`RaftNode::restore`](crate::RaftNode::restore) rebuilds a node.

use crate::log::{Entry, RaftLog};
use crate::types::{Command, LogIndex, Term};
use p2pfl_simnet::codec;
use p2pfl_simnet::NodeId;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// One write-ahead record of persistent Raft state.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum PersistOp<C> {
    /// `current_term` and/or `voted_for` changed.
    HardState {
        /// The new current term.
        term: Term,
        /// The vote cast in that term, if any.
        voted_for: Option<NodeId>,
    },
    /// An entry was appended to the log.
    Append(Entry<C>),
    /// The log suffix starting at this index was discarded (conflict
    /// resolution on a follower).
    TruncateFrom(LogIndex),
    /// The committed prefix up to `last_index` was compacted into a local
    /// snapshot.
    Compact {
        /// Last log index covered by the snapshot.
        last_index: LogIndex,
        /// Term of that entry.
        last_term: Term,
        /// Cluster membership as of the snapshot point.
        cluster: Vec<NodeId>,
        /// Application state machine blob.
        data: Vec<u8>,
    },
    /// A leader-shipped snapshot replaced the entire log.
    InstallSnapshot {
        /// Last log index covered by the snapshot.
        last_index: LogIndex,
        /// Term of that entry.
        last_term: Term,
        /// Cluster membership as of the snapshot point.
        cluster: Vec<NodeId>,
        /// Application state machine blob.
        data: Vec<u8>,
    },
}

/// The persistent portion of a Raft server's state, reconstructed from a
/// storage op stream.
#[derive(Debug, Clone)]
pub struct PersistentState<C: Command> {
    /// Latest term this server has seen.
    pub term: Term,
    /// Candidate voted for in `term`, if any.
    pub voted_for: Option<NodeId>,
    /// The replicated log (possibly compacted).
    pub log: RaftLog<C>,
    /// Local snapshot: `(last_index, last_term, cluster, app blob)`.
    pub snapshot: Option<(LogIndex, Term, Vec<NodeId>, Vec<u8>)>,
}

impl<C: Command> Default for PersistentState<C> {
    fn default() -> Self {
        PersistentState {
            term: 0,
            voted_for: None,
            log: RaftLog::new(),
            snapshot: None,
        }
    }
}

impl<C: Command> PersistentState<C> {
    /// Replays an op stream (oldest first) into the state it describes.
    pub fn replay<I: IntoIterator<Item = PersistOp<C>>>(ops: I) -> Self {
        let mut st = PersistentState::default();
        for op in ops {
            match op {
                PersistOp::HardState { term, voted_for } => {
                    st.term = term;
                    st.voted_for = voted_for;
                }
                PersistOp::Append(e) => {
                    // Defensive: an explicit TruncateFrom is always recorded
                    // before a conflicting append, but tolerate streams where
                    // it was lost to a torn write.
                    if e.index <= st.log.last_index() {
                        st.log.truncate_from(e.index);
                    }
                    st.log.append_entry(e);
                }
                PersistOp::TruncateFrom(i) => {
                    if i <= st.log.last_index() {
                        st.log.truncate_from(i);
                    }
                }
                PersistOp::Compact {
                    last_index,
                    last_term,
                    cluster,
                    data,
                } => {
                    st.log.compact(last_index);
                    st.snapshot = Some((last_index, last_term, cluster, data));
                }
                PersistOp::InstallSnapshot {
                    last_index,
                    last_term,
                    cluster,
                    data,
                } => {
                    st.log = RaftLog::from_snapshot(last_index, last_term);
                    st.snapshot = Some((last_index, last_term, cluster, data));
                }
            }
        }
        st
    }

    /// Whether the state is indistinguishable from a fresh server's.
    pub fn is_fresh(&self) -> bool {
        self.term == 0
            && self.voted_for.is_none()
            && self.log.last_index() == 0
            && self.snapshot.is_none()
    }
}

/// Stable storage for one Raft server's persistent state.
///
/// Drivers call [`RaftStorage::record`] for every `Effect::Persist` in
/// effect order (which is write-ahead order), and [`RaftStorage::load`]
/// once at boot; `None` means no prior state (fresh server).
pub trait RaftStorage<C: Command>: Send + 'static {
    /// Durably records one op. Must complete before any message that
    /// depends on it is sent — drivers get this by processing effects in
    /// order.
    fn record(&mut self, op: &PersistOp<C>);

    /// Recovers the persisted state, or `None` for a fresh store.
    fn load(&mut self) -> Option<PersistentState<C>>;
}

/// In-memory storage: an op list behind an `Arc`, so a test can keep a
/// handle across a simulated process kill and hand it to the replacement
/// node.
#[derive(Debug)]
pub struct MemStorage<C> {
    ops: Arc<Mutex<Vec<PersistOp<C>>>>,
}

impl<C> Clone for MemStorage<C> {
    fn clone(&self) -> Self {
        MemStorage {
            ops: Arc::clone(&self.ops),
        }
    }
}

impl<C> Default for MemStorage<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C> MemStorage<C> {
    /// An empty store.
    pub fn new() -> Self {
        MemStorage {
            ops: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Acquires the op list, recovering from poisoning: the list is
    /// append-only and structurally valid at every point, and a test
    /// thread dying with the lock held must not cascade into the node
    /// that shares the store.
    fn lock_ops(&self) -> std::sync::MutexGuard<'_, Vec<PersistOp<C>>> {
        self.ops
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Number of ops recorded so far.
    pub fn len(&self) -> usize {
        self.lock_ops().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<C: Command> RaftStorage<C> for MemStorage<C> {
    fn record(&mut self, op: &PersistOp<C>) {
        self.lock_ops().push(op.clone());
    }

    fn load(&mut self) -> Option<PersistentState<C>> {
        let ops = self.lock_ops().clone();
        if ops.is_empty() {
            None
        } else {
            Some(PersistentState::replay(ops))
        }
    }
}

/// Append-only on-disk storage: one `u32`-length-prefixed codec record per
/// op. Records are flushed per write; loading stops at the first torn or
/// undecodable record, recovering everything before it (the write-ahead
/// discipline makes the lost tail an op the server never acted on).
pub struct FileStorage<C> {
    path: PathBuf,
    file: std::fs::File,
    _cmd: std::marker::PhantomData<fn() -> C>,
}

impl<C> std::fmt::Debug for FileStorage<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileStorage")
            .field("path", &self.path)
            .finish()
    }
}

impl<C> FileStorage<C> {
    /// Opens (creating if missing) the store at `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)?;
        Ok(FileStorage {
            path,
            file,
            _cmd: std::marker::PhantomData,
        })
    }

    /// The backing file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl<C> RaftStorage<C> for FileStorage<C>
where
    C: Command + Serialize + Deserialize,
{
    fn record(&mut self, op: &PersistOp<C>) {
        let payload = codec::to_bytes(op);
        let mut rec = Vec::with_capacity(4 + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&payload);
        // A single write keeps the record atomic w.r.t. our own torn-tail
        // recovery; flush pushes it to the OS before any network send that
        // depends on it.
        self.file
            .write_all(&rec)
            .and_then(|()| self.file.flush())
            .expect("raft storage write failed");
    }

    fn load(&mut self) -> Option<PersistentState<C>> {
        let mut bytes = Vec::new();
        let mut f = std::fs::File::open(&self.path).ok()?;
        f.read_to_end(&mut bytes).ok()?;
        let mut ops = Vec::new();
        let mut pos = 0usize;
        // Stops at the first short or corrupt record: a torn tail from a
        // mid-write crash truncates, it never panics.
        while let Some(header) = bytes.get(pos..).and_then(|r| r.first_chunk::<4>()) {
            let len = u32::from_le_bytes(*header) as usize;
            let Some(body) = bytes.get(pos + 4..pos + 4 + len) else {
                break; // torn tail: record length written, body incomplete
            };
            match codec::from_bytes::<PersistOp<C>>(body) {
                Ok(op) => ops.push(op),
                Err(_) => break, // torn or corrupt tail record
            }
            pos += 4 + len;
        }
        if ops.is_empty() {
            None
        } else {
            Some(PersistentState::replay(ops))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::LogCmd;

    fn entry(term: Term, index: LogIndex, v: u64) -> Entry<u64> {
        Entry {
            term,
            index,
            cmd: LogCmd::App(v),
        }
    }

    #[test]
    fn replay_rebuilds_term_vote_and_log() {
        let ops = vec![
            PersistOp::HardState {
                term: 2,
                voted_for: Some(NodeId(1)),
            },
            PersistOp::Append(entry(2, 1, 10)),
            PersistOp::Append(entry(2, 2, 20)),
            PersistOp::TruncateFrom(2),
            PersistOp::Append(entry(3, 2, 21)),
            PersistOp::HardState {
                term: 3,
                voted_for: None,
            },
        ];
        let st = PersistentState::replay(ops);
        assert_eq!(st.term, 3);
        assert_eq!(st.voted_for, None);
        assert_eq!(st.log.last_index(), 2);
        assert_eq!(st.log.get(2).unwrap().cmd, LogCmd::App(21));
        assert!(!st.is_fresh());
    }

    #[test]
    fn mem_storage_handle_survives_clone() {
        let mut a: MemStorage<u64> = MemStorage::new();
        let mut b = a.clone();
        a.record(&PersistOp::HardState {
            term: 1,
            voted_for: None,
        });
        a.record(&PersistOp::Append(entry(1, 1, 5)));
        let st = b.load().expect("shared ops visible through clone");
        assert_eq!(st.term, 1);
        assert_eq!(st.log.last_index(), 1);
    }

    #[test]
    fn file_storage_round_trips_and_survives_torn_tail() {
        let dir = std::env::temp_dir().join(format!("p2pfl-storage-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.raftlog");
        let _ = std::fs::remove_file(&path);

        {
            let mut fs: FileStorage<u64> = FileStorage::open(&path).unwrap();
            assert!(fs.load().is_none(), "fresh store loads nothing");
            fs.record(&PersistOp::HardState {
                term: 4,
                voted_for: Some(NodeId(2)),
            });
            fs.record(&PersistOp::Append(entry(4, 1, 99)));
            fs.record(&PersistOp::Compact {
                last_index: 1,
                last_term: 4,
                cluster: vec![NodeId(0), NodeId(2)],
                data: vec![1, 2, 3],
            });
        }
        // Simulate a crash mid-write: append a record header with only half
        // its body behind it.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&100u32.to_le_bytes()).unwrap();
            f.write_all(&[0xAB; 10]).unwrap();
        }
        let mut fs: FileStorage<u64> = FileStorage::open(&path).unwrap();
        let st = fs.load().expect("state must survive the torn tail");
        assert_eq!(st.term, 4);
        assert_eq!(st.voted_for, Some(NodeId(2)));
        assert_eq!(st.log.snapshot_index(), 1);
        let (si, stm, cluster, blob) = st.snapshot.unwrap();
        assert_eq!((si, stm), (1, 4));
        assert_eq!(cluster, vec![NodeId(0), NodeId(2)]);
        assert_eq!(blob, vec![1, 2, 3]);
        let _ = std::fs::remove_file(&path);
    }
}
