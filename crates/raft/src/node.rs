//! The sans-IO Raft state machine.
//!
//! [`RaftNode`] contains the complete protocol logic — leader election with
//! the up-to-date-log restriction, log replication with conflict
//! resolution, the current-term-only commit rule, and single-server
//! membership changes — but performs no IO. Inputs are
//! [`RaftNode::handle`], [`RaftNode::on_election_timeout`],
//! [`RaftNode::on_heartbeat_timeout`] and [`RaftNode::propose`]; outputs
//! are [`Effect`]s that a driver (see [`crate::driver`]) turns into
//! messages and timers. This makes every protocol path unit-testable
//! without a network.

use crate::log::{Entry, RaftLog};
use crate::message::RaftMsg;
use crate::storage::{PersistOp, PersistentState};
use crate::types::{Command, LogCmd, LogIndex, Role, Term};
use p2pfl_simnet::{NodeId, SimDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Static configuration of one Raft participant.
#[derive(Debug, Clone)]
pub struct RaftConfig {
    /// This node's id.
    pub id: NodeId,
    /// The initial cluster membership (including this node, normally).
    pub initial_cluster: Vec<NodeId>,
    /// Lower bound of the randomized election timeout (the paper's `T`).
    pub election_timeout_min: SimDuration,
    /// Upper bound of the randomized election timeout (the paper's `2T`).
    pub election_timeout_max: SimDuration,
    /// Leader heartbeat period; must be well below the election timeout.
    pub heartbeat_interval: SimDuration,
    /// Seed for timeout randomization.
    pub seed: u64,
    /// Whether elections are preceded by a Pre-Vote round (Raft
    /// dissertation §9.6). On by default; disable only to demonstrate the
    /// disruptive-rejoin livelock it prevents (see the ablation benchmark
    /// `abl_prevote`).
    pub pre_vote: bool,
}

impl RaftConfig {
    /// The paper's timeout scheme: election timeouts uniform in `[T, 2T]`
    /// and heartbeats every `T/5` (comfortably under the broadcast-time ≪
    /// election-timeout requirement with the 15 ms link delay).
    pub fn paper(id: NodeId, cluster: Vec<NodeId>, t: SimDuration, seed: u64) -> Self {
        RaftConfig {
            id,
            initial_cluster: cluster,
            election_timeout_min: t,
            election_timeout_max: t.saturating_mul(2),
            heartbeat_interval: SimDuration::from_nanos((t.as_nanos() / 5).max(1)),
            seed,
            pre_vote: true,
        }
    }
}

/// Side effects requested by the protocol logic.
#[derive(Debug, Clone)]
pub enum Effect<C> {
    /// Send a message to a peer.
    Send(NodeId, RaftMsg<C>),
    /// (Re)arm the election timer with this delay, cancelling any previous
    /// election timer.
    ArmElectionTimer(SimDuration),
    /// (Re)arm the leader heartbeat timer.
    ArmHeartbeatTimer(SimDuration),
    /// An entry became committed; apply it to the state machine.
    Commit(Entry<C>),
    /// This node won an election for `Term`.
    BecameLeader(Term),
    /// This node stepped down from leadership in `Term`.
    SteppedDown(Term),
    /// A snapshot was installed: the state machine must be reset to this
    /// blob (which covers everything up to the accompanying log index).
    RestoreSnapshot(Vec<u8>),
    /// The cluster configuration changed (by an appended config entry).
    ConfigChanged(Vec<NodeId>),
    /// Persistent state changed: the driver must record this op on stable
    /// storage. Emitted *before* any [`Effect::Send`] that depends on it
    /// within the same batch, so processing effects in order yields Raft's
    /// required persist-before-reply discipline.
    Persist(PersistOp<C>),
}

/// Error returned when proposing to a non-leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotLeader {
    /// The most recently observed leader, if any.
    pub leader_hint: Option<NodeId>,
}

/// The Raft protocol state machine for one server.
pub struct RaftNode<C: Command> {
    cfg: RaftConfig,
    role: Role,
    current_term: Term,
    voted_for: Option<NodeId>,
    log: RaftLog<C>,
    commit_index: LogIndex,
    last_applied: LogIndex,
    cluster: Vec<NodeId>,
    leader_hint: Option<NodeId>,
    votes: HashSet<NodeId>,
    pre_votes: HashSet<NodeId>,
    next_index: HashMap<NodeId, LogIndex>,
    match_index: HashMap<NodeId, LogIndex>,
    // (last_index, last_term, cluster at snapshot, app blob)
    snapshot: Option<(LogIndex, Term, Vec<NodeId>, Vec<u8>)>,
    rng: StdRng,
}

impl<C: Command> RaftNode<C> {
    /// Creates a node in the follower state.
    pub fn new(cfg: RaftConfig) -> Self {
        assert!(
            cfg.election_timeout_min <= cfg.election_timeout_max,
            "inverted election timeout bounds"
        );
        assert!(
            cfg.heartbeat_interval < cfg.election_timeout_min,
            "heartbeat must be shorter than the election timeout"
        );
        let cluster = cfg.initial_cluster.clone();
        let rng = StdRng::seed_from_u64(cfg.seed ^ (cfg.id.0 as u64).rotate_left(17));
        RaftNode {
            cfg,
            role: Role::Follower,
            current_term: 0,
            voted_for: None,
            log: RaftLog::new(),
            commit_index: 0,
            last_applied: 0,
            cluster,
            leader_hint: None,
            votes: HashSet::new(),
            pre_votes: HashSet::new(),
            next_index: HashMap::new(),
            match_index: HashMap::new(),
            snapshot: None,
            rng,
        }
    }

    /// Rebuilds a node from storage-recovered persistent state, as a
    /// follower. `commit_index`/`last_applied` restart at the snapshot
    /// boundary (commitment is volatile in Raft); entries above it are
    /// re-committed — and re-applied to the driver's fresh state machine —
    /// once a leader re-establishes their commitment.
    pub fn restore(cfg: RaftConfig, state: PersistentState<C>) -> Self {
        let mut node = RaftNode::new(cfg);
        node.current_term = state.term;
        node.voted_for = state.voted_for;
        node.log = state.log;
        node.snapshot = state.snapshot;
        node.commit_index = node.log.snapshot_index();
        node.last_applied = node.log.snapshot_index();
        node.cluster = node.compute_cluster();
        node
    }

    fn persist_hard_state(&self) -> Effect<C> {
        Effect::Persist(PersistOp::HardState {
            term: self.current_term,
            voted_for: self.voted_for,
        })
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.cfg.id
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Current term.
    pub fn term(&self) -> Term {
        self.current_term
    }

    /// Whether this node currently leads.
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// The last leader this node heard from (itself when leading).
    pub fn leader_hint(&self) -> Option<NodeId> {
        self.leader_hint
    }

    /// Current cluster membership (initial config plus applied changes).
    pub fn cluster(&self) -> &[NodeId] {
        &self.cluster
    }

    /// Highest committed log index.
    pub fn commit_index(&self) -> LogIndex {
        self.commit_index
    }

    /// Read access to the log.
    pub fn log(&self) -> &RaftLog<C> {
        &self.log
    }

    /// The local snapshot, if any: `(last_index, last_term, cluster, blob)`.
    pub fn snapshot(&self) -> Option<&(LogIndex, Term, Vec<NodeId>, Vec<u8>)> {
        self.snapshot.as_ref()
    }

    /// The candidate this node voted for in the current term, if any.
    /// Inspection accessor for the invariant checker (`p2pfl-check`).
    pub fn voted_for(&self) -> Option<NodeId> {
        self.voted_for
    }

    /// Checks that this node's persistent portion (term, vote, log,
    /// snapshot) matches a [`PersistentState`] — the StorageRoundTrip
    /// oracle: a node restored from `st` would be bisimilar to this one up
    /// to volatile state (role, commit index, leadership). Returns a
    /// human-readable description of the first mismatch.
    pub fn matches_persistent(&self, st: &PersistentState<C>) -> Result<(), String>
    where
        C: PartialEq + std::fmt::Debug,
    {
        if st.term != self.current_term {
            return Err(format!(
                "term mismatch: storage {} vs live {}",
                st.term, self.current_term
            ));
        }
        if st.voted_for != self.voted_for {
            return Err(format!(
                "voted_for mismatch: storage {:?} vs live {:?}",
                st.voted_for, self.voted_for
            ));
        }
        if st.log.snapshot_index() != self.log.snapshot_index()
            || st.log.last_index() != self.log.last_index()
        {
            return Err(format!(
                "log bounds mismatch: storage ({}, {}] vs live ({}, {}]",
                st.log.snapshot_index(),
                st.log.last_index(),
                self.log.snapshot_index(),
                self.log.last_index()
            ));
        }
        for i in (self.log.snapshot_index() + 1)..=self.log.last_index() {
            let (a, b) = (st.log.get(i), self.log.get(i));
            match (a, b) {
                (Some(x), Some(y)) if x.term == y.term && x.cmd == y.cmd => {}
                _ => {
                    return Err(format!(
                        "log entry {i} mismatch: storage {a:?} vs live {b:?}"
                    ));
                }
            }
        }
        let live_snap = self.snapshot.as_ref();
        let stored_snap = st.snapshot.as_ref();
        match (stored_snap, live_snap) {
            (None, None) => {}
            (Some(a), Some(b)) if a == b => {}
            _ => return Err("snapshot mismatch between storage and live node".into()),
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Inputs
    // ------------------------------------------------------------------

    /// Boot the node: arm the first election timer.
    pub fn start(&mut self) -> Vec<Effect<C>> {
        vec![Effect::ArmElectionTimer(self.sample_timeout())]
    }

    /// The election timer fired without contact from a valid leader.
    /// Starts a Pre-Vote round (Raft dissertation §9.6): the real
    /// election — and its term increment — only happens once a majority
    /// signals it would vote for us, so a rejoining peer with a stale log
    /// cannot disrupt a healthy cluster by inflating terms.
    pub fn on_election_timeout(&mut self) -> Vec<Effect<C>> {
        if self.role == Role::Leader {
            return Vec::new(); // stale timer
        }
        if self.cfg.pre_vote {
            self.start_pre_vote()
        } else {
            self.start_election()
        }
    }

    /// The heartbeat timer fired (leaders only).
    pub fn on_heartbeat_timeout(&mut self) -> Vec<Effect<C>> {
        if self.role != Role::Leader {
            return Vec::new(); // stale timer
        }
        let mut eff = self.broadcast_append_entries();
        eff.push(Effect::ArmHeartbeatTimer(self.cfg.heartbeat_interval));
        eff
    }

    /// The process restarted after a crash: leadership is volatile and is
    /// dropped, persistent state (term, vote, log) is kept. The state
    /// machine also survives in-process, so `last_applied` is retained to
    /// avoid double-applying entries.
    pub fn handle_restart(&mut self) -> Vec<Effect<C>> {
        let was_leader = self.role == Role::Leader;
        self.role = Role::Follower;
        self.votes.clear();
        let mut eff = Vec::new();
        if was_leader {
            eff.push(Effect::SteppedDown(self.current_term));
        }
        eff.push(Effect::ArmElectionTimer(self.sample_timeout()));
        eff
    }

    /// Compacts the committed log prefix into a snapshot carrying the
    /// application blob `data`. Returns the number of entries dropped
    /// (0 when there is nothing new to compact). Slow followers whose
    /// next entry falls inside the compacted prefix will be sent the
    /// snapshot instead of entries.
    pub fn take_snapshot(&mut self, data: Vec<u8>) -> usize {
        let upto = self.commit_index.min(self.last_applied);
        if upto <= self.log.snapshot_index() {
            return 0;
        }
        // Membership as of the snapshot point: initial + changes <= upto.
        let mut cluster = match &self.snapshot {
            Some((_, _, c, _)) => c.clone(),
            None => self.cfg.initial_cluster.clone(),
        };
        for e in self.log.iter() {
            if e.index > upto {
                break;
            }
            match &e.cmd {
                LogCmd::AddServer(id) if !cluster.contains(id) => cluster.push(*id),
                LogCmd::RemoveServer(id) => cluster.retain(|c| c != id),
                _ => {}
            }
        }
        let dropped = self.log.compact(upto);
        self.snapshot = Some((upto, self.log.snapshot_term(), cluster, data));
        dropped
    }

    /// Proposes a command (leader only). On success returns the assigned
    /// log index and the replication effects.
    pub fn propose(&mut self, cmd: LogCmd<C>) -> Result<(LogIndex, Vec<Effect<C>>), NotLeader> {
        if self.role != Role::Leader {
            return Err(NotLeader {
                leader_hint: self.leader_hint,
            });
        }
        let appended = self.log.append(self.current_term, cmd);
        let index = appended.index;
        let mut eff = vec![Effect::Persist(PersistOp::Append(appended))];
        if let Some(changed) = self.recompute_cluster_if_config(index) {
            eff.push(Effect::ConfigChanged(changed));
        }
        eff.extend(self.broadcast_append_entries());
        // Single-node clusters commit immediately.
        eff.extend(self.try_advance_commit());
        Ok((index, eff))
    }

    /// Handles an incoming RPC from `from`.
    pub fn handle(&mut self, from: NodeId, msg: RaftMsg<C>) -> Vec<Effect<C>> {
        match msg {
            RaftMsg::PreVote {
                term,
                candidate,
                last_log_index,
                last_log_term,
            } => self.on_pre_vote(from, term, candidate, last_log_index, last_log_term),
            RaftMsg::PreVoteResp { term, granted } => self.on_pre_vote_resp(from, term, granted),
            RaftMsg::RequestVote {
                term,
                candidate,
                last_log_index,
                last_log_term,
            } => self.on_request_vote(from, term, candidate, last_log_index, last_log_term),
            RaftMsg::RequestVoteResp { term, granted } => {
                self.on_request_vote_resp(from, term, granted)
            }
            RaftMsg::AppendEntries {
                term,
                leader,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit,
            } => self.on_append_entries(
                term,
                leader,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit,
            ),
            RaftMsg::InstallSnapshot {
                term,
                leader,
                last_index,
                last_term,
                cluster,
                data,
            } => self.on_install_snapshot(term, leader, last_index, last_term, cluster, data),
            RaftMsg::AppendEntriesResp {
                term,
                success,
                match_index,
            } => self.on_append_entries_resp(from, term, success, match_index),
        }
    }

    // ------------------------------------------------------------------
    // Elections
    // ------------------------------------------------------------------

    fn sample_timeout(&mut self) -> SimDuration {
        let lo = self.cfg.election_timeout_min.as_nanos();
        let hi = self.cfg.election_timeout_max.as_nanos();
        SimDuration::from_nanos(if lo == hi {
            lo
        } else {
            self.rng.random_range(lo..=hi)
        })
    }

    fn start_pre_vote(&mut self) -> Vec<Effect<C>> {
        self.pre_votes.clear();
        self.pre_votes.insert(self.cfg.id);
        if self.has_majority(self.pre_votes.len()) {
            // Single-node (or degenerate) cluster: campaign immediately.
            return self.start_election();
        }
        let msg: RaftMsg<C> = RaftMsg::PreVote {
            term: self.current_term + 1,
            candidate: self.cfg.id,
            last_log_index: self.log.last_index(),
            last_log_term: self.log.last_term(),
        };
        let mut eff: Vec<Effect<C>> = self
            .cluster
            .iter()
            .filter(|&&p| p != self.cfg.id)
            .map(|&p| Effect::Send(p, msg.clone()))
            .collect();
        eff.push(Effect::ArmElectionTimer(self.sample_timeout()));
        eff
    }

    fn on_pre_vote(
        &mut self,
        from: NodeId,
        term: Term,
        _candidate: NodeId,
        last_log_index: LogIndex,
        last_log_term: Term,
    ) -> Vec<Effect<C>> {
        // Grant iff the prober's proposed term is not behind ours and its
        // log is at least as up-to-date; granting changes no local state.
        let granted = term >= self.current_term
            && self
                .log
                .candidate_is_up_to_date(last_log_term, last_log_index);
        vec![Effect::Send(from, RaftMsg::PreVoteResp { term, granted })]
    }

    fn on_pre_vote_resp(&mut self, from: NodeId, term: Term, granted: bool) -> Vec<Effect<C>> {
        if self.role == Role::Leader || term != self.current_term + 1 || !granted {
            return Vec::new();
        }
        self.pre_votes.insert(from);
        if self.has_majority(self.pre_votes.len()) {
            self.pre_votes.clear();
            self.start_election()
        } else {
            Vec::new()
        }
    }

    fn start_election(&mut self) -> Vec<Effect<C>> {
        self.current_term += 1;
        self.role = Role::Candidate;
        self.voted_for = Some(self.cfg.id);
        self.votes.clear();
        self.votes.insert(self.cfg.id);
        self.leader_hint = None;
        #[cfg(feature = "mutants")]
        let mut eff = if crate::mutants::active(crate::mutants::Mutant::SkipPersist) {
            Vec::new()
        } else {
            vec![self.persist_hard_state()]
        };
        #[cfg(not(feature = "mutants"))]
        let mut eff = vec![self.persist_hard_state()];
        let msg: RaftMsg<C> = RaftMsg::RequestVote {
            term: self.current_term,
            candidate: self.cfg.id,
            last_log_index: self.log.last_index(),
            last_log_term: self.log.last_term(),
        };
        for &peer in &self.cluster {
            if peer != self.cfg.id {
                eff.push(Effect::Send(peer, msg.clone()));
            }
        }
        eff.push(Effect::ArmElectionTimer(self.sample_timeout()));
        if self.has_majority(self.votes.len()) {
            eff.extend(self.become_leader());
        }
        eff
    }

    fn has_majority(&self, count: usize) -> bool {
        count * 2 > self.cluster.len()
    }

    fn become_leader(&mut self) -> Vec<Effect<C>> {
        self.role = Role::Leader;
        self.leader_hint = Some(self.cfg.id);
        self.next_index.clear();
        self.match_index.clear();
        let next = self.log.last_index() + 1;
        for &peer in &self.cluster {
            if peer != self.cfg.id {
                self.next_index.insert(peer, next);
                self.match_index.insert(peer, 0);
            }
        }
        // Commit a no-op so prior-term entries become committable under the
        // current-term-only commit rule.
        let noop = self.log.append(self.current_term, LogCmd::Noop);
        let mut eff = vec![
            Effect::Persist(PersistOp::Append(noop)),
            Effect::BecameLeader(self.current_term),
        ];
        eff.extend(self.broadcast_append_entries());
        eff.push(Effect::ArmHeartbeatTimer(self.cfg.heartbeat_interval));
        eff.extend(self.try_advance_commit());
        eff
    }

    fn step_down(&mut self, term: Term) -> Vec<Effect<C>> {
        let was_leader = self.role == Role::Leader;
        let old_term = self.current_term;
        let mut eff = Vec::new();
        if term > self.current_term {
            self.current_term = term;
            self.voted_for = None;
            eff.push(self.persist_hard_state());
        }
        self.role = Role::Follower;
        self.votes.clear();
        if was_leader {
            eff.push(Effect::SteppedDown(old_term));
        }
        eff.push(Effect::ArmElectionTimer(self.sample_timeout()));
        eff
    }

    fn on_request_vote(
        &mut self,
        from: NodeId,
        term: Term,
        candidate: NodeId,
        last_log_index: LogIndex,
        last_log_term: Term,
    ) -> Vec<Effect<C>> {
        let mut eff = Vec::new();
        if term > self.current_term {
            eff.extend(self.step_down(term));
        }
        let up_to_date = self
            .log
            .candidate_is_up_to_date(last_log_term, last_log_index);
        let vote_free = self.voted_for.is_none() || self.voted_for == Some(candidate);
        #[cfg(feature = "mutants")]
        let vote_free = vote_free || crate::mutants::active(crate::mutants::Mutant::DoubleVote);
        let grant = term == self.current_term && up_to_date && vote_free;
        if grant {
            self.voted_for = Some(candidate);
            eff.push(self.persist_hard_state());
            // Granting a vote resets the election timer (we believe an
            // election is legitimately in progress).
            eff.push(Effect::ArmElectionTimer(self.sample_timeout()));
        }
        eff.push(Effect::Send(
            from,
            RaftMsg::RequestVoteResp {
                term: self.current_term,
                granted: grant,
            },
        ));
        eff
    }

    fn on_request_vote_resp(&mut self, from: NodeId, term: Term, granted: bool) -> Vec<Effect<C>> {
        if term > self.current_term {
            return self.step_down(term);
        }
        if self.role != Role::Candidate || term != self.current_term || !granted {
            return Vec::new();
        }
        self.votes.insert(from);
        if self.has_majority(self.votes.len()) {
            self.become_leader()
        } else {
            Vec::new()
        }
    }

    // ------------------------------------------------------------------
    // Replication
    // ------------------------------------------------------------------

    fn append_entries_for(&self, peer: NodeId) -> RaftMsg<C> {
        let mut next = self.next_index.get(&peer).copied().unwrap_or(1);
        if self.log.is_compacted(next) {
            // The entries this follower needs are gone: ship the snapshot.
            if let Some((last_index, last_term, cluster, data)) = self.snapshot.clone() {
                return RaftMsg::InstallSnapshot {
                    term: self.current_term,
                    leader: self.cfg.id,
                    last_index,
                    last_term,
                    cluster,
                    data,
                };
            }
            // A compacted log always records its snapshot; if it is
            // somehow missing, replicate from the first live index
            // instead of crashing the leader.
            next = self.log.snapshot_index() + 1;
        }
        let prev = next - 1;
        RaftMsg::AppendEntries {
            term: self.current_term,
            leader: self.cfg.id,
            prev_log_index: prev,
            prev_log_term: self.log.term_at(prev).unwrap_or(0),
            entries: self.log.entries_from(next),
            leader_commit: self.commit_index,
        }
    }

    fn on_install_snapshot(
        &mut self,
        term: Term,
        leader: NodeId,
        last_index: LogIndex,
        last_term: Term,
        cluster: Vec<NodeId>,
        data: Vec<u8>,
    ) -> Vec<Effect<C>> {
        let mut eff = Vec::new();
        if term < self.current_term {
            eff.push(Effect::Send(
                leader,
                RaftMsg::AppendEntriesResp {
                    term: self.current_term,
                    success: false,
                    match_index: 0,
                },
            ));
            return eff;
        }
        eff.extend(self.step_down(term));
        self.leader_hint = Some(leader);
        if last_index <= self.commit_index {
            // Stale snapshot; we already have everything it covers.
            eff.push(Effect::Send(
                leader,
                RaftMsg::AppendEntriesResp {
                    term: self.current_term,
                    success: true,
                    match_index: self.log.last_index(),
                },
            ));
            return eff;
        }
        // Discard the log and state machine; restart from the snapshot.
        self.log = RaftLog::from_snapshot(last_index, last_term);
        self.commit_index = last_index;
        self.last_applied = last_index;
        self.snapshot = Some((last_index, last_term, cluster.clone(), data.clone()));
        eff.push(Effect::Persist(PersistOp::InstallSnapshot {
            last_index,
            last_term,
            cluster: cluster.clone(),
            data: data.clone(),
        }));
        if cluster != self.cluster {
            self.cluster = cluster.clone();
            eff.push(Effect::ConfigChanged(cluster));
        }
        eff.push(Effect::RestoreSnapshot(data));
        eff.push(Effect::Send(
            leader,
            RaftMsg::AppendEntriesResp {
                term: self.current_term,
                success: true,
                match_index: last_index,
            },
        ));
        eff
    }

    fn broadcast_append_entries(&mut self) -> Vec<Effect<C>> {
        let peers: Vec<NodeId> = self
            .cluster
            .iter()
            .copied()
            .filter(|&p| p != self.cfg.id)
            .collect();
        peers
            .into_iter()
            .map(|p| Effect::Send(p, self.append_entries_for(p)))
            .collect()
    }

    fn on_append_entries(
        &mut self,
        term: Term,
        leader: NodeId,
        prev_log_index: LogIndex,
        prev_log_term: Term,
        entries: Vec<Entry<C>>,
        leader_commit: LogIndex,
    ) -> Vec<Effect<C>> {
        let mut eff = Vec::new();
        if term < self.current_term {
            eff.push(Effect::Send(
                leader,
                RaftMsg::AppendEntriesResp {
                    term: self.current_term,
                    success: false,
                    match_index: 0,
                },
            ));
            return eff;
        }
        // A valid leader for this (or a newer) term exists.
        eff.extend(self.step_down(term));
        self.leader_hint = Some(leader);

        // Consistency check.
        if self.log.term_at(prev_log_index) != Some(prev_log_term) {
            let hint = self.log.last_index().min(prev_log_index.saturating_sub(1));
            eff.push(Effect::Send(
                leader,
                RaftMsg::AppendEntriesResp {
                    term: self.current_term,
                    success: false,
                    match_index: hint,
                },
            ));
            return eff;
        }

        // Append, resolving conflicts.
        let mut config_touched = false;
        for e in entries.iter() {
            match self.log.term_at(e.index) {
                Some(t) if t == e.term => continue, // already have it
                Some(_) => {
                    self.log.truncate_from(e.index);
                    eff.push(Effect::Persist(PersistOp::TruncateFrom(e.index)));
                    config_touched = true;
                    self.log.append_entry(e.clone());
                    eff.push(Effect::Persist(PersistOp::Append(e.clone())));
                }
                None => {
                    self.log.append_entry(e.clone());
                    eff.push(Effect::Persist(PersistOp::Append(e.clone())));
                }
            }
            if matches!(e.cmd, LogCmd::AddServer(_) | LogCmd::RemoveServer(_)) {
                config_touched = true;
            }
        }
        if config_touched {
            let new = self.compute_cluster();
            if new != self.cluster {
                self.cluster = new.clone();
                eff.push(Effect::ConfigChanged(new));
            }
        }
        let match_index = prev_log_index + entries.len() as LogIndex;
        if leader_commit > self.commit_index {
            self.commit_index = leader_commit.min(self.log.last_index());
            eff.extend(self.apply_committed());
        }
        eff.push(Effect::Send(
            leader,
            RaftMsg::AppendEntriesResp {
                term: self.current_term,
                success: true,
                match_index,
            },
        ));
        eff
    }

    fn on_append_entries_resp(
        &mut self,
        from: NodeId,
        term: Term,
        success: bool,
        match_index: LogIndex,
    ) -> Vec<Effect<C>> {
        if term > self.current_term {
            return self.step_down(term);
        }
        if self.role != Role::Leader || term != self.current_term {
            return Vec::new();
        }
        let mut eff = Vec::new();
        if success {
            let m = self.match_index.entry(from).or_insert(0);
            if match_index > *m {
                *m = match_index;
            }
            self.next_index.insert(from, match_index + 1);
            eff.extend(self.try_advance_commit());
            // Ship any remaining tail right away.
            if match_index < self.log.last_index() {
                eff.push(Effect::Send(from, self.append_entries_for(from)));
            }
        } else {
            let next = self.next_index.entry(from).or_insert(1);
            *next = (*next).saturating_sub(1).max(1).min(match_index + 1);
            eff.push(Effect::Send(from, self.append_entries_for(from)));
        }
        eff
    }

    fn try_advance_commit(&mut self) -> Vec<Effect<C>> {
        if self.role != Role::Leader {
            return Vec::new();
        }
        let mut n = self.log.last_index();
        while n > self.commit_index {
            // Current-term-only commit rule (paper Sec. III-C3).
            if self.log.term_at(n) == Some(self.current_term) {
                let mut count = 1; // self
                for &peer in &self.cluster {
                    if peer != self.cfg.id && self.match_index.get(&peer).copied().unwrap_or(0) >= n
                    {
                        count += 1;
                    }
                }
                if self.has_majority(count) {
                    self.commit_index = n;
                    break;
                }
            }
            n -= 1;
        }
        self.apply_committed()
    }

    fn apply_committed(&mut self) -> Vec<Effect<C>> {
        let mut eff = Vec::new();
        while self.last_applied < self.commit_index {
            let Some(entry) = self.log.get(self.last_applied + 1) else {
                // Commit index points past the live log — an internal
                // inconsistency. Stop applying rather than crash; the
                // remaining entries apply once the log catches up.
                break;
            };
            eff.push(Effect::Commit(entry.clone()));
            self.last_applied += 1;
        }
        eff
    }

    // ------------------------------------------------------------------
    // Membership
    // ------------------------------------------------------------------

    fn compute_cluster(&self) -> Vec<NodeId> {
        let mut cluster = match &self.snapshot {
            Some((_, _, c, _)) => c.clone(),
            None => self.cfg.initial_cluster.clone(),
        };
        for e in self.log.iter() {
            match &e.cmd {
                LogCmd::AddServer(id) if !cluster.contains(id) => cluster.push(*id),
                LogCmd::AddServer(_) => {}
                LogCmd::RemoveServer(id) => cluster.retain(|c| c != id),
                _ => {}
            }
        }
        cluster
    }

    /// If the entry at `index` is a config command, recompute membership
    /// (configs take effect when *appended*, per the Raft dissertation) and
    /// return the new cluster.
    fn recompute_cluster_if_config(&mut self, index: LogIndex) -> Option<Vec<NodeId>> {
        let is_config = matches!(
            self.log.get(index).map(|e| &e.cmd),
            Some(LogCmd::AddServer(_)) | Some(LogCmd::RemoveServer(_))
        );
        if !is_config {
            return None;
        }
        let new = self.compute_cluster();
        self.cluster = new.clone();
        // Track replication state for any newly added server.
        let next = self.log.last_index() + 1;
        for &peer in &self.cluster {
            if peer != self.cfg.id {
                self.next_index.entry(peer).or_insert(next);
                self.match_index.entry(peer).or_insert(0);
            }
        }
        Some(new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn cfg(id: u32, cluster: &[u32]) -> RaftConfig {
        RaftConfig::paper(
            n(id),
            cluster.iter().map(|&i| n(i)).collect(),
            SimDuration::from_millis(100),
            42 + id as u64,
        )
    }

    fn sends<C: Command>(effects: &[Effect<C>]) -> usize {
        effects
            .iter()
            .filter(|e| matches!(e, Effect::Send(..)))
            .count()
    }

    /// Drives the two-phase (pre-vote, then vote) election of `node` with
    /// a single granting peer — enough for a majority in a 3-node cluster.
    fn elect(node: &mut RaftNode<u64>, granter: NodeId) {
        node.on_election_timeout();
        let proposed = node.term() + 1;
        node.handle(
            granter,
            RaftMsg::PreVoteResp {
                term: proposed,
                granted: true,
            },
        );
        assert_eq!(
            node.role(),
            Role::Candidate,
            "pre-vote majority must campaign"
        );
        let term = node.term();
        node.handle(
            granter,
            RaftMsg::RequestVoteResp {
                term,
                granted: true,
            },
        );
        assert!(node.is_leader());
    }

    #[test]
    fn single_node_becomes_leader_immediately() {
        let mut node: RaftNode<u64> = RaftNode::new(cfg(0, &[0]));
        let eff = node.on_election_timeout();
        assert!(node.is_leader());
        assert!(eff.iter().any(|e| matches!(e, Effect::BecameLeader(1))));
        // The no-op commits instantly in a 1-node cluster.
        assert_eq!(node.commit_index(), 1);
    }

    #[test]
    fn election_needs_majority() {
        let mut a: RaftNode<u64> = RaftNode::new(cfg(0, &[0, 1, 2]));
        // Phase 1: the timeout only probes (no term change, still follower).
        let eff = a.on_election_timeout();
        assert_eq!(a.role(), Role::Follower);
        assert_eq!(a.term(), 0, "pre-vote must not bump the term");
        assert_eq!(sends(&eff), 2, "pre-vote probes to both peers");
        // Phase 2: one pre-vote grant = majority -> real candidacy.
        let eff = a.handle(
            n(1),
            RaftMsg::PreVoteResp {
                term: 1,
                granted: true,
            },
        );
        assert_eq!(a.role(), Role::Candidate);
        assert_eq!(a.term(), 1);
        assert_eq!(sends(&eff), 2, "vote requests to both peers");
        // Phase 3: one real grant = 2 of 3 votes -> leader.
        let eff = a.handle(
            n(1),
            RaftMsg::RequestVoteResp {
                term: 1,
                granted: true,
            },
        );
        assert!(a.is_leader());
        assert!(eff.iter().any(|e| matches!(e, Effect::BecameLeader(1))));
    }

    #[test]
    fn pre_vote_denied_for_stale_log_and_changes_no_state() {
        let mut voter: RaftNode<u64> = RaftNode::new(cfg(1, &[0, 1, 2]));
        voter.log.append(1, LogCmd::App(7));
        voter.current_term = 1;
        let eff = voter.handle(
            n(0),
            RaftMsg::PreVote {
                term: 2,
                candidate: n(0),
                last_log_index: 0,
                last_log_term: 0,
            },
        );
        assert!(eff.iter().any(|e| matches!(
            e,
            Effect::Send(_, RaftMsg::PreVoteResp { granted: false, .. })
        )));
        // A zombie probing forever never inflates anyone's term.
        assert_eq!(voter.term(), 1);
        assert_eq!(voter.voted_for, None);
    }

    #[test]
    fn pre_vote_granted_without_consuming_the_real_vote() {
        let mut voter: RaftNode<u64> = RaftNode::new(cfg(2, &[0, 1, 2]));
        let eff = voter.handle(
            n(0),
            RaftMsg::PreVote {
                term: 1,
                candidate: n(0),
                last_log_index: 0,
                last_log_term: 0,
            },
        );
        assert!(eff.iter().any(|e| matches!(
            e,
            Effect::Send(_, RaftMsg::PreVoteResp { granted: true, .. })
        )));
        // The real vote is still available to anyone.
        assert_eq!(voter.voted_for, None);
    }

    #[test]
    fn vote_denied_for_stale_log() {
        let mut voter: RaftNode<u64> = RaftNode::new(cfg(1, &[0, 1, 2]));
        voter.log.append(1, LogCmd::App(7));
        voter.current_term = 1;
        let eff = voter.handle(
            n(0),
            RaftMsg::RequestVote {
                term: 2,
                candidate: n(0),
                last_log_index: 0,
                last_log_term: 0,
            },
        );
        let granted = eff.iter().any(|e| {
            matches!(
                e,
                Effect::Send(_, RaftMsg::RequestVoteResp { granted: true, .. })
            )
        });
        assert!(!granted, "stale candidate must not win the vote");
    }

    #[test]
    fn votes_are_single_use_per_term() {
        let mut voter: RaftNode<u64> = RaftNode::new(cfg(2, &[0, 1, 2]));
        let e1 = voter.handle(
            n(0),
            RaftMsg::RequestVote {
                term: 1,
                candidate: n(0),
                last_log_index: 0,
                last_log_term: 0,
            },
        );
        assert!(e1.iter().any(|e| matches!(
            e,
            Effect::Send(_, RaftMsg::RequestVoteResp { granted: true, .. })
        )));
        let e2 = voter.handle(
            n(1),
            RaftMsg::RequestVote {
                term: 1,
                candidate: n(1),
                last_log_index: 0,
                last_log_term: 0,
            },
        );
        assert!(e2.iter().any(|e| matches!(
            e,
            Effect::Send(_, RaftMsg::RequestVoteResp { granted: false, .. })
        )));
    }

    #[test]
    fn append_entries_rejects_stale_term() {
        let mut f: RaftNode<u64> = RaftNode::new(cfg(1, &[0, 1, 2]));
        f.current_term = 5;
        let eff = f.handle(
            n(0),
            RaftMsg::AppendEntries {
                term: 3,
                leader: n(0),
                prev_log_index: 0,
                prev_log_term: 0,
                entries: vec![],
                leader_commit: 0,
            },
        );
        assert!(eff.iter().any(|e| matches!(
            e,
            Effect::Send(_, RaftMsg::AppendEntriesResp { success: false, .. })
        )));
        assert_eq!(f.term(), 5);
    }

    #[test]
    fn append_entries_consistency_check_and_conflict_resolution() {
        let mut f: RaftNode<u64> = RaftNode::new(cfg(1, &[0, 1]));
        // Follower has [t1, t1]; leader ships prev=(1, t1) + entry(2, t2).
        f.log.append(1, LogCmd::App(10));
        f.log.append(1, LogCmd::App(11));
        let eff = f.handle(
            n(0),
            RaftMsg::AppendEntries {
                term: 2,
                leader: n(0),
                prev_log_index: 1,
                prev_log_term: 1,
                entries: vec![Entry {
                    term: 2,
                    index: 2,
                    cmd: LogCmd::App(99),
                }],
                leader_commit: 0,
            },
        );
        assert!(eff.iter().any(|e| matches!(
            e,
            Effect::Send(
                _,
                RaftMsg::AppendEntriesResp {
                    success: true,
                    match_index: 2,
                    ..
                }
            )
        )));
        // Conflicting entry replaced.
        assert_eq!(f.log.get(2).unwrap().cmd, LogCmd::App(99));
        assert_eq!(f.log.last_index(), 2);
    }

    #[test]
    fn commit_flows_through_leader_majority() {
        // 3-node cluster: leader + one responsive follower = majority.
        let mut leader: RaftNode<u64> = RaftNode::new(cfg(0, &[0, 1, 2]));
        elect(&mut leader, n(1));
        let (idx, _) = leader.propose(LogCmd::App(5)).unwrap();
        assert_eq!(idx, 2); // after the no-op
        assert_eq!(leader.commit_index(), 0, "nothing acked yet");
        let eff = leader.handle(
            n(1),
            RaftMsg::AppendEntriesResp {
                term: 1,
                success: true,
                match_index: 2,
            },
        );
        assert_eq!(leader.commit_index(), 2);
        let commits: Vec<_> = eff
            .iter()
            .filter_map(|e| match e {
                Effect::Commit(en) => Some(en.index),
                _ => None,
            })
            .collect();
        assert_eq!(commits, vec![1, 2], "no-op then the command");
    }

    #[test]
    fn leader_steps_down_on_higher_term() {
        let mut leader: RaftNode<u64> = RaftNode::new(cfg(0, &[0, 1, 2]));
        elect(&mut leader, n(1));
        let eff = leader.handle(
            n(2),
            RaftMsg::AppendEntries {
                term: 9,
                leader: n(2),
                prev_log_index: 0,
                prev_log_term: 0,
                entries: vec![],
                leader_commit: 0,
            },
        );
        assert!(!leader.is_leader());
        assert!(eff.iter().any(|e| matches!(e, Effect::SteppedDown(1))));
        assert_eq!(leader.leader_hint(), Some(n(2)));
    }

    #[test]
    fn propose_on_follower_returns_hint() {
        let mut f: RaftNode<u64> = RaftNode::new(cfg(1, &[0, 1, 2]));
        f.handle(
            n(0),
            RaftMsg::AppendEntries {
                term: 1,
                leader: n(0),
                prev_log_index: 0,
                prev_log_term: 0,
                entries: vec![],
                leader_commit: 0,
            },
        );
        let err = f.propose(LogCmd::App(1)).unwrap_err();
        assert_eq!(err.leader_hint, Some(n(0)));
    }

    #[test]
    fn add_server_extends_cluster_on_append() {
        let mut leader: RaftNode<u64> = RaftNode::new(cfg(0, &[0, 1, 2]));
        elect(&mut leader, n(1));
        let (_, eff) = leader.propose(LogCmd::AddServer(n(3))).unwrap();
        assert!(leader.cluster().contains(&n(3)));
        assert!(eff
            .iter()
            .any(|e| matches!(e, Effect::ConfigChanged(c) if c.contains(&n(3)))));
        // Replication now reaches the new server too.
        assert!(eff
            .iter()
            .any(|e| matches!(e, Effect::Send(to, RaftMsg::AppendEntries { .. }) if *to == n(3))));
    }

    #[test]
    fn follower_applies_config_from_log() {
        let mut f: RaftNode<u64> = RaftNode::new(cfg(1, &[0, 1, 2]));
        f.handle(
            n(0),
            RaftMsg::AppendEntries {
                term: 1,
                leader: n(0),
                prev_log_index: 0,
                prev_log_term: 0,
                entries: vec![
                    Entry {
                        term: 1,
                        index: 1,
                        cmd: LogCmd::Noop,
                    },
                    Entry {
                        term: 1,
                        index: 2,
                        cmd: LogCmd::AddServer(n(7)),
                    },
                ],
                leader_commit: 0,
            },
        );
        assert!(f.cluster().contains(&n(7)));
    }

    #[test]
    fn removed_server_shrinks_quorum() {
        let mut leader: RaftNode<u64> = RaftNode::new(cfg(0, &[0, 1, 2]));
        elect(&mut leader, n(1));
        leader.propose(LogCmd::RemoveServer(n(2))).unwrap();
        assert_eq!(leader.cluster(), &[n(0), n(1)]);
    }

    #[test]
    fn heartbeat_only_fires_for_leaders() {
        let mut f: RaftNode<u64> = RaftNode::new(cfg(1, &[0, 1, 2]));
        assert!(f.on_heartbeat_timeout().is_empty());
    }

    #[test]
    fn election_timeout_is_ignored_by_leader() {
        let mut l: RaftNode<u64> = RaftNode::new(cfg(0, &[0]));
        l.on_election_timeout();
        assert!(l.is_leader());
        assert!(l.on_election_timeout().is_empty());
    }

    #[test]
    fn candidate_restarts_election_on_timeout() {
        let mut c: RaftNode<u64> = RaftNode::new(cfg(0, &[0, 1, 2]));
        c.on_election_timeout();
        c.handle(
            n(1),
            RaftMsg::PreVoteResp {
                term: 1,
                granted: true,
            },
        );
        assert_eq!(c.term(), 1);
        assert_eq!(c.role(), Role::Candidate);
        // Split vote: the next timeout re-probes, then campaigns again.
        c.on_election_timeout();
        c.handle(
            n(2),
            RaftMsg::PreVoteResp {
                term: 2,
                granted: true,
            },
        );
        assert_eq!(c.term(), 2);
        assert_eq!(c.role(), Role::Candidate);
    }

    #[test]
    fn stale_pre_vote_response_is_ignored() {
        let mut c: RaftNode<u64> = RaftNode::new(cfg(0, &[0, 1, 2]));
        c.on_election_timeout();
        // A response for a long-gone probe term must not trigger anything.
        c.handle(
            n(1),
            RaftMsg::PreVoteResp {
                term: 99,
                granted: true,
            },
        );
        assert_eq!(c.role(), Role::Follower);
        assert_eq!(c.term(), 0);
    }
}
