//! Simulator driver: runs a [`RaftNode`] as a `p2pfl-simnet` actor.
//!
//! The driver translates [`Effect`]s into messages and timers, applies
//! committed entries to a pluggable [`StateMachine`], and implements the
//! crash/restart semantics of the paper's evaluation: term, vote and log
//! survive a crash (they are persistent state in Raft), volatile leadership
//! is lost, and the node rejoins as a follower.

use crate::log::Entry;
use crate::message::RaftMsg;
use crate::node::{Effect, NotLeader, RaftConfig, RaftNode};
use crate::storage::{PersistOp, RaftStorage};
use crate::types::{Command, LogCmd, LogIndex, Role, Term};
use p2pfl_simnet::{Actor, NodeId, SimTime, TimerId, Transport};

/// Application state machine fed by committed entries.
pub trait StateMachine<C>: 'static {
    /// Applies one committed entry, in log order.
    fn apply(&mut self, entry: &Entry<C>);

    /// Called when the local node wins an election (the hook the two-layer
    /// system uses to join the FedAvg layer).
    fn on_became_leader(&mut self, _term: Term) {}

    /// Called when the local node loses leadership.
    fn on_stepped_down(&mut self, _term: Term) {}

    /// Serializes the state machine for a log-compaction snapshot.
    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Resets the state machine from a snapshot produced by
    /// [`StateMachine::snapshot`] on another replica.
    fn restore(&mut self, _data: &[u8]) {}
}

/// A no-op state machine for tests that only exercise elections.
pub struct NullStateMachine;

impl<C> StateMachine<C> for NullStateMachine {
    fn apply(&mut self, _entry: &Entry<C>) {}
}

const TIMER_ELECTION: u64 = 1;
const TIMER_HEARTBEAT: u64 = 2;

/// One leadership observation, recorded for the election-time experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeadershipEvent {
    /// When the node won the election.
    pub at: SimTime,
    /// The term it won.
    pub term: Term,
}

/// A Raft server running inside the simulator.
pub struct RaftActor<C: Command, SM: StateMachine<C>> {
    node: RaftNode<C>,
    /// The application state machine.
    pub sm: SM,
    storage: Option<Box<dyn RaftStorage<C>>>,
    election_timer: Option<TimerId>,
    heartbeat_timer: Option<TimerId>,
    /// Every election this node has won, with timestamps (experiment data).
    pub leadership_history: Vec<LeadershipEvent>,
    /// Number of times this node stepped down.
    pub step_downs: u64,
}

impl<C: Command, SM: StateMachine<C>> RaftActor<C, SM> {
    /// Wraps a fresh Raft node and state machine. Persistent state lives
    /// only in memory; use [`RaftActor::with_storage`] for durability.
    pub fn new(cfg: RaftConfig, sm: SM) -> Self {
        RaftActor {
            node: RaftNode::new(cfg),
            sm,
            storage: None,
            election_timer: None,
            heartbeat_timer: None,
            leadership_history: Vec::new(),
            step_downs: 0,
        }
    }

    /// Wraps a Raft node backed by stable storage: previously persisted
    /// state (term, vote, log, snapshot) is recovered — the state machine
    /// is reset from the snapshot blob and re-fed committed entries above
    /// it — and every subsequent persistent-state change is recorded
    /// before the message that depends on it is sent.
    pub fn with_storage(cfg: RaftConfig, sm: SM, mut storage: Box<dyn RaftStorage<C>>) -> Self {
        let mut sm = sm;
        let node = match storage.load() {
            Some(state) => {
                if let Some((_, _, _, blob)) = &state.snapshot {
                    sm.restore(blob);
                }
                RaftNode::restore(cfg, state)
            }
            None => RaftNode::new(cfg),
        };
        RaftActor {
            node,
            sm,
            storage: Some(storage),
            election_timer: None,
            heartbeat_timer: None,
            leadership_history: Vec::new(),
            step_downs: 0,
        }
    }

    /// Read access to the protocol state.
    pub fn raft(&self) -> &RaftNode<C> {
        &self.node
    }

    /// StorageRoundTrip oracle hook for the invariant checker: replays the
    /// storage handle (when present) and checks that a node restored from
    /// it would be bisimilar to the live one — same term, vote, log, and
    /// snapshot. Returns a description of the first divergence.
    pub fn verify_storage_roundtrip(&mut self) -> Result<(), String>
    where
        C: PartialEq + std::fmt::Debug,
    {
        match self.storage.as_mut() {
            Some(st) => self.node.matches_persistent(&st.load().unwrap_or_default()),
            None => Ok(()),
        }
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.node.role()
    }

    /// Whether this node currently leads its cluster.
    pub fn is_leader(&self) -> bool {
        self.node.is_leader()
    }

    /// Proposes an application command on this node (leader only).
    pub fn propose(
        &mut self,
        ctx: &mut dyn Transport<RaftMsg<C>>,
        cmd: C,
    ) -> Result<LogIndex, NotLeader> {
        let (idx, eff) = self.node.propose(LogCmd::App(cmd))?;
        self.run_effects(ctx, eff);
        Ok(idx)
    }

    /// Compacts the applied log prefix into a snapshot of the current
    /// state machine; slow or freshly restarted followers will receive the
    /// snapshot instead of the full log.
    pub fn compact_log(&mut self) -> usize {
        let blob = self.sm.snapshot();
        let dropped = self.node.take_snapshot(blob);
        if dropped > 0 {
            if let (Some(st), Some((last_index, last_term, cluster, data))) =
                (self.storage.as_mut(), self.node.snapshot())
            {
                st.record(&PersistOp::Compact {
                    last_index: *last_index,
                    last_term: *last_term,
                    cluster: cluster.clone(),
                    data: data.clone(),
                });
            }
        }
        dropped
    }

    /// Proposes a membership change on this node (leader only).
    pub fn propose_config(
        &mut self,
        ctx: &mut dyn Transport<RaftMsg<C>>,
        cmd: LogCmd<C>,
    ) -> Result<LogIndex, NotLeader> {
        assert!(
            matches!(cmd, LogCmd::AddServer(_) | LogCmd::RemoveServer(_)),
            "use propose() for application commands"
        );
        let (idx, eff) = self.node.propose(cmd)?;
        self.run_effects(ctx, eff);
        Ok(idx)
    }

    fn run_effects(&mut self, ctx: &mut dyn Transport<RaftMsg<C>>, effects: Vec<Effect<C>>) {
        for e in effects {
            match e {
                Effect::Send(to, msg) => ctx.send(to, msg),
                Effect::ArmElectionTimer(d) => {
                    if let Some(t) = self.election_timer.take() {
                        ctx.cancel_timer(t);
                    }
                    self.election_timer = Some(ctx.set_timer(d, TIMER_ELECTION));
                }
                Effect::ArmHeartbeatTimer(d) => {
                    if let Some(t) = self.heartbeat_timer.take() {
                        ctx.cancel_timer(t);
                    }
                    self.heartbeat_timer = Some(ctx.set_timer(d, TIMER_HEARTBEAT));
                }
                Effect::Commit(entry) => self.sm.apply(&entry),
                Effect::BecameLeader(term) => {
                    self.leadership_history.push(LeadershipEvent {
                        at: ctx.now(),
                        term,
                    });
                    self.sm.on_became_leader(term);
                }
                Effect::SteppedDown(term) => {
                    self.step_downs += 1;
                    self.sm.on_stepped_down(term);
                }
                Effect::RestoreSnapshot(data) => self.sm.restore(&data),
                Effect::ConfigChanged(_) => {}
                Effect::Persist(op) => {
                    if let Some(st) = self.storage.as_mut() {
                        st.record(&op);
                    }
                }
            }
        }
    }
}

impl<C: Command, SM: StateMachine<C>> Actor<RaftMsg<C>> for RaftActor<C, SM> {
    fn on_start(&mut self, ctx: &mut dyn Transport<RaftMsg<C>>) {
        let eff = self.node.start();
        self.run_effects(ctx, eff);
    }

    fn on_message(&mut self, ctx: &mut dyn Transport<RaftMsg<C>>, from: NodeId, msg: RaftMsg<C>) {
        let eff = self.node.handle(from, msg);
        self.run_effects(ctx, eff);
    }

    fn on_timer(&mut self, ctx: &mut dyn Transport<RaftMsg<C>>, tag: u64) {
        let eff = match tag {
            TIMER_ELECTION => {
                self.election_timer = None;
                self.node.on_election_timeout()
            }
            TIMER_HEARTBEAT => {
                self.heartbeat_timer = None;
                self.node.on_heartbeat_timeout()
            }
            _ => Vec::new(),
        };
        self.run_effects(ctx, eff);
    }

    fn on_crash(&mut self, _now: SimTime) {
        // Timers die with the process; persistent Raft state (term, vote,
        // log) survives inside `self.node`.
        self.election_timer = None;
        self.heartbeat_timer = None;
    }

    fn on_restart(&mut self, ctx: &mut dyn Transport<RaftMsg<C>>) {
        // Rejoin as a follower: leadership is volatile.
        let eff = self.node.handle_restart();
        self.run_effects(ctx, eff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pfl_simnet::{Sim, SimDuration};

    type Msg = RaftMsg<u64>;

    /// Records applied commands.
    struct Recorder {
        applied: Vec<(LogIndex, Option<u64>)>,
    }

    impl StateMachine<u64> for Recorder {
        fn apply(&mut self, entry: &Entry<u64>) {
            let v = match &entry.cmd {
                LogCmd::App(x) => Some(*x),
                _ => None,
            };
            self.applied.push((entry.index, v));
        }
    }

    fn build_cluster(n: usize, t_ms: u64, seed: u64) -> (Sim<Msg>, Vec<NodeId>) {
        let mut sim = Sim::new(seed);
        let ids: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        for &id in &ids {
            let cfg = RaftConfig::paper(
                id,
                ids.clone(),
                SimDuration::from_millis(t_ms),
                seed + id.0 as u64,
            );
            sim.add_node(RaftActor::new(cfg, Recorder { applied: vec![] }));
        }
        (sim, ids)
    }

    fn leaders(sim: &Sim<Msg>, ids: &[NodeId]) -> Vec<NodeId> {
        ids.iter()
            .copied()
            .filter(|&id| {
                !sim.is_crashed(id) && sim.actor::<RaftActor<u64, Recorder>>(id).is_leader()
            })
            .collect()
    }

    #[test]
    fn cluster_elects_exactly_one_leader() {
        let (mut sim, ids) = build_cluster(5, 100, 1);
        sim.run_until(SimTime::from_secs(2));
        let ls = leaders(&sim, &ids);
        assert_eq!(ls.len(), 1, "leaders: {ls:?}");
        // All nodes agree on the leader.
        let leader = ls[0];
        for &id in &ids {
            let a = sim.actor::<RaftActor<u64, Recorder>>(id);
            assert_eq!(a.raft().leader_hint(), Some(leader), "node {id}");
        }
    }

    #[test]
    fn replication_applies_in_order_everywhere() {
        let (mut sim, ids) = build_cluster(3, 100, 2);
        sim.run_until(SimTime::from_secs(2));
        let leader = leaders(&sim, &ids)[0];
        for v in [10u64, 20, 30] {
            sim.exec::<RaftActor<u64, Recorder>, _, _>(leader, |a, ctx| a.propose(ctx, v).unwrap());
        }
        sim.run_for(SimDuration::from_secs(1));
        let expect: Vec<u64> = vec![10, 20, 30];
        for &id in &ids {
            let a = sim.actor::<RaftActor<u64, Recorder>>(id);
            let applied: Vec<u64> = a.sm.applied.iter().filter_map(|(_, v)| *v).collect();
            assert_eq!(applied, expect, "node {id}");
        }
    }

    #[test]
    fn leader_crash_triggers_reelection_preserving_log() {
        let (mut sim, ids) = build_cluster(5, 100, 3);
        sim.run_until(SimTime::from_secs(2));
        let old = leaders(&sim, &ids)[0];
        sim.exec::<RaftActor<u64, Recorder>, _, _>(old, |a, ctx| a.propose(ctx, 777).unwrap());
        sim.run_for(SimDuration::from_millis(500));
        let crash_at = sim.now() + SimDuration::from_millis(1);
        sim.schedule_crash(old, crash_at);
        sim.run_for(SimDuration::from_secs(3));
        let ls = leaders(&sim, &ids);
        assert_eq!(ls.len(), 1);
        assert_ne!(ls[0], old, "new leader must differ");
        // The committed command survived the crash.
        let a = sim.actor::<RaftActor<u64, Recorder>>(ls[0]);
        assert!(a.sm.applied.iter().any(|(_, v)| *v == Some(777)));
    }

    #[test]
    fn crashed_node_rejoins_and_catches_up() {
        let (mut sim, ids) = build_cluster(3, 100, 4);
        sim.run_until(SimTime::from_secs(2));
        let leader = leaders(&sim, &ids)[0];
        let victim = *ids.iter().find(|&&i| i != leader).unwrap();
        let t = sim.now();
        sim.schedule_crash(victim, t + SimDuration::from_millis(1));
        sim.run_for(SimDuration::from_millis(100));
        sim.exec::<RaftActor<u64, Recorder>, _, _>(leader, |a, ctx| a.propose(ctx, 42).unwrap());
        sim.run_for(SimDuration::from_millis(500));
        let t = sim.now();
        sim.schedule_restart(victim, t + SimDuration::from_millis(1));
        sim.run_for(SimDuration::from_secs(2));
        let a = sim.actor::<RaftActor<u64, Recorder>>(victim);
        assert!(
            a.sm.applied.iter().any(|(_, v)| *v == Some(42)),
            "restarted node must catch up: {:?}",
            a.sm.applied
        );
    }

    #[test]
    fn minority_partition_cannot_commit() {
        let (mut sim, ids) = build_cluster(3, 100, 5);
        sim.run_until(SimTime::from_secs(2));
        let leader = leaders(&sim, &ids)[0];
        // Cut the leader off from both followers.
        for &id in &ids {
            if id != leader {
                sim.partition_pair(leader, id);
            }
        }
        let before = sim
            .actor::<RaftActor<u64, Recorder>>(leader)
            .raft()
            .commit_index();
        sim.exec::<RaftActor<u64, Recorder>, _, _>(leader, |a, ctx| {
            let _ = a.propose(ctx, 999);
        });
        sim.run_for(SimDuration::from_secs(1));
        let a = sim.actor::<RaftActor<u64, Recorder>>(leader);
        assert_eq!(
            a.raft().commit_index(),
            before,
            "isolated leader must not commit"
        );
        // Meanwhile the majority side elected a new leader.
        let others: Vec<NodeId> = ids.iter().copied().filter(|&i| i != leader).collect();
        let new_leaders = leaders(&sim, &others);
        assert_eq!(new_leaders.len(), 1);
    }

    #[test]
    fn storage_backed_node_recovers_term_vote_and_log() {
        use crate::storage::MemStorage;
        // Three storage-backed nodes replicate entries; then node 2's state
        // is rebuilt from its storage handle alone (modeling a process that
        // died and restarted from disk) and must come back with the same
        // term and a log containing everything it had persisted.
        let mut sim: Sim<Msg> = Sim::new(31);
        let ids: Vec<NodeId> = (0..3).map(NodeId).collect();
        let stores: Vec<MemStorage<u64>> = (0..3).map(|_| MemStorage::new()).collect();
        for &id in &ids {
            let cfg = RaftConfig::paper(id, ids.clone(), SimDuration::from_millis(100), 31);
            sim.add_node(RaftActor::with_storage(
                cfg,
                Recorder { applied: vec![] },
                Box::new(stores[id.index()].clone()),
            ));
        }
        sim.run_until(SimTime::from_secs(2));
        let leader = leaders(&sim, &ids)[0];
        for v in [5u64, 6, 7] {
            sim.exec::<RaftActor<u64, Recorder>, _, _>(leader, |a, ctx| a.propose(ctx, v).unwrap());
        }
        sim.run_for(SimDuration::from_secs(1));
        let victim = *ids.iter().find(|&&i| i != leader).unwrap();
        let (term_before, last_before) = {
            let a = sim.actor::<RaftActor<u64, Recorder>>(victim);
            (a.raft().term(), a.raft().log().last_index())
        };
        assert!(last_before >= 4, "noop + 3 commands replicated");

        // Rebuild purely from the storage handle: fresh actor, fresh SM.
        let cfg = RaftConfig::paper(victim, ids.clone(), SimDuration::from_millis(100), 99);
        let revived = RaftActor::with_storage(
            cfg,
            Recorder { applied: vec![] },
            Box::new(stores[victim.index()].clone()),
        );
        assert_eq!(revived.raft().term(), term_before);
        assert_eq!(revived.raft().log().last_index(), last_before);
        assert_eq!(revived.role(), Role::Follower);
        // Commitment is volatile: it restarts at the snapshot boundary and
        // is re-established by the next leader contact.
        assert_eq!(revived.raft().commit_index(), 0);
    }

    #[test]
    fn election_safety_over_many_seeds() {
        // At most one leader per term, across random seeds and a crash.
        for seed in 0..15u64 {
            let (mut sim, ids) = build_cluster(5, 50, 100 + seed);
            sim.schedule_crash(ids[(seed % 5) as usize], SimTime::from_millis(150));
            sim.run_until(SimTime::from_secs(3));
            let mut by_term: std::collections::HashMap<Term, Vec<NodeId>> = Default::default();
            for &id in &ids {
                let a = sim.actor::<RaftActor<u64, Recorder>>(id);
                for ev in &a.leadership_history {
                    by_term.entry(ev.term).or_default().push(id);
                }
            }
            for (term, winners) in by_term {
                assert_eq!(winners.len(), 1, "seed {seed}: term {term} had {winners:?}");
            }
        }
    }
}
