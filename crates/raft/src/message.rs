//! Raft RPCs as simulator payloads.

use crate::log::Entry;
use crate::types::{Command, LogIndex, Term};
use p2pfl_simnet::{NodeId, Payload};

/// The Raft RPCs and their responses (paper Sec. III-C), plus the
/// Pre-Vote probe (Raft dissertation §9.6) that prevents a rejoining
/// peer with a stale log from disrupting a healthy cluster by inflating
/// terms.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum RaftMsg<C> {
    /// A would-be candidate probes whether an election could succeed,
    /// without incrementing any term.
    PreVote {
        /// The term the prober *would* campaign at (`current + 1`).
        term: Term,
        /// The probing node.
        candidate: NodeId,
        /// Index of the prober's last log entry.
        last_log_index: LogIndex,
        /// Term of the prober's last log entry.
        last_log_term: Term,
    },
    /// Pre-vote response; grants change no voter state.
    PreVoteResp {
        /// The proposed campaign term being answered.
        term: Term,
        /// Whether a real vote would plausibly be granted.
        granted: bool,
    },
    /// Candidate solicits a vote.
    RequestVote {
        /// Candidate's term.
        term: Term,
        /// The candidate asking for the vote.
        candidate: NodeId,
        /// Index of the candidate's last log entry.
        last_log_index: LogIndex,
        /// Term of the candidate's last log entry.
        last_log_term: Term,
    },
    /// Vote response.
    RequestVoteResp {
        /// Voter's current term.
        term: Term,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Leader replicates entries / sends heartbeats.
    AppendEntries {
        /// Leader's term.
        term: Term,
        /// The leader's id (so followers learn who leads).
        leader: NodeId,
        /// Index of the entry immediately preceding the new ones.
        prev_log_index: LogIndex,
        /// Term of that entry.
        prev_log_term: Term,
        /// New entries (empty for heartbeats).
        entries: Vec<Entry<C>>,
        /// Leader's commit index.
        leader_commit: LogIndex,
    },
    /// Leader ships its compacted state to a follower whose next entry
    /// has been compacted away (Raft log compaction, dissertation ch. 5).
    InstallSnapshot {
        /// Leader's term.
        term: Term,
        /// The leader's id.
        leader: NodeId,
        /// Index of the last entry covered by the snapshot.
        last_index: LogIndex,
        /// Term of that entry.
        last_term: Term,
        /// Cluster membership as of the snapshot.
        cluster: Vec<NodeId>,
        /// Opaque state-machine snapshot.
        data: Vec<u8>,
    },
    /// AppendEntries response.
    AppendEntriesResp {
        /// Follower's current term.
        term: Term,
        /// Whether the consistency check passed and entries were stored.
        success: bool,
        /// Highest log index known replicated on the follower (valid when
        /// `success`); on failure, a hint for where to retry from.
        match_index: LogIndex,
    },
}

impl<C: Command + Send + 'static> Payload for RaftMsg<C> {
    fn size_bytes(&self) -> u64 {
        match self {
            RaftMsg::PreVote { .. } => 32,
            RaftMsg::PreVoteResp { .. } => 16,
            RaftMsg::RequestVote { .. } => 32,
            RaftMsg::RequestVoteResp { .. } => 16,
            RaftMsg::AppendEntries { entries, .. } => {
                40 + entries.iter().map(|e| e.wire_bytes()).sum::<u64>()
            }
            RaftMsg::InstallSnapshot { cluster, data, .. } => {
                40 + 8 * cluster.len() as u64 + data.len() as u64
            }
            RaftMsg::AppendEntriesResp { .. } => 24,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            RaftMsg::PreVote { .. } => "raft.pre_vote",
            RaftMsg::PreVoteResp { .. } => "raft.pre_vote_resp",
            RaftMsg::RequestVote { .. } => "raft.request_vote",
            RaftMsg::RequestVoteResp { .. } => "raft.request_vote_resp",
            RaftMsg::AppendEntries { entries, .. } if entries.is_empty() => "raft.heartbeat",
            RaftMsg::AppendEntries { .. } => "raft.append_entries",
            RaftMsg::InstallSnapshot { .. } => "raft.install_snapshot",
            RaftMsg::AppendEntriesResp { .. } => "raft.append_entries_resp",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::LogCmd;

    #[test]
    fn sizes_and_kinds() {
        let hb: RaftMsg<u64> = RaftMsg::AppendEntries {
            term: 1,
            leader: NodeId(0),
            prev_log_index: 0,
            prev_log_term: 0,
            entries: vec![],
            leader_commit: 0,
        };
        assert_eq!(hb.kind(), "raft.heartbeat");
        assert_eq!(hb.size_bytes(), 40);

        let ae: RaftMsg<u64> = RaftMsg::AppendEntries {
            term: 1,
            leader: NodeId(0),
            prev_log_index: 0,
            prev_log_term: 0,
            entries: vec![Entry {
                term: 1,
                index: 1,
                cmd: LogCmd::App(1),
            }],
            leader_commit: 0,
        };
        assert_eq!(ae.kind(), "raft.append_entries");
        assert_eq!(ae.size_bytes(), 40 + 24);
    }
}
