//! Backpressure isolation: a slow consumer stalls *only its own* link.
//!
//! One reactor-hosted sender pushes bulk frames at two destinations: a
//! healthy receiver on a second reactor, and a deliberately slow TCP
//! endpoint that drains its socket at ~1/100th of the send rate. The
//! reactor's bounded per-link queue must absorb the slow link by
//! *dropping* (counted in `sends_dropped`, memory capped at the
//! configured frame/byte limits) while the healthy link — and the loop
//! itself — keeps flowing at full speed.

use p2pfl_net::{PeerHandle, Reactor, ReactorConfig};
use p2pfl_simnet::{Actor, NodeId, Payload, Transport};
use serde::{Deserialize, Serialize};
use std::io::Read;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Serialize, Deserialize, Debug, Clone)]
struct Bulk {
    seq: u64,
    pad: Vec<u8>,
}

impl Payload for Bulk {
    fn size_bytes(&self) -> u64 {
        8 + self.pad.len() as u64
    }
}

/// Counts deliveries; sends only when driven via `with`.
#[derive(Default)]
struct Counter {
    seen: u64,
}

impl Actor<Bulk> for Counter {
    fn on_message(&mut self, _ctx: &mut dyn Transport<Bulk>, _from: NodeId, _m: Bulk) {
        self.seen += 1;
    }
}

const FRAME_PAD: usize = 32 << 10; // 32 KiB payload per frame
const FRAMES: u64 = 600; // ~19 MiB per destination
const QUEUE_FRAMES: usize = 64;
const QUEUE_BYTES: usize = 2 << 20; // 2 MiB — far below the offered load

/// A TCP sink that reads tiny chunks with long pauses: the "1/100th
/// speed" peer. Returns total bytes drained when `stop` flips.
fn slow_sink(listener: TcpListener, stop: Arc<AtomicBool>, drained: Arc<AtomicU64>) {
    let Ok((mut sock, _)) = listener.accept() else {
        return;
    };
    let _ = sock.set_read_timeout(Some(Duration::from_millis(20)));
    let mut buf = [0u8; 256];
    while !stop.load(Ordering::Relaxed) {
        match sock.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                drained.fetch_add(n as u64, Ordering::Relaxed);
            }
            Err(_) => {}
        }
        // A fast sender could push this many bytes ~100x faster.
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn wait_until(what: &str, timeout: Duration, mut ok: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !ok() {
        assert!(Instant::now() < deadline, "timed out waiting: {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn slow_consumer_stalls_only_its_own_link() {
    let cfg = ReactorConfig {
        max_queue_frames: QUEUE_FRAMES,
        max_queue_bytes: QUEUE_BYTES,
        ..ReactorConfig::default()
    };
    let r_send: Reactor<Bulk, Counter> = Reactor::start(cfg).unwrap();
    let r_recv: Reactor<Bulk, Counter> = Reactor::start(ReactorConfig::default()).unwrap();

    let sender = r_send.spawn_peer(NodeId(0), Counter::default()).unwrap();
    let healthy = r_recv.spawn_peer(NodeId(1), Counter::default()).unwrap();

    // The slow endpoint accepts the sender's dial but drains at a crawl.
    let slow_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let slow_addr = slow_listener.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let drained = Arc::new(AtomicU64::new(0));
    let sink = {
        let (stop, drained) = (stop.clone(), drained.clone());
        std::thread::spawn(move || slow_sink(slow_listener, stop, drained))
    };

    sender.add_peer(NodeId(1), r_recv.local_addr());
    sender.add_peer(NodeId(2), slow_addr);

    // Blast the same bulk load at both destinations.
    let started = Instant::now();
    for seq in 0..FRAMES {
        sender.with(move |_, ctx| {
            let pad = vec![0xAB; FRAME_PAD];
            ctx.send(
                NodeId(1),
                Bulk {
                    seq,
                    pad: pad.clone(),
                },
            );
            ctx.send(NodeId(2), Bulk { seq, pad });
        });
    }

    // The healthy link must deliver *everything* promptly even though the
    // slow link is wedged the whole time.
    wait_until(
        "healthy link full delivery",
        Duration::from_secs(30),
        || healthy.with(|c, _| c.seen) >= FRAMES,
    );
    let healthy_done = started.elapsed();

    let stats = sender.stats();
    // The slow link's queue overflowed: drops were counted, not buffered
    // without bound. (Healthy-link sends never drop, so every drop here
    // is the slow link's.)
    assert!(
        stats.sends_dropped > 0,
        "slow link never hit the bounded queue: {stats:?}"
    );
    // Bounded memory: the high-water mark respects the configured cap.
    assert!(
        stats.send_queue_peak <= QUEUE_FRAMES as u64,
        "queue grew past its cap: {stats:?}"
    );
    // Conservation: every frame was retired to a socket, dropped at a
    // full queue, or is still parked in the slow link's bounded queue
    // (at most its frame cap) — none vanished into unbounded buffers.
    assert!(
        stats.frames_sent + stats.sends_dropped + QUEUE_FRAMES as u64 >= 2 * FRAMES,
        "frames unaccounted for: {stats:?}"
    );
    // The slow sink is still crawling: it cannot have absorbed anywhere
    // near the full load by the time the healthy link finished. This is
    // the isolation claim — the round did not wait for the straggler.
    let slow_bytes = drained.load(Ordering::Relaxed);
    let offered = FRAMES * (FRAME_PAD as u64 + 32);
    assert!(
        slow_bytes < offered / 4,
        "slow sink absorbed {slow_bytes} of {offered} bytes in {healthy_done:?} — not slow enough to prove isolation"
    );

    stop.store(true, Ordering::Relaxed);
    let _ = sink.join();
    drop(sender);
    drop(healthy);
}

/// The same bounded queue drops sends when *no* connection can form at
/// all (dial target never accepts) instead of buffering without limit.
#[test]
fn undialable_peer_bounds_memory_via_drops() {
    let cfg = ReactorConfig {
        max_queue_frames: 8,
        max_queue_bytes: 1 << 20,
        ..ReactorConfig::default()
    };
    let r: Reactor<Bulk, Counter> = Reactor::start(cfg).unwrap();
    let sender = r.spawn_peer(NodeId(0), Counter::default()).unwrap();
    // A bound-but-never-accepting listener: connects succeed (backlog)
    // but nothing ever drains, so the queue must cap.
    let dead = TcpListener::bind("127.0.0.1:0").unwrap();
    sender.add_peer(NodeId(9), dead.local_addr().unwrap());

    for seq in 0..200u64 {
        sender.with(move |_, ctx| {
            ctx.send(
                NodeId(9),
                Bulk {
                    seq,
                    pad: vec![1; 16 << 10],
                },
            )
        });
    }
    wait_until("drops on wedged link", Duration::from_secs(10), || {
        sender.stats().sends_dropped > 0
    });
    let stats = sender.stats();
    assert!(stats.send_queue_peak <= 8, "cap violated: {stats:?}");
    drop(dead);
}

type _HandleIsSendSync = PeerHandle<Bulk, Counter>;
