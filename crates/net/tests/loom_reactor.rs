//! Loom model checks over the reactor's cross-thread state — the
//! [`Injector`](p2pfl_net::reactor::injector::Injector) task queue that
//! is the *only* shared-mutable handoff between user-thread
//! [`PeerHandle`](p2pfl_net::reactor::PeerHandle)s and the loop thread.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p p2pfl-net --test loom_reactor
//! ```
//!
//! The delivery contract the reactor's shutdown protocol relies on:
//!
//! 1. Every push that returned `Ok` is observed exactly once — by a
//!    loop-thread `drain` or by the terminal `close`. No task is lost
//!    (a lost `Spawn` would deadlock its caller's `recv`) and none is
//!    duplicated (a duplicated `Despawn` would double-return an actor).
//! 2. Once `close` wins the race, every subsequent push fails — the
//!    caller learns the reactor is gone instead of assuming delivery.
//! 3. Pushes from distinct threads interleave without loss, and drains
//!    observe each thread's tasks in that thread's push order (per-peer
//!    command ordering: `AddPeer` before `Invoke` stays that way).

#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;
use p2pfl_net::reactor::injector::Injector;

/// Pushers race a draining "loop thread": every Ok-push surfaces exactly
/// once across the drains and the final close, and every Err-push never
/// surfaces at all.
#[test]
fn every_ok_push_is_observed_exactly_once() {
    loom::model(|| {
        let inj = Arc::new(Injector::new());

        let pushers: Vec<_> = (0..2u64)
            .map(|t| {
                let inj = inj.clone();
                thread::spawn(move || {
                    let mut accepted = Vec::new();
                    for i in 0..3u64 {
                        let task = t * 100 + i;
                        if inj.push(task).is_ok() {
                            accepted.push(task);
                        }
                    }
                    accepted
                })
            })
            .collect();

        // The "loop thread": a few drains racing the pushers, then the
        // terminal close that sweeps up whatever is left.
        let drainer = {
            let inj = inj.clone();
            thread::spawn(move || {
                let mut seen = Vec::new();
                for _ in 0..2 {
                    thread::yield_now();
                    inj.drain(&mut seen);
                }
                seen.extend(inj.close());
                seen
            })
        };

        let mut accepted: Vec<u64> = Vec::new();
        for p in pushers {
            accepted.extend(p.join().unwrap());
        }
        let mut seen = drainer.join().unwrap();

        accepted.sort_unstable();
        seen.sort_unstable();
        assert_eq!(
            seen, accepted,
            "every accepted task exactly once, no rejected task ever"
        );
    });
}

/// After close, pushes fail and return the task to the caller; close is
/// idempotent and later drains see nothing.
#[test]
fn push_after_close_fails_and_returns_task() {
    loom::model(|| {
        let inj = Arc::new(Injector::new());
        let closer = {
            let inj = inj.clone();
            thread::spawn(move || inj.close())
        };
        let pusher = {
            let inj = inj.clone();
            thread::spawn(move || inj.push(7u64))
        };
        let swept = closer.join().unwrap();
        let pushed = pusher.join().unwrap();

        match pushed {
            // The push lost the race: it must get its task back, and the
            // task must not ALSO have been swept up by close.
            Err(task) => {
                assert_eq!(task, 7);
                assert!(swept.is_empty(), "rejected task leaked into close");
            }
            // The push won: close (or a later drain) must have it.
            Ok(()) => {
                let mut remainder = swept;
                let mut rest = Vec::new();
                inj.drain(&mut rest);
                remainder.extend(rest);
                remainder.extend(inj.close());
                assert_eq!(remainder, vec![7], "accepted task lost at shutdown");
            }
        }
        assert!(inj.is_closed());
        assert_eq!(inj.push(8u64), Err(8), "injector reopened after close");
    });
}

/// Per-thread FIFO: a drain observes each pusher's tasks in that
/// pusher's order, even with two pushers interleaving.
#[test]
fn drains_preserve_per_thread_push_order() {
    loom::model(|| {
        let inj = Arc::new(Injector::new());
        let pushers: Vec<_> = (0..2u64)
            .map(|t| {
                let inj = inj.clone();
                thread::spawn(move || {
                    for i in 0..3u64 {
                        inj.push(t * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        for p in pushers {
            p.join().unwrap();
        }
        let mut seen = Vec::new();
        inj.drain(&mut seen);
        for t in 0..2u64 {
            let thread_order: Vec<u64> = seen.iter().copied().filter(|v| v / 100 == t).collect();
            assert_eq!(
                thread_order,
                vec![t * 100, t * 100 + 1, t * 100 + 2],
                "pusher {t}'s order was not preserved"
            );
        }
    });
}
