//! Property tests: every workspace wire message type round-trips through
//! the binary codec bit-for-bit, including the degenerate shapes the
//! protocols actually produce (zero-length share vectors, empty entry
//! batches) and large share blocks.

use p2pfl_hierraft::{
    ElasticGroup, FedCmd, FedConfig, HierMsg, RobustCombiner, SubCmd, SubMembers, Topology,
    TopologyCmd,
};
use p2pfl_net::codec::{from_bytes, to_bytes, write_frame, FrameBuffer, MAX_FRAME};
use p2pfl_raft::{Entry, LogCmd, PersistOp, RaftMsg};
use p2pfl_secagg::{RingMsg, SacEngine, SacMsg, WeightVector};
use p2pfl_simnet::{
    Blob, FaultAction, FaultEntry, FaultPlan, NodeId, PoisonMode, SimDuration, SimTime, TimerId,
};
use proptest::prelude::*;

fn arb_node() -> impl Strategy<Value = NodeId> {
    (0u32..64).prop_map(NodeId)
}

fn arb_weights(max_dim: usize) -> impl Strategy<Value = WeightVector> {
    prop::collection::vec(any::<f64>(), 0..=max_dim).prop_map(WeightVector::new)
}

/// Short ASCII reason strings (`Abort`/`Evict` carry human-readable causes).
fn arb_reason() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..128, 0..24)
        .prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

fn arb_logcmd_of<C, S>(cmd: impl Fn() -> S + 'static) -> impl Strategy<Value = LogCmd<C>>
where
    C: std::fmt::Debug + Clone + 'static,
    S: Strategy<Value = C> + 'static,
{
    prop_oneof![
        Just(LogCmd::Noop),
        cmd().prop_map(LogCmd::App),
        arb_node().prop_map(LogCmd::AddServer),
        arb_node().prop_map(LogCmd::RemoveServer),
    ]
}

fn arb_entry_of<C, S>(cmd: impl Fn() -> S + 'static) -> impl Strategy<Value = Entry<C>>
where
    C: std::fmt::Debug + Clone + 'static,
    S: Strategy<Value = C> + 'static,
{
    (any::<u64>(), any::<u64>(), arb_logcmd_of(cmd)).prop_map(|(term, index, cmd)| Entry {
        term,
        index,
        cmd,
    })
}

fn arb_entry() -> impl Strategy<Value = Entry<u64>> {
    arb_entry_of(any::<u64>)
}

fn arb_raftmsg_of<C, S>(cmd: impl Fn() -> S + 'static) -> impl Strategy<Value = RaftMsg<C>>
where
    C: std::fmt::Debug + Clone + 'static,
    S: Strategy<Value = C> + 'static,
{
    prop_oneof![
        (any::<u64>(), arb_node(), any::<u64>(), any::<u64>()).prop_map(
            |(term, candidate, last_log_index, last_log_term)| RaftMsg::PreVote {
                term,
                candidate,
                last_log_index,
                last_log_term,
            }
        ),
        (any::<u64>(), any::<bool>())
            .prop_map(|(term, granted)| RaftMsg::PreVoteResp { term, granted }),
        (any::<u64>(), arb_node(), any::<u64>(), any::<u64>()).prop_map(
            |(term, candidate, last_log_index, last_log_term)| RaftMsg::RequestVote {
                term,
                candidate,
                last_log_index,
                last_log_term,
            }
        ),
        (any::<u64>(), any::<bool>())
            .prop_map(|(term, granted)| RaftMsg::RequestVoteResp { term, granted }),
        (
            any::<u64>(),
            arb_node(),
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec(arb_entry_of(cmd), 0..5),
            any::<u64>(),
        )
            .prop_map(
                |(term, leader, prev_log_index, prev_log_term, entries, leader_commit)| {
                    RaftMsg::AppendEntries {
                        term,
                        leader,
                        prev_log_index,
                        prev_log_term,
                        entries,
                        leader_commit,
                    }
                }
            ),
        (
            any::<u64>(),
            arb_node(),
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec(arb_node(), 0..6),
            prop::collection::vec(any::<u8>(), 0..64),
        )
            .prop_map(|(term, leader, last_index, last_term, cluster, data)| {
                RaftMsg::InstallSnapshot {
                    term,
                    leader,
                    last_index,
                    last_term,
                    cluster,
                    data,
                }
            }),
        (any::<u64>(), any::<bool>(), any::<u64>()).prop_map(|(term, success, match_index)| {
            RaftMsg::AppendEntriesResp {
                term,
                success,
                match_index,
            }
        }),
    ]
}

fn arb_raftmsg() -> impl Strategy<Value = RaftMsg<u64>> {
    arb_raftmsg_of(any::<u64>)
}

fn arb_topology_cmd() -> impl Strategy<Value = TopologyCmd> {
    prop_oneof![
        (
            any::<u64>(),
            prop::collection::vec(arb_node(), 0..6),
            prop::collection::vec(arb_node(), 0..6),
        )
            .prop_map(|(gid, left, right)| TopologyCmd::Split { gid, left, right }),
        (any::<u64>(), any::<u64>()).prop_map(|(into, from)| TopologyCmd::Merge { into, from }),
        (arb_node(), any::<u64>()).prop_map(|(peer, gid)| TopologyCmd::Admit { peer, gid }),
        arb_node().prop_map(|peer| TopologyCmd::Depart { peer }),
    ]
}

fn arb_topology() -> impl Strategy<Value = Topology> {
    let group = (any::<u64>(), prop::collection::vec(arb_node(), 0..6))
        .prop_map(|(gid, members)| ElasticGroup { gid, members });
    (
        any::<u64>(),
        prop::collection::vec(group, 0..5),
        any::<u64>(),
    )
        .prop_map(|(version, groups, next_gid)| Topology {
            version,
            groups,
            next_gid,
        })
}

fn arb_fedcmd() -> impl Strategy<Value = FedCmd> {
    prop_oneof![
        any::<u64>().prop_map(FedCmd::Round),
        arb_topology_cmd().prop_map(FedCmd::Topology),
    ]
}

fn arb_engine() -> impl Strategy<Value = SacEngine> {
    prop_oneof![Just(SacEngine::Pairwise), Just(SacEngine::Ring)]
}

fn arb_combiner() -> impl Strategy<Value = RobustCombiner> {
    prop_oneof![
        Just(RobustCombiner::FedAvg),
        Just(RobustCombiner::TrimmedMean),
        Just(RobustCombiner::Median),
        Just(RobustCombiner::NormClip),
    ]
}

fn arb_fedconfig() -> impl Strategy<Value = FedConfig> {
    (
        prop::collection::vec(arb_node(), 0..5),
        prop::collection::vec(arb_node(), 0..5),
        arb_engine(),
        arb_combiner(),
        any::<u64>(),
    )
        .prop_map(|(founding, current, engine, combiner, version)| FedConfig {
            founding,
            current,
            engine,
            combiner,
            version,
        })
}

fn arb_sub_members() -> impl Strategy<Value = SubMembers> {
    (prop::collection::vec(arb_node(), 0..6), any::<u64>())
        .prop_map(|(members, version)| SubMembers { members, version })
}

fn arb_subcmd() -> impl Strategy<Value = SubCmd> {
    prop_oneof![
        arb_fedconfig().prop_map(SubCmd::FedConfig),
        arb_sub_members().prop_map(SubCmd::Members),
        arb_topology().prop_map(SubCmd::Topology),
        any::<u64>().prop_map(SubCmd::App),
    ]
}

fn arb_sub_entry() -> impl Strategy<Value = Entry<SubCmd>> {
    let cmd = prop_oneof![
        Just(LogCmd::Noop),
        arb_subcmd().prop_map(LogCmd::App),
        arb_node().prop_map(LogCmd::AddServer),
        arb_node().prop_map(LogCmd::RemoveServer),
    ];
    (any::<u64>(), any::<u64>(), cmd).prop_map(|(term, index, cmd)| Entry { term, index, cmd })
}

fn arb_hiermsg() -> impl Strategy<Value = HierMsg> {
    prop_oneof![
        // Subgroup-layer traffic carrying replicated fed configs.
        (
            any::<u64>(),
            arb_node(),
            any::<u64>(),
            prop::collection::vec(arb_sub_entry(), 0..4),
            any::<u64>(),
        )
            .prop_map(|(term, leader, prev, entries, commit)| {
                HierMsg::Sub(RaftMsg::AppendEntries {
                    term,
                    leader,
                    prev_log_index: prev,
                    prev_log_term: term,
                    entries,
                    leader_commit: commit,
                })
            }),
        arb_raftmsg_of(arb_fedcmd).prop_map(HierMsg::Fed),
        (arb_node(), prop::option::of(arb_node()))
            .prop_map(|(from, replaces)| HierMsg::JoinRequest { from, replaces }),
        (any::<bool>(), prop::option::of(arb_node()))
            .prop_map(|(accepted, leader)| HierMsg::JoinAck { accepted, leader }),
        any::<u64>().prop_map(|seq| HierMsg::Probe { seq }),
        any::<u64>().prop_map(|seq| HierMsg::ProbeAck { seq }),
        arb_reason().prop_map(|reason| HierMsg::Evict { reason }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(version, digest)| HierMsg::ConfigEcho { version, digest }),
        arb_node().prop_map(|from| HierMsg::Rendezvous { from }),
        (
            any::<bool>(),
            prop::option::of(arb_node()),
            prop::option::of(arb_topology()),
        )
            .prop_map(|(accepted, leader, topology)| HierMsg::RendezvousAssign {
                accepted,
                leader,
                topology,
            }),
        arb_topology().prop_map(|topology| HierMsg::TopologySync { topology }),
    ]
}

fn arb_persistop() -> impl Strategy<Value = PersistOp<u64>> {
    prop_oneof![
        (any::<u64>(), prop::option::of(arb_node()))
            .prop_map(|(term, voted_for)| PersistOp::HardState { term, voted_for }),
        arb_entry().prop_map(PersistOp::Append),
        any::<u64>().prop_map(PersistOp::TruncateFrom),
        (
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec(arb_node(), 0..5),
            prop::collection::vec(any::<u8>(), 0..32),
        )
            .prop_map(
                |(last_index, last_term, cluster, data)| PersistOp::Compact {
                    last_index,
                    last_term,
                    cluster,
                    data,
                }
            ),
        (
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec(arb_node(), 0..5),
            prop::collection::vec(any::<u8>(), 0..32),
        )
            .prop_map(|(last_index, last_term, cluster, data)| {
                PersistOp::InstallSnapshot {
                    last_index,
                    last_term,
                    cluster,
                    data,
                }
            }),
    ]
}

fn arb_simtime() -> impl Strategy<Value = SimTime> {
    (0u64..600_000).prop_map(SimTime::from_millis)
}

fn arb_fault_action() -> impl Strategy<Value = FaultAction> {
    prop_oneof![
        (0.0f64..=1.0).prop_map(|probability| FaultAction::Loss { probability }),
        (0u64..5_000, 0u64..5_000).prop_map(|(extra, jitter)| FaultAction::Delay {
            extra: SimDuration::from_millis(extra),
            jitter: SimDuration::from_millis(jitter),
        }),
        (0.0f64..=1.0).prop_map(|probability| FaultAction::Duplicate { probability }),
        (0.0f64..=1.0, 0u64..5_000).prop_map(|(probability, window)| FaultAction::Reorder {
            probability,
            window: SimDuration::from_millis(window),
        }),
        (
            prop::collection::vec(arb_node(), 0..4),
            prop::collection::vec(arb_node(), 0..4),
        )
            .prop_map(|(src, dst)| FaultAction::Partition { src, dst }),
        (
            prop::collection::vec(arb_node(), 0..4),
            prop::collection::vec(arb_node(), 0..4),
            0.0f64..=1.0,
        )
            .prop_map(|(src, dst, probability)| FaultAction::LinkLoss {
                src,
                dst,
                probability,
            }),
        arb_node().prop_map(|node| FaultAction::Blackout { node }),
        arb_node().prop_map(|node| FaultAction::Crash { node }),
        arb_node().prop_map(|node| FaultAction::Restart { node }),
        (arb_node(), 0.125f64..8.0)
            .prop_map(|(node, factor)| FaultAction::ShareSkew { node, factor }),
        (arb_node(), arb_poison_mode())
            .prop_map(|(node, mode)| FaultAction::PoisonUpdate { node, mode }),
        arb_node().prop_map(|node| FaultAction::Equivocate { node }),
        arb_node().prop_map(|node| FaultAction::BogusRoster { node }),
    ]
}

fn arb_poison_mode() -> impl Strategy<Value = PoisonMode> {
    prop_oneof![
        Just(PoisonMode::SignFlip),
        (1.0f64..1e6).prop_map(|factor| PoisonMode::NormBoost { factor }),
    ]
}

fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    let entry = (
        arb_simtime(),
        prop::option::of(arb_simtime()),
        arb_fault_action(),
    )
        .prop_map(|(from, until, action)| FaultEntry {
            from,
            until,
            action,
        });
    (any::<u64>(), prop::collection::vec(entry, 0..6))
        .prop_map(|(seed, entries)| FaultPlan { seed, entries })
}

fn arb_sacmsg(max_dim: usize) -> impl Strategy<Value = SacMsg> {
    prop_oneof![
        any::<u64>().prop_map(|round| SacMsg::Begin { round }),
        (
            any::<u64>(),
            0usize..8,
            prop::collection::vec(any::<u64>(), 0..8),
        )
            .prop_map(|(round, from_pos, digests)| SacMsg::Commit {
                round,
                from_pos,
                digests
            }),
        (
            any::<u64>(),
            0usize..8,
            prop::collection::vec((0usize..8, arb_weights(max_dim)), 0..4),
        )
            .prop_map(|(round, from_pos, parts)| SacMsg::ShareBlock {
                round,
                from_pos,
                parts
            }),
        (any::<u64>(), prop::collection::vec(0usize..8, 0..8)).prop_map(|(round, contributors)| {
            SacMsg::ComputeOver {
                round,
                contributors,
            }
        }),
        (any::<u64>(), 0usize..8, arb_weights(max_dim))
            .prop_map(|(round, idx, value)| SacMsg::Subtotal { round, idx, value }),
        (any::<u64>(), 0usize..8).prop_map(|(round, idx)| SacMsg::SubtotalRequest { round, idx }),
        (any::<u64>(), arb_reason()).prop_map(|(round, reason)| SacMsg::Abort { round, reason }),
        (
            any::<u64>(),
            prop::collection::vec(arb_node(), 0..6),
            0usize..8
        )
            .prop_map(|(round, group, k)| SacMsg::Reconfigure { round, group, k }),
    ]
}

fn arb_ringmsg(max_dim: usize) -> impl Strategy<Value = RingMsg> {
    prop_oneof![
        any::<u64>().prop_map(|round| RingMsg::Begin { round }),
        (
            any::<u64>(),
            0usize..8,
            prop::collection::vec((0usize..8, arb_weights(max_dim)), 0..4),
        )
            .prop_map(|(round, from_pos, parts)| RingMsg::StageShare {
                round,
                from_pos,
                parts
            }),
        (any::<u64>(), 0usize..8).prop_map(|(round, from_pos)| RingMsg::Shared { round, from_pos }),
        (any::<u64>(), prop::collection::vec(0usize..8, 0..8)).prop_map(|(round, contributors)| {
            RingMsg::ComputeOver {
                round,
                contributors,
            }
        }),
        (any::<u64>(), 0usize..4, 0usize..8, arb_weights(max_dim)).prop_map(
            |(round, stage, idx, value)| RingMsg::StageTotal {
                round,
                stage,
                idx,
                value
            }
        ),
        (any::<u64>(), 0usize..4, 0usize..8)
            .prop_map(|(round, stage, idx)| { RingMsg::StageTotalRequest { round, stage, idx } }),
        (any::<u64>(), arb_reason()).prop_map(|(round, reason)| RingMsg::Abort { round, reason }),
        (
            any::<u64>(),
            prop::collection::vec(arb_node(), 0..6),
            0usize..8
        )
            .prop_map(|(round, group, k)| RingMsg::Reconfigure { round, group, k }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn raft_messages_round_trip(msg in arb_raftmsg()) {
        let bytes = to_bytes(&msg);
        prop_assert_eq!(from_bytes::<RaftMsg<u64>>(&bytes).unwrap(), msg);
    }

    #[test]
    fn hier_messages_round_trip(msg in arb_hiermsg()) {
        let bytes = to_bytes(&msg);
        prop_assert_eq!(from_bytes::<HierMsg>(&bytes).unwrap(), msg);
    }

    #[test]
    fn sac_messages_round_trip(msg in arb_sacmsg(32)) {
        let bytes = to_bytes(&msg);
        prop_assert_eq!(from_bytes::<SacMsg>(&bytes).unwrap(), msg);
    }

    #[test]
    fn persist_ops_round_trip(op in arb_persistop()) {
        // The write-ahead records FileStorage appends to disk use the same
        // codec as the wire; a lossy round-trip would corrupt recovery.
        let bytes = to_bytes(&op);
        prop_assert_eq!(from_bytes::<PersistOp<u64>>(&bytes).unwrap(), op);
    }

    #[test]
    fn fault_plans_round_trip(plan in arb_fault_plan()) {
        // FaultPlan is the cross-transport replay artifact produced by
        // p2pfl-check and the chaos harness; every action shape must
        // survive serialization, including FaultEntry and FaultAction.
        let bytes = to_bytes(&plan);
        prop_assert_eq!(from_bytes::<FaultPlan>(&bytes).unwrap(), plan);
    }

    #[test]
    fn simnet_ids_and_blobs_round_trip(id in any::<u64>(), size in any::<u64>(), tag in any::<u64>()) {
        let timer = TimerId(id);
        prop_assert_eq!(from_bytes::<TimerId>(&to_bytes(&timer)).unwrap(), timer);
        let blob = Blob { size, tag };
        prop_assert_eq!(from_bytes::<Blob>(&to_bytes(&blob)).unwrap(), blob);
    }

    #[test]
    fn weight_vectors_round_trip_bitwise(v in arb_weights(256)) {
        // NaNs must survive too: compare bit patterns, not float equality.
        let bits: Vec<u64> = v.as_slice().iter().map(|x| x.to_bits()).collect();
        let back = from_bytes::<WeightVector>(&to_bytes(&v)).unwrap();
        let back_bits: Vec<u64> = back.as_slice().iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(bits, back_bits);
    }

    #[test]
    fn truncation_never_panics(msg in arb_sacmsg(8), cut in 0usize..64) {
        let bytes = to_bytes(&msg);
        let cut = cut.min(bytes.len());
        // Any prefix must either fail cleanly or (full length) succeed.
        let _ = from_bytes::<SacMsg>(&bytes[..cut]);
    }

    #[test]
    fn fed_commands_round_trip(cmd in arb_fedcmd()) {
        // Round markers and topology ops share the FedAvg-layer log; both
        // must survive the wire (and FileStorage, which uses the same
        // codec) bit-for-bit.
        let bytes = to_bytes(&cmd);
        prop_assert_eq!(from_bytes::<FedCmd>(&bytes).unwrap(), cmd);
    }

    #[test]
    fn topologies_round_trip(t in arb_topology()) {
        let bytes = to_bytes(&t);
        prop_assert_eq!(from_bytes::<Topology>(&bytes).unwrap(), t);
    }

    #[test]
    fn hier_truncation_never_panics(msg in arb_hiermsg(), cut in 0usize..128) {
        // Rendezvous / topology-sync frames arrive over real TCP in the
        // reactor leg; a short read must fail cleanly, never panic.
        let bytes = to_bytes(&msg);
        let cut = cut.min(bytes.len());
        let _ = from_bytes::<HierMsg>(&bytes[..cut]);
    }

    #[test]
    fn hier_bit_flips_never_panic(msg in arb_hiermsg(), at in 0usize..512, bit in 0u8..8) {
        let mut bytes = to_bytes(&msg);
        if !bytes.is_empty() {
            let at = at % bytes.len();
            bytes[at] ^= 1 << bit;
        }
        let _ = from_bytes::<HierMsg>(&bytes);
    }

    #[test]
    fn ring_messages_round_trip(msg in arb_ringmsg(32)) {
        let bytes = to_bytes(&msg);
        prop_assert_eq!(from_bytes::<RingMsg>(&bytes).unwrap(), msg);
    }

    #[test]
    fn ring_truncation_never_panics(msg in arb_ringmsg(8), cut in 0usize..64) {
        let bytes = to_bytes(&msg);
        let cut = cut.min(bytes.len());
        let _ = from_bytes::<RingMsg>(&bytes[..cut]);
    }

    #[test]
    fn ring_bit_flips_never_panic(msg in arb_ringmsg(8), at in 0usize..256, bit in 0u8..8) {
        // A corrupted ring frame must fail cleanly, never panic: the
        // decoder sees arbitrary bytes off the wire before any checksum.
        let mut bytes = to_bytes(&msg);
        if !bytes.is_empty() {
            let at = at % bytes.len();
            bytes[at] ^= 1 << bit;
        }
        let _ = from_bytes::<RingMsg>(&bytes);
    }
}

#[test]
fn zero_length_share_vectors_round_trip() {
    let msg = SacMsg::ShareBlock {
        round: 1,
        from_pos: 0,
        parts: vec![(0, WeightVector::new(vec![])), (3, WeightVector::zeros(0))],
    };
    let back = from_bytes::<SacMsg>(&to_bytes(&msg)).unwrap();
    assert_eq!(back, msg);
}

#[test]
fn frame_buffer_reassembles_one_byte_feeds() {
    // TCP can fragment arbitrarily — even splitting the 4-byte length
    // prefix. Feeding the buffer a byte at a time must still yield every
    // frame intact and in order, with no spurious frames in between.
    let payloads: Vec<Vec<u8>> = vec![
        to_bytes(&SacMsg::Begin { round: 1 }),
        Vec::new(), // zero-length frame: header-only
        to_bytes(&SacMsg::SubtotalRequest { round: 2, idx: 3 }),
    ];
    let mut wire = Vec::new();
    for p in &payloads {
        write_frame(&mut wire, p).unwrap();
    }
    let mut fb = FrameBuffer::new();
    let mut got = Vec::new();
    for (i, b) in wire.iter().enumerate() {
        fb.extend(std::slice::from_ref(b));
        while let Some(frame) = fb.next_frame().unwrap() {
            got.push((i, frame));
        }
    }
    let frames: Vec<Vec<u8>> = got.iter().map(|(_, f)| f.clone()).collect();
    assert_eq!(frames, payloads);
    // Each frame must complete exactly on its final byte, not earlier.
    let mut boundary = 0;
    for ((at, _), p) in got.iter().zip(&payloads) {
        boundary += 4 + p.len();
        assert_eq!(*at, boundary - 1, "frame surfaced before its last byte");
    }
}

#[test]
fn frame_buffer_rejects_oversize_length_prefix() {
    // A length prefix one past MAX_FRAME must fail immediately — before
    // any payload bytes arrive — since the stream cannot be resynced.
    let mut fb = FrameBuffer::new();
    fb.extend(&((MAX_FRAME as u32) + 1).to_le_bytes());
    assert!(fb.next_frame().is_err(), "oversize frame not rejected");

    // Exactly MAX_FRAME is still legal: the buffer waits for the payload.
    let mut fb = FrameBuffer::new();
    fb.extend(&(MAX_FRAME as u32).to_le_bytes());
    assert!(matches!(fb.next_frame(), Ok(None)));

    // And the writer side enforces the same cap.
    let mut sink = Vec::new();
    assert!(write_frame(&mut sink, &vec![0u8; MAX_FRAME + 1]).is_err());
}

#[test]
fn max_size_share_vector_round_trips() {
    // A CNN-scale subtotal: ~420k parameters, the largest message the
    // workspace's experiments actually ship.
    let dim = 420_000;
    let value = WeightVector::new((0..dim).map(|i| (i as f64).sin()).collect());
    let msg = SacMsg::Subtotal {
        round: 7,
        idx: 2,
        value,
    };
    let bytes = to_bytes(&msg);
    assert!(bytes.len() < p2pfl_net::MAX_FRAME);
    let back = from_bytes::<SacMsg>(&bytes).unwrap();
    assert_eq!(back, msg);
}
