//! Negative-path hardening: truncated, oversized, and garbage input on
//! every untrusted surface — the binary codec, the incremental
//! [`FrameBuffer`], and a live [`PeerRuntime`] fed raw hostile frames over
//! TCP — must produce typed errors (or counted drops), never a panic.

use p2pfl_hierraft::{FedConfig, HierMsg, RobustCombiner, SubCmd};
use p2pfl_net::codec::{from_bytes, to_bytes, write_frame, CodecError, FrameBuffer, MAX_FRAME};
use p2pfl_net::PeerRuntime;
use p2pfl_raft::{Entry, LogCmd, RaftMsg};
use p2pfl_secagg::{RingMsg, SacEngine, SacMsg, WeightVector};
use p2pfl_simnet::{Actor, NodeId, Transport};
use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Valid encodings of representative wire messages, used as mutation
/// seeds.
fn seeds() -> Vec<Vec<u8>> {
    let raft: RaftMsg<u64> = RaftMsg::AppendEntries {
        term: 3,
        leader: NodeId(1),
        prev_log_index: 2,
        prev_log_term: 1,
        entries: vec![Entry {
            term: 3,
            index: 3,
            cmd: LogCmd::App(77),
        }],
        leader_commit: 2,
    };
    let hier = HierMsg::Sub(RaftMsg::AppendEntries {
        term: 1,
        leader: NodeId(0),
        prev_log_index: 0,
        prev_log_term: 0,
        entries: vec![Entry {
            term: 1,
            index: 1,
            cmd: LogCmd::App(SubCmd::FedConfig(FedConfig {
                founding: vec![NodeId(0), NodeId(3)],
                current: vec![NodeId(0), NodeId(3)],
                engine: SacEngine::Ring,
                combiner: RobustCombiner::TrimmedMean,
                version: 1,
            })),
        }],
        leader_commit: 0,
    });
    let sac = SacMsg::ShareBlock {
        round: 1,
        from_pos: 2,
        parts: vec![(0, WeightVector::new(vec![1.0, -2.5]))],
    };
    let ring = RingMsg::StageShare {
        round: 1,
        from_pos: 4,
        parts: vec![(1, WeightVector::new(vec![0.5, 3.25]))],
    };
    vec![
        to_bytes(&raft),
        to_bytes(&hier),
        to_bytes(&sac),
        to_bytes(&ring),
    ]
}

fn decode_any(seed_idx: usize, bytes: &[u8]) {
    // Whichever type the seed was, decoding mutated bytes must return —
    // Ok or Err — without panicking.
    match seed_idx {
        0 => {
            let _ = from_bytes::<RaftMsg<u64>>(bytes);
        }
        1 => {
            let _ = from_bytes::<HierMsg>(bytes);
        }
        2 => {
            let _ = from_bytes::<SacMsg>(bytes);
        }
        _ => {
            let _ = from_bytes::<RingMsg>(bytes);
        }
    }
}

#[test]
fn codec_never_panics_on_truncated_input() {
    for (i, seed) in seeds().iter().enumerate() {
        for cut in 0..seed.len() {
            decode_any(i, &seed[..cut]);
        }
    }
}

#[test]
fn codec_never_panics_on_bit_flips() {
    for (i, seed) in seeds().iter().enumerate() {
        for pos in 0..seed.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut m = seed.clone();
                m[pos] ^= flip;
                decode_any(i, &m);
            }
        }
    }
}

#[test]
fn codec_rejects_hostile_length_prefixes_with_typed_error() {
    // A sequence length prefix claiming u32::MAX elements must be refused
    // up front, before it can size an allocation or element loop.
    let sac = SacMsg::ShareBlock {
        round: 1,
        from_pos: 0,
        parts: vec![(0, WeightVector::new(vec![1.0]))],
    };
    let mut bytes = to_bytes(&sac);
    // Layout: variant index (4) + round (8) + from_pos (8) + parts len (4).
    let len_at = 4 + 8 + 8;
    bytes[len_at..len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    match from_bytes::<SacMsg>(&bytes) {
        Err(CodecError::LengthOverrun {
            declared,
            available,
        }) => {
            assert_eq!(declared, u32::MAX as usize);
            assert!(available < declared);
        }
        other => panic!("expected LengthOverrun, got {other:?}"),
    }
}

#[test]
fn frame_buffer_handles_garbage_and_partial_frames() {
    // Oversize header: typed error, repeatably (stream unrecoverable).
    let mut fb = FrameBuffer::new();
    fb.extend(&((MAX_FRAME as u32) + 1).to_le_bytes());
    assert!(fb.next_frame().is_err());
    assert!(fb.next_frame().is_err());

    // A partial frame stays pending without error through arbitrarily
    // fragmented feeds.
    let mut wire = Vec::new();
    write_frame(&mut wire, &vec![0xAB; 1000]).unwrap();
    let mut fb = FrameBuffer::new();
    for chunk in wire[..wire.len() - 1].chunks(7) {
        fb.extend(chunk);
        assert!(matches!(fb.next_frame(), Ok(None)));
    }
    fb.extend(&wire[wire.len() - 1..]);
    assert_eq!(fb.next_frame().unwrap().unwrap().len(), 1000);
}

/// An actor that records every message it survives receiving.
struct Sink {
    got: u64,
}

impl Actor<SacMsg> for Sink {
    fn on_message(&mut self, _t: &mut dyn Transport<SacMsg>, _from: NodeId, _msg: SacMsg) {
        self.got += 1;
    }
}

#[test]
fn runtime_survives_raw_garbage_frames_over_tcp() {
    let rt: PeerRuntime<SacMsg, Sink> =
        PeerRuntime::start(NodeId(0), "127.0.0.1:0", &[], Sink { got: 0 }).expect("bind");
    let addr = rt.local_addr();

    // Handshake as peer 9, then send: a garbage payload, a truncated
    // message, and finally a valid one.
    let mut conn = TcpStream::connect(addr).expect("connect");
    let mut hello = Vec::new();
    hello.extend_from_slice(b"p2pf");
    hello.push(1);
    hello.extend_from_slice(&9u32.to_le_bytes());
    write_frame(&mut conn, &hello).unwrap();
    write_frame(&mut conn, &[0xDE, 0xAD, 0xBE, 0xEF]).unwrap();
    let valid = to_bytes(&SacMsg::Begin { round: 1 });
    write_frame(&mut conn, &valid[..valid.len() - 2]).unwrap();
    write_frame(&mut conn, &valid).unwrap();
    conn.flush().unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (errors, got) = (rt.decode_errors(), rt.with(|a, _| a.got));
        if errors >= 2 && got >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "runtime did not absorb hostile frames: {errors} decode errors, {got} delivered"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}
