//! Property tests for the reactor's bounded send queue — the
//! backpressure primitive every link hangs off.
//!
//! A reference model (an unbounded `VecDeque` of frame lengths plus the
//! same cap rules, executed naively) is driven through randomized
//! enqueue/advance/disconnect interleavings alongside the real
//! [`SendQueue`]; after every operation the two must agree on length,
//! byte total, drop count, and what the next vectored batch would offer.
//! The invariants the reactor relies on:
//!
//! * Neither cap is ever exceeded, no matter the interleaving.
//! * Per-link FIFO: the batch is always a prefix of the accepted frames
//!   in push order — a reconnect (`reset_progress`) rewinds to the head
//!   frame's boundary but never reorders or skips.
//! * Every rejected push is counted, exactly once.
//! * `advance` retires a frame exactly when its full length has been
//!   written since it became head, and reports whole frames only.

use p2pfl_net::reactor::SendQueue;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Push a frame of this many bytes (pattern-filled for content checks).
    Push(usize),
    /// The kernel accepted this many bytes of the current batch.
    Advance(usize),
    /// Connection died: void partial progress on the head frame.
    Reset,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..40).prop_map(Op::Push),
        (0usize..80).prop_map(Op::Advance),
        Just(Op::Reset),
    ]
}

/// Naive reference: frames as length-tagged byte vectors, same cap rules.
struct Model {
    frames: Vec<Vec<u8>>,
    head_written: usize,
    dropped: u64,
    peak: usize,
    max_frames: usize,
    max_bytes: usize,
}

impl Model {
    fn new(max_frames: usize, max_bytes: usize) -> Model {
        Model {
            frames: Vec::new(),
            head_written: 0,
            dropped: 0,
            peak: 0,
            max_frames: max_frames.max(1),
            max_bytes: max_bytes.max(1),
        }
    }

    fn bytes(&self) -> usize {
        self.frames.iter().map(Vec::len).sum()
    }

    fn push(&mut self, frame: Vec<u8>) -> bool {
        if self.frames.len() >= self.max_frames || self.bytes() + frame.len() > self.max_bytes {
            self.dropped += 1;
            return false;
        }
        self.frames.push(frame);
        self.peak = self.peak.max(self.frames.len());
        true
    }

    fn advance(&mut self, mut n: usize) -> (usize, usize) {
        let (mut retired, mut retired_bytes) = (0, 0);
        while n > 0 && !self.frames.is_empty() {
            let remaining = self.frames[0].len() - self.head_written;
            if n >= remaining {
                n -= remaining;
                retired_bytes += self.frames[0].len();
                retired += 1;
                self.frames.remove(0);
                self.head_written = 0;
            } else {
                self.head_written += n;
                n = 0;
            }
        }
        (retired, retired_bytes)
    }

    /// What a vectored write would be offered, concatenated.
    fn batch_bytes(&self, max: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for (i, f) in self.frames.iter().take(max).enumerate() {
            let skip = if i == 0 { self.head_written } else { 0 };
            out.extend_from_slice(&f[skip..]);
        }
        out
    }
}

/// A frame whose content encodes its sequence number, so FIFO violations
/// show up as content mismatches, not just length mismatches.
fn frame(seq: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (seq.wrapping_add(i) & 0xff) as u8)
        .collect()
}

fn check_against_model(max_frames: usize, max_bytes: usize, ops: &[Op]) {
    let mut q = SendQueue::new(max_frames, max_bytes);
    let mut m = Model::new(max_frames, max_bytes);
    for (seq, op) in ops.iter().enumerate() {
        match op {
            Op::Push(len) => {
                let f = frame(seq, *len);
                let accepted = q.push(f.clone());
                let model_accepted = m.push(f);
                assert_eq!(accepted, model_accepted, "push #{seq} disagreed");
            }
            Op::Advance(n) => {
                assert_eq!(q.advance(*n), m.advance(*n), "advance({n}) disagreed");
            }
            Op::Reset => {
                q.reset_progress();
                m.head_written = 0;
            }
        }
        // Caps hold after *every* operation.
        assert!(q.len() <= max_frames.max(1), "frame cap exceeded");
        assert!(q.bytes() <= max_bytes.max(1), "byte cap exceeded");
        // Full-state agreement with the model.
        assert_eq!(q.len(), m.frames.len());
        assert_eq!(q.bytes(), m.bytes());
        assert_eq!(q.dropped(), m.dropped);
        assert_eq!(q.peak(), m.peak);
        assert_eq!(q.is_empty(), m.frames.is_empty());
        // FIFO + content: the offered batch is byte-identical.
        let got: Vec<u8> = q.batch(8).fold(Vec::new(), |mut acc, s| {
            acc.extend_from_slice(s);
            acc
        });
        assert_eq!(got, m.batch_bytes(8), "batch content diverged");
    }
}

proptest! {
    #[test]
    fn random_interleavings_match_reference_model(
        max_frames in 1usize..6,
        max_bytes in 1usize..120,
        ops in prop::collection::vec(arb_op(), 0..120),
    ) {
        check_against_model(max_frames, max_bytes, &ops);
    }

    #[test]
    fn unbounded_advance_always_drains(
        max_frames in 1usize..6,
        max_bytes in 16usize..120,
        lens in prop::collection::vec(1usize..30, 0..12),
    ) {
        let mut q = SendQueue::new(max_frames, max_bytes);
        let mut accepted_bytes = 0usize;
        let mut accepted = 0usize;
        for (seq, len) in lens.iter().enumerate() {
            if q.push(frame(seq, *len)) {
                accepted += 1;
                accepted_bytes += len;
            }
        }
        prop_assert_eq!(q.advance(usize::MAX), (accepted, accepted_bytes));
        prop_assert!(q.is_empty());
        prop_assert_eq!(q.bytes(), 0);
    }
}

/// Disconnect mid-frame, reconnect, and the exact same frame bytes come
/// back from the start — the at-least-once boundary the receiver's
/// per-connection [`FrameBuffer`](p2pfl_net::FrameBuffer) discard pairs
/// with.
#[test]
fn reconnect_resends_partial_head_from_frame_boundary() {
    let mut q = SendQueue::new(8, 1 << 20);
    let f0 = frame(0, 10);
    let f1 = frame(1, 7);
    assert!(q.push(f0.clone()));
    assert!(q.push(f1.clone()));
    assert_eq!(q.advance(6), (0, 0), "partial head retires nothing");
    q.reset_progress();
    let offered: Vec<u8> = q.batch(8).fold(Vec::new(), |mut a, s| {
        a.extend_from_slice(s);
        a
    });
    let mut want = f0;
    want.extend_from_slice(&f1);
    assert_eq!(offered, want, "resend must restart at the frame boundary");
}
