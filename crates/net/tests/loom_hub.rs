//! Loom model checks over [`p2pfl_net::registry`] — the hub's shared
//! lock/atomic state, exercised here without any sockets.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p p2pfl-net --test loom_hub
//! ```
//!
//! (Use `CARGO_TARGET_DIR=target/loom` to keep the `--cfg loom` build from
//! thrashing the normal build cache; `ci.sh` does.)
//!
//! Three racy schedules the TCP code cannot exercise deterministically:
//!
//! 1. `register` racing `begin_shutdown` — a connection registered after
//!    the shutdown sever-pass must still end up severed, provided the
//!    registering thread follows the hub's protocol of re-checking
//!    `is_shutdown()` after registering and severing its own handle.
//! 2. Concurrent counter increments from reader/writer threads are never
//!    lost.
//! 3. `sever_all` racing `register` never panics, never double-severs a
//!    drained connection, and leaves every connection either severed or
//!    still registered (none leak out of both).

#![cfg(loom)]

use loom::sync::atomic::{AtomicBool, Ordering};
use loom::sync::Arc;
use loom::thread;
use p2pfl_net::registry::{Conn, Registry};

/// A connection handle that records severing, like a `TcpStream` clone.
#[derive(Clone)]
struct MockConn {
    severed: Arc<AtomicBool>,
    dead: Arc<AtomicBool>,
}

impl MockConn {
    fn live() -> Self {
        MockConn {
            severed: Arc::new(AtomicBool::new(false)),
            dead: Arc::new(AtomicBool::new(false)),
        }
    }
}

impl Conn for MockConn {
    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    fn sever(&self) {
        assert!(
            !self.severed.swap(true, Ordering::SeqCst),
            "connection severed twice — registry drained it into two owners"
        );
    }
}

#[test]
fn late_registration_racing_shutdown_still_gets_severed() {
    loom::model(|| {
        let reg = Arc::new(Registry::new());
        let conn = MockConn::live();

        let registrar = {
            let reg = reg.clone();
            let conn = conn.clone();
            thread::spawn(move || {
                // The accept/writer thread's protocol: register, then
                // re-check the latch; on shutdown, sever your own handle
                // (dropping a TcpStream closes it) in case the sever pass
                // already ran.
                reg.register(conn.clone());
                if reg.is_shutdown() && !conn.severed.load(Ordering::SeqCst) {
                    reg.sever_all();
                }
            })
        };
        let closer = {
            let reg = reg.clone();
            thread::spawn(move || {
                reg.begin_shutdown();
            })
        };
        registrar.join().unwrap();
        closer.join().unwrap();

        assert!(reg.is_shutdown());
        assert!(
            conn.severed.load(Ordering::SeqCst),
            "a connection registered during shutdown leaked unsevered"
        );
    });
}

#[test]
fn concurrent_stat_increments_are_never_lost() {
    loom::model(|| {
        let reg: Arc<Registry<MockConn>> = Arc::new(Registry::new());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let reg = reg.clone();
                thread::spawn(move || {
                    reg.stats().frames_sent.fetch_add(1, Ordering::Relaxed);
                    reg.stats().bytes_sent.fetch_add(100, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.stats().snapshot();
        assert_eq!(snap.frames_sent, 2, "lost counter update");
        assert_eq!(snap.bytes_sent, 200, "lost counter update");
    });
}

#[test]
fn sever_all_racing_register_neither_leaks_nor_double_severs() {
    loom::model(|| {
        let reg = Arc::new(Registry::new());
        let first = MockConn::live();
        reg.register(first.clone());

        let second = MockConn::live();
        let registrar = {
            let reg = reg.clone();
            let second = second.clone();
            thread::spawn(move || {
                reg.register(second);
            })
        };
        let severer = {
            let reg = reg.clone();
            thread::spawn(move || {
                reg.sever_all();
            })
        };
        registrar.join().unwrap();
        severer.join().unwrap();

        // The pre-registered connection raced nothing: it must be severed
        // (MockConn::sever asserts it happened exactly once). The second
        // either lost the race (still registered, unsevered) or won it
        // (drained and severed) — but never both and never neither.
        assert!(first.severed.load(Ordering::SeqCst));
        let still_registered = reg.live_count();
        let second_severed = second.severed.load(Ordering::SeqCst);
        assert!(
            second_severed == (still_registered == 0),
            "second conn: severed={second_severed}, registry len={still_registered}"
        );

        // A final drain (what Hub::shutdown does) leaves nothing live.
        reg.sever_all();
        assert!(second.severed.load(Ordering::SeqCst));
        assert_eq!(reg.live_count(), 0);
    });
}

/// Tracks drop counts so the prune path is observable.
struct DeadConn;

impl Conn for DeadConn {
    fn is_dead(&self) -> bool {
        true
    }

    fn sever(&self) {}
}

#[test]
fn register_prunes_dead_connections_under_concurrency() {
    loom::model(|| {
        let reg = Arc::new(Registry::new());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let reg = reg.clone();
                thread::spawn(move || {
                    reg.register(DeadConn);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Each register prunes everything already dead, so at most the
        // final registration survives.
        assert!(reg.live_count() <= 1, "dead connections accumulated");
    });
}
