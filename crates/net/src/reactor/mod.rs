//! Single-reactor async peer runtime: many actors, one epoll loop.
//!
//! The threaded [`PeerRuntime`](crate::PeerRuntime) spends ~4 OS threads
//! per peer (event loop, accept, readers, writers), which tops out around
//! a hundred peers on one machine. The [`Reactor`] hosts *hundreds* of
//! sans-IO actors on **one** thread driving an epoll readiness loop
//! ([`sys`]), with:
//!
//! * **One shared listener** fronting every hosted peer. The v2 hello
//!   ([`conn`]) carries the *destination* peer, so a single bound port
//!   multiplexes all of them.
//! * **One socket per peer pair**, used in both directions. Only the
//!   *lower* [`NodeId`] ever dials; the higher side queues frames until
//!   the dialer's connection arrives and is then attached to it. This
//!   deterministic rule kills simultaneous-dial races and halves fd
//!   usage — a 1000-peer topology fits comfortably under a 20k fd cap.
//! * **Bounded per-link send queues** ([`queue::SendQueue`]) flushed with
//!   vectored writes: a slow or dead consumer backs up (and eventually
//!   drops, counted in [`NetStats::sends_dropped`]) on *its own* queue
//!   without stalling the loop or other links.
//! * **A hashed timer wheel** ([`timer::TimerWheel`]) carrying every
//!   actor round deadline, redial backoff, and fault-plan delayed-frame
//!   release across all hosted peers.
//!
//! The actor contract is identical to the simulator's and the threaded
//! runtime's: callbacks run one at a time on the loop thread, `now()` is
//! elapsed time since the peer was spawned, loopback sends are delivered
//! after the current callback, and [`FaultPlan`]s interpose the same
//! [`FaultLayer`] interpreter between sends and sockets. The sans-IO
//! crates (`raft`, `hierraft`, `secagg`) run byte-for-byte unmodified on
//! all three transports.

pub(crate) mod conn;
pub mod injector;
mod queue;
mod sys;
mod timer;

pub use queue::SendQueue;
pub use timer::TimerWheel;

use crate::codec;
use crate::fault::FaultLayer;
use crate::hub::{backoff_jitter, BACKOFF_INITIAL, BACKOFF_MAX};
use crate::registry::{NetStats, StatsCells};
use crate::runtime::WireMsg;
use injector::Injector;
use p2pfl_simnet::{Actor, FaultPlan, NodeId, SimDuration, SimTime, TimerId, Transport};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poller token of the cross-thread wake pipe.
const TOKEN_WAKE: u64 = 0;
/// Poller token of the shared listener.
const TOKEN_LISTEN: u64 = 1;
/// First token handed to a connection; tokens are never reused, so a
/// stale readiness event for a closed connection simply misses the map.
const TOKEN_CONN0: u64 = 2;

/// Configuration for a [`Reactor`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Address the shared listener binds (port 0 for OS-assigned).
    pub bind_addr: String,
    /// Per-link send queue cap, in frames.
    pub max_queue_frames: usize,
    /// Per-link send queue cap, in bytes.
    pub max_queue_bytes: usize,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            bind_addr: "127.0.0.1:0".to_owned(),
            max_queue_frames: 4096,
            max_queue_bytes: 32 << 20,
        }
    }
}

/// What a fired timer-wheel entry means.
enum TimerEntry {
    /// An actor timer from [`Transport::set_timer`].
    Actor { peer: NodeId, id: u64, tag: u64 },
    /// A backoff-delayed redial of `peer`'s link to `remote`.
    Redial { peer: NodeId, remote: NodeId },
    /// A fault-plan delayed frame of `peer`'s may have come due.
    FaultFlush { peer: NodeId },
}

/// A closure run on the loop thread with the actor and live transport.
type Invocation<M, A> = Box<dyn FnOnce(&mut A, &mut dyn Transport<M>) + Send>;

/// Cross-thread requests handled at the top of each loop iteration.
enum Task<M, A> {
    Spawn {
        id: NodeId,
        actor: A,
        faults: Option<FaultLayer>,
        stats: Arc<StatsCells>,
        decode_errors: Arc<AtomicU64>,
        reply: Sender<io::Result<()>>,
    },
    AddPeer {
        local: NodeId,
        peer: NodeId,
        addr: SocketAddr,
    },
    Invoke {
        local: NodeId,
        f: Invocation<M, A>,
    },
    Despawn {
        local: NodeId,
        reply: Sender<Option<A>>,
    },
    SeverAll,
    Shutdown,
}

/// State shared between user-thread handles and the loop thread.
struct Shared<M, A> {
    injector: Injector<Task<M, A>>,
    wake: UnixStream,
    listen_addr: SocketAddr,
}

impl<M, A> Shared<M, A> {
    /// Enqueues a task and wakes the loop. `false` if the reactor has
    /// shut down (the task is dropped).
    fn submit(&self, task: Task<M, A>) -> bool {
        if self.injector.push(task).is_err() {
            return false;
        }
        // A full pipe already guarantees a pending wake; errors are moot.
        let _ = (&self.wake).write(&[1u8]);
        true
    }
}

/// One peer's outgoing link to one remote: the bounded queue plus the
/// connection and redial bookkeeping.
struct OutLink {
    queue: SendQueue,
    /// Token of the connection currently carrying this link, if any.
    conn: Option<u64>,
    backoff: Duration,
    attempt: u64,
    ever_connected: bool,
    /// Whether a redial wheel entry is pending (dialer side only).
    redial_armed: bool,
}

impl OutLink {
    fn new(caps: (usize, usize)) -> OutLink {
        OutLink {
            queue: SendQueue::new(caps.0, caps.1),
            conn: None,
            backoff: BACKOFF_INITIAL,
            attempt: 0,
            ever_connected: false,
            redial_armed: false,
        }
    }
}

/// One hosted peer: its actor plus everything the loop needs to run it.
struct PeerSlot<M, A> {
    actor: A,
    /// Wall-clock zero of this peer's `now()` and fault-plan time axis.
    origin: Instant,
    stats: Arc<StatsCells>,
    decode_errors: Arc<AtomicU64>,
    faults: Option<FaultLayer>,
    next_timer_id: u64,
    cancelled: HashSet<u64>,
    /// Known remote addresses (the hosting reactor's listener).
    addrs: HashMap<NodeId, SocketAddr>,
    links: HashMap<NodeId, OutLink>,
    loopback: VecDeque<M>,
    /// Remotes whose queues grew during the current dispatch.
    touched: Vec<NodeId>,
}

/// The loop thread's whole world.
struct Core<M, A> {
    cfg: ReactorConfig,
    /// Wall-clock zero of the timer wheel's nanosecond axis.
    origin: Instant,
    poller: sys::Poller,
    listener: TcpListener,
    wake_rx: UnixStream,
    shared: Arc<Shared<M, A>>,
    peers: HashMap<NodeId, PeerSlot<M, A>>,
    conns: HashMap<u64, conn::Link>,
    next_token: u64,
    wheel: TimerWheel<TimerEntry>,
    scratch: Vec<u8>,
    shutdown: bool,
}

fn ns_since(origin: Instant) -> u64 {
    origin.elapsed().as_nanos() as u64
}

fn sim_elapsed(origin: Instant) -> SimTime {
    SimTime::from_nanos(origin.elapsed().as_nanos() as u64)
}

/// The [`Transport`] handed to actor callbacks on the loop thread.
struct ReactorCtx<'a, M> {
    id: NodeId,
    origin: Instant,
    /// Peer-relative nanoseconds → reactor-wheel nanoseconds offset.
    offset_ns: u64,
    caps: (usize, usize),
    links: &'a mut HashMap<NodeId, OutLink>,
    faults: &'a mut Option<FaultLayer>,
    loopback: &'a mut VecDeque<M>,
    next_timer_id: &'a mut u64,
    cancelled: &'a mut HashSet<u64>,
    wheel: &'a mut TimerWheel<TimerEntry>,
    stats: &'a StatsCells,
    touched: &'a mut Vec<NodeId>,
}

impl<M> ReactorCtx<'_, M> {
    /// Queues one framed message on the link to `to`, creating the link
    /// if needed; a full queue counts the frame into `sends_dropped`
    /// instead. Associated fn so it can run while `faults` is borrowed.
    fn enqueue(
        links: &mut HashMap<NodeId, OutLink>,
        touched: &mut Vec<NodeId>,
        stats: &StatsCells,
        caps: (usize, usize),
        to: NodeId,
        framed: Vec<u8>,
    ) {
        let ol = links.entry(to).or_insert_with(|| OutLink::new(caps));
        if ol.queue.push(framed) {
            stats
                .send_queue_peak
                .fetch_max(ol.queue.peak() as u64, Ordering::Relaxed);
            if !touched.contains(&to) {
                touched.push(to);
            }
        } else {
            stats.sends_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl<M: WireMsg> Transport<M> for ReactorCtx<'_, M> {
    fn now(&self) -> SimTime {
        sim_elapsed(self.origin)
    }

    fn node_id(&self) -> NodeId {
        self.id
    }

    fn send(&mut self, to: NodeId, msg: M) {
        if to == self.id {
            // Local delivery after the current callback returns — the
            // simulator's instantaneous-loopback semantics.
            self.loopback.push_back(msg);
            return;
        }
        let Some(framed) = codec::to_frame_bytes(&msg) else {
            // Unencodable or oversized: it could never reach the wire.
            self.stats.sends_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let Some(fl) = self.faults.as_mut() else {
            Self::enqueue(self.links, self.touched, self.stats, self.caps, to, framed);
            return;
        };
        let now = sim_elapsed(self.origin);
        let v = fl.on_send(now, self.id, to);
        if v.copies == 0 {
            self.stats.sends_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        for _ in 0..v.copies {
            if v.extra_delay == SimDuration::ZERO {
                Self::enqueue(
                    self.links,
                    self.touched,
                    self.stats,
                    self.caps,
                    to,
                    framed.clone(),
                );
            } else {
                let due = now + v.extra_delay;
                fl.push_delayed(due, to, framed.clone());
                self.wheel.insert(
                    self.offset_ns.saturating_add(due.as_nanos()),
                    TimerEntry::FaultFlush { peer: self.id },
                );
            }
        }
    }

    fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = *self.next_timer_id;
        *self.next_timer_id += 1;
        let deadline = self.now() + delay;
        self.wheel.insert(
            self.offset_ns.saturating_add(deadline.as_nanos()),
            TimerEntry::Actor {
                peer: self.id,
                id,
                tag,
            },
        );
        TimerId(id)
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.cancelled.insert(id.0);
    }
}

impl<M: WireMsg + Send + 'static, A: Actor<M> + Send + 'static> Core<M, A> {
    /// Runs one actor callback with a live transport, drains the loopback
    /// it produced, mirrors stash/rejection counters, then kicks the
    /// network for every link the callback touched.
    fn dispatch<F>(&mut self, peer: NodeId, f: F)
    where
        F: FnOnce(&mut A, &mut dyn Transport<M>),
    {
        let reactor_origin = self.origin;
        let caps = (self.cfg.max_queue_frames, self.cfg.max_queue_bytes);
        {
            let peers = &mut self.peers;
            let wheel = &mut self.wheel;
            let Some(slot) = peers.get_mut(&peer) else {
                return;
            };
            let offset_ns = slot
                .origin
                .saturating_duration_since(reactor_origin)
                .as_nanos() as u64;
            {
                let mut ctx = ReactorCtx {
                    id: peer,
                    origin: slot.origin,
                    offset_ns,
                    caps,
                    links: &mut slot.links,
                    faults: &mut slot.faults,
                    loopback: &mut slot.loopback,
                    next_timer_id: &mut slot.next_timer_id,
                    cancelled: &mut slot.cancelled,
                    wheel: &mut *wheel,
                    stats: &slot.stats,
                    touched: &mut slot.touched,
                };
                f(&mut slot.actor, &mut ctx);
            }
            while let Some(m) = slot.loopback.pop_front() {
                let mut ctx = ReactorCtx {
                    id: peer,
                    origin: slot.origin,
                    offset_ns,
                    caps,
                    links: &mut slot.links,
                    faults: &mut slot.faults,
                    loopback: &mut slot.loopback,
                    next_timer_id: &mut slot.next_timer_id,
                    cancelled: &mut slot.cancelled,
                    wheel: &mut *wheel,
                    stats: &slot.stats,
                    touched: &mut slot.touched,
                };
                slot.actor.on_message(&mut ctx, peer, m);
            }
            slot.stats
                .stash_evicted
                .store(slot.actor.stash_evicted(), Ordering::Relaxed);
            slot.stats
                .shares_rejected
                .store(slot.actor.shares_rejected(), Ordering::Relaxed);
        }
        self.flush_touched(peer);
    }

    /// Flushes (or dials for) every link `peer`'s last dispatch touched.
    fn flush_touched(&mut self, peer: NodeId) {
        let touched = match self.peers.get_mut(&peer) {
            Some(slot) => std::mem::take(&mut slot.touched),
            None => return,
        };
        for remote in touched {
            self.ensure_flow(peer, remote);
        }
    }

    /// Makes sure frames queued on `local`'s link to `remote` can move:
    /// flush if connected, dial if this side owns dialing, otherwise wait
    /// (for a redial timer or the remote's dial).
    fn ensure_flow(&mut self, local: NodeId, remote: NodeId) {
        enum Flow {
            Flush(u64),
            Dial,
            Wait,
        }
        let action = {
            let Some(slot) = self.peers.get_mut(&local) else {
                return;
            };
            let has_addr = slot.addrs.contains_key(&remote);
            let Some(ol) = slot.links.get_mut(&remote) else {
                return;
            };
            match ol.conn {
                Some(t) => Flow::Flush(t),
                None if local.0 < remote.0 && !ol.redial_armed && has_addr => Flow::Dial,
                None => Flow::Wait,
            }
        };
        match action {
            Flow::Flush(t) => self.flush_conn(t),
            Flow::Dial => self.dial(local, remote),
            Flow::Wait => {}
        }
    }

    /// Starts a non-blocking connect from `local` to `remote`'s reactor.
    /// Only ever called on the lower-id side of a pair.
    fn dial(&mut self, local: NodeId, remote: NodeId) {
        let Some(addr) = self
            .peers
            .get(&local)
            .and_then(|s| s.addrs.get(&remote))
            .copied()
        else {
            return;
        };
        match sys::connect_nonblocking(&addr) {
            Ok(stream) => {
                let token = self.next_token;
                self.next_token += 1;
                if self
                    .poller
                    .add(stream.as_raw_fd(), token, sys::Interest::WRITE)
                    .is_err()
                {
                    self.arm_redial(local, remote);
                    return;
                }
                self.conns
                    .insert(token, conn::Link::dialed(stream, local, remote));
                if let Some(ol) = self
                    .peers
                    .get_mut(&local)
                    .and_then(|s| s.links.get_mut(&remote))
                {
                    ol.conn = Some(token);
                }
            }
            Err(_) => self.arm_redial(local, remote),
        }
    }

    /// Schedules a jittered-backoff redial of `local`'s link to `remote`.
    fn arm_redial(&mut self, local: NodeId, remote: NodeId) {
        let now_ns = ns_since(self.origin);
        let due = {
            let Some(slot) = self.peers.get_mut(&local) else {
                return;
            };
            let Some(ol) = slot.links.get_mut(&remote) else {
                return;
            };
            if ol.redial_armed {
                return;
            }
            ol.redial_armed = true;
            ol.attempt = ol.attempt.saturating_add(1);
            slot.stats
                .reconnect_attempts
                .fetch_add(1, Ordering::Relaxed);
            let delay = ol.backoff + backoff_jitter(local, ol.attempt, ol.backoff);
            ol.backoff = (ol.backoff * 2).min(BACKOFF_MAX);
            now_ns.saturating_add(delay.as_nanos() as u64)
        };
        self.wheel.insert(
            due,
            TimerEntry::Redial {
                peer: local,
                remote,
            },
        );
    }

    /// A dialed connection finished connecting: reset backoff, count the
    /// reconnect, and push whatever queued up while it was away.
    fn on_connected(&mut self, token: u64) {
        let pair = self.conns.get(&token).and_then(|l| l.local.zip(l.remote));
        let Some((local, remote)) = pair else {
            return;
        };
        if let Some(slot) = self.peers.get_mut(&local) {
            if let Some(ol) = slot.links.get_mut(&remote) {
                if ol.ever_connected {
                    slot.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                ol.ever_connected = true;
                ol.backoff = BACKOFF_INITIAL;
                ol.attempt = 0;
            }
        }
        // Stay write-interested until the first flush decides otherwise.
        if let Some(link) = self.conns.get_mut(&token) {
            link.want_write = true;
            let _ = self
                .poller
                .modify(link.stream.as_raw_fd(), token, sys::Interest::BOTH);
        }
        self.flush_conn(token);
    }

    /// Writes as much of the owning link's queue as the socket takes and
    /// re-arms (or drops) write interest to match.
    fn flush_conn(&mut self, token: u64) {
        let outcome = {
            let Some(link) = self.conns.get_mut(&token) else {
                return;
            };
            if link.state != conn::LinkState::Open {
                return;
            }
            let (Some(local), Some(remote)) = (link.local, link.remote) else {
                return;
            };
            let Some(slot) = self.peers.get_mut(&local) else {
                return;
            };
            let Some(ol) = slot.links.get_mut(&remote) else {
                return;
            };
            conn::flush_link(link, &mut ol.queue, &slot.stats)
        };
        match outcome {
            conn::FlushOutcome::Drained => self.set_write_interest(token, false),
            conn::FlushOutcome::Blocked => self.set_write_interest(token, true),
            conn::FlushOutcome::Dead => self.close_conn(token, true),
        }
    }

    /// Adds or removes write interest on a connection, tracking the
    /// current registration to avoid redundant `epoll_ctl` calls.
    fn set_write_interest(&mut self, token: u64, want: bool) {
        let Some(link) = self.conns.get_mut(&token) else {
            return;
        };
        if link.want_write == want {
            return;
        }
        let interest = if want {
            sys::Interest::BOTH
        } else {
            sys::Interest::READ
        };
        if self
            .poller
            .modify(link.stream.as_raw_fd(), token, interest)
            .is_ok()
        {
            link.want_write = want;
        }
    }

    /// Tears a connection down. Partial write progress on the owning
    /// queue is voided (the frame will be re-sent whole), and the dialer
    /// side schedules a redial unless `allow_redial` is off (duplicate
    /// replacement, despawn, shutdown).
    fn close_conn(&mut self, token: u64, allow_redial: bool) {
        let Some(link) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.poller.delete(link.stream.as_raw_fd());
        let (Some(local), Some(remote)) = (link.local, link.remote) else {
            return;
        };
        let redial = {
            let Some(ol) = self
                .peers
                .get_mut(&local)
                .and_then(|s| s.links.get_mut(&remote))
            else {
                return;
            };
            if ol.conn != Some(token) {
                // A newer connection already owns this link; the old
                // socket just goes away.
                return;
            }
            ol.conn = None;
            ol.queue.reset_progress();
            link.dialed && allow_redial
        };
        if redial {
            self.arm_redial(local, remote);
        }
    }

    /// Accepts every pending connection on the shared listener.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .add(stream.as_raw_fd(), token, sys::Interest::READ)
                        .is_ok()
                    {
                        self.conns.insert(token, conn::Link::accepted(stream));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Routes one readiness event for a connection token.
    fn conn_event(&mut self, token: u64, readable: bool, writable: bool, error: bool) {
        let state = match self.conns.get(&token) {
            Some(l) => l.state,
            None => return, // stale event for a closed connection
        };
        if state == conn::LinkState::Connecting {
            if error {
                self.close_conn(token, true);
                return;
            }
            if writable {
                let ok = match self.conns.get_mut(&token) {
                    Some(link) => conn::complete_connect(link).is_ok(),
                    None => return,
                };
                if ok {
                    self.on_connected(token);
                } else {
                    self.close_conn(token, true);
                }
            }
            return;
        }
        if readable || error {
            // Drain data (possibly the final frames before a FIN) first;
            // `handle_readable` closes on EOF/corruption itself.
            self.handle_readable(token);
            if error && self.conns.contains_key(&token) {
                self.close_conn(token, true);
            }
        }
        if writable {
            self.flush_conn(token);
        }
    }

    /// Reads everything available on a connection and dispatches the
    /// complete frames it yielded.
    fn handle_readable(&mut self, token: u64) {
        let mut frames = Vec::new();
        let status = {
            let Some(link) = self.conns.get_mut(&token) else {
                return;
            };
            conn::read_frames(link, &mut self.scratch, &mut frames)
        };
        self.process_frames(token, frames);
        match status {
            conn::ReadStatus::Open => {}
            conn::ReadStatus::Closed | conn::ReadStatus::Corrupt => {
                self.close_conn(token, true);
            }
        }
    }

    /// Delivers frames read from one connection: a hello attaches the
    /// connection to its destination peer, payloads decode and dispatch.
    fn process_frames(&mut self, token: u64, frames: Vec<Vec<u8>>) {
        for frame in frames {
            // Re-read the link identity each frame: the hello that
            // attaches it may arrive in the same batch as payloads.
            let Some((got_hello, local, remote)) = self
                .conns
                .get(&token)
                .map(|l| (l.got_hello, l.local, l.remote))
            else {
                return;
            };
            if !got_hello {
                match conn::parse_hello_v2(&frame) {
                    Some((src, dst)) if self.peers.contains_key(&dst) => {
                        self.attach_accepted(token, src, dst);
                    }
                    _ => {
                        // Wrong protocol or a peer this reactor does not
                        // host (yet): drop the connection, the dialer's
                        // backoff will retry.
                        self.close_conn(token, false);
                        return;
                    }
                }
                continue;
            }
            let (Some(local), Some(remote)) = (local, remote) else {
                continue;
            };
            {
                let Some(slot) = self.peers.get_mut(&local) else {
                    continue;
                };
                slot.stats.frames_received.fetch_add(1, Ordering::Relaxed);
                slot.stats
                    .bytes_received
                    .fetch_add(frame.len() as u64 + 4, Ordering::Relaxed);
            }
            match codec::from_bytes::<M>(&frame) {
                Ok(msg) => {
                    self.dispatch(local, move |a, ctx| a.on_message(ctx, remote, msg));
                }
                Err(_) => {
                    if let Some(slot) = self.peers.get(&local) {
                        slot.decode_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// Binds an accepted connection to the hosted peer its hello named,
    /// adopting it as the pair's (single) socket in both directions.
    fn attach_accepted(&mut self, token: u64, src: NodeId, dst: NodeId) {
        let caps = (self.cfg.max_queue_frames, self.cfg.max_queue_bytes);
        let old = {
            let Some(link) = self.conns.get_mut(&token) else {
                return;
            };
            link.got_hello = true;
            link.local = Some(dst);
            link.remote = Some(src);
            let Some(slot) = self.peers.get_mut(&dst) else {
                return;
            };
            let ol = slot.links.entry(src).or_insert_with(|| OutLink::new(caps));
            ol.queue.reset_progress();
            ol.conn.replace(token)
        };
        if let Some(old_token) = old {
            if old_token != token {
                // The remote re-dialed before we noticed the old socket
                // die; the newest connection wins.
                self.close_conn(old_token, false);
            }
        }
        self.flush_conn(token);
    }

    /// Releases every due fault-delayed frame of `peer` onto its links.
    fn flush_faults(&mut self, peer: NodeId) {
        let released = {
            let Some(slot) = self.peers.get_mut(&peer) else {
                return;
            };
            let now = sim_elapsed(slot.origin);
            let Some(fl) = slot.faults.as_mut() else {
                return;
            };
            let mut out = Vec::new();
            while let Some((to, bytes)) = fl.pop_due(now) {
                out.push((to, bytes));
            }
            out
        };
        if released.is_empty() {
            return;
        }
        let caps = (self.cfg.max_queue_frames, self.cfg.max_queue_bytes);
        {
            let Some(slot) = self.peers.get_mut(&peer) else {
                return;
            };
            for (to, bytes) in released {
                ReactorCtx::<M>::enqueue(
                    &mut slot.links,
                    &mut slot.touched,
                    &slot.stats,
                    caps,
                    to,
                    bytes,
                );
            }
        }
        self.flush_touched(peer);
    }

    /// Fires every due wheel entry.
    fn fire_timers(&mut self, fired: &mut Vec<TimerEntry>) {
        self.wheel.advance(ns_since(self.origin), fired);
        for entry in fired.drain(..) {
            match entry {
                TimerEntry::Actor { peer, id, tag } => {
                    let live = match self.peers.get_mut(&peer) {
                        Some(slot) => !slot.cancelled.remove(&id),
                        None => false,
                    };
                    if live {
                        self.dispatch(peer, move |a, ctx| a.on_timer(ctx, tag));
                    }
                }
                TimerEntry::Redial { peer, remote } => {
                    let should = match self
                        .peers
                        .get_mut(&peer)
                        .and_then(|s| s.links.get_mut(&remote))
                    {
                        Some(ol) => {
                            ol.redial_armed = false;
                            ol.conn.is_none()
                        }
                        None => false,
                    };
                    if should {
                        self.dial(peer, remote);
                    }
                }
                TimerEntry::FaultFlush { peer } => self.flush_faults(peer),
            }
        }
    }

    /// Executes one cross-thread task.
    fn handle_task(&mut self, task: Task<M, A>) {
        match task {
            Task::Spawn {
                id,
                actor,
                faults,
                stats,
                decode_errors,
                reply,
            } => {
                if self.peers.contains_key(&id) {
                    let _ = reply.send(Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "peer id already hosted on this reactor",
                    )));
                    return;
                }
                self.peers.insert(
                    id,
                    PeerSlot {
                        actor,
                        origin: Instant::now(),
                        stats,
                        decode_errors,
                        faults,
                        next_timer_id: 1,
                        cancelled: HashSet::new(),
                        addrs: HashMap::new(),
                        links: HashMap::new(),
                        loopback: VecDeque::new(),
                        touched: Vec::new(),
                    },
                );
                self.dispatch(id, |a, ctx| a.on_start(ctx));
                let _ = reply.send(Ok(()));
            }
            Task::AddPeer { local, peer, addr } => {
                let caps = (self.cfg.max_queue_frames, self.cfg.max_queue_bytes);
                let dial = {
                    let Some(slot) = self.peers.get_mut(&local) else {
                        return;
                    };
                    // Overwrite on re-registration: a crash-rejoined peer
                    // may come back behind a different reactor/port.
                    slot.addrs.insert(peer, addr);
                    let ol = slot.links.entry(peer).or_insert_with(|| OutLink::new(caps));
                    local.0 < peer.0 && ol.conn.is_none() && !ol.redial_armed
                };
                if dial {
                    self.dial(local, peer);
                }
            }
            Task::Invoke { local, f } => self.dispatch(local, f),
            Task::Despawn { local, reply } => {
                let slot = self.peers.remove(&local);
                let tokens: Vec<u64> = self
                    .conns
                    .iter()
                    .filter(|(_, l)| l.local == Some(local))
                    .map(|(t, _)| *t)
                    .collect();
                for t in tokens {
                    self.close_conn(t, false);
                }
                let _ = reply.send(slot.map(|s| s.actor));
            }
            Task::SeverAll => {
                let tokens: Vec<u64> = self.conns.keys().copied().collect();
                for t in tokens {
                    if let Some(l) = self.conns.get(&t) {
                        let _ = l.stream.shutdown(std::net::Shutdown::Both);
                    }
                    self.close_conn(t, true);
                }
            }
            Task::Shutdown => self.shutdown = true,
        }
    }

    /// Empties the wake pipe so level-triggered polling goes quiet.
    fn drain_wake(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => return,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return, // WouldBlock: drained
            }
        }
    }

    /// Time until the next wheel deadline, capped so a stalled clock
    /// can't wedge the loop.
    fn poll_timeout(&self) -> Duration {
        let cap = Duration::from_millis(100);
        match self.wheel.next_deadline_ns() {
            Some(d) => Duration::from_nanos(d.saturating_sub(ns_since(self.origin))).min(cap),
            None => cap,
        }
    }
}

/// The loop thread body: fire timers, run submitted tasks, poll, route
/// readiness. Lint root for the wire-path panic-freedom gate.
fn reactor_loop<M, A>(mut core: Core<M, A>)
where
    M: WireMsg + Send + 'static,
    A: Actor<M> + Send + 'static,
{
    let mut events = sys::Events::with_capacity(1024);
    let mut ready: Vec<sys::Readiness> = Vec::new();
    let mut fired: Vec<TimerEntry> = Vec::new();
    let mut tasks: Vec<Task<M, A>> = Vec::new();
    loop {
        core.fire_timers(&mut fired);
        core.shared.injector.drain(&mut tasks);
        for (i, t) in tasks.drain(..).enumerate() {
            core.handle_task(t);
            // A large task batch can be a dial storm (a scale topology
            // registering thousands of links): drain the accept queue as
            // we go so it cannot overflow while the loop is heads-down.
            if i % 64 == 63 {
                core.accept_ready();
            }
        }
        if core.shutdown {
            break;
        }
        let timeout = core.poll_timeout();
        match core.poller.wait(&mut events, Some(timeout)) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break, // poller gone: nothing left to drive
        }
        ready.clear();
        ready.extend(events.iter());
        for ev in &ready {
            match ev.token {
                TOKEN_WAKE => core.drain_wake(),
                TOKEN_LISTEN => core.accept_ready(),
                token => core.conn_event(token, ev.readable, ev.writable, ev.error),
            }
        }
    }
    // Refuse further tasks; pending reply senders drop, unblocking any
    // handle mid-call with a disconnect error.
    core.shared.injector.close();
}

/// A single-threaded epoll runtime hosting many sans-IO peers.
///
/// Spawn one per process (or one per "machine" in a multi-reactor test
/// topology), then [`Reactor::spawn_peer`] each actor onto it. Dropping
/// the reactor shuts the loop down and discards every hosted actor;
/// use [`PeerHandle::stop`] first to retrieve actors.
pub struct Reactor<M, A> {
    shared: Arc<Shared<M, A>>,
    thread: Option<JoinHandle<()>>,
}

impl<M, A> Reactor<M, A>
where
    M: WireMsg + Send + 'static,
    A: Actor<M> + Send + 'static,
{
    /// Binds the shared listener and starts the loop thread.
    ///
    /// When `bind_addr` is a literal socket address the listener is
    /// created with a deep accept backlog (the kernel caps it at
    /// `net.core.somaxconn`): a scale topology dials hundreds of
    /// connections at this one listener in a burst, and `std`'s
    /// hardcoded backlog of 128 would turn the overflow into ~1 s
    /// kernel SYN-retransmit stalls. Hostname binds fall back to
    /// `std`'s resolver path.
    pub fn start(cfg: ReactorConfig) -> io::Result<Reactor<M, A>> {
        let listener = match cfg.bind_addr.parse::<SocketAddr>() {
            Ok(addr) => sys::listen_with_backlog(&addr, 4096)?,
            Err(_) => TcpListener::bind(&cfg.bind_addr)?,
        };
        listener.set_nonblocking(true)?;
        let listen_addr = listener.local_addr()?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let poller = sys::Poller::new()?;
        poller.add(listener.as_raw_fd(), TOKEN_LISTEN, sys::Interest::READ)?;
        poller.add(wake_rx.as_raw_fd(), TOKEN_WAKE, sys::Interest::READ)?;
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            wake: wake_tx,
            listen_addr,
        });
        let core = Core {
            cfg,
            origin: Instant::now(),
            poller,
            listener,
            wake_rx,
            shared: shared.clone(),
            peers: HashMap::new(),
            conns: HashMap::new(),
            next_token: TOKEN_CONN0,
            wheel: TimerWheel::new(0),
            scratch: vec![0u8; 64 << 10],
            shutdown: false,
        };
        let thread = std::thread::Builder::new()
            .name("p2pfl-reactor".to_owned())
            .spawn(move || reactor_loop(core))?;
        Ok(Reactor {
            shared,
            thread: Some(thread),
        })
    }

    /// The address of the shared listener fronting every hosted peer.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.listen_addr
    }

    /// Hosts `actor` as peer `id`. Its `on_start` runs on the loop thread
    /// before this returns.
    pub fn spawn_peer(&self, id: NodeId, actor: A) -> io::Result<PeerHandle<M, A>> {
        self.spawn_inner(id, actor, None)
    }

    /// Like [`Reactor::spawn_peer`], but every outgoing send passes
    /// through `plan` — the same declarative fault schedule the simulator
    /// interprets, anchored at this peer's spawn time.
    pub fn spawn_peer_with_faults(
        &self,
        id: NodeId,
        actor: A,
        plan: &FaultPlan,
    ) -> io::Result<PeerHandle<M, A>> {
        self.spawn_inner(id, actor, Some(FaultLayer::new(plan)))
    }

    fn spawn_inner(
        &self,
        id: NodeId,
        actor: A,
        faults: Option<FaultLayer>,
    ) -> io::Result<PeerHandle<M, A>> {
        let stats = Arc::new(StatsCells::default());
        let decode_errors = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::channel();
        let task = Task::Spawn {
            id,
            actor,
            faults,
            stats: stats.clone(),
            decode_errors: decode_errors.clone(),
            reply: tx,
        };
        if !self.shared.submit(task) {
            return Err(stopped());
        }
        match rx.recv() {
            Ok(Ok(())) => Ok(PeerHandle {
                id,
                shared: self.shared.clone(),
                stats,
                decode_errors,
            }),
            Ok(Err(e)) => Err(e),
            Err(_) => Err(stopped()),
        }
    }

    /// Severs every TCP connection on this reactor; dialers recover via
    /// jittered backoff. Chaos-test hook, mirroring
    /// [`PeerRuntime::kill_connections`](crate::PeerRuntime::kill_connections).
    pub fn kill_connections(&self) {
        self.shared.submit(Task::SeverAll);
    }
}

impl<M, A> Drop for Reactor<M, A> {
    fn drop(&mut self) {
        let _ = self.shared.injector.push(Task::Shutdown);
        let _ = (&self.shared.wake).write(&[1u8]);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn stopped() -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, "reactor stopped")
}

/// Handle to one peer hosted on a [`Reactor`].
///
/// The API mirrors [`PeerRuntime`](crate::PeerRuntime): register remote
/// peers, run closures against the actor on the loop thread, read
/// transport counters, and stop (retrieving the actor) or kill it.
pub struct PeerHandle<M, A> {
    id: NodeId,
    shared: Arc<Shared<M, A>>,
    stats: Arc<StatsCells>,
    decode_errors: Arc<AtomicU64>,
}

impl<M, A> PeerHandle<M, A> {
    /// This peer's node id.
    pub fn node_id(&self) -> NodeId {
        self.id
    }

    /// The listener address remote peers should be told about — the
    /// hosting reactor's shared listener.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.listen_addr
    }

    /// Registers a remote peer's reactor address, or re-points an
    /// existing one (crash-rejoin behind a fresh reactor/port). The
    /// lower-id side of each pair dials eagerly on registration.
    pub fn add_peer(&self, peer: NodeId, addr: SocketAddr) {
        self.shared.submit(Task::AddPeer {
            local: self.id,
            peer,
            addr,
        });
    }

    /// Transport counters for this peer.
    pub fn stats(&self) -> NetStats {
        self.stats.snapshot()
    }

    /// Frames that arrived but failed to decode as `M` (dropped).
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors.load(Ordering::Relaxed)
    }

    /// Runs `f` against the actor *on the loop thread* with the live
    /// transport, returning its result — the reactor analogue of
    /// [`PeerRuntime::with`](crate::PeerRuntime::with).
    ///
    /// # Panics
    /// Panics if the reactor has stopped or the peer was despawned.
    pub fn with<R, F>(&self, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut A, &mut dyn Transport<M>) -> R + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        let call: Invocation<M, A> = Box::new(move |a, t| {
            let _ = tx.send(f(a, t));
        });
        let sent = self.shared.submit(Task::Invoke {
            local: self.id,
            f: call,
        });
        if !sent {
            panic!("reactor stopped");
        }
        rx.recv().expect("peer alive on reactor")
    }

    /// Stops the peer and returns its actor for final inspection.
    ///
    /// # Panics
    /// Panics if the reactor has stopped or the peer was already gone.
    pub fn stop(self) -> A {
        let (tx, rx) = mpsc::channel();
        let sent = self.shared.submit(Task::Despawn {
            local: self.id,
            reply: tx,
        });
        if !sent {
            panic!("reactor stopped");
        }
        rx.recv()
            .expect("reactor alive")
            .expect("peer alive on reactor")
    }

    /// Crash-stops the peer, discarding its actor — the reactor analogue
    /// of [`PeerRuntime::kill`](crate::PeerRuntime::kill). Its
    /// connections close; surviving peers redial until it respawns.
    pub fn kill(self) {
        let (tx, rx) = mpsc::channel();
        if self.shared.submit(Task::Despawn {
            local: self.id,
            reply: tx,
        }) {
            let _ = rx.recv();
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, Clone, PartialEq, Eq)]
    struct WireBlob {
        size: u64,
        tag: u64,
    }

    impl p2pfl_simnet::Payload for WireBlob {
        fn size_bytes(&self) -> u64 {
            self.size
        }
    }

    /// Echoes every message back with tag+1 until tag 3, counts
    /// deliveries, and proves timers + loopback work — the same actor the
    /// threaded runtime's tests host.
    #[derive(Default)]
    struct Echo {
        seen: u64,
        timer_fired: bool,
        loopback_seen: bool,
    }

    impl Actor<WireBlob> for Echo {
        fn on_start(&mut self, ctx: &mut dyn Transport<WireBlob>) {
            ctx.set_timer(SimDuration::from_millis(5), 42);
            ctx.send(ctx.node_id(), WireBlob { size: 1, tag: 999 });
        }
        fn on_message(&mut self, ctx: &mut dyn Transport<WireBlob>, from: NodeId, msg: WireBlob) {
            if msg.tag == 999 {
                self.loopback_seen = true;
                return;
            }
            self.seen += 1;
            if msg.tag < 3 {
                ctx.send(
                    from,
                    WireBlob {
                        size: msg.size,
                        tag: msg.tag + 1,
                    },
                );
            }
        }
        fn on_timer(&mut self, _ctx: &mut dyn Transport<WireBlob>, tag: u64) {
            if tag == 42 {
                self.timer_fired = true;
            }
        }
    }

    fn reactor() -> Reactor<WireBlob, Echo> {
        Reactor::start(ReactorConfig::default()).unwrap()
    }

    fn wait_until(what: &str, mut ok: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !ok() {
            assert!(Instant::now() < deadline, "timed out waiting: {what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn ping_pong_timers_and_loopback_one_reactor() {
        let r = reactor();
        let a = r.spawn_peer(NodeId(0), Echo::default()).unwrap();
        let b = r.spawn_peer(NodeId(1), Echo::default()).unwrap();
        a.add_peer(NodeId(1), r.local_addr());
        b.add_peer(NodeId(0), r.local_addr());

        a.with(|_, ctx| ctx.send(NodeId(1), WireBlob { size: 8, tag: 0 }));
        wait_until("ping-pong", || {
            a.with(|e, _| e.seen) + b.with(|e, _| e.seen) >= 4
        });
        std::thread::sleep(Duration::from_millis(20));
        let ea = a.stop();
        let eb = b.stop();
        assert!(ea.timer_fired && eb.timer_fired, "timers did not fire");
        assert!(ea.loopback_seen && eb.loopback_seen, "loopback skipped");
        assert_eq!(ea.seen + eb.seen, 4);
    }

    #[test]
    fn ping_pong_across_two_reactors() {
        let r1 = reactor();
        let r2 = reactor();
        let a = r1.spawn_peer(NodeId(0), Echo::default()).unwrap();
        let b = r2.spawn_peer(NodeId(1), Echo::default()).unwrap();
        a.add_peer(NodeId(1), r2.local_addr());
        b.add_peer(NodeId(0), r1.local_addr());

        // The higher-id peer sends first: its frames must queue until the
        // lower-id side's dial attaches, then flow back over that socket.
        b.with(|_, ctx| ctx.send(NodeId(0), WireBlob { size: 8, tag: 0 }));
        wait_until("cross-reactor ping-pong", || {
            a.with(|e, _| e.seen) + b.with(|e, _| e.seen) >= 4
        });
        let sa = a.stats();
        assert!(sa.frames_sent >= 2 && sa.frames_received >= 2, "{sa:?}");
        a.stop();
        b.stop();
    }

    #[test]
    fn duplicate_spawn_id_is_rejected() {
        let r = reactor();
        let _a = r.spawn_peer(NodeId(0), Echo::default()).unwrap();
        let err = r
            .spawn_peer(NodeId(0), Echo::default())
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
    }

    #[test]
    fn fault_plan_duplicates_and_delays_on_reactor() {
        let plan = FaultPlan::new(7)
            .duplicate(SimTime::ZERO, SimTime::from_secs(3600), 1.0)
            .delay(
                SimTime::ZERO,
                SimTime::from_secs(3600),
                SimDuration::from_millis(30),
                SimDuration::ZERO,
            );
        let r = reactor();
        let b = r.spawn_peer(NodeId(1), Echo::default()).unwrap();
        let a = r
            .spawn_peer_with_faults(NodeId(0), Echo::default(), &plan)
            .unwrap();
        a.add_peer(NodeId(1), r.local_addr());
        let sent_at = Instant::now();
        a.with(|_, ctx| ctx.send(NodeId(1), WireBlob { size: 8, tag: 3 }));

        wait_until("duplicate copy", || b.with(|e, _| e.seen) >= 2);
        assert!(
            sent_at.elapsed() >= Duration::from_millis(30),
            "delay window did not hold the frames back"
        );
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(b.with(|e, _| e.seen), 2, "expected exactly two copies");
    }

    #[test]
    fn fault_plan_loss_counts_dropped_sends() {
        let plan = FaultPlan::new(3).loss(SimTime::ZERO, SimTime::from_secs(3600), 1.0);
        let r = reactor();
        let b = r.spawn_peer(NodeId(1), Echo::default()).unwrap();
        let a = r
            .spawn_peer_with_faults(NodeId(0), Echo::default(), &plan)
            .unwrap();
        a.add_peer(NodeId(1), r.local_addr());
        for tag in 0..5u64 {
            a.with(move |_, ctx| {
                ctx.send(
                    NodeId(1),
                    WireBlob {
                        size: 8,
                        tag: 3 + tag,
                    },
                )
            });
        }
        wait_until("drops counted", || a.stats().sends_dropped >= 5);
        assert_eq!(a.stats().frames_sent, 0, "lossy frames reached the wire");
        assert_eq!(b.with(|e, _| e.seen), 0);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        struct T {
            fired: bool,
        }
        impl Actor<WireBlob> for T {
            fn on_start(&mut self, ctx: &mut dyn Transport<WireBlob>) {
                let id = ctx.set_timer(SimDuration::from_millis(30), 1);
                ctx.cancel_timer(id);
            }
            fn on_message(&mut self, _: &mut dyn Transport<WireBlob>, _: NodeId, _: WireBlob) {}
            fn on_timer(&mut self, _: &mut dyn Transport<WireBlob>, _: u64) {
                self.fired = true;
            }
        }
        let r: Reactor<WireBlob, T> = Reactor::start(ReactorConfig::default()).unwrap();
        let h = r.spawn_peer(NodeId(0), T { fired: false }).unwrap();
        std::thread::sleep(Duration::from_millis(80));
        assert!(!h.stop().fired);
    }

    #[test]
    fn sever_reconnects_and_counts() {
        let r1 = reactor();
        let r2 = reactor();
        let a = r1.spawn_peer(NodeId(0), Echo::default()).unwrap();
        let b = r2.spawn_peer(NodeId(1), Echo::default()).unwrap();
        a.add_peer(NodeId(1), r2.local_addr());
        b.add_peer(NodeId(0), r1.local_addr());

        a.with(|_, ctx| ctx.send(NodeId(1), WireBlob { size: 8, tag: 3 }));
        wait_until("first delivery", || b.with(|e, _| e.seen) >= 1);

        r1.kill_connections();
        r2.kill_connections();
        a.with(|_, ctx| ctx.send(NodeId(1), WireBlob { size: 8, tag: 3 }));
        wait_until("delivery after sever", || b.with(|e, _| e.seen) >= 2);
        assert!(
            a.stats().reconnects >= 1,
            "reconnect not counted: {:?}",
            a.stats()
        );
    }

    /// An actor whose bounded stash rejects everything — the reactor must
    /// mirror its cumulative eviction count into [`NetStats`].
    #[derive(Default)]
    struct Stashy {
        evicted: u64,
    }

    impl Actor<WireBlob> for Stashy {
        fn on_message(&mut self, _ctx: &mut dyn Transport<WireBlob>, _from: NodeId, _m: WireBlob) {
            self.evicted += 1;
        }
        fn stash_evicted(&self) -> u64 {
            self.evicted
        }
    }

    #[test]
    fn actor_stash_evictions_surface_in_net_stats() {
        let r: Reactor<WireBlob, Stashy> = Reactor::start(ReactorConfig::default()).unwrap();
        let h = r.spawn_peer(NodeId(0), Stashy::default()).unwrap();
        assert_eq!(h.stats().stash_evicted, 0);
        h.with(|a, ctx| {
            for _ in 0..3 {
                a.on_message(ctx, NodeId(1), WireBlob { size: 1, tag: 0 });
            }
        });
        wait_until("stash mirror", || h.stats().stash_evicted >= 3);
        assert_eq!(h.stats().stash_evicted, 3);
        h.stop();
    }
}
