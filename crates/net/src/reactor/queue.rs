//! Bounded per-link send queue — the reactor's backpressure primitive.
//!
//! Every (local peer, remote peer) link owns one [`SendQueue`] of
//! pre-framed wire bytes. The queue enforces *two* caps — a frame-count
//! cap and a byte cap — and rejects (never blocks, never reorders) when
//! either would be exceeded, counting the rejection so a slow consumer
//! shows up in [`NetStats::sends_dropped`](crate::NetStats::sends_dropped)
//! instead of as unbounded memory. Frames stay queued until the
//! connection has written them *completely*, so a connection that dies
//! mid-frame resends from the frame boundary (the receiver discards the
//! partial tail with the dead connection's buffer).
//!
//! This module is pure sans-IO state — no sockets, no clocks — so the
//! property tests in `tests/queue_props.rs` can drive it through millions
//! of randomized enqueue/flush/disconnect interleavings, and the
//! `p2pfl-lint` purity gate holds it to that.

use std::collections::VecDeque;

/// A bounded FIFO of encoded frames awaiting one connection.
#[derive(Debug)]
pub struct SendQueue {
    frames: VecDeque<Vec<u8>>,
    bytes: usize,
    max_frames: usize,
    max_bytes: usize,
    dropped: u64,
    peak_frames: usize,
    /// Bytes of `front()` already handed to the kernel; reset when the
    /// frame completes or the connection dies.
    head_written: usize,
}

impl SendQueue {
    /// An empty queue holding at most `max_frames` frames and `max_bytes`
    /// total frame bytes (caps are floored at 1 frame / 1 byte so a queue
    /// can always make progress).
    pub fn new(max_frames: usize, max_bytes: usize) -> SendQueue {
        SendQueue {
            frames: VecDeque::new(),
            bytes: 0,
            max_frames: max_frames.max(1),
            max_bytes: max_bytes.max(1),
            dropped: 0,
            peak_frames: 0,
            head_written: 0,
        }
    }

    /// Appends `frame`, or rejects it (counting the drop) if either cap
    /// would be exceeded. An over-cap frame is only accepted into an empty
    /// queue if it alone fits the byte cap; oversized frames are rejected
    /// outright rather than wedging the link.
    pub fn push(&mut self, frame: Vec<u8>) -> bool {
        if self.frames.len() >= self.max_frames
            || self.bytes.saturating_add(frame.len()) > self.max_bytes
        {
            self.dropped = self.dropped.saturating_add(1);
            return false;
        }
        self.bytes = self.bytes.saturating_add(frame.len());
        self.frames.push_back(frame);
        self.peak_frames = self.peak_frames.max(self.frames.len());
        true
    }

    /// The frames to offer the next vectored write: the unwritten tail of
    /// the head frame, then up to `max - 1` complete successors.
    pub fn batch(&self, max: usize) -> impl Iterator<Item = &[u8]> + '_ {
        let head_written = self.head_written;
        self.frames
            .iter()
            .take(max)
            .enumerate()
            .filter_map(move |(i, f)| {
                if i == 0 {
                    f.get(head_written..)
                } else {
                    Some(f.as_slice())
                }
            })
    }

    /// Records that the connection accepted `n` more bytes of the batch,
    /// retiring every completely-written frame. Returns `(frames, bytes)`
    /// retired — the sender's `frames_sent` / `bytes_sent` deltas (bytes
    /// count whole retired frames, so a frame is never double-counted if
    /// a partial write is voided and rewritten after a reconnect).
    pub fn advance(&mut self, mut n: usize) -> (usize, usize) {
        let mut retired = 0;
        let mut retired_bytes = 0;
        while n > 0 {
            let Some(front) = self.frames.front() else {
                break;
            };
            let remaining = front.len().saturating_sub(self.head_written);
            if n >= remaining {
                n -= remaining;
                self.bytes = self.bytes.saturating_sub(front.len());
                retired_bytes += front.len();
                self.frames.pop_front();
                self.head_written = 0;
                retired += 1;
            } else {
                self.head_written = self.head_written.saturating_add(n);
                n = 0;
            }
        }
        (retired, retired_bytes)
    }

    /// The connection died: any partial progress on the head frame is
    /// void (the receiver discarded the partial tail), so it will be
    /// rewritten from the start on the next connection.
    pub fn reset_progress(&mut self) {
        self.head_written = 0;
    }

    /// Queued frames (including a partially-written head).
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total bytes of queued frames (not discounting partial progress).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Frames rejected because a cap would have been exceeded.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// High-water mark of the queue length, in frames.
    pub fn peak(&self) -> usize {
        self.peak_frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_reject_and_count() {
        let mut q = SendQueue::new(2, 100);
        assert!(q.push(vec![1; 10]));
        assert!(q.push(vec![2; 10]));
        assert!(!q.push(vec![3; 10]), "frame cap");
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.len(), 2);

        let mut q = SendQueue::new(10, 15);
        assert!(q.push(vec![1; 10]));
        assert!(!q.push(vec![2; 10]), "byte cap");
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.bytes(), 10);
    }

    #[test]
    fn advance_retires_whole_frames_and_tracks_partials() {
        let mut q = SendQueue::new(8, 1 << 20);
        q.push(vec![1; 4]);
        q.push(vec![2; 6]);
        // Partial head: 3 of 4 bytes written.
        assert_eq!(q.advance(3), (0, 0));
        let batch: Vec<&[u8]> = q.batch(4).collect();
        assert_eq!(batch[0], &[1u8; 1][..], "unwritten tail of head");
        assert_eq!(batch[1], &[2u8; 6][..]);
        // Finish head + 2 bytes of next.
        assert_eq!(q.advance(3), (1, 4));
        assert_eq!(q.len(), 1);
        assert_eq!(q.advance(4), (1, 6));
        assert!(q.is_empty());
        assert_eq!(q.bytes(), 0);
    }

    #[test]
    fn reset_progress_rewinds_to_frame_boundary() {
        let mut q = SendQueue::new(8, 1 << 20);
        q.push(vec![7; 8]);
        assert_eq!(q.advance(5), (0, 0));
        q.reset_progress();
        let batch: Vec<&[u8]> = q.batch(1).collect();
        assert_eq!(batch[0].len(), 8, "full frame offered again");
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut q = SendQueue::new(8, 1 << 20);
        q.push(vec![0; 1]);
        q.push(vec![0; 1]);
        q.push(vec![0; 1]);
        q.advance(3);
        assert!(q.is_empty());
        assert_eq!(q.peak(), 3);
    }
}
