//! The reactor's thin OS shim: epoll readiness polling and non-blocking
//! TCP connect, hand-rolled over `extern "C"` declarations against the
//! libc `std` already links.
//!
//! This is the *only* module in the crate allowed to use `unsafe` (the
//! crate root is `deny(unsafe_code)`; everything else stays safe). The
//! surface is deliberately tiny and fully wrapped: [`Poller`] owns the
//! epoll instance, [`Events`] owns the readiness buffer, and
//! [`connect_nonblocking`] / [`take_socket_error`] cover the two socket
//! operations `std` has no portable API for. On non-Linux targets every
//! entry point returns [`io::ErrorKind::Unsupported`] so the crate still
//! compiles (the reactor is a Linux deployment vehicle; CI and the
//! benches run on Linux).

#![allow(unsafe_code)]

/// Readiness of one registered file descriptor, decoded from the raw
/// epoll event mask.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Readiness {
    /// The token supplied at registration.
    pub(crate) token: u64,
    /// Readable (or a peer hangup, which reads as EOF).
    pub(crate) readable: bool,
    /// Writable.
    pub(crate) writable: bool,
    /// Error or hangup: the fd should be drained and closed.
    pub(crate) error: bool,
}

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    /// Wake on readable.
    pub(crate) readable: bool,
    /// Wake on writable.
    pub(crate) writable: bool,
}

impl Interest {
    pub(crate) const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub(crate) const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub(crate) const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

#[cfg(target_os = "linux")]
pub(crate) use imp::{connect_nonblocking, listen_with_backlog, take_socket_error, Events, Poller};

#[cfg(target_os = "linux")]
mod imp {
    use super::{Interest, Readiness};
    use std::io;
    use std::net::{SocketAddr, TcpListener, TcpStream};
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::time::Duration;

    // x86_64 is the one Linux ABI where epoll_event is packed; other
    // architectures use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;

    const AF_INET: i32 = 2;
    const AF_INET6: i32 = 10;
    const SOCK_STREAM: i32 = 1;
    const SOCK_NONBLOCK: i32 = 0x800;
    const SOCK_CLOEXEC: i32 = 0x80000;
    const SOL_SOCKET: i32 = 1;
    const SO_ERROR: i32 = 4;
    const EINPROGRESS: i32 = 115;

    #[repr(C)]
    struct SockAddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    #[repr(C)]
    struct SockAddrIn6 {
        sin6_family: u16,
        sin6_port: u16,
        sin6_flowinfo: u32,
        sin6_addr: [u8; 16],
        sin6_scope_id: u32,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn connect(fd: i32, addr: *const u8, len: u32) -> i32;
        fn bind(fd: i32, addr: *const u8, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn getsockopt(fd: i32, level: i32, name: i32, value: *mut u8, len: *mut u32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn interest_mask(interest: Interest) -> u32 {
        let mut mask = EPOLLRDHUP;
        if interest.readable {
            mask |= EPOLLIN;
        }
        if interest.writable {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// Buffer of readiness events filled by [`Poller::wait`].
    pub(crate) struct Events {
        buf: Vec<EpollEvent>,
        len: usize,
    }

    impl Events {
        pub(crate) fn with_capacity(cap: usize) -> Events {
            Events {
                buf: vec![EpollEvent { events: 0, data: 0 }; cap.max(1)],
                len: 0,
            }
        }

        pub(crate) fn iter(&self) -> impl Iterator<Item = Readiness> + '_ {
            self.buf.iter().take(self.len).map(|e| {
                // Copy out of the (potentially packed) struct before use.
                let events = e.events;
                let data = e.data;
                Readiness {
                    token: data,
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    error: events & (EPOLLERR | EPOLLHUP) != 0,
                }
            })
        }
    }

    /// An owned epoll instance.
    pub(crate) struct Poller {
        epfd: OwnedFd,
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 takes no pointers; a valid fd (or -1)
            // comes back and is immediately wrapped in OwnedFd.
            let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller {
                epfd: unsafe { OwnedFd::from_raw_fd(fd) },
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest_mask(interest),
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            cvt(unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) })?;
            Ok(())
        }

        /// Registers `fd` with level-triggered `interest`.
        pub(crate) fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Changes the interest set of an already-registered fd.
        pub(crate) fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Deregisters `fd`. Harmless if the fd was never registered.
        pub(crate) fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: pre-2.6.9 kernels require a non-null event pointer
            // for DEL; passing one is valid on every kernel.
            cvt(unsafe { epoll_ctl(self.epfd.as_raw_fd(), EPOLL_CTL_DEL, fd, &mut ev) })?;
            Ok(())
        }

        /// Blocks until at least one fd is ready or `timeout` elapses.
        pub(crate) fn wait(
            &self,
            events: &mut Events,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let timeout_ms: i32 = match timeout {
                // Round up so a 0.2ms timeout does not busy-spin at 0.
                Some(t) => i32::try_from(t.as_millis().min(i32::MAX as u128)).unwrap_or(i32::MAX),
                None => -1,
            };
            let cap = i32::try_from(events.buf.len()).unwrap_or(i32::MAX);
            // SAFETY: `buf` is a live, writable allocation of `cap`
            // epoll_event slots; the kernel writes at most `cap` entries.
            let n = loop {
                match cvt(unsafe {
                    epoll_wait(
                        self.epfd.as_raw_fd(),
                        events.buf.as_mut_ptr(),
                        cap,
                        timeout_ms,
                    )
                }) {
                    Ok(n) => break n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            events.len = usize::try_from(n).unwrap_or(0);
            Ok(())
        }
    }

    /// Runs `f` with a pointer/length pair for the C sockaddr form of
    /// `addr` (the sockaddr lives across the call only).
    fn with_sockaddr(addr: &SocketAddr, f: impl FnOnce(*const u8, u32) -> i32) -> i32 {
        match addr {
            SocketAddr::V4(v4) => {
                let sa = SockAddrIn {
                    sin_family: AF_INET as u16,
                    sin_port: v4.port().to_be(),
                    sin_addr: u32::from_ne_bytes(v4.ip().octets()),
                    sin_zero: [0; 8],
                };
                f(
                    (&sa as *const SockAddrIn).cast(),
                    std::mem::size_of::<SockAddrIn>() as u32,
                )
            }
            SocketAddr::V6(v6) => {
                let sa = SockAddrIn6 {
                    sin6_family: AF_INET6 as u16,
                    sin6_port: v6.port().to_be(),
                    sin6_flowinfo: v6.flowinfo(),
                    sin6_addr: v6.ip().octets(),
                    sin6_scope_id: v6.scope_id(),
                };
                f(
                    (&sa as *const SockAddrIn6).cast(),
                    std::mem::size_of::<SockAddrIn6>() as u32,
                )
            }
        }
    }

    fn socket_for(addr: &SocketAddr) -> io::Result<OwnedFd> {
        let domain = match addr {
            SocketAddr::V4(_) => AF_INET,
            SocketAddr::V6(_) => AF_INET6,
        };
        // SAFETY: socket takes no pointers; the fd is wrapped immediately.
        let fd = cvt(unsafe { socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) })?;
        // SAFETY: `fd` is a freshly created, owned descriptor.
        Ok(unsafe { OwnedFd::from_raw_fd(fd) })
    }

    /// Starts a non-blocking TCP connect to `addr`. The returned stream is
    /// in progress: register it for writability and check
    /// [`take_socket_error`] when it reports writable.
    pub(crate) fn connect_nonblocking(addr: &SocketAddr) -> io::Result<TcpStream> {
        let owned = socket_for(addr)?;
        // SAFETY: the sockaddr is properly initialized, outlives the call,
        // and the length matches its size.
        let ret = with_sockaddr(addr, |p, l| unsafe { connect(owned.as_raw_fd(), p, l) });
        if ret < 0 {
            let err = io::Error::last_os_error();
            if err.raw_os_error() != Some(EINPROGRESS) {
                return Err(err);
            }
        }
        Ok(TcpStream::from(owned))
    }

    /// Binds a non-blocking TCP listener on `addr` with an explicit
    /// accept-queue `backlog` (the kernel caps it at
    /// `net.core.somaxconn`). `std`'s `TcpListener::bind` hardcodes 128,
    /// which a reactor-wide dial burst — hundreds of peers connecting to
    /// the one shared listener at once — overflows, and every overflowed
    /// SYN costs its dialer a ~1 s kernel retransmit.
    pub(crate) fn listen_with_backlog(addr: &SocketAddr, backlog: i32) -> io::Result<TcpListener> {
        let owned = socket_for(addr)?;
        // SAFETY: as in `connect_nonblocking`; bind/listen take no other
        // pointers and the fd is owned.
        let ret = with_sockaddr(addr, |p, l| unsafe { bind(owned.as_raw_fd(), p, l) });
        cvt(ret)?;
        cvt(unsafe { listen(owned.as_raw_fd(), backlog) })?;
        Ok(TcpListener::from(owned))
    }

    /// Reads and clears the pending socket error (`SO_ERROR`): the result
    /// of a non-blocking connect once the socket reports writable.
    pub(crate) fn take_socket_error(stream: &TcpStream) -> io::Result<()> {
        let mut err: i32 = 0;
        let mut len: u32 = std::mem::size_of::<i32>() as u32;
        // SAFETY: `err`/`len` are live, writable, and correctly sized for
        // the SO_ERROR option.
        cvt(unsafe {
            getsockopt(
                stream.as_raw_fd(),
                SOL_SOCKET,
                SO_ERROR,
                (&mut err as *mut i32).cast(),
                &mut len,
            )
        })?;
        if err == 0 {
            Ok(())
        } else {
            Err(io::Error::from_raw_os_error(err))
        }
    }
}

#[cfg(not(target_os = "linux"))]
pub(crate) use stub::{
    connect_nonblocking, listen_with_backlog, take_socket_error, Events, Poller,
};

#[cfg(not(target_os = "linux"))]
mod stub {
    use super::{Interest, Readiness};
    use std::io;
    use std::net::{SocketAddr, TcpStream};
    use std::os::fd::RawFd;
    use std::time::Duration;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "the p2pfl reactor requires Linux epoll",
        ))
    }

    pub(crate) struct Events;

    impl Events {
        pub(crate) fn with_capacity(_cap: usize) -> Events {
            Events
        }

        pub(crate) fn iter(&self) -> impl Iterator<Item = Readiness> + '_ {
            std::iter::empty()
        }
    }

    pub(crate) struct Poller;

    impl Poller {
        pub(crate) fn new() -> io::Result<Poller> {
            unsupported()
        }

        pub(crate) fn add(&self, _fd: RawFd, _token: u64, _i: Interest) -> io::Result<()> {
            unsupported()
        }

        pub(crate) fn modify(&self, _fd: RawFd, _token: u64, _i: Interest) -> io::Result<()> {
            unsupported()
        }

        pub(crate) fn delete(&self, _fd: RawFd) -> io::Result<()> {
            unsupported()
        }

        pub(crate) fn wait(&self, _ev: &mut Events, _t: Option<Duration>) -> io::Result<()> {
            unsupported()
        }
    }

    pub(crate) fn connect_nonblocking(_addr: &SocketAddr) -> io::Result<TcpStream> {
        unsupported()
    }

    pub(crate) fn listen_with_backlog(
        _addr: &SocketAddr,
        _backlog: i32,
    ) -> io::Result<std::net::TcpListener> {
        unsupported()
    }

    pub(crate) fn take_socket_error(_stream: &TcpStream) -> io::Result<()> {
        unsupported()
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    #[test]
    fn poll_detects_readable_after_write() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Events::with_capacity(8);
        // Nothing written yet: a short wait returns no events.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(events.iter().count(), 0);

        client.write_all(b"hi").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev: Vec<Readiness> = events.iter().collect();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].token, 7);
        assert!(ev[0].readable);

        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 2);
        poller.delete(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn nonblocking_connect_completes_on_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = connect_nonblocking(&addr).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(stream.as_raw_fd(), 1, Interest::WRITE).unwrap();
        let mut events = Events::with_capacity(4);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev: Vec<Readiness> = events.iter().collect();
        assert!(ev.iter().any(|e| e.token == 1 && e.writable));
        take_socket_error(&stream).unwrap();
        let _ = listener.accept().unwrap();
    }

    #[test]
    fn deep_backlog_listener_accepts_and_reports_addr() {
        let addr = "127.0.0.1:0".parse().unwrap();
        let listener = listen_with_backlog(&addr, 1024).unwrap();
        let bound = listener.local_addr().unwrap();
        assert_ne!(bound.port(), 0, "ephemeral port must be assigned");
        let _client = TcpStream::connect(bound).unwrap();
        // Non-blocking listener: the connection is in the accept queue.
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 3, Interest::READ).unwrap();
        let mut events = Events::with_capacity(4);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.readable));
        let (_conn, peer) = listener.accept().unwrap();
        assert_eq!(peer.ip(), bound.ip());
    }

    #[test]
    fn nonblocking_connect_to_dead_port_reports_error() {
        // Reserve a port, then close it so nothing is listening.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);

        let stream = connect_nonblocking(&addr).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(stream.as_raw_fd(), 2, Interest::WRITE).unwrap();
        let mut events = Events::with_capacity(4);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().count() >= 1);
        assert!(take_socket_error(&stream).is_err());
    }
}
