//! One multiplexed reactor connection: state machine and batched IO.
//!
//! A [`Link`] is a non-blocking `TcpStream` registered with the reactor's
//! poller. Dialed links start `Connecting` (completion is signalled by
//! writability plus a clean `SO_ERROR`); accepted links start `Open` and
//! must present a v2 hello before any payload.
//!
//! The v2 hello extends the hub's v1 (magic, version, sender) with the
//! *destination* peer, because one reactor listener fronts every peer it
//! hosts: `p2pf · 0x02 · src NodeId · dst NodeId` (13 bytes, framed like
//! any other frame). Replies flow back over the same socket, so one TCP
//! connection carries a peer pair's traffic in both directions — at 1000
//! peers that halves the fd bill versus the hub's directional model.
//!
//! Writes are vectored: [`flush_link`] offers the kernel up to
//! [`WRITE_BATCH`] queued frames (plus any unsent hello preamble) in one
//! `writev`, retiring only completely-written frames so a dying
//! connection never splits a frame across reconnects.

use super::queue::SendQueue;
use super::sys;
use crate::codec::FrameBuffer;
use crate::registry::StatsCells;
use crate::sync::atomic::Ordering;
use p2pfl_simnet::NodeId;
use std::io::{self, IoSlice, Read, Write};
use std::net::TcpStream;

/// Hello protocol version spoken between reactors (the hub speaks v1).
const HELLO_V2: u8 = 2;
const HELLO_MAGIC: &[u8; 4] = b"p2pf";

/// Max frames offered to one vectored write.
pub(crate) const WRITE_BATCH: usize = 16;

/// Builds the framed v2 hello announcing `src` dialing `dst`.
pub(crate) fn hello_frame_v2(src: NodeId, dst: NodeId) -> Vec<u8> {
    let mut framed = Vec::with_capacity(4 + 13);
    framed.extend_from_slice(&13u32.to_le_bytes());
    framed.extend_from_slice(HELLO_MAGIC);
    framed.push(HELLO_V2);
    framed.extend_from_slice(&src.0.to_le_bytes());
    framed.extend_from_slice(&dst.0.to_le_bytes());
    framed
}

/// Parses a v2 hello payload into `(src, dst)`.
pub(crate) fn parse_hello_v2(frame: &[u8]) -> Option<(NodeId, NodeId)> {
    if frame.len() != 13 {
        return None;
    }
    let (magic, rest) = frame.split_first_chunk::<4>()?;
    let (version, rest) = rest.split_first()?;
    if magic != HELLO_MAGIC || *version != HELLO_V2 {
        return None;
    }
    let (src, dst) = rest.split_first_chunk::<4>()?;
    let dst = <[u8; 4]>::try_from(dst).ok()?;
    Some((
        NodeId(u32::from_le_bytes(*src)),
        NodeId(u32::from_le_bytes(dst)),
    ))
}

/// Connection lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LinkState {
    /// Non-blocking connect in flight; waiting for writability.
    Connecting,
    /// Established; frames flow.
    Open,
}

/// One registered connection.
pub(crate) struct Link {
    pub(crate) stream: TcpStream,
    pub(crate) state: LinkState,
    /// The hosted peer that owns this link (dialer side: set at dial;
    /// accepted side: learned from the hello's `dst`).
    pub(crate) local: Option<NodeId>,
    /// The peer on the other end (dialer side: the dial target; accepted
    /// side: the hello's `src`).
    pub(crate) remote: Option<NodeId>,
    /// Whether this end initiated the connection (and thus owns redial).
    pub(crate) dialed: bool,
    /// Accepted links must present a hello before payload frames.
    pub(crate) got_hello: bool,
    pub(crate) rx: FrameBuffer,
    /// Unsent tail of the dialer's hello: (bytes, offset).
    pub(crate) preamble: Option<(Vec<u8>, usize)>,
    /// Whether the poller registration currently includes writability.
    pub(crate) want_write: bool,
}

impl Link {
    pub(crate) fn dialed(stream: TcpStream, local: NodeId, remote: NodeId) -> Link {
        Link {
            stream,
            state: LinkState::Connecting,
            local: Some(local),
            remote: Some(remote),
            dialed: true,
            got_hello: true, // dialer needs no hello from the acceptor
            rx: FrameBuffer::new(),
            preamble: Some((hello_frame_v2(local, remote), 0)),
            want_write: true,
        }
    }

    pub(crate) fn accepted(stream: TcpStream) -> Link {
        Link {
            stream,
            state: LinkState::Open,
            local: None,
            remote: None,
            dialed: false,
            got_hello: false,
            rx: FrameBuffer::new(),
            preamble: None,
            want_write: false,
        }
    }
}

/// Outcome of one flush attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FlushOutcome {
    /// Everything queued is on the wire.
    Drained,
    /// The kernel buffer filled; writability must be awaited.
    Blocked,
    /// The connection is unusable.
    Dead,
}

/// Writes as much of `queue` (preceded by any hello preamble) as the
/// kernel will take, in vectored batches. Retired frames are counted into
/// `stats` (`frames_sent`, `bytes_sent`, and `frames_coalesced` for
/// frames that shared a `writev` with another frame).
pub(crate) fn flush_link(
    link: &mut Link,
    queue: &mut SendQueue,
    stats: &StatsCells,
) -> FlushOutcome {
    loop {
        let mut bufs: Vec<IoSlice<'_>> = Vec::with_capacity(WRITE_BATCH + 1);
        let preamble_len = if let Some((bytes, off)) = link.preamble.as_ref() {
            if let Some(tail) = bytes.get(*off..) {
                if !tail.is_empty() {
                    bufs.push(IoSlice::new(tail));
                }
                tail.len()
            } else {
                0
            }
        } else {
            0
        };
        for frame in queue.batch(WRITE_BATCH) {
            bufs.push(IoSlice::new(frame));
        }
        if bufs.is_empty() {
            return FlushOutcome::Drained;
        }
        let queued_frames = bufs.len().saturating_sub(usize::from(preamble_len > 0));
        match link.stream.write_vectored(&bufs) {
            Ok(0) => return FlushOutcome::Dead,
            Ok(n) => {
                // Preamble bytes come first; the remainder advances the
                // frame queue.
                let to_preamble = n.min(preamble_len);
                if to_preamble > 0 {
                    if let Some((bytes, off)) = link.preamble.as_mut() {
                        *off = off.saturating_add(to_preamble);
                        if *off >= bytes.len() {
                            link.preamble = None;
                        }
                    }
                }
                let (retired, retired_bytes) = queue.advance(n.saturating_sub(to_preamble));
                if retired > 0 {
                    stats
                        .frames_sent
                        .fetch_add(retired as u64, Ordering::Relaxed);
                    stats
                        .bytes_sent
                        .fetch_add(retired_bytes as u64, Ordering::Relaxed);
                    if queued_frames > 1 {
                        stats
                            .frames_coalesced
                            .fetch_add(retired as u64, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return FlushOutcome::Blocked,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return FlushOutcome::Dead,
        }
    }
}

/// Result of draining a readable connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadStatus {
    /// Connection still open (kernel buffer drained).
    Open,
    /// Clean EOF or fatal read error.
    Closed,
    /// Unframeable input (oversize/corrupt length prefix): the stream
    /// cannot be resynchronized.
    Corrupt,
}

/// Reads everything currently available, appending complete frames to
/// `out`. `scratch` is the reactor's shared read buffer.
pub(crate) fn read_frames(
    link: &mut Link,
    scratch: &mut [u8],
    out: &mut Vec<Vec<u8>>,
) -> ReadStatus {
    loop {
        loop {
            match link.rx.next_frame() {
                Ok(Some(frame)) => out.push(frame),
                Ok(None) => break,
                Err(_) => return ReadStatus::Corrupt,
            }
        }
        match link.stream.read(scratch) {
            Ok(0) => return ReadStatus::Closed,
            // `n <= scratch.len()` per the `Read` contract; `get` keeps a
            // misbehaving implementation from panicking the reactor.
            Ok(n) => link.rx.extend(scratch.get(..n).unwrap_or(scratch)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadStatus::Open,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadStatus::Closed,
        }
    }
}

/// Finishes a non-blocking connect once the socket reports writable:
/// checks `SO_ERROR` and promotes the link to `Open`.
pub(crate) fn complete_connect(link: &mut Link) -> io::Result<()> {
    sys::take_socket_error(&link.stream)?;
    let _ = link.stream.set_nodelay(true);
    link.state = LinkState::Open;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_v2_round_trips() {
        let framed = hello_frame_v2(NodeId(7), NodeId(1042));
        // Strip the length prefix to get the payload a FrameBuffer yields.
        let mut fb = FrameBuffer::new();
        fb.extend(&framed);
        let payload = fb.next_frame().unwrap().unwrap();
        assert_eq!(parse_hello_v2(&payload), Some((NodeId(7), NodeId(1042))));
    }

    #[test]
    fn hello_v2_rejects_v1_and_garbage() {
        // A v1 hello (9 bytes) must not parse as v2.
        let mut v1 = Vec::new();
        v1.extend_from_slice(b"p2pf");
        v1.push(1);
        v1.extend_from_slice(&7u32.to_le_bytes());
        assert_eq!(parse_hello_v2(&v1), None);
        assert_eq!(parse_hello_v2(b"xxxxyyyyzzzzz"), None);
        assert_eq!(parse_hello_v2(&[]), None);
    }
}
