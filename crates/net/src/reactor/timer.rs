//! Hashed timing wheel driving every deadline in the reactor.
//!
//! One wheel serves all hosted peers: actor round deadlines
//! ([`Transport::set_timer`](p2pfl_simnet::Transport::set_timer)), redial
//! backoffs, and fault-plan delayed-frame releases. A wheel keeps insert
//! and fire O(1) amortized regardless of how many peers share it — the
//! binary heap the threaded runtime uses per peer would serialize 1000
//! peers' timers through one log-n heap here.
//!
//! Deadlines are nanoseconds on the hosting reactor's monotonic clock
//! (zeroed at reactor start). Entries hash into `SLOTS` slots of
//! `GRANULARITY_NS` each; an entry further than one rotation out simply
//! stays in its slot until the cursor passes it with the right tick, so
//! there is no cascading. Firing order within a tick is insertion order,
//! matching the threaded runtime's (deadline, id) heap tie-break.
//!
//! Pure sans-IO state (no clocks of its own — the caller supplies `now`),
//! held to that by the `p2pfl-lint` purity gate.

/// Slot count; with 1ms granularity one rotation covers ~4s, longer
/// deadlines just survive extra cursor passes.
const SLOTS: usize = 4096;

/// Tick width: 1ms. Timers fire up to one tick late, which is within the
/// jitter of wall-clock scheduling anyway.
const GRANULARITY_NS: u64 = 1_000_000;

#[derive(Debug)]
struct Entry<T> {
    tick: u64,
    seq: u64,
    value: T,
}

/// A hashed timing wheel of `T`-valued deadlines.
#[derive(Debug)]
pub struct TimerWheel<T> {
    slots: Vec<Vec<Entry<T>>>,
    /// The last tick the cursor fully processed.
    cursor_tick: u64,
    len: usize,
    seq: u64,
    /// Cached earliest pending tick (exact, recomputed lazily).
    soonest: Option<u64>,
}

fn tick_of(deadline_ns: u64) -> u64 {
    // Ceiling: a deadline lands in the first tick boundary at/after it,
    // so a timer never fires early.
    deadline_ns.div_ceil(GRANULARITY_NS)
}

impl<T> TimerWheel<T> {
    /// An empty wheel whose cursor starts at `now_ns`.
    pub fn new(now_ns: u64) -> TimerWheel<T> {
        let mut slots = Vec::with_capacity(SLOTS);
        for _ in 0..SLOTS {
            slots.push(Vec::new());
        }
        TimerWheel {
            slots,
            cursor_tick: now_ns / GRANULARITY_NS,
            len: 0,
            seq: 0,
            soonest: None,
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `value` for `deadline_ns`. A deadline at or before the
    /// cursor fires on the next [`TimerWheel::advance`].
    pub fn insert(&mut self, deadline_ns: u64, value: T) {
        // Clamp into the future of the cursor so a stale deadline still
        // fires (next advance) instead of landing behind the cursor and
        // waiting a whole rotation.
        let tick = tick_of(deadline_ns).max(self.cursor_tick.saturating_add(1));
        let slot = (tick % SLOTS as u64) as usize;
        self.seq = self.seq.wrapping_add(1);
        if let Some(bucket) = self.slots.get_mut(slot) {
            bucket.push(Entry {
                tick,
                seq: self.seq,
                value,
            });
            self.len += 1;
            self.soonest = Some(match self.soonest {
                Some(s) => s.min(tick),
                None => tick,
            });
        }
    }

    /// Earliest pending deadline, in nanoseconds (tick-quantized).
    pub fn next_deadline_ns(&self) -> Option<u64> {
        self.soonest.map(|t| t.saturating_mul(GRANULARITY_NS))
    }

    /// Moves the cursor to `now_ns`, appending every fired value to
    /// `out` in (tick, insertion) order.
    pub fn advance(&mut self, now_ns: u64, out: &mut Vec<T>) {
        let now_tick = now_ns / GRANULARITY_NS;
        if now_tick <= self.cursor_tick || self.len == 0 {
            self.cursor_tick = self.cursor_tick.max(now_tick);
            return;
        }
        // Only ticks with pending entries matter: hop the cursor straight
        // to the soonest pending tick instead of sweeping empty slots
        // (a reactor idle for minutes would otherwise walk thousands).
        let mut fired: Vec<Entry<T>> = Vec::new();
        while let Some(soonest) = self.soonest {
            if soonest > now_tick {
                break;
            }
            let slot = (soonest % SLOTS as u64) as usize;
            if let Some(bucket) = self.slots.get_mut(slot) {
                let mut kept = Vec::new();
                for e in bucket.drain(..) {
                    if e.tick <= now_tick {
                        fired.push(e);
                    } else {
                        kept.push(e);
                    }
                }
                *bucket = kept;
            }
            self.cursor_tick = soonest;
            self.recompute_soonest(soonest);
        }
        self.cursor_tick = self.cursor_tick.max(now_tick);
        self.len = self.len.saturating_sub(fired.len());
        fired.sort_by_key(|e| (e.tick, e.seq));
        out.extend(fired.into_iter().map(|e| e.value));
    }

    /// Recomputes the cached soonest tick after draining `after_tick`.
    /// O(len) in the worst case, but runs only when entries actually
    /// fired — an idle wheel costs nothing.
    fn recompute_soonest(&mut self, after_tick: u64) {
        let mut soonest: Option<u64> = None;
        for bucket in &self.slots {
            for e in bucket {
                if e.tick > after_tick {
                    soonest = Some(match soonest {
                        Some(s) => s.min(e.tick),
                        None => e.tick,
                    });
                }
            }
        }
        self.soonest = soonest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn fires_in_deadline_order_never_early() {
        let mut w = TimerWheel::new(0);
        w.insert(5 * MS, "b");
        w.insert(2 * MS, "a");
        w.insert(9 * MS, "c");
        let mut out = Vec::new();
        w.advance(MS, &mut out);
        assert!(out.is_empty(), "nothing due yet");
        w.advance(6 * MS, &mut out);
        assert_eq!(out, vec!["a", "b"]);
        out.clear();
        w.advance(20 * MS, &mut out);
        assert_eq!(out, vec!["c"]);
        assert!(w.is_empty());
    }

    #[test]
    fn same_tick_preserves_insertion_order() {
        let mut w = TimerWheel::new(0);
        w.insert(3 * MS, 1);
        w.insert(3 * MS, 2);
        w.insert(3 * MS, 3);
        let mut out = Vec::new();
        w.advance(10 * MS, &mut out);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn beyond_one_rotation_waits_for_its_tick() {
        let mut w = TimerWheel::new(0);
        let near = 2 * MS;
        // Same slot as `near` (one full rotation later), plus slot 0.
        let far = near + (SLOTS as u64) * MS;
        w.insert(far, "far");
        w.insert(near, "near");
        let mut out = Vec::new();
        w.advance(near + MS, &mut out);
        assert_eq!(
            out,
            vec!["near"],
            "far entry must not fire a rotation early"
        );
        out.clear();
        assert_eq!(w.next_deadline_ns(), Some(far));
        w.advance(far + MS, &mut out);
        assert_eq!(out, vec!["far"]);
    }

    #[test]
    fn stale_deadline_fires_on_next_advance() {
        let mut w = TimerWheel::new(100 * MS);
        w.insert(3 * MS, "late"); // already in the past
        let mut out = Vec::new();
        w.advance(101 * MS, &mut out);
        assert_eq!(out, vec!["late"]);
    }

    #[test]
    fn next_deadline_tracks_insert_and_fire() {
        let mut w: TimerWheel<u32> = TimerWheel::new(0);
        assert_eq!(w.next_deadline_ns(), None);
        w.insert(8 * MS, 1);
        w.insert(4 * MS, 2);
        assert_eq!(w.next_deadline_ns(), Some(4 * MS));
        let mut out = Vec::new();
        w.advance(5 * MS, &mut out);
        assert_eq!(out, vec![2]);
        assert_eq!(w.next_deadline_ns(), Some(8 * MS));
    }
}
