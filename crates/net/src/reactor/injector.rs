//! Cross-thread task injection into the reactor loop.
//!
//! [`PeerHandle`](crate::reactor::PeerHandle)s live on arbitrary user
//! threads; the reactor runs everything on one loop thread. The
//! [`Injector`] is the single shared-mutable-state handoff between them:
//! handles push [`Task`](crate::reactor::Task)s, the loop drains them at
//! the top of each iteration. (Waking the loop is the caller's job — the
//! handle writes a byte into the reactor's wake pipe after a successful
//! push; the injector itself is IO-free.)
//!
//! Contract, model-checked by `tests/loom_reactor.rs` under
//! `RUSTFLAGS="--cfg loom"`:
//!
//! * Every push that returns `Ok` is observed *exactly once* — by a
//!   `drain` or by the terminal `close`.
//! * After `close` wins the race, every subsequent push returns `Err`
//!   (the reactor is gone; the caller must not assume delivery).
//!
//! Built exclusively on [`crate::sync`] primitives so the loom build
//! swaps the real mutex for the model checker's.

use crate::sync::Mutex;
use std::collections::VecDeque;
use std::sync::PoisonError;

struct Inner<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A closable MPSC task queue: many handle threads push, the one reactor
/// thread drains.
pub struct Injector<T> {
    inner: Mutex<Inner<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Injector<T> {
        Injector::new()
    }
}

impl<T> Injector<T> {
    /// An empty, open injector.
    pub fn new() -> Injector<T> {
        Injector {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                closed: false,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // A poisoned queue is still structurally valid; shutdown must be
        // able to drain it even if a pusher panicked.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues `task`, or returns it to the caller if the injector has
    /// been closed (the reactor will never look again).
    pub fn push(&self, task: T) -> Result<(), T> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(task);
        }
        inner.queue.push_back(task);
        Ok(())
    }

    /// Moves every pending task into `out`, preserving push order.
    pub fn drain(&self, out: &mut Vec<T>) {
        let mut inner = self.lock();
        out.extend(inner.queue.drain(..));
    }

    /// Closes the injector and returns whatever was still pending. After
    /// this, every push fails. Idempotent (later calls return empty).
    pub fn close(&self) -> Vec<T> {
        let mut inner = self.lock();
        inner.closed = true;
        inner.queue.drain(..).collect()
    }

    /// Whether [`Injector::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_close_semantics() {
        let inj = Injector::new();
        assert!(inj.push(1).is_ok());
        assert!(inj.push(2).is_ok());
        let mut out = Vec::new();
        inj.drain(&mut out);
        assert_eq!(out, vec![1, 2]);

        assert!(inj.push(3).is_ok());
        assert_eq!(inj.close(), vec![3], "close returns the remainder");
        assert_eq!(inj.push(4), Err(4), "push after close fails");
        assert!(inj.is_closed());
        assert!(inj.close().is_empty(), "close is idempotent");
    }

    #[test]
    fn concurrent_pushes_all_arrive_once() {
        let inj = Arc::new(Injector::new());
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let inj = inj.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        inj.push(t * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut out = Vec::new();
        inj.drain(&mut out);
        out.sort_unstable();
        let expected: Vec<u64> = (0..4u64)
            .flat_map(|t| (0..100u64).map(move |i| t * 1000 + i))
            .collect();
        assert_eq!(out, expected);
    }
}
