//! Synchronization primitives, switchable between `std` and `loom`.
//!
//! Everything in [`crate::registry`] (the hub's shared mutable state) goes
//! through these aliases. A normal build uses `std::sync`; building with
//! `RUSTFLAGS="--cfg loom"` swaps in the loom model-checking primitives so
//! `tests/loom_hub.rs` can explore interleavings over the exact code that
//! runs in production.

#[cfg(loom)]
pub(crate) use loom::sync::Mutex;

#[cfg(not(loom))]
pub(crate) use std::sync::Mutex;

pub(crate) mod atomic {
    #[cfg(loom)]
    pub(crate) use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    #[cfg(not(loom))]
    pub(crate) use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
}
