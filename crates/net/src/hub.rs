//! Threaded TCP transport: one listener, one writer thread per peer.
//!
//! A [`Hub`] owns this peer's listening socket and a registry of outgoing
//! connections. Connections are *directional*: each writer thread owns the
//! TCP connection it sends on, and every accepted connection is read-only.
//! This halves the usual connection-dedup complexity (two peers connecting
//! to each other simultaneously is simply two directed links) at the cost
//! of two sockets per bidirectional pair — irrelevant at the deployment
//! sizes of the paper (tens of peers).
//!
//! Reliability model:
//!
//! * A writer that cannot connect, or whose connection dies mid-write,
//!   retries the same frame after a capped exponential backoff
//!   ([`BACKOFF_INITIAL`] doubling up to [`BACKOFF_MAX`]) with
//!   deterministic per-writer jitter, so simultaneously severed writers
//!   de-synchronize reproducibly; frames sent meanwhile queue in its
//!   channel, so nothing is dropped or reordered sender-side.
//! * Every connection opens with a `hello` frame carrying a magic tag and
//!   the sender's [`NodeId`], so readers attribute traffic without trusting
//!   ephemeral port numbers.
//! * All sockets run with read/write timeouts so every thread notices
//!   [`Hub::shutdown`] promptly.
//!
//! [`Hub::kill_connections`] severs every live socket (test hook for the
//! reconnect path), and [`Hub::add_peer`] re-points a peer's address, which
//! is how a crashed peer rejoins from a fresh port.

use crate::codec::{write_frame, FrameBuffer};
use crate::registry::{Conn, Registry};
use crate::sync::atomic::Ordering;
use p2pfl_simnet::NodeId;
use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

pub use crate::registry::NetStats;

/// First reconnect delay.
pub const BACKOFF_INITIAL: Duration = Duration::from_millis(10);
/// Reconnect delay cap.
pub const BACKOFF_MAX: Duration = Duration::from_millis(640);
/// Outgoing connection establishment timeout.
pub const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);
/// Per-write timeout; a peer that stops draining its socket for this long
/// is treated as dead and the connection is rebuilt.
pub const WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// Socket read timeout; bounds how long a reader thread can miss shutdown.
pub const READ_TIMEOUT: Duration = Duration::from_millis(100);

const HELLO_MAGIC: &[u8; 4] = b"p2pf";
const HELLO_VERSION: u8 = 1;

/// Why [`Hub::try_send`] could not queue a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HubError {
    /// The destination was never registered via [`Hub::add_peer`].
    UnknownPeer(NodeId),
    /// The peer's writer thread is gone — the hub is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for HubError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HubError::UnknownPeer(id) => write!(f, "peer {id:?} is not registered"),
            HubError::ShuttingDown => write!(f, "hub is shutting down"),
        }
    }
}

impl std::error::Error for HubError {}

/// Acquires `m`, recovering the guard if another thread panicked while
/// holding it. The hub's mutexes protect plain data (peer table, socket
/// clones, addresses) that stays structurally valid mid-update, and
/// shutdown must still be able to join the surviving threads after one
/// dies — so poisoning is recovered, never propagated as a panic.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Something the network produced for the local peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetEvent {
    /// A payload frame arrived from `from`.
    Frame {
        /// The sender, as announced in its connection hello.
        from: NodeId,
        /// The raw frame payload (codec bytes of one message).
        payload: Vec<u8>,
    },
}

impl Conn for TcpStream {
    fn is_dead(&self) -> bool {
        !matches!(self.take_error(), Ok(None))
    }

    fn sever(&self) {
        let _ = self.shutdown(Shutdown::Both);
    }
}

struct Shared {
    id: NodeId,
    sink: Box<dyn Fn(NetEvent) + Send + Sync>,
    /// Shutdown latch, counters, and clones of every live socket (so
    /// `kill_connections` / `shutdown` can sever them from outside their
    /// owning threads). See [`crate::registry`] for the loom-checked
    /// locking protocol.
    reg: Registry<TcpStream>,
}

impl Shared {
    fn register(&self, s: &TcpStream) {
        if let Ok(clone) = s.try_clone() {
            self.reg.register(clone);
        }
    }

    fn is_shutdown(&self) -> bool {
        self.reg.is_shutdown()
    }
}

enum WriterCmd {
    Frame(Vec<u8>),
    Shutdown,
}

struct PeerSlot {
    addr: Arc<Mutex<SocketAddr>>,
    tx: Sender<WriterCmd>,
    thread: Option<JoinHandle<()>>,
}

/// The per-peer TCP endpoint: listener, reader threads, writer threads.
pub struct Hub {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    peers: Mutex<HashMap<NodeId, PeerSlot>>,
    accept: Mutex<Option<JoinHandle<()>>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Hub {
    /// Binds `bind_addr` (use port 0 for an OS-assigned port) and starts
    /// accepting connections. Every received payload frame is handed to
    /// `sink`, which must be cheap and non-blocking (typically an
    /// `mpsc::Sender` push).
    pub fn new<F>(id: NodeId, bind_addr: &str, sink: F) -> io::Result<Hub>
    where
        F: Fn(NetEvent) + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(bind_addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            id,
            sink: Box::new(sink),
            reg: Registry::new(),
        });
        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = shared.clone();
            let readers = readers.clone();
            std::thread::spawn(move || accept_loop(shared, listener, readers))
        };
        Ok(Hub {
            shared,
            local_addr,
            peers: Mutex::new(HashMap::new()),
            accept: Mutex::new(Some(accept)),
            readers,
        })
    }

    /// This hub's node id.
    pub fn node_id(&self) -> NodeId {
        self.shared.id
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Registers `peer` at `addr`, or re-points an existing peer to a new
    /// address (a crashed peer rejoining from a fresh port). The writer's
    /// next (re)connect attempt targets the new address.
    pub fn add_peer(&self, peer: NodeId, addr: SocketAddr) {
        let mut peers = lock_recover(&self.peers);
        if let Some(slot) = peers.get(&peer) {
            // The old connection (if any) is to a crashed peer, so the
            // writer's next send fails and reconnects to the new address.
            *lock_recover(&slot.addr) = addr;
            return;
        }
        let addr = Arc::new(Mutex::new(addr));
        let (tx, rx) = mpsc::channel();
        let thread = {
            let shared = self.shared.clone();
            let addr = addr.clone();
            std::thread::spawn(move || writer_loop(shared, addr, rx))
        };
        peers.insert(
            peer,
            PeerSlot {
                addr,
                tx,
                thread: Some(thread),
            },
        );
    }

    /// Queues one payload frame for `to`. Returns `false` if the peer is
    /// unknown (not registered via [`Hub::add_peer`]).
    pub fn send(&self, to: NodeId, payload: Vec<u8>) -> bool {
        self.try_send(to, payload).is_ok()
    }

    /// Queues one payload frame for `to`, reporting *why* a frame could
    /// not be queued instead of collapsing every failure to `false`.
    pub fn try_send(&self, to: NodeId, payload: Vec<u8>) -> Result<(), HubError> {
        let peers = lock_recover(&self.peers);
        match peers.get(&to) {
            Some(slot) => slot
                .tx
                .send(WriterCmd::Frame(payload))
                .map_err(|_| HubError::ShuttingDown),
            None => Err(HubError::UnknownPeer(to)),
        }
    }

    /// Severs every live TCP connection (in both directions) without
    /// touching the peer registry — the writers reconnect with backoff.
    /// Test hook for the recovery path.
    pub fn kill_connections(&self) {
        self.shared.reg.sever_all();
    }

    /// Snapshot of the transport counters.
    pub fn stats(&self) -> NetStats {
        self.shared.reg.stats().snapshot()
    }

    /// Records one send discarded above the socket layer. Called by the
    /// runtime's fault-injection layer so deliberately dropped frames show
    /// up in [`NetStats`] instead of vanishing silently.
    pub fn note_send_dropped(&self) {
        self.shared
            .reg
            .stats()
            .sends_dropped
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Mirrors the hosted actor's cumulative bounded-stash eviction count
    /// into [`NetStats::stash_evicted`]. Called by the runtime's event
    /// loop after each actor callback — a store, not an add, because the
    /// actor's counter is already cumulative.
    pub fn set_stash_evicted(&self, n: u64) {
        self.shared
            .reg
            .stats()
            .stash_evicted
            .store(n, Ordering::Relaxed);
    }

    /// Mirrors the hosted actor's cumulative commitment-check rejection
    /// count into [`NetStats::shares_rejected`]. Same store-not-add
    /// contract as [`Hub::set_stash_evicted`].
    pub fn set_shares_rejected(&self, n: u64) {
        self.shared
            .reg
            .stats()
            .shares_rejected
            .store(n, Ordering::Relaxed);
    }

    /// Graceful shutdown: stops accepting, severs connections, and joins
    /// every thread. Idempotent.
    pub fn shutdown(&self) {
        self.shared.reg.begin_shutdown();
        let mut peers = lock_recover(&self.peers);
        for slot in peers.values_mut() {
            let _ = slot.tx.send(WriterCmd::Shutdown);
            if let Some(t) = slot.thread.take() {
                let _ = t.join();
            }
        }
        drop(peers);
        if let Some(t) = lock_recover(&self.accept).take() {
            let _ = t.join();
        }
        let handles: Vec<_> = lock_recover(&self.readers).drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
    }
}

impl Drop for Hub {
    fn drop(&mut self) {
        self.shutdown();
    }
}

pub(crate) fn hello_frame(id: NodeId) -> Vec<u8> {
    let mut payload = Vec::with_capacity(9);
    payload.extend_from_slice(HELLO_MAGIC);
    payload.push(HELLO_VERSION);
    payload.extend_from_slice(&id.0.to_le_bytes());
    payload
}

pub(crate) fn parse_hello(frame: &[u8]) -> Option<NodeId> {
    if frame.len() != 9 {
        return None;
    }
    let (magic, rest) = frame.split_first_chunk::<4>()?;
    let (version, id_bytes) = rest.split_first()?;
    if magic != HELLO_MAGIC || *version != HELLO_VERSION {
        return None;
    }
    let id = <[u8; 4]>::try_from(id_bytes).ok()?;
    Some(NodeId(u32::from_le_bytes(id)))
}

fn accept_loop(
    shared: Arc<Shared>,
    listener: TcpListener,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.is_shutdown() {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.register(&stream);
                let sh = shared.clone();
                let handle = std::thread::spawn(move || reader_loop(sh, stream));
                lock_recover(&readers).push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

fn reader_loop(shared: Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut fb = FrameBuffer::new();
    let mut from: Option<NodeId> = None;
    let mut tmp = [0u8; 16 * 1024];
    while !shared.is_shutdown() {
        loop {
            match fb.next_frame() {
                Ok(Some(frame)) => match from {
                    None => match parse_hello(&frame) {
                        Some(id) => from = Some(id),
                        // Not one of ours; refuse the connection.
                        None => return,
                    },
                    Some(id) => {
                        let s = shared.reg.stats();
                        s.frames_received.fetch_add(1, Ordering::Relaxed);
                        s.bytes_received
                            .fetch_add(frame.len() as u64 + 4, Ordering::Relaxed);
                        (shared.sink)(NetEvent::Frame {
                            from: id,
                            payload: frame,
                        });
                    }
                },
                Ok(None) => break,
                // Oversize or corrupt length prefix: the stream cannot be
                // resynchronized, so drop the connection.
                Err(_) => return,
            }
        }
        match stream.read(&mut tmp) {
            Ok(0) => return,
            // `n <= tmp.len()` per the `Read` contract; `get` keeps even a
            // misbehaving reader from panicking this thread.
            Ok(n) => fb.extend(tmp.get(..n).unwrap_or(&tmp)),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn writer_loop(shared: Arc<Shared>, addr: Arc<Mutex<SocketAddr>>, rx: Receiver<WriterCmd>) {
    let mut conn: Option<TcpStream> = None;
    let mut ever_connected = false;
    let mut backoff = BACKOFF_INITIAL;
    let mut attempt: u64 = 0;
    'frames: loop {
        let frame = match rx.recv() {
            Ok(WriterCmd::Frame(f)) => f,
            Ok(WriterCmd::Shutdown) | Err(_) => return,
        };
        // Retry until this frame is on the wire (or the hub shuts down):
        // sender-side frames are never dropped or reordered.
        loop {
            if shared.is_shutdown() {
                return;
            }
            let stream = match conn.as_mut() {
                Some(s) => s,
                None => {
                    let target = *lock_recover(&addr);
                    match TcpStream::connect_timeout(&target, CONNECT_TIMEOUT) {
                        Ok(mut s) => {
                            let _ = s.set_nodelay(true);
                            let _ = s.set_write_timeout(Some(WRITE_TIMEOUT));
                            if write_frame(&mut s, &hello_frame(shared.id)).is_err() {
                                sleep_backoff(&shared, &mut backoff, &mut attempt);
                                continue;
                            }
                            if ever_connected {
                                shared
                                    .reg
                                    .stats()
                                    .reconnects
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            ever_connected = true;
                            backoff = BACKOFF_INITIAL;
                            shared.register(&s);
                            conn.insert(s)
                        }
                        Err(_) => {
                            sleep_backoff(&shared, &mut backoff, &mut attempt);
                            continue;
                        }
                    }
                }
            };
            match write_frame(stream, &frame) {
                Ok(()) => {
                    let s = shared.reg.stats();
                    s.frames_sent.fetch_add(1, Ordering::Relaxed);
                    s.bytes_sent
                        .fetch_add(frame.len() as u64 + 4, Ordering::Relaxed);
                    continue 'frames;
                }
                Err(_) => {
                    conn = None;
                    sleep_backoff(&shared, &mut backoff, &mut attempt);
                }
            }
        }
    }
}

/// Deterministic jitter in `[0, base/2)` derived from the local node id
/// and the writer's attempt counter (splitmix64 finalizer). Reconnecting
/// writers de-synchronize without a shared RNG, and a given (node,
/// attempt) pair always jitters the same way — reconnect schedules stay
/// reproducible across runs.
pub(crate) fn backoff_jitter(id: NodeId, attempt: u64, base: Duration) -> Duration {
    let mut x = (id.0 as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(attempt);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    let half = (base.as_nanos() as u64) / 2;
    Duration::from_nanos(if half == 0 { 0 } else { x % half })
}

/// Records the retry, sleeps the current backoff plus deterministic jitter
/// (in small slices so shutdown stays responsive), then doubles the
/// backoff up to [`BACKOFF_MAX`].
fn sleep_backoff(shared: &Shared, backoff: &mut Duration, attempt: &mut u64) {
    *attempt += 1;
    shared
        .reg
        .stats()
        .reconnect_attempts
        .fetch_add(1, Ordering::Relaxed);
    let mut left = *backoff + backoff_jitter(shared.id, *attempt, *backoff);
    while !left.is_zero() && !shared.is_shutdown() {
        let slice = left.min(Duration::from_millis(20));
        std::thread::sleep(slice);
        left -= slice;
    }
    *backoff = (*backoff * 2).min(BACKOFF_MAX);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn pair(a: NodeId, b: NodeId) -> (Hub, Receiver<NetEvent>, Hub, Receiver<NetEvent>) {
        let (tx_a, rx_a) = mpsc::channel();
        let (tx_b, rx_b) = mpsc::channel();
        let hub_a = Hub::new(a, "127.0.0.1:0", move |e| {
            let _ = tx_a.send(e);
        })
        .unwrap();
        let hub_b = Hub::new(b, "127.0.0.1:0", move |e| {
            let _ = tx_b.send(e);
        })
        .unwrap();
        hub_a.add_peer(b, hub_b.local_addr());
        hub_b.add_peer(a, hub_a.local_addr());
        (hub_a, rx_a, hub_b, rx_b)
    }

    #[test]
    fn frames_flow_both_ways() {
        let (a, rx_a, b, rx_b) = pair(NodeId(0), NodeId(1));
        assert!(a.send(NodeId(1), b"ping".to_vec()));
        assert!(b.send(NodeId(0), b"pong".to_vec()));
        let got = rx_b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            got,
            NetEvent::Frame {
                from: NodeId(0),
                payload: b"ping".to_vec()
            }
        );
        let got = rx_a.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            got,
            NetEvent::Frame {
                from: NodeId(1),
                payload: b"pong".to_vec()
            }
        );
        assert!(a.stats().frames_sent >= 1);
        assert!(a.stats().frames_received >= 1);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn unknown_peer_is_rejected() {
        let (tx, _rx) = mpsc::channel();
        let hub = Hub::new(NodeId(0), "127.0.0.1:0", move |e| {
            let _ = tx.send(e);
        })
        .unwrap();
        assert!(!hub.send(NodeId(9), b"x".to_vec()));
        hub.shutdown();
    }

    #[test]
    fn killed_connections_recover_with_reconnect_counted() {
        let (a, _rx_a, b, rx_b) = pair(NodeId(0), NodeId(1));
        assert!(a.send(NodeId(1), b"one".to_vec()));
        assert_eq!(
            rx_b.recv_timeout(Duration::from_secs(5)).unwrap(),
            NetEvent::Frame {
                from: NodeId(0),
                payload: b"one".to_vec()
            }
        );

        a.kill_connections();
        b.kill_connections();

        assert!(a.send(NodeId(1), b"two".to_vec()));
        assert_eq!(
            rx_b.recv_timeout(Duration::from_secs(10)).unwrap(),
            NetEvent::Frame {
                from: NodeId(0),
                payload: b"two".to_vec()
            }
        );
        assert!(
            a.stats().reconnects >= 1,
            "reconnect not counted: {:?}",
            a.stats()
        );
        assert!(
            a.stats().reconnect_attempts >= 1,
            "retry attempts not counted: {:?}",
            a.stats()
        );
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_bounded() {
        for attempt in 0..50u64 {
            let j1 = backoff_jitter(NodeId(3), attempt, BACKOFF_MAX);
            let j2 = backoff_jitter(NodeId(3), attempt, BACKOFF_MAX);
            assert_eq!(j1, j2, "jitter must be a pure function");
            assert!(j1 < BACKOFF_MAX / 2, "jitter exceeds half the base");
        }
        assert!(
            (0..50u64).any(|a| backoff_jitter(NodeId(1), a, BACKOFF_MAX)
                != backoff_jitter(NodeId(2), a, BACKOFF_MAX)),
            "distinct writers should de-synchronize"
        );
    }

    #[test]
    fn messages_queued_before_listener_peer_arrive() {
        // Register b at its future address before anything listens there:
        // the writer must keep retrying and deliver once b binds.
        let (tx_a, _rx_a) = mpsc::channel();
        let a = Hub::new(NodeId(0), "127.0.0.1:0", move |e| {
            let _ = tx_a.send(e);
        })
        .unwrap();

        // Reserve a port by binding then dropping (racy in principle, fine
        // on loopback in practice).
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);

        a.add_peer(NodeId(1), addr);
        assert!(a.send(NodeId(1), b"early".to_vec()));
        std::thread::sleep(Duration::from_millis(50));

        let (tx_b, rx_b) = mpsc::channel();
        let b = Hub::new(NodeId(1), &addr.to_string(), move |e| {
            let _ = tx_b.send(e);
        })
        .unwrap();
        assert_eq!(
            rx_b.recv_timeout(Duration::from_secs(10)).unwrap(),
            NetEvent::Frame {
                from: NodeId(0),
                payload: b"early".to_vec()
            }
        );
        a.shutdown();
        b.shutdown();
    }
}
