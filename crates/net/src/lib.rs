//! # p2pfl-net — real socket transport for the p2pfl actors
//!
//! `p2pfl-simnet` executes the workspace's protocol actors (Raft, the
//! two-layer hierarchy, the SAC engine) under deterministic virtual time.
//! This crate runs the *same* actors over real TCP sockets and wall-clock
//! timers, closing the gap between the simulated evaluation and the
//! deployment the paper describes (virtual peers on one machine talking
//! TCP).
//!
//! Three layers, bottom to top:
//!
//! * [`codec`] — a compact binary serializer/deserializer for the
//!   workspace serde data model, plus `u32`-length-delimited framing with
//!   a [`codec::MAX_FRAME`] guard.
//! * [`hub`] — a threaded TCP endpoint: a listener with per-connection
//!   reader threads, one writer thread per peer with reconnect-and-retry
//!   (capped exponential backoff), connection hellos attributing traffic
//!   to [`p2pfl_simnet::NodeId`]s, byte/frame/reconnect counters, and
//!   test hooks for severing connections.
//! * [`runtime`] — [`PeerRuntime`] hosts one
//!   [`Actor`](p2pfl_simnet::Actor) on an event-loop thread behind the
//!   [`Transport`](p2pfl_simnet::Transport) trait: wall-clock timers,
//!   loopback delivery, and codec-framed sends through the hub.
//!
//! ```no_run
//! use p2pfl_net::PeerRuntime;
//! use p2pfl_simnet::{Actor, NodeId, Payload, Transport};
//!
//! #[derive(serde::Serialize, serde::Deserialize, Clone)]
//! struct Ping(u64);
//! impl Payload for Ping {
//!     fn size_bytes(&self) -> u64 {
//!         8
//!     }
//! }
//!
//! struct Counter(u64);
//! impl Actor<Ping> for Counter {
//!     fn on_message(&mut self, _t: &mut dyn Transport<Ping>, _from: NodeId, _m: Ping) {
//!         self.0 += 1;
//!     }
//! }
//!
//! let a = PeerRuntime::start(NodeId(0), "127.0.0.1:0", &[], Counter(0)).unwrap();
//! let b = PeerRuntime::start(NodeId(1), "127.0.0.1:0", &[(NodeId(0), a.local_addr())],
//!     Counter(0)).unwrap();
//! b.with(|_, ctx| ctx.send(NodeId(0), Ping(1)));
//! ```

// `deny` rather than `forbid`: the reactor's epoll shim
// (`reactor::sys`) is the one module allowed to opt back in — every
// other module stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod fault;
pub mod hub;
pub mod reactor;
pub mod registry;
pub mod runtime;
mod sync;

pub use codec::{from_bytes, to_bytes, CodecError, FrameBuffer, MAX_FRAME};
pub use hub::{Hub, NetEvent, NetStats};
pub use reactor::{PeerHandle, Reactor, ReactorConfig};
pub use runtime::{PeerRuntime, WireMsg};
