//! Re-export of the workspace wire codec.
//!
//! The compact binary serializer, frame writer, and [`FrameBuffer`] moved
//! to [`p2pfl_simnet::codec`] so the durable Raft storage (which must not
//! depend on this crate) can persist its records in the same format the
//! wire uses. This module keeps every existing `p2pfl_net::codec::...`
//! path working.

pub use p2pfl_simnet::codec::*;
