//! Wall-clock [`FaultPlan`] interposition shared by both real
//! transports.
//!
//! The threaded [`PeerRuntime`](crate::PeerRuntime) and the async
//! [`Reactor`](crate::reactor::Reactor) both interpose the *same*
//! [`LinkFaults`] interpreter the simulator consults between actor sends
//! and their sockets, so one declarative plan exercises all three
//! transports identically. This module holds the pieces they share: the
//! delayed-frame heap that holds back copies inside a delay window, and
//! the actor-facing timer bookkeeping of the threaded event loop.
//!
//! Time axis: both hosts hand the interpreter *peer-relative* time —
//! nanoseconds elapsed since the hosting runtime (or hosted peer) was
//! started — which is exactly how the simulator anchors a plan at
//! virtual time zero.

use p2pfl_simnet::{FaultPlan, LinkFaults, LinkVerdict, NodeId, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// An encoded frame held back by a fault-plan delay; ordered by due time
/// (then insertion order) so a min-heap releases the earliest first.
#[derive(PartialEq, Eq)]
pub(crate) struct DelayedFrame {
    pub(crate) due: SimTime,
    pub(crate) seq: u64,
    pub(crate) to: NodeId,
    pub(crate) bytes: Vec<u8>,
}

impl Ord for DelayedFrame {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

impl PartialOrd for DelayedFrame {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Fault interposition between actor sends and a real socket layer: the
/// *same* [`LinkFaults`] interpreter the simulator consults, driven by
/// peer-relative wall-clock time. Dropped sends are counted by the host;
/// delayed copies queue in a heap the host drains as due times pass.
pub(crate) struct FaultLayer {
    faults: LinkFaults,
    delayed: BinaryHeap<Reverse<DelayedFrame>>,
    seq: u64,
}

impl FaultLayer {
    pub(crate) fn new(plan: &FaultPlan) -> Self {
        FaultLayer {
            faults: LinkFaults::new(plan),
            delayed: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// The interpreter's verdict for one send at peer-relative `now`.
    pub(crate) fn on_send(&mut self, now: SimTime, src: NodeId, dst: NodeId) -> LinkVerdict {
        self.faults.on_send(now, src, dst)
    }

    /// Holds back one encoded frame until `due`.
    pub(crate) fn push_delayed(&mut self, due: SimTime, to: NodeId, bytes: Vec<u8>) {
        self.seq += 1;
        self.delayed.push(Reverse(DelayedFrame {
            due,
            seq: self.seq,
            to,
            bytes,
        }));
    }

    /// Releases the earliest held-back frame whose due time has passed.
    pub(crate) fn pop_due(&mut self, now: SimTime) -> Option<(NodeId, Vec<u8>)> {
        let due = self.delayed.peek().map(|Reverse(d)| d.due)?;
        if due > now {
            return None;
        }
        self.delayed.pop().map(|Reverse(d)| (d.to, d.bytes))
    }

    /// Due time of the earliest held-back frame, if any.
    pub(crate) fn next_due(&self) -> Option<SimTime> {
        self.delayed.peek().map(|Reverse(d)| d.due)
    }
}

/// The threaded event loop's timer bookkeeping: a min-heap of
/// `(deadline, id, tag)` plus a cancellation set. (The async reactor
/// uses the [`crate::reactor::timer`] wheel instead, which scales to
/// thousands of peers' worth of round deadlines.)
pub(crate) struct Timers {
    pub(crate) heap: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    pub(crate) cancelled: HashSet<u64>,
    pub(crate) next_id: u64,
}

impl Timers {
    pub(crate) fn new() -> Self {
        Timers {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_id: 1,
        }
    }
}
