//! The hub's shared mutable state — shutdown latch, transport counters,
//! and the live-connection registry — factored out of the socket code.
//!
//! Every cross-thread touchpoint in [`crate::hub`] (accept loop, reader
//! threads, writer threads, and the public `Hub` handle) goes through this
//! one struct, built exclusively on the [`crate::sync`] primitives. That
//! makes the lock/atomic protocol independently checkable: under
//! `RUSTFLAGS="--cfg loom"` the primitives switch to loom and
//! `tests/loom_hub.rs` drives [`Registry`] with a mock [`Conn`] through
//! the racy schedules (register vs. sever, concurrent counter bumps,
//! shutdown vs. late registration) that real sockets make untestable.

use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::Mutex;

/// Transport counters, all cumulative since hub start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Payload frames successfully written.
    pub frames_sent: u64,
    /// Bytes written for payload frames (including length prefixes).
    pub bytes_sent: u64,
    /// Payload frames received and delivered to the sink.
    pub frames_received: u64,
    /// Bytes received for payload frames (including length prefixes).
    pub bytes_received: u64,
    /// Successful connection establishments *after* a writer's first,
    /// i.e. recoveries from a dead connection.
    pub reconnects: u64,
    /// Backoff sleeps taken by writer threads — one per failed connection
    /// attempt or dead connection noticed, whether or not the subsequent
    /// retry succeeds.
    pub reconnect_attempts: u64,
    /// Sends intentionally discarded before reaching a socket (the
    /// runtime's fault-injection layer).
    pub sends_dropped: u64,
    /// Frames that decoded and reached the actor but were discarded at its
    /// bounded next-round stash (mirrored from
    /// [`Actor::stash_evicted`](p2pfl_simnet::Actor::stash_evicted) after
    /// every callback) — the protocol-level analogue of `sends_dropped`.
    pub stash_evicted: u64,
    /// Share blocks the actor rejected because they failed their sender's
    /// hash commitment (mirrored from
    /// [`Actor::shares_rejected`](p2pfl_simnet::Actor::shares_rejected)
    /// after every callback) — each one is evidence of a Byzantine peer.
    pub shares_rejected: u64,
    /// Frames that went out sharing a vectored write with at least one
    /// other frame (reactor only): how often batching actually batched.
    pub frames_coalesced: u64,
    /// High-water mark of any single bounded send queue, in frames
    /// (reactor only) — how close backpressure came to dropping.
    pub send_queue_peak: u64,
}

/// The atomic cells behind [`NetStats`]; incremented lock-free from every
/// hub thread.
#[derive(Debug, Default)]
pub struct StatsCells {
    /// See [`NetStats::frames_sent`].
    pub frames_sent: AtomicU64,
    /// See [`NetStats::bytes_sent`].
    pub bytes_sent: AtomicU64,
    /// See [`NetStats::frames_received`].
    pub frames_received: AtomicU64,
    /// See [`NetStats::bytes_received`].
    pub bytes_received: AtomicU64,
    /// See [`NetStats::reconnects`].
    pub reconnects: AtomicU64,
    /// See [`NetStats::reconnect_attempts`].
    pub reconnect_attempts: AtomicU64,
    /// See [`NetStats::sends_dropped`].
    pub sends_dropped: AtomicU64,
    /// See [`NetStats::stash_evicted`].
    pub stash_evicted: AtomicU64,
    /// See [`NetStats::shares_rejected`].
    pub shares_rejected: AtomicU64,
    /// See [`NetStats::frames_coalesced`].
    pub frames_coalesced: AtomicU64,
    /// See [`NetStats::send_queue_peak`] (updated via `fetch_max`).
    pub send_queue_peak: AtomicU64,
}

impl StatsCells {
    /// A consistent-enough snapshot of the counters (individually atomic;
    /// cross-counter skew is acceptable for monitoring).
    pub fn snapshot(&self) -> NetStats {
        NetStats {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            reconnect_attempts: self.reconnect_attempts.load(Ordering::Relaxed),
            sends_dropped: self.sends_dropped.load(Ordering::Relaxed),
            stash_evicted: self.stash_evicted.load(Ordering::Relaxed),
            shares_rejected: self.shares_rejected.load(Ordering::Relaxed),
            frames_coalesced: self.frames_coalesced.load(Ordering::Relaxed),
            send_queue_peak: self.send_queue_peak.load(Ordering::Relaxed),
        }
    }
}

/// A severable connection handle: `TcpStream` in production, a mock cell
/// in the loom tests.
pub trait Conn {
    /// Whether the connection has already died (used to prune the
    /// registry as it grows across reconnect cycles).
    fn is_dead(&self) -> bool;

    /// Forcibly closes the connection. Must be idempotent and callable
    /// from any thread.
    fn sever(&self);
}

/// Shutdown latch + counters + live-connection registry shared by every
/// hub thread.
#[derive(Debug, Default)]
pub struct Registry<C> {
    shutdown: AtomicBool,
    stats: StatsCells,
    conns: Mutex<Vec<C>>,
}

impl<C> Registry<C> {
    /// An empty, running registry.
    pub fn new() -> Self {
        Registry {
            shutdown: AtomicBool::new(false),
            stats: StatsCells::default(),
            conns: Mutex::new(Vec::new()),
        }
    }

    /// The transport counters.
    pub fn stats(&self) -> &StatsCells {
        &self.stats
    }

    /// Whether [`Registry::begin_shutdown`] has been called.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// How many connections are currently registered (dead ones linger
    /// until the next [`Registry::register`] prunes them).
    pub fn live_count(&self) -> usize {
        self.lock_conns().len()
    }

    /// Acquires the connection list, recovering from poisoning: a `Vec`
    /// of connection handles is structurally valid at every point, and a
    /// reader/writer thread dying must not take down shutdown's ability
    /// to sever the survivors.
    fn lock_conns(&self) -> std::sync::MutexGuard<'_, Vec<C>> {
        self.conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<C: Conn> Registry<C> {
    /// Adds a live connection, pruning ones that already died so the
    /// registry stays small across many reconnect cycles.
    ///
    /// A registration racing [`Registry::begin_shutdown`] may land after
    /// the sever pass; callers observing [`Registry::is_shutdown`]
    /// afterwards must drop their handle (closing the socket) — the loom
    /// model checks exactly this protocol.
    pub fn register(&self, conn: C) {
        let mut conns = self.lock_conns();
        conns.retain(|c| !c.is_dead());
        conns.push(conn);
    }

    /// Severs and forgets every registered connection. The peers' writer
    /// threads are expected to reconnect; the hub keeps running.
    pub fn sever_all(&self) {
        for c in self.lock_conns().drain(..) {
            c.sever();
        }
    }

    /// Latches shutdown, then severs everything registered so far. Safe to
    /// call repeatedly and concurrently.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.sever_all();
    }
}
