//! [`PeerRuntime`]: hosts a simnet [`Actor`] on the real network.
//!
//! The runtime runs the actor on a dedicated event-loop thread and hands it
//! a [`Transport`] implementation backed by wall-clock time and the TCP
//! [`Hub`] — the *same* actor state machines that run deterministically
//! under `p2pfl-simnet` run here unchanged. `now()` reports elapsed time
//! since the runtime started as a [`SimTime`], preserving the only clock
//! property the actors rely on: monotonicity.
//!
//! Single-threaded actor discipline: all callbacks (`on_start`,
//! `on_message`, `on_timer`, and closures submitted through
//! [`PeerRuntime::with`]) execute on the event-loop thread, so actors need
//! no internal synchronization — exactly as in the simulator.
//!
//! [`PeerRuntime::start_with_faults`] interposes a
//! [`FaultPlan`](p2pfl_simnet::FaultPlan) between actor sends and the hub:
//! the identical interpreter the simulator uses decides drops, duplicates,
//! and delays here over wall-clock time, so one plan exercises both
//! transports the same way. [`PeerRuntime::kill`] crash-stops a runtime
//! (discarding the actor), modeling the process kills whose recovery the
//! durable Raft storage is for.

use crate::codec;
use crate::fault::{FaultLayer, Timers};
use crate::hub::{Hub, NetEvent, NetStats};
use p2pfl_simnet::{Actor, FaultPlan, NodeId, Payload, SimDuration, SimTime, TimerId, Transport};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::VecDeque;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Messages a runtime can host: simulator payloads that also encode to the
/// binary wire format.
pub trait WireMsg: Payload + Serialize + Deserialize {}
impl<M: Payload + Serialize + Deserialize> WireMsg for M {}

/// A closure run on the event-loop thread with the actor and live transport.
type Invocation<M, A> = Box<dyn FnOnce(&mut A, &mut dyn Transport<M>) + Send>;

enum LoopEvent<M, A> {
    Net(NetEvent),
    Invoke(Invocation<M, A>),
    Stop,
}

/// The [`Transport`] the event loop hands to actor callbacks.
struct RealCtx<'a, M> {
    id: NodeId,
    start: Instant,
    hub: &'a Hub,
    timers: &'a mut Timers,
    loopback: &'a mut VecDeque<M>,
    faults: &'a mut Option<FaultLayer>,
}

fn elapsed(start: Instant) -> SimTime {
    SimTime::from_nanos(start.elapsed().as_nanos() as u64)
}

impl<M: WireMsg> Transport<M> for RealCtx<'_, M> {
    fn now(&self) -> SimTime {
        elapsed(self.start)
    }

    fn node_id(&self) -> NodeId {
        self.id
    }

    fn send(&mut self, to: NodeId, msg: M) {
        if to == self.id {
            // Local delivery, dispatched after the current callback returns
            // (same semantics as the simulator's instantaneous loopback).
            self.loopback.push_back(msg);
            return;
        }
        let Some(fl) = self.faults.as_mut() else {
            self.hub.send(to, codec::to_bytes(&msg));
            return;
        };
        let now = elapsed(self.start);
        let v = fl.on_send(now, self.id, to);
        if v.copies == 0 {
            self.hub.note_send_dropped();
            return;
        }
        let bytes = codec::to_bytes(&msg);
        for _ in 0..v.copies {
            if v.extra_delay == SimDuration::ZERO {
                self.hub.send(to, bytes.clone());
            } else {
                fl.push_delayed(now + v.extra_delay, to, bytes.clone());
            }
        }
    }

    fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = self.timers.next_id;
        self.timers.next_id += 1;
        let deadline = self.now() + delay;
        self.timers.heap.push(Reverse((deadline, id, tag)));
        TimerId(id)
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.timers.cancelled.insert(id.0);
    }
}

/// Handle to an actor running on the real network.
///
/// Dropping the runtime stops it; prefer [`PeerRuntime::stop`] to get the
/// actor back for final inspection.
pub struct PeerRuntime<M, A> {
    id: NodeId,
    hub: Arc<Hub>,
    ctl: Sender<LoopEvent<M, A>>,
    thread: Option<JoinHandle<A>>,
    decode_errors: Arc<AtomicU64>,
}

impl<M, A> PeerRuntime<M, A>
where
    M: WireMsg,
    A: Actor<M> + Send + 'static,
{
    /// Binds a listener on `bind_addr` (port 0 for OS-assigned), registers
    /// `peers`, and starts the event loop. The actor's `on_start` runs on
    /// the loop thread before any network event is processed.
    pub fn start(
        id: NodeId,
        bind_addr: &str,
        peers: &[(NodeId, SocketAddr)],
        actor: A,
    ) -> io::Result<Self> {
        Self::start_inner(id, bind_addr, peers, actor, None)
    }

    /// Like [`PeerRuntime::start`], but every outgoing send passes through
    /// `plan` first — the same declarative fault schedule the simulator
    /// interprets, with the plan's time axis anchored at this runtime's
    /// start. Loss and partition windows discard frames (counted in
    /// [`NetStats::sends_dropped`]); duplication and delay windows emit
    /// extra or held-back copies. Crash/restart entries are *not* acted on
    /// here: process-level faults are the harness's job (see
    /// [`FaultPlan::process_events`]).
    pub fn start_with_faults(
        id: NodeId,
        bind_addr: &str,
        peers: &[(NodeId, SocketAddr)],
        actor: A,
        plan: &FaultPlan,
    ) -> io::Result<Self> {
        Self::start_inner(id, bind_addr, peers, actor, Some(FaultLayer::new(plan)))
    }

    fn start_inner(
        id: NodeId,
        bind_addr: &str,
        peers: &[(NodeId, SocketAddr)],
        actor: A,
        faults: Option<FaultLayer>,
    ) -> io::Result<Self> {
        let (tx, rx) = mpsc::channel::<LoopEvent<M, A>>();
        let hub = {
            let tx = tx.clone();
            Arc::new(Hub::new(id, bind_addr, move |ev| {
                let _ = tx.send(LoopEvent::Net(ev));
            })?)
        };
        for &(peer, addr) in peers {
            hub.add_peer(peer, addr);
        }
        let decode_errors = Arc::new(AtomicU64::new(0));
        let thread = {
            let hub = hub.clone();
            let decode_errors = decode_errors.clone();
            std::thread::spawn(move || event_loop(id, hub, rx, actor, decode_errors, faults))
        };
        Ok(PeerRuntime {
            id,
            hub,
            ctl: tx,
            thread: Some(thread),
            decode_errors,
        })
    }

    /// This runtime's node id.
    pub fn node_id(&self) -> NodeId {
        self.id
    }

    /// The address this runtime's listener bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.hub.local_addr()
    }

    /// Registers a peer, or re-points an existing one to a new address
    /// (crash-rejoin at a fresh port).
    pub fn add_peer(&self, peer: NodeId, addr: SocketAddr) {
        self.hub.add_peer(peer, addr);
    }

    /// Severs all TCP connections; writers recover via backoff. Test hook.
    pub fn kill_connections(&self) {
        self.hub.kill_connections();
    }

    /// Transport counters.
    pub fn stats(&self) -> NetStats {
        self.hub.stats()
    }

    /// Frames that arrived but failed to decode as `M` (dropped).
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors.load(Ordering::Relaxed)
    }

    /// Runs `f` against the actor *on the event-loop thread* and returns
    /// its result. The closure receives the live transport, so it can send
    /// messages and arm timers exactly like an actor callback (e.g. a SAC
    /// leader's `start_round`).
    ///
    /// # Panics
    /// Panics if the event loop has stopped.
    pub fn with<R, F>(&self, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut A, &mut dyn Transport<M>) -> R + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        let call = Box::new(move |a: &mut A, t: &mut dyn Transport<M>| {
            let _ = tx.send(f(a, t));
        });
        self.ctl
            .send(LoopEvent::Invoke(call))
            .expect("event loop alive");
        rx.recv().expect("event loop alive")
    }

    /// Crash-stops the runtime: severs every live connection first, then
    /// tears the event loop down and *discards* the actor — simulating a
    /// process kill where all in-memory state is lost. Only durable state
    /// (e.g. a file-backed Raft record) survives; restart by constructing
    /// a fresh actor from it and calling [`PeerRuntime::start`] again.
    pub fn kill(mut self) {
        self.hub.kill_connections();
        let _ = self.ctl.send(LoopEvent::Stop);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.hub.shutdown();
    }

    /// Stops the event loop and the transport, returning the actor.
    pub fn stop(mut self) -> A {
        let _ = self.ctl.send(LoopEvent::Stop);
        let actor = self
            .thread
            .take()
            .expect("not yet stopped")
            .join()
            .expect("event loop panicked");
        self.hub.shutdown();
        actor
    }
}

impl<M, A> Drop for PeerRuntime<M, A> {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = self.ctl.send(LoopEvent::Stop);
            let _ = thread.join();
            self.hub.shutdown();
        }
    }
}

fn event_loop<M: WireMsg, A: Actor<M>>(
    id: NodeId,
    hub: Arc<Hub>,
    rx: mpsc::Receiver<LoopEvent<M, A>>,
    mut actor: A,
    decode_errors: Arc<AtomicU64>,
    mut faults: Option<FaultLayer>,
) -> A {
    let start = Instant::now();
    let mut timers = Timers::new();
    let mut loopback: VecDeque<M> = VecDeque::new();

    // Dispatches one actor callback with a fresh context, then drains any
    // loopback messages it produced (which may in turn produce more).
    macro_rules! dispatch {
        (|$ctx:ident| $call:expr) => {{
            {
                let mut $ctx = RealCtx {
                    id,
                    start,
                    hub: &hub,
                    timers: &mut timers,
                    loopback: &mut loopback,
                    faults: &mut faults,
                };
                #[allow(clippy::redundant_closure_call)]
                $call;
            }
            while let Some(m) = loopback.pop_front() {
                let mut $ctx = RealCtx {
                    id,
                    start,
                    hub: &hub,
                    timers: &mut timers,
                    loopback: &mut loopback,
                    faults: &mut faults,
                };
                actor.on_message(&mut $ctx, id, m);
            }
            hub.set_stash_evicted(actor.stash_evicted());
            hub.set_shares_rejected(actor.shares_rejected());
        }};
    }

    dispatch!(|ctx| actor.on_start(&mut ctx));

    loop {
        // Fire every due timer before blocking again.
        let now = elapsed(start);
        while let Some(Reverse((deadline, tid, tag))) = timers.heap.peek().copied() {
            if deadline > now {
                break;
            }
            timers.heap.pop();
            if timers.cancelled.remove(&tid) {
                continue;
            }
            dispatch!(|ctx| actor.on_timer(&mut ctx, tag));
        }

        // Release fault-delayed frames whose due times have passed.
        if let Some(fl) = faults.as_mut() {
            let now = elapsed(start);
            while let Some((to, bytes)) = fl.pop_due(now) {
                hub.send(to, bytes);
            }
        }

        let next_deadline = {
            let timer = timers
                .heap
                .peek()
                .map(|Reverse((deadline, _, _))| *deadline);
            let delayed = faults.as_ref().and_then(FaultLayer::next_due);
            match (timer, delayed) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            }
        };
        let timeout = match next_deadline {
            Some(deadline) => {
                let now = elapsed(start);
                Duration::from_nanos(deadline.as_nanos().saturating_sub(now.as_nanos()))
                    .min(Duration::from_millis(100))
            }
            None => Duration::from_millis(100),
        };

        match rx.recv_timeout(timeout) {
            Ok(LoopEvent::Net(NetEvent::Frame { from, payload })) => {
                match codec::from_bytes::<M>(&payload) {
                    Ok(msg) => dispatch!(|ctx| actor.on_message(&mut ctx, from, msg)),
                    Err(_) => {
                        decode_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Ok(LoopEvent::Invoke(f)) => dispatch!(|ctx| f(&mut actor, &mut ctx)),
            Ok(LoopEvent::Stop) | Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
    actor
}

#[cfg(test)]
mod tests {
    use super::*;
    // `Blob` has no serde derives (it never crosses a real wire in the
    // main crates), so the tests use their own serializable payload.
    #[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq, Eq)]
    struct WireBlob {
        size: u64,
        tag: u64,
    }

    impl Payload for WireBlob {
        fn size_bytes(&self) -> u64 {
            self.size
        }
    }

    /// Echoes every message back with tag+1 until tag 3, counts deliveries,
    /// and proves timers + loopback work.
    #[derive(Default)]
    struct Echo {
        seen: u64,
        timer_fired: bool,
        loopback_seen: bool,
    }

    impl Actor<WireBlob> for Echo {
        fn on_start(&mut self, ctx: &mut dyn Transport<WireBlob>) {
            ctx.set_timer(SimDuration::from_millis(5), 42);
            ctx.send(ctx.node_id(), WireBlob { size: 1, tag: 999 });
        }
        fn on_message(&mut self, ctx: &mut dyn Transport<WireBlob>, from: NodeId, msg: WireBlob) {
            if msg.tag == 999 {
                self.loopback_seen = true;
                return;
            }
            self.seen += 1;
            if msg.tag < 3 {
                ctx.send(
                    from,
                    WireBlob {
                        size: msg.size,
                        tag: msg.tag + 1,
                    },
                );
            }
        }
        fn on_timer(&mut self, _ctx: &mut dyn Transport<WireBlob>, tag: u64) {
            if tag == 42 {
                self.timer_fired = true;
            }
        }
    }

    fn echo() -> Echo {
        Echo::default()
    }

    #[test]
    fn ping_pong_timers_and_loopback() {
        let a = PeerRuntime::start(NodeId(0), "127.0.0.1:0", &[], echo()).unwrap();
        let b = PeerRuntime::start(
            NodeId(1),
            "127.0.0.1:0",
            &[(NodeId(0), a.local_addr())],
            echo(),
        )
        .unwrap();
        a.add_peer(NodeId(1), b.local_addr());

        // Kick off a 0->1 ping; tags escalate 0..=3 across the two peers.
        a.with(|_, ctx| ctx.send(NodeId(1), WireBlob { size: 8, tag: 0 }));

        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let (sa, sb) = (a.with(|e, _| e.seen), b.with(|e, _| e.seen));
            if sa + sb >= 4 {
                break;
            }
            assert!(Instant::now() < deadline, "ping-pong stalled: {sa}+{sb}");
            std::thread::sleep(Duration::from_millis(10));
        }

        std::thread::sleep(Duration::from_millis(20));
        let ea = a.stop();
        let eb = b.stop();
        assert!(ea.timer_fired && eb.timer_fired, "timers did not fire");
        assert!(ea.loopback_seen && eb.loopback_seen, "loopback skipped");
        assert_eq!(ea.seen + eb.seen, 4);
    }

    /// An actor whose bounded stash rejects everything — the runtime must
    /// mirror its cumulative eviction count into [`NetStats`].
    #[derive(Default)]
    struct Stashy {
        evicted: u64,
    }

    impl Actor<WireBlob> for Stashy {
        fn on_message(&mut self, _ctx: &mut dyn Transport<WireBlob>, _from: NodeId, _m: WireBlob) {
            self.evicted += 1;
        }
        fn stash_evicted(&self) -> u64 {
            self.evicted
        }
    }

    #[test]
    fn actor_stash_evictions_surface_in_net_stats() {
        let rt = PeerRuntime::start(NodeId(0), "127.0.0.1:0", &[], Stashy::default()).unwrap();
        assert_eq!(rt.stats().stash_evicted, 0);
        rt.with(|a, ctx| {
            for _ in 0..3 {
                a.on_message(ctx, NodeId(1), WireBlob { size: 1, tag: 0 });
            }
        });
        // The mirror runs on the loop thread just after the invocation
        // returns its result, so poll rather than assert immediately.
        let deadline = Instant::now() + Duration::from_secs(5);
        while rt.stats().stash_evicted < 3 {
            assert!(Instant::now() < deadline, "stash evictions never surfaced");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(rt.stats().stash_evicted, 3);
        rt.stop();
    }

    /// An actor that rejects every message as a failed share commitment —
    /// the runtime must mirror its cumulative rejection count.
    #[derive(Default)]
    struct Rejector {
        rejected: u64,
    }

    impl Actor<WireBlob> for Rejector {
        fn on_message(&mut self, _ctx: &mut dyn Transport<WireBlob>, _from: NodeId, _m: WireBlob) {
            self.rejected += 1;
        }
        fn shares_rejected(&self) -> u64 {
            self.rejected
        }
    }

    #[test]
    fn actor_share_rejections_surface_in_net_stats() {
        let rt = PeerRuntime::start(NodeId(0), "127.0.0.1:0", &[], Rejector::default()).unwrap();
        assert_eq!(rt.stats().shares_rejected, 0);
        rt.with(|a, ctx| {
            for _ in 0..2 {
                a.on_message(ctx, NodeId(1), WireBlob { size: 1, tag: 0 });
            }
        });
        let deadline = Instant::now() + Duration::from_secs(5);
        while rt.stats().shares_rejected < 2 {
            assert!(Instant::now() < deadline, "share rejections never surfaced");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(rt.stats().shares_rejected, 2);
        rt.stop();
    }

    #[test]
    fn fault_plan_duplicates_and_delays_on_real_sockets() {
        // Sender a duplicates every frame and delays it ~30 ms; receiver b
        // runs clean and must see exactly two copies.
        let plan = FaultPlan::new(7)
            .duplicate(SimTime::ZERO, SimTime::from_secs(3600), 1.0)
            .delay(
                SimTime::ZERO,
                SimTime::from_secs(3600),
                SimDuration::from_millis(30),
                SimDuration::ZERO,
            );
        let b = PeerRuntime::start(NodeId(1), "127.0.0.1:0", &[], echo()).unwrap();
        let a = PeerRuntime::start_with_faults(
            NodeId(0),
            "127.0.0.1:0",
            &[(NodeId(1), b.local_addr())],
            echo(),
            &plan,
        )
        .unwrap();
        let sent_at = Instant::now();
        a.with(|_, ctx| ctx.send(NodeId(1), WireBlob { size: 8, tag: 3 }));

        let deadline = Instant::now() + Duration::from_secs(10);
        while b.with(|e, _| e.seen) < 2 {
            assert!(Instant::now() < deadline, "duplicate copy never arrived");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            sent_at.elapsed() >= Duration::from_millis(30),
            "delay window did not hold the frames back"
        );
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(b.with(|e, _| e.seen), 2, "expected exactly two copies");
        drop(a);
        drop(b);
    }

    #[test]
    fn fault_plan_loss_counts_dropped_sends() {
        let plan = FaultPlan::new(3).loss(SimTime::ZERO, SimTime::from_secs(3600), 1.0);
        let b = PeerRuntime::start(NodeId(1), "127.0.0.1:0", &[], echo()).unwrap();
        let a = PeerRuntime::start_with_faults(
            NodeId(0),
            "127.0.0.1:0",
            &[(NodeId(1), b.local_addr())],
            echo(),
            &plan,
        )
        .unwrap();
        for tag in 0..5 {
            a.with(move |_, ctx| {
                ctx.send(
                    NodeId(1),
                    WireBlob {
                        size: 8,
                        tag: 3 + tag,
                    },
                )
            });
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while a.stats().sends_dropped < 5 {
            assert!(Instant::now() < deadline, "drops not counted");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(a.stats().frames_sent, 0, "lossy frames reached the wire");
        assert_eq!(b.with(|e, _| e.seen), 0);
        drop(a);
        drop(b);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        struct T {
            fired: bool,
        }
        impl Actor<WireBlob> for T {
            fn on_start(&mut self, ctx: &mut dyn Transport<WireBlob>) {
                let id = ctx.set_timer(SimDuration::from_millis(30), 1);
                ctx.cancel_timer(id);
            }
            fn on_message(&mut self, _: &mut dyn Transport<WireBlob>, _: NodeId, _: WireBlob) {}
            fn on_timer(&mut self, _: &mut dyn Transport<WireBlob>, _: u64) {
                self.fired = true;
            }
        }
        let rt = PeerRuntime::start(NodeId(0), "127.0.0.1:0", &[], T { fired: false }).unwrap();
        std::thread::sleep(Duration::from_millis(80));
        assert!(!rt.stop().fired);
    }
}
