//! Property tests for the ML substrate: loss/softmax identities, model
//! parameter round-trips, and partitioner conservation laws.

use p2pfl_ml::data::{partition_dataset, synthetic, Partition};
use p2pfl_ml::loss::{accuracy, softmax, softmax_cross_entropy};
use p2pfl_ml::models::mlp;
use p2pfl_ml::tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn logits(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-20.0f32..20.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(&[rows, cols], v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Softmax rows are probability distributions, invariant to shifting
    /// all logits of a row by a constant.
    #[test]
    fn softmax_is_shift_invariant_distribution(l in logits(4, 6), shift in -50.0f32..50.0) {
        let p = softmax(&l);
        for row in p.data().chunks_exact(6) {
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
        let mut shifted = l.clone();
        shifted.map_inplace(|x| x + shift);
        let q = softmax(&shifted);
        for (a, b) in p.data().iter().zip(q.data()) {
            prop_assert!((a - b).abs() < 1e-4, "shift variance {a} vs {b}");
        }
    }

    /// Cross-entropy is non-negative and ln(C) for uniform logits; its
    /// gradient rows sum to ~0 (softmax minus one-hot).
    #[test]
    fn cross_entropy_identities(l in logits(3, 5), labels in proptest::collection::vec(0usize..5, 3)) {
        let (loss, grad) = softmax_cross_entropy(&l, &labels);
        prop_assert!(loss >= 0.0);
        for row in grad.data().chunks_exact(5) {
            let s: f32 = row.iter().sum();
            prop_assert!(s.abs() < 1e-5, "gradient row sums to {s}");
        }
        prop_assert!((0.0..=1.0).contains(&accuracy(&l, &labels)));
    }

    /// Model flat-parameter export/import is a lossless round-trip, and
    /// applying it twice is idempotent.
    #[test]
    fn params_round_trip(seed in any::<u64>(), dims_pick in 0usize..3) {
        let dims: &[usize] = match dims_pick {
            0 => &[4, 8, 3],
            1 => &[6, 5],
            _ => &[3, 7, 7, 2],
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let m = mlp(dims, &mut rng);
        let flat = m.params_flat();
        prop_assert_eq!(flat.len(), m.num_params());
        let mut m2 = mlp(dims, &mut rng);
        m2.set_params_flat(&flat);
        prop_assert_eq!(m2.params_flat(), flat.clone());
        m2.set_params_flat(&flat);
        prop_assert_eq!(m2.params_flat(), flat);
    }

    /// Every partitioner conserves the dataset size (and IID conserves
    /// the exact sample multiset).
    #[test]
    fn partitioners_conserve_samples(
        count_base in 10usize..40,
        peers in 1usize..9,
        seed in any::<u64>(),
        mode in 0usize..3,
    ) {
        let count = count_base * 10; // enough per class
        let d = synthetic(&[4], 10, count, 0.3, seed);
        let partition = match mode {
            0 => Partition::Iid,
            1 => Partition::NON_IID_5,
            _ => Partition::NON_IID_0,
        };
        let parts = partition_dataset(&d, peers, partition, seed ^ 1);
        prop_assert_eq!(parts.len(), peers);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        match partition {
            Partition::Iid => prop_assert_eq!(total, count),
            // Non-IID deals fixed quotas of count/peers per peer.
            Partition::NonIid { .. } => prop_assert_eq!(total, (count / peers) * peers),
        }
        for p in &parts {
            prop_assert_eq!(p.num_classes, 10);
            prop_assert_eq!(p.sample_dim(), 4);
        }
    }

    /// Non-IID(0%) gives each peer at most two classes, regardless of
    /// peer count and seed.
    #[test]
    fn non_iid_zero_is_two_class(peers in 1usize..8, seed in any::<u64>()) {
        let d = synthetic(&[4], 10, 800, 0.3, seed);
        for p in partition_dataset(&d, peers, Partition::NON_IID_0, seed ^ 2) {
            let classes = p.class_histogram().iter().filter(|&&h| h > 0).count();
            prop_assert!(classes <= 2, "{classes} classes");
        }
    }
}
