//! Differential property tests: the optimized kernels against the naive
//! oracles in `p2pfl_ml::reference`, across randomized shapes including
//! sizes that do not divide the blocking factors. Tolerance is 1e-5 —
//! the kernels reassociate float additions, so bit-equality is not the
//! contract here (the *parallel* path has a bit-equality contract, tested
//! in `tests/determinism.rs`; these tests bound reassociation error).

use p2pfl_ml::layers::Conv2d;
use p2pfl_ml::reference::{conv2d_naive_backward, conv2d_naive_forward, matmul_naive};
use p2pfl_ml::{Layer, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TOL: f32 = 1e-5;

fn random_tensor<R: Rng + ?Sized>(shape: &[usize], rng: &mut R) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..n).map(|_| rng.random_range(-1.0f32..=1.0)).collect(),
    )
}

fn assert_close(got: &Tensor, want: &Tensor, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape mismatch");
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        assert!(
            (g - w).abs() <= TOL,
            "{what}: element {i} differs: optimized {g} vs naive {w}"
        );
    }
}

#[test]
fn blocked_matmul_matches_naive_across_random_shapes() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0001);
    for trial in 0..40 {
        // Dimensions straddle the 4-row block: remainders 1..3 must hit
        // the scalar tail loop.
        let m = rng.random_range(1usize..=33);
        let k = rng.random_range(1usize..=48);
        let n = rng.random_range(1usize..=40);
        let a = random_tensor(&[m, k], &mut rng);
        let b = random_tensor(&[k, n], &mut rng);
        assert_close(
            &a.matmul(&b),
            &matmul_naive(&a, &b),
            &format!("trial {trial} matmul {m}x{k}x{n}"),
        );
    }
}

#[test]
fn blocked_matmul_matches_naive_at_block_boundaries() {
    // Deterministic sweep over every remainder class of the 4-row block.
    let mut rng = StdRng::seed_from_u64(0xD1FF_0002);
    for m in 1..=9 {
        let a = random_tensor(&[m, 17], &mut rng);
        let b = random_tensor(&[17, 5], &mut rng);
        assert_close(&a.matmul(&b), &matmul_naive(&a, &b), &format!("m={m}"));
    }
}

#[test]
fn im2col_conv_forward_matches_naive_across_random_shapes() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0003);
    for trial in 0..12 {
        let in_c = rng.random_range(1usize..=3);
        let out_c = rng.random_range(1usize..=4);
        let k = [1usize, 3, 5][rng.random_range(0usize..3)];
        let pad = rng.random_range(0usize..=k / 2 + 1);
        let h = rng.random_range(k.max(3)..=10);
        let w = rng.random_range(k.max(3)..=10);
        let b = rng.random_range(1usize..=3);
        let mut conv = Conv2d::new(in_c, out_c, k, pad, &mut rng);
        let x = random_tensor(&[b, in_c, h, w], &mut rng);
        let got = conv.forward(&x, false);
        let weight = conv.params()[0].value.clone();
        let bias = conv.params()[1].value.data().to_vec();
        let want = conv2d_naive_forward(&x, &weight, &bias, k, pad);
        assert_close(
            &got,
            &want,
            &format!("trial {trial} conv b{b} c{in_c}->{out_c} k{k} p{pad} {h}x{w}"),
        );
    }
}

#[test]
fn im2col_conv_backward_matches_naive_gradients() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0004);
    for trial in 0..8 {
        let in_c = rng.random_range(1usize..=3);
        let out_c = rng.random_range(1usize..=3);
        let k = [1usize, 3][rng.random_range(0usize..2)];
        let pad = rng.random_range(0usize..=1);
        let h = rng.random_range(4usize..=8);
        let w = rng.random_range(4usize..=8);
        let b = rng.random_range(1usize..=2);
        let mut conv = Conv2d::new(in_c, out_c, k, pad, &mut rng);
        let x = random_tensor(&[b, in_c, h, w], &mut rng);
        let y = conv.forward(&x, true);
        let grad_out = random_tensor(y.shape(), &mut rng);
        let dx = conv.backward(&grad_out);
        let weight = conv.params()[0].value.clone();
        let (dx_ref, dw_ref) = conv2d_naive_backward(&x, &weight, &grad_out, k, pad);
        let label = format!("trial {trial} conv b{b} c{in_c}->{out_c} k{k} p{pad} {h}x{w}");
        assert_close(&dx, &dx_ref, &format!("{label} dx"));
        assert_close(&conv.params()[0].grad, &dw_ref, &format!("{label} dw"));
        // Bias gradient: naive reference is the plain sum of grad_out over
        // everything but the channel axis.
        let gd = grad_out.data();
        let (oh, ow) = (y.shape()[2], y.shape()[3]);
        let mut db_ref = vec![0.0f32; out_c];
        for bi in 0..b {
            for oc in 0..out_c {
                for s in 0..oh * ow {
                    db_ref[oc] += gd[(bi * out_c + oc) * oh * ow + s];
                }
            }
        }
        for (oc, (g, r)) in conv.params()[1].grad.data().iter().zip(&db_ref).enumerate() {
            assert!((g - r).abs() <= TOL, "{label} db[{oc}]: {g} vs {r}");
        }
    }
}
