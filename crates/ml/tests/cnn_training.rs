//! End-to-end training smoke tests for the convolutional path: the
//! image-shaped pipeline the paper uses (Fig. 5), at reduced scale so CI
//! stays fast. The full-size Fig. 5 CNN has its own (ignored) test.

use p2pfl_ml::data::{mnist_like, train_test_split};
use p2pfl_ml::metrics::evaluate;
use p2pfl_ml::models::{paper_cnn, small_cnn};
use p2pfl_ml::optim::Adam;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn small_cnn_learns_mnist_like() {
    let mut rng = StdRng::seed_from_u64(1);
    let (train, test) = train_test_split(&mnist_like(360, 7), 240);
    let mut model = small_cnn(&mut rng, 0);
    let mut opt = Adam::new(1e-3);
    let (loss_before, acc_before) = evaluate(&mut model, &test, 32);

    let mut step_rng = StdRng::seed_from_u64(2);
    for _epoch in 0..3 {
        for idx in train.minibatch_indices(16, &mut step_rng) {
            let (x, y) = train.gather(&idx);
            let (loss, _) = model.train_batch(&x, &y, &mut opt);
            assert!(loss.is_finite(), "loss diverged");
        }
    }
    let (loss_after, acc_after) = evaluate(&mut model, &test, 32);
    assert!(
        loss_after < loss_before,
        "loss {loss_before:.3} -> {loss_after:.3}"
    );
    assert!(
        acc_after > acc_before + 0.2,
        "accuracy {acc_before:.3} -> {acc_after:.3}"
    );
}

#[test]
fn small_cnn_params_flow_through_aggregation_types() {
    // The conv path must round-trip through the flat-parameter bridge the
    // aggregation protocols use.
    let mut rng = StdRng::seed_from_u64(3);
    let m1 = small_cnn(&mut rng, 0);
    let flat = m1.params_flat();
    let mut m2 = small_cnn(&mut rng, 1);
    m2.set_params_flat(&flat);
    assert_eq!(m2.params_flat(), flat);
}

/// The paper-scale model: one full train step on the 1.25 M-parameter CNN.
/// Ignored by default (seconds of CPU); run with `cargo test -- --ignored`.
#[test]
#[ignore = "paper-scale CNN; run explicitly with --ignored"]
fn paper_cnn_trains_one_step_at_full_size() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut model = paper_cnn(&mut rng, 0);
    let data = p2pfl_ml::data::cifar_like(8, 5);
    let (x, y) = data.full_batch();
    let mut opt = Adam::paper_default();
    let (l1, _) = model.train_batch(&x, &y, &mut opt);
    let (l2, _) = model.train_batch(&x, &y, &mut opt);
    assert!(l1.is_finite() && l2.is_finite());
    assert!(l2 < l1, "loss should drop on the same batch: {l1} -> {l2}");
}
