//! Activation layers.

use crate::layer::Layer;
use crate::tensor::Tensor;

/// Rectified linear unit, `max(0, x)` elementwise.
pub struct Relu {
    cached_mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates the layer.
    pub fn new() -> Self {
        Relu { cached_mask: None }
    }
}

impl Default for Relu {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut y = x.clone();
        if train {
            self.cached_mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        }
        y.map_inplace(|v| if v > 0.0 { v } else { 0.0 });
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.cached_mask.take().expect("backward before forward");
        let mut dx = grad_out.clone();
        for (g, keep) in dx.data_mut().iter_mut().zip(&mask) {
            if !keep {
                *g = 0.0;
            }
        }
        dx
    }

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// Flattens `[B, ...]` to `[B, prod(...)]`. A pure reshape.
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates the layer.
    pub fn new() -> Self {
        Flatten { cached_shape: None }
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let s = x.shape();
        assert!(!s.is_empty(), "flatten needs a batch dim");
        let b = s[0];
        let rest: usize = s[1..].iter().product();
        if train {
            self.cached_shape = Some(s.to_vec());
        }
        x.reshaped(&[b, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let s = self.cached_shape.take().expect("backward before forward");
        grad_out.reshaped(&s)
    }

    fn name(&self) -> &'static str {
        "flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_and_gates_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(&[1, 4], vec![-1., 2., 0., 3.]);
        let y = r.forward(&x, true);
        assert_eq!(y.data(), &[0., 2., 0., 3.]);
        let g = Tensor::from_vec(&[1, 4], vec![1., 1., 1., 1.]);
        let dx = r.backward(&g);
        assert_eq!(dx.data(), &[0., 1., 0., 1.]);
    }

    #[test]
    fn flatten_round_trips() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec(&[2, 2, 2], (0..8).map(|i| i as f32).collect());
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 4]);
        let dx = f.backward(&y);
        assert_eq!(dx.shape(), &[2, 2, 2]);
        assert_eq!(dx.data(), x.data());
    }
}
