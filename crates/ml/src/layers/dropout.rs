//! Inverted dropout.

use crate::layer::Layer;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: during training each unit is zeroed with probability
/// `p` and survivors are scaled by `1/(1-p)`, so evaluation is the
/// identity.
pub struct Dropout {
    p: f32,
    rng: StdRng,
    cached_mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p in [0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability out of range");
        Dropout {
            p,
            rng: StdRng::seed_from_u64(seed),
            cached_mask: None,
        }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.cached_mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..x.len())
            .map(|_| {
                if self.rng.random::<f32>() < keep {
                    scale
                } else {
                    0.0
                }
            })
            .collect();
        let mut y = x.clone();
        for (v, m) in y.data_mut().iter_mut().zip(&mask) {
            *v *= m;
        }
        self.cached_mask = Some(mask);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut dx = grad_out.clone();
        if let Some(mask) = self.cached_mask.take() {
            for (g, m) in dx.data_mut().iter_mut().zip(&mask) {
                *g *= m;
            }
        }
        dx
    }

    fn name(&self) -> &'static str {
        "dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_vec(&[1, 4], vec![1., 2., 3., 4.]);
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn training_preserves_expectation() {
        let mut d = Dropout::new(0.25, 2);
        let x = Tensor::from_vec(&[1, 10_000], vec![1.0; 10_000]);
        let y = d.forward(&x, true);
        let mean: f32 = y.data().iter().sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::from_vec(&[1, 8], vec![1.0; 8]);
        let y = d.forward(&x, true);
        let g = Tensor::from_vec(&[1, 8], vec![1.0; 8]);
        let dx = d.backward(&g);
        // Where forward dropped, backward must drop; where it kept (scale
        // 2), backward scales identically.
        assert_eq!(y.data(), dx.data());
    }

    #[test]
    fn zero_probability_is_identity_even_training() {
        let mut d = Dropout::new(0.0, 4);
        let x = Tensor::from_vec(&[1, 4], vec![1., 2., 3., 4.]);
        assert_eq!(d.forward(&x, true), x);
    }
}
