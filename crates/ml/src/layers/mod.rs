//! Network layers: dense, conv2d, pooling, activations, dropout.

mod activation;
mod conv;
mod dense;
mod dropout;
mod pool;

pub use activation::{Flatten, Relu};
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use pool::MaxPool2x2;
