//! 2×2 max pooling with stride 2 (the only pooling the Fig. 5 CNN uses).

use crate::layer::Layer;
use crate::tensor::Tensor;

/// 2×2/stride-2 max pooling over `[B, C, H, W]`. `H` and `W` must be even.
pub struct MaxPool2x2 {
    cached_argmax: Option<Vec<usize>>,
    cached_in_shape: Option<Vec<usize>>,
}

impl MaxPool2x2 {
    /// Creates the layer.
    pub fn new() -> Self {
        MaxPool2x2 {
            cached_argmax: None,
            cached_in_shape: None,
        }
    }
}

impl Default for MaxPool2x2 {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for MaxPool2x2 {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 4, "pool input must be [B, C, H, W]");
        let (b, c, h, w) = (s[0], s[1], s[2], s[3]);
        assert!(h % 2 == 0 && w % 2 == 0, "odd spatial dims: {h}x{w}");
        let (oh, ow) = (h / 2, w / 2);
        let xd = x.data();
        let mut out = vec![0.0f32; b * c * oh * ow];
        let mut arg = vec![0usize; b * c * oh * ow];
        for bc in 0..b * c {
            let base = bc * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let i00 = base + (2 * oy) * w + 2 * ox;
                    let idxs = [i00, i00 + 1, i00 + w, i00 + w + 1];
                    let mut best = idxs[0];
                    for &i in &idxs[1..] {
                        if xd[i] > xd[best] {
                            best = i;
                        }
                    }
                    let o = bc * oh * ow + oy * ow + ox;
                    out[o] = xd[best];
                    arg[o] = best;
                }
            }
        }
        if train {
            self.cached_argmax = Some(arg);
            self.cached_in_shape = Some(s.to_vec());
        }
        Tensor::from_vec(&[b, c, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let arg = self.cached_argmax.take().expect("backward before forward");
        let shape = self
            .cached_in_shape
            .take()
            .expect("backward before forward");
        let mut dx = Tensor::zeros(&shape);
        let dd = dx.data_mut();
        for (g, &i) in grad_out.data().iter().zip(&arg) {
            dd[i] += g;
        }
        dx
    }

    fn name(&self) -> &'static str {
        "maxpool2x2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_maxima() {
        let mut p = MaxPool2x2::new();
        #[rustfmt::skip]
        let x = Tensor::from_vec(&[1, 1, 4, 4], vec![
            1., 2.,   5., 4.,
            3., 0.,   6., 7.,
            9., 8.,   0., 1.,
            2., 4.,   3., 2.,
        ]);
        let y = p.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[3., 7., 9., 3.]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let mut p = MaxPool2x2::new();
        #[rustfmt::skip]
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![
            1., 9.,
            3., 0.,
        ]);
        let _ = p.forward(&x, true);
        let g = Tensor::from_vec(&[1, 1, 1, 1], vec![5.0]);
        let dx = p.backward(&g);
        assert_eq!(dx.data(), &[0., 5., 0., 0.]);
    }

    #[test]
    fn ties_resolve_to_first_index() {
        let mut p = MaxPool2x2::new();
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![7., 7., 7., 7.]);
        let _ = p.forward(&x, true);
        let g = Tensor::from_vec(&[1, 1, 1, 1], vec![1.0]);
        let dx = p.backward(&g);
        assert_eq!(dx.data(), &[1., 0., 0., 0.]);
    }

    #[test]
    #[should_panic(expected = "odd spatial dims")]
    fn odd_input_rejected() {
        let mut p = MaxPool2x2::new();
        let _ = p.forward(&Tensor::zeros(&[1, 1, 3, 3]), false);
    }

    #[test]
    #[should_panic(expected = "pool input must be [B, C, H, W]")]
    fn non_4d_input_rejected() {
        let mut p = MaxPool2x2::new();
        let _ = p.forward(&Tensor::zeros(&[4, 4]), false);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_without_forward_rejected() {
        let mut p = MaxPool2x2::new();
        let _ = p.backward(&Tensor::zeros(&[1, 1, 1, 1]));
    }
}
