//! 2-D convolution via im2col.
//!
//! Stride is fixed at 1 (all convolutions in the Fig. 5 CNN are 3×3/s1 with
//! "same" padding). The im2col transform turns convolution into one big
//! matrix product, which reuses the cache-blocked `matmul`.

use crate::init;
use crate::layer::{Layer, Param};
use crate::tensor::Tensor;
use rand::Rng;

/// 2-D convolution layer over `[B, C, H, W]` inputs.
pub struct Conv2d {
    weight: Param, // [out_c, in_c * kh * kw]
    bias: Param,   // [1, out_c]
    in_c: usize,
    out_c: usize,
    k: usize,
    pad: usize,
    cached_cols: Option<Tensor>,
    cached_dims: Option<(usize, usize, usize)>, // (batch, oh, ow)
}

impl Conv2d {
    /// He-initialized `k×k` same-ish convolution with `pad` zero padding.
    pub fn new<R: Rng + ?Sized>(
        in_c: usize,
        out_c: usize,
        k: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = in_c * k * k;
        Conv2d {
            weight: Param::new(init::he_normal(&[fan_in, out_c], fan_in, rng)),
            bias: Param::new(Tensor::zeros(&[1, out_c])),
            in_c,
            out_c,
            k,
            pad,
            cached_cols: None,
            cached_dims: None,
        }
    }

    /// Output spatial size for an `h × w` input.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (h + 2 * self.pad + 1 - self.k, w + 2 * self.pad + 1 - self.k)
    }

    /// The im2col transform: unfolds `[B, C, H, W]` input patches into a
    /// `[B*OH*OW, C*k*k]` matrix whose product with the weight is the
    /// convolution. Public so the benchmark harness can time the unfold in
    /// isolation; not part of the training API.
    pub fn im2col(&self, x: &Tensor) -> (Tensor, usize, usize, usize) {
        let s = x.shape();
        assert_eq!(s.len(), 4, "conv input must be [B, C, H, W]");
        let (b, c, h, w) = (s[0], s[1], s[2], s[3]);
        assert_eq!(
            c, self.in_c,
            "channel mismatch: input has {c} channels, layer expects {}",
            self.in_c
        );
        let (oh, ow) = self.out_hw(h, w);
        let kk = self.k;
        let pad = self.pad;
        let cols_w = c * kk * kk;
        let mut cols = vec![0.0f32; b * oh * ow * cols_w];
        let xd = x.data();
        for bi in 0..b {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((bi * oh + oy) * ow + ox) * cols_w;
                    // The kx values that land inside [0, w): one contiguous
                    // span per (patch, ky), copied as a slice instead of
                    // element-by-element.
                    let kx0 = pad.saturating_sub(ox);
                    let kx1 = kk.min(w + pad - ox);
                    if kx0 >= kx1 {
                        continue;
                    }
                    for ci in 0..c {
                        for ky in 0..kk {
                            let iy = (oy + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let src = ((bi * c + ci) * h + iy as usize) * w + (ox + kx0) - pad;
                            let dst = row + (ci * kk + ky) * kk + kx0;
                            let len = kx1 - kx0;
                            cols[dst..dst + len].copy_from_slice(&xd[src..src + len]);
                        }
                    }
                }
            }
        }
        (Tensor::from_vec(&[b * oh * ow, cols_w], cols), b, oh, ow)
    }

    fn col2im(&self, dcols: &Tensor, b: usize, h: usize, w: usize) -> Tensor {
        let (oh, ow) = self.out_hw(h, w);
        let c = self.in_c;
        let kk = self.k;
        let cols_w = c * kk * kk;
        let pad = self.pad;
        let mut out = vec![0.0f32; b * c * h * w];
        let dd = dcols.data();
        for bi in 0..b {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((bi * oh + oy) * ow + ox) * cols_w;
                    // Same contiguous-span structure as im2col, but
                    // scatter-adding instead of copying.
                    let kx0 = pad.saturating_sub(ox);
                    let kx1 = kk.min(w + pad - ox);
                    if kx0 >= kx1 {
                        continue;
                    }
                    for ci in 0..c {
                        for ky in 0..kk {
                            let iy = (oy + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let dst = ((bi * c + ci) * h + iy as usize) * w + (ox + kx0) - pad;
                            let src = row + (ci * kk + ky) * kk + kx0;
                            let len = kx1 - kx0;
                            for (o, &d) in out[dst..dst + len].iter_mut().zip(&dd[src..src + len]) {
                                *o += d;
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(&[b, c, h, w], out)
    }

    fn cached_input_hw(&self) -> (usize, usize) {
        let (_, oh, ow) = self.cached_dims.expect("backward before forward");
        (
            oh + self.k - 1 - 2 * self.pad,
            ow + self.k - 1 - 2 * self.pad,
        )
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (cols, b, oh, ow) = self.im2col(x);
        // [B*OH*OW, C*k*k] x [C*k*k, OC] = [B*OH*OW, OC]
        let mat = cols.matmul(&self.weight.value);
        if train {
            self.cached_cols = Some(cols);
            self.cached_dims = Some((b, oh, ow));
        }
        // Permute rows [b, oy, ox][oc] -> [b, oc, oy, ox], adding the bias
        // in the same pass (one memory traversal instead of two).
        let bias = self.bias.value.data();
        let mut out = vec![0.0f32; b * self.out_c * oh * ow];
        let md = mat.data();
        for bi in 0..b {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((bi * oh + oy) * ow + ox) * self.out_c;
                    for oc in 0..self.out_c {
                        out[((bi * self.out_c + oc) * oh + oy) * ow + ox] = md[row + oc] + bias[oc];
                    }
                }
            }
        }
        Tensor::from_vec(&[b, self.out_c, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (b, oh, ow) = self.cached_dims.expect("backward before forward");
        // Un-permute [b, oc, oy, ox] -> rows [b, oy, ox][oc].
        let mut g = vec![0.0f32; b * oh * ow * self.out_c];
        let gd = grad_out.data();
        for bi in 0..b {
            for oc in 0..self.out_c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        g[((bi * oh + oy) * ow + ox) * self.out_c + oc] =
                            gd[((bi * self.out_c + oc) * oh + oy) * ow + ox];
                    }
                }
            }
        }
        let gmat = Tensor::from_vec(&[b * oh * ow, self.out_c], g);
        let cols = self.cached_cols.take().expect("backward before forward");
        let dw = cols.transposed().matmul(&gmat);
        self.weight.grad.add_assign(&dw);
        let db = gmat.sum_rows();
        for (gacc, d) in self.bias.grad.data_mut().iter_mut().zip(&db) {
            *gacc += d;
        }
        let dcols = gmat.matmul(&self.weight.value.transposed());
        let (h, w) = self.cached_input_hw();
        self.col2im(&dcols, b, h, w)
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_kernel_reproduces_input() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(1, 1, 3, 1, &mut rng);
        // Kernel that picks the center pixel.
        let mut w = vec![0.0f32; 9];
        w[4] = 1.0;
        conv.weight.value = Tensor::from_vec(&[9, 1], w);
        conv.bias.value = Tensor::zeros(&[1, 1]);
        let x = Tensor::from_vec(&[1, 1, 3, 3], (1..=9).map(|i| i as f32).collect());
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn shapes_with_padding() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new(3, 8, 3, 1, &mut rng);
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[2, 8, 8, 8]);
        // Without padding the spatial dims shrink by k-1.
        let mut convnp = Conv2d::new(3, 4, 3, 0, &mut rng);
        let y2 = convnp.forward(&x, false);
        assert_eq!(y2.shape(), &[2, 4, 6, 6]);
    }

    #[test]
    #[should_panic(expected = "conv input must be [B, C, H, W]")]
    fn non_4d_input_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::new(1, 1, 3, 1, &mut rng);
        let _ = conv.forward(&Tensor::zeros(&[4, 9]), false);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn wrong_channel_count_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut conv = Conv2d::new(3, 4, 3, 1, &mut rng);
        let _ = conv.forward(&Tensor::zeros(&[1, 2, 8, 8]), false);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_without_forward_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut conv = Conv2d::new(1, 1, 3, 1, &mut rng);
        let _ = conv.backward(&Tensor::zeros(&[1, 1, 3, 3]));
    }

    #[test]
    fn numerical_gradient_check() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new(2, 3, 3, 1, &mut rng);
        let n_in = 2 * 2 * 4 * 4;
        let x = Tensor::from_vec(
            &[2, 2, 4, 4],
            (0..n_in).map(|i| (i as f32 * 0.37).sin() * 0.5).collect(),
        );
        let y = conv.forward(&x, true);
        let ones = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
        let dx = conv.backward(&ones);

        let eps = 1e-2f32;
        // Spot-check a scattering of input gradients.
        for &i in &[0usize, 5, 17, 31, 40, 63] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp: f32 = conv.forward(&xp, false).data().iter().sum();
            let lm: f32 = conv.forward(&xm, false).data().iter().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 0.05,
                "dx[{i}] numeric {num} analytic {}",
                dx.data()[i]
            );
        }
        // Spot-check weight gradients.
        let analytic = conv.params()[0].grad.clone();
        for &i in &[0usize, 7, 20, 35] {
            let orig = conv.weight.value.data()[i];
            conv.weight.value.data_mut()[i] = orig + eps;
            let lp: f32 = conv.forward(&x, false).data().iter().sum();
            conv.weight.value.data_mut()[i] = orig - eps;
            let lm: f32 = conv.forward(&x, false).data().iter().sum();
            conv.weight.value.data_mut()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - analytic.data()[i]).abs() < 0.05,
                "dW[{i}] numeric {num} analytic {}",
                analytic.data()[i]
            );
        }
    }
}
