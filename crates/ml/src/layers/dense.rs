//! Fully connected layer.

use crate::init;
use crate::layer::{Layer, Param};
use crate::tensor::Tensor;
use rand::Rng;

/// `y = x W + b` over a batch: `x` is `[B, in]`, `W` is `[in, out]`.
pub struct Dense {
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// He-initialized dense layer (for hidden layers before ReLU).
    pub fn new_he<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Dense {
            weight: Param::new(init::he_normal(&[in_dim, out_dim], in_dim, rng)),
            bias: Param::new(Tensor::zeros(&[1, out_dim])),
            cached_input: None,
        }
    }

    /// Xavier-initialized dense layer (for the softmax output).
    pub fn new_xavier<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Dense {
            weight: Param::new(init::xavier_uniform(
                &[in_dim, out_dim],
                in_dim,
                out_dim,
                rng,
            )),
            bias: Param::new(Tensor::zeros(&[1, out_dim])),
            cached_input: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.value.shape()[0]
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.value.shape()[1]
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut y = x.matmul(&self.weight.value);
        y.add_row_broadcast(self.bias.value.data());
        if train {
            self.cached_input = Some(x.clone());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("backward before forward");
        // dW = x^T g ; db = column sums of g ; dx = g W^T
        let dw = x.transposed().matmul(grad_out);
        self.weight.grad.add_assign(&dw);
        let db = grad_out.sum_rows();
        for (g, d) in self.bias.grad.data_mut().iter_mut().zip(&db) {
            *g += d;
        }
        grad_out.matmul(&self.weight.value.transposed())
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = Dense::new_he(3, 2, &mut rng);
        // Force known weights.
        d.weight.value = Tensor::from_vec(&[3, 2], vec![1., 0., 0., 1., 1., 1.]);
        d.bias.value = Tensor::from_vec(&[1, 2], vec![0.5, -0.5]);
        let x = Tensor::from_vec(&[1, 3], vec![1., 2., 3.]);
        let y = d.forward(&x, false);
        assert_eq!(y.data(), &[1. + 3. + 0.5, 2. + 3. - 0.5]);
    }

    #[test]
    fn numerical_gradient_check() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut d = Dense::new_he(4, 3, &mut rng);
        let x = Tensor::from_vec(&[2, 4], (0..8).map(|i| 0.1 * i as f32 - 0.3).collect());
        // Loss = sum(y) so dL/dy = ones.
        let y = d.forward(&x, true);
        let ones = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
        let dx = d.backward(&ones);

        let eps = 1e-3f32;
        // Check dL/dx numerically.
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp: f32 = d.forward(&xp, false).data().iter().sum();
            let lm: f32 = d.forward(&xm, false).data().iter().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 1e-2,
                "dx[{i}] numeric {num} analytic {}",
                dx.data()[i]
            );
        }
        // Check dL/dW numerically.
        let analytic_dw = d.params()[0].grad.clone();
        for i in 0..analytic_dw.len() {
            let orig = d.weight.value.data()[i];
            d.weight.value.data_mut()[i] = orig + eps;
            let lp: f32 = d.forward(&x, false).data().iter().sum();
            d.weight.value.data_mut()[i] = orig - eps;
            let lm: f32 = d.forward(&x, false).data().iter().sum();
            d.weight.value.data_mut()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - analytic_dw.data()[i]).abs() < 1e-2,
                "dW[{i}] numeric {num} analytic {}",
                analytic_dw.data()[i]
            );
        }
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = Dense::new_he(2, 2, &mut rng);
        let x = Tensor::from_vec(&[1, 2], vec![1., 1.]);
        let g = Tensor::from_vec(&[1, 2], vec![1., 1.]);
        d.forward(&x, true);
        d.backward(&g);
        let g1 = d.params()[0].grad.clone();
        d.forward(&x, true);
        d.backward(&g);
        let g2 = d.params()[0].grad.clone();
        for (a, b) in g1.data().iter().zip(g2.data()) {
            assert!((b - 2.0 * a).abs() < 1e-6, "accumulation failed");
        }
        d.params_mut()[0].zero_grad();
        assert!(d.params()[0].grad.data().iter().all(|&v| v == 0.0));
    }
}
