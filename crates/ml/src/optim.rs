//! Optimizers: plain SGD and Adam (the paper trains with Adam, lr 1e-4).

use crate::layer::Param;

/// Gradient-based parameter update rule.
pub trait Optimizer {
    /// Applies one update step to `params` using their accumulated
    /// gradients, then zeroes the gradients. The slice must have the same
    /// composition on every call (per-parameter state is positional).
    fn step(&mut self, params: &mut [&mut Param]);
}

/// Vanilla stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        for p in params {
            let lr = self.lr;
            for (v, g) in p.value.data_mut().iter_mut().zip(p.grad.data()) {
                *v -= lr * g;
            }
            p.zero_grad();
        }
    }
}

/// Adam (Kingma & Ba). Defaults match the paper: `lr = 1e-4`,
/// `β1 = 0.9`, `β2 = 0.999`, `ε = 1e-8`.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with the paper's hyperparameters and the given learning rate.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The paper's optimizer: Adam with lr 1e-4.
    pub fn paper_default() -> Self {
        Self::new(1e-4)
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.is_empty() {
            self.m = params.iter().map(|p| vec![0.0; p.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        assert_eq!(self.m.len(), params.len(), "parameter set changed");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            assert_eq!(self.m[i].len(), p.len(), "parameter {i} resized");
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            for ((val, &g), (mi, vi)) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(m.iter_mut().zip(v.iter_mut()))
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let mhat = *mi / b1t;
                let vhat = *vi / b2t;
                *val -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn quad_param(x0: f32) -> Param {
        Param::new(Tensor::from_vec(&[1, 1], vec![x0]))
    }

    /// Minimize f(x) = x^2 ; gradient 2x.
    fn run<O: Optimizer>(opt: &mut O, x0: f32, iters: usize) -> f32 {
        let mut p = quad_param(x0);
        for _ in 0..iters {
            let x = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * x;
            opt.step(&mut [&mut p]);
        }
        p.value.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = run(&mut Sgd::new(0.1), 5.0, 100);
        assert!(x.abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = run(&mut Adam::new(0.1), 5.0, 500);
        assert!(x.abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut p = quad_param(1.0);
        p.grad.data_mut()[0] = 3.0;
        Sgd::new(0.1).step(&mut [&mut p]);
        assert_eq!(p.grad.data()[0], 0.0);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the very first Adam step has magnitude ~lr.
        let mut p = quad_param(1.0);
        p.grad.data_mut()[0] = 0.5;
        let mut a = Adam::new(0.01);
        a.step(&mut [&mut p]);
        let delta: f32 = 1.0 - p.value.data()[0];
        assert!((delta - 0.01).abs() < 1e-4, "delta {delta}");
    }

    #[test]
    #[should_panic(expected = "parameter set changed")]
    fn adam_rejects_changing_param_count() {
        let mut a = Adam::new(0.01);
        let mut p1 = quad_param(1.0);
        a.step(&mut [&mut p1]);
        let mut p2 = quad_param(1.0);
        a.step(&mut [&mut p1, &mut p2]);
    }
}
