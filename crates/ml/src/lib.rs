//! # p2pfl-ml — from-scratch ML substrate
//!
//! The reproduced paper trains a small CNN (Fig. 5, ~1.25 M parameters)
//! with Adam on MNIST/CIFAR-10 under three data distributions. This crate
//! provides everything needed to drive those experiments in pure Rust:
//!
//! * [`tensor::Tensor`] — dense row-major `f32` tensors with a
//!   cache-friendly matrix product;
//! * [`layers`] — dense, conv2d (im2col), 2×2 max-pool, ReLU, dropout,
//!   flatten, each with hand-written backprop (grad-checked in tests);
//! * [`model::Sequential`] — layer stack with flat-parameter export/import,
//!   the bridge to the aggregation protocols;
//! * [`models`] — the paper's Fig. 5 CNN (parameter count asserted), a
//!   small CNN, and MLPs for tractable full sweeps;
//! * [`optim`] — SGD and Adam (paper settings);
//! * [`loss`] — softmax cross-entropy and accuracy;
//! * [`data`] — deterministic synthetic MNIST/CIFAR stand-ins and the
//!   paper's IID / Non-IID(5%) / Non-IID(0%) partitioners;
//! * [`metrics`] — batched evaluation and the figures' moving average.
//!
//! ```
//! use p2pfl_ml::{data, models, optim::Adam};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let train = data::features_like(16, 64, 7);
//! let mut model = models::mlp(&[16, 32, 10], &mut rng);
//! let mut opt = Adam::paper_default();
//! let (x, y) = train.full_batch();
//! let (loss, _acc) = model.train_batch(&x, &y, &mut opt);
//! assert!(loss.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod init;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod models;
pub mod optim;
pub mod reference;
pub mod tensor;

pub use layer::{Layer, Param};
pub use model::Sequential;
pub use tensor::Tensor;
