//! The [`Layer`] abstraction and trainable [`Param`]s.

use crate::tensor::Tensor;

/// A trainable parameter: value plus accumulated gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient of the loss w.r.t. `value`, accumulated by `backward`.
    pub grad: Tensor,
}

impl Param {
    /// Wraps an initial value with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Zeroes the gradient.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// One differentiable network layer.
///
/// `forward` caches whatever `backward` needs; `backward` consumes the
/// gradient w.r.t. the layer output and returns the gradient w.r.t. the
/// layer input, accumulating parameter gradients along the way. Layers
/// are `Send` so whole models can move across worker threads (the
/// two-layer system trains its peers in parallel).
pub trait Layer: Send {
    /// Forward pass. `train` toggles training-only behavior (dropout).
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Backward pass; must be preceded by a `forward` with `train = true`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// The layer's trainable parameters (empty for stateless layers).
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Mutable access to the trainable parameters.
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Human-readable layer name for summaries.
    fn name(&self) -> &'static str;
}
