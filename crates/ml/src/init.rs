//! Weight initializers.

use crate::tensor::Tensor;
use rand::Rng;

/// Samples one standard-normal value via Box-Muller.
pub fn randn<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
}

/// He (Kaiming) normal initialization: std = sqrt(2 / fan_in). The right
/// choice before ReLU activations, used for all conv and hidden dense
/// layers of the Fig. 5 CNN.
pub fn he_normal<R: Rng + ?Sized>(shape: &[usize], fan_in: usize, rng: &mut R) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    let n: usize = shape.iter().product();
    Tensor::from_vec(shape, (0..n).map(|_| randn(rng) * std).collect())
}

/// Xavier/Glorot uniform initialization: U(-a, a) with
/// a = sqrt(6 / (fan_in + fan_out)). Used for the softmax output layer.
pub fn xavier_uniform<R: Rng + ?Sized>(
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut R,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let n: usize = shape.iter().product();
    Tensor::from_vec(shape, (0..n).map(|_| rng.random_range(-a..a)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn he_has_expected_std() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = he_normal(&[100, 100], 100, &mut rng);
        let mean: f32 = t.data().iter().sum::<f32>() / 10_000.0;
        let var: f32 = t.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 10_000.0;
        let expected = 2.0 / 100.0;
        assert!((var - expected).abs() < expected * 0.1, "var {var}");
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = (6.0f32 / 20.0).sqrt();
        let t = xavier_uniform(&[10, 10], 10, 10, &mut rng);
        assert!(t.data().iter().all(|x| x.abs() < a));
    }

    #[test]
    fn randn_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f32> = (0..20_000).map(|_| randn(&mut rng)).collect();
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / xs.len() as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
