//! Evaluation helpers and the moving-average smoothing the paper's figures
//! apply to accuracy/loss curves.

use crate::data::Dataset;
use crate::model::Sequential;

/// Evaluates `(mean loss, accuracy)` over a dataset in batches of
/// `batch_size` (to bound memory for image-shaped data).
pub fn evaluate(model: &mut Sequential, data: &Dataset, batch_size: usize) -> (f64, f64) {
    assert!(batch_size > 0, "batch size must be positive");
    let n = data.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mut loss_sum = 0.0f64;
    let mut correct = 0.0f64;
    let mut done = 0usize;
    while done < n {
        let end = (done + batch_size).min(n);
        let idx: Vec<usize> = (done..end).collect();
        let (x, y) = data.gather(&idx);
        let (loss, acc) = model.eval_batch(&x, &y);
        let b = (end - done) as f64;
        loss_sum += loss as f64 * b;
        correct += acc * b;
        done = end;
    }
    (loss_sum / n as f64, correct / n as f64)
}

/// Simple trailing moving average with a fixed window, matching the
/// smoothing used in the paper's Figs. 6–9.
#[derive(Debug, Clone)]
pub struct MovingAverage {
    window: usize,
    values: Vec<f64>,
}

impl MovingAverage {
    /// A moving average over the last `window` observations.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        MovingAverage {
            window,
            values: Vec::new(),
        }
    }

    /// Pushes an observation and returns the current smoothed value.
    pub fn push(&mut self, v: f64) -> f64 {
        self.values.push(v);
        self.value()
    }

    /// The current smoothed value (mean of the last `window` pushes).
    pub fn value(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let start = self.values.len().saturating_sub(self.window);
        let tail = &self.values[start..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    /// Applies the same smoothing to a whole series.
    pub fn smooth(window: usize, series: &[f64]) -> Vec<f64> {
        let mut ma = MovingAverage::new(window);
        series.iter().map(|&v| ma.push(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synthetic;
    use crate::models::mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn evaluate_untrained_is_chance() {
        let d = synthetic(&[16], 4, 200, 0.5, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = mlp(&[16, 8, 4], &mut rng);
        let (loss, acc) = evaluate(&mut m, &d, 32);
        assert!(loss > 0.5, "untrained loss {loss}");
        assert!(acc < 0.6, "untrained accuracy {acc}");
    }

    #[test]
    fn evaluate_batches_equals_full() {
        let d = synthetic(&[8], 3, 50, 0.5, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = mlp(&[8, 3], &mut rng);
        let (l1, a1) = evaluate(&mut m, &d, 7);
        let (l2, a2) = evaluate(&mut m, &d, 50);
        assert!((l1 - l2).abs() < 1e-5);
        assert!((a1 - a2).abs() < 1e-9);
    }

    #[test]
    fn moving_average_smooths() {
        let mut ma = MovingAverage::new(2);
        assert_eq!(ma.push(1.0), 1.0);
        assert_eq!(ma.push(3.0), 2.0);
        assert_eq!(ma.push(5.0), 4.0);
        assert_eq!(
            MovingAverage::smooth(2, &[1.0, 3.0, 5.0]),
            vec![1.0, 2.0, 4.0]
        );
    }

    #[test]
    fn empty_dataset_evaluates_to_zero() {
        let d = Dataset::new(vec![4], 2, vec![], vec![]);
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = mlp(&[4, 2], &mut rng);
        assert_eq!(evaluate(&mut m, &d, 8), (0.0, 0.0));
    }
}
