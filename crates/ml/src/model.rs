//! Sequential model container with flat-parameter import/export.
//!
//! The aggregation protocols treat a model as an opaque flat `f64` vector;
//! [`Sequential::params_flat`] / [`Sequential::set_params_flat`] are that
//! bridge.

use crate::layer::{Layer, Param};
use crate::loss::{accuracy, softmax_cross_entropy};
use crate::optim::Optimizer;
use crate::tensor::Tensor;

/// A stack of layers executed in order.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// An empty model.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Forward pass through all layers.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for l in &mut self.layers {
            cur = l.forward(&cur, train);
        }
        cur
    }

    /// Backward pass through all layers (after a `forward(_, true)`).
    pub fn backward(&mut self, grad: &Tensor) {
        let mut cur = grad.clone();
        for l in self.layers.iter_mut().rev() {
            cur = l.backward(&cur);
        }
    }

    /// All trainable parameters, in layer order.
    pub fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Mutable access to all trainable parameters, in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// One training step on a batch: forward, loss, backward, optimizer
    /// update. Returns `(loss, accuracy)` on the batch.
    pub fn train_batch<O: Optimizer>(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        opt: &mut O,
    ) -> (f32, f64) {
        let logits = self.forward(x, true);
        let (loss, grad) = softmax_cross_entropy(&logits, labels);
        let acc = accuracy(&logits, labels);
        self.backward(&grad);
        let mut params = self.params_mut();
        opt.step(&mut params);
        (loss, acc)
    }

    /// Evaluates `(mean loss, accuracy)` on a batch without training.
    pub fn eval_batch(&mut self, x: &Tensor, labels: &[usize]) -> (f32, f64) {
        let logits = self.forward(x, false);
        let (loss, _) = softmax_cross_entropy(&logits, labels);
        (loss, accuracy(&logits, labels))
    }

    /// Exports every parameter as one flat `f64` vector (layer order).
    pub fn params_flat(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        for p in self.params() {
            out.extend(p.value.data().iter().map(|&x| x as f64));
        }
        out
    }

    /// Imports a flat parameter vector produced by [`Self::params_flat`]
    /// (or an aggregate of such vectors). Panics on length mismatch.
    pub fn set_params_flat(&mut self, flat: &[f64]) {
        let expected = self.num_params();
        assert_eq!(
            flat.len(),
            expected,
            "expected {expected} params, got {}",
            flat.len()
        );
        let mut off = 0;
        for p in self.params_mut() {
            let n = p.len();
            for (dst, &src) in p.value.data_mut().iter_mut().zip(&flat[off..off + n]) {
                *dst = src as f32;
            }
            off += n;
        }
    }

    /// One line per layer: name and parameter count.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        for l in &self.layers {
            let n: usize = l.params().iter().map(|p| p.len()).sum();
            s.push_str(&format!("{:<12} {:>10} params\n", l.name(), n));
        }
        s.push_str(&format!("{:<12} {:>10} total\n", "", self.num_params()));
        s
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::optim::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new()
            .push(Dense::new_he(2, 16, &mut rng))
            .push(Relu::new())
            .push(Dense::new_xavier(16, 2, &mut rng))
    }

    #[test]
    fn param_round_trip() {
        let m = tiny_model(1);
        let flat = m.params_flat();
        assert_eq!(flat.len(), m.num_params());
        let mut m2 = tiny_model(2);
        m2.set_params_flat(&flat);
        assert_eq!(m2.params_flat(), flat);
    }

    #[test]
    fn learns_xor() {
        let mut m = tiny_model(3);
        let x = Tensor::from_vec(&[4, 2], vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let labels = [0usize, 1, 1, 0];
        let mut opt = Sgd::new(0.5);
        let mut last = f32::INFINITY;
        for _ in 0..500 {
            let (loss, _) = m.train_batch(&x, &labels, &mut opt);
            last = loss;
        }
        assert!(last < 0.05, "final loss {last}");
        let (_, acc) = m.eval_batch(&x, &labels);
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn num_params_matches_layers() {
        let m = tiny_model(4);
        // 2*16 + 16 + 16*2 + 2
        assert_eq!(m.num_params(), 32 + 16 + 32 + 2);
        assert!(m.summary().contains("dense"));
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn set_params_flat_rejects_bad_length() {
        let mut m = tiny_model(5);
        m.set_params_flat(&[0.0; 3]);
    }
}
