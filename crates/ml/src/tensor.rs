//! A minimal dense tensor for CPU training.
//!
//! Row-major `f32` storage with an explicit shape. Only the operations the
//! paper's CNN/MLP need are implemented — 2-D matrix product, transpose,
//! broadcasting bias addition, elementwise maps — all in safe Rust. The
//! matrix product is cache-blocked over the inner dimension (ikj loop
//! order), which is enough to train the Fig. 5 CNN on synthetic data.

use std::fmt;

/// A dense row-major tensor of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// An all-zero tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Builds a tensor from raw data; `data.len()` must equal the shape
    /// product.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            n,
            "data length {} != shape product {n}",
            data.len()
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the raw data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the raw data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape changes element count");
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// Number of rows when viewed as a 2-D matrix.
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "not a matrix");
        self.shape[0]
    }

    /// Number of columns when viewed as a 2-D matrix.
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "not a matrix");
        self.shape[1]
    }

    /// Element accessor for 2-D tensors.
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Mutable element accessor for 2-D tensors.
    pub fn at2_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        &mut self.data[r * self.shape[1] + c]
    }

    /// Matrix product `self (m×k) · other (k×n) -> (m×n)`.
    ///
    /// Row-blocked ikj kernel: four rows of the left operand advance
    /// together, so every row of `other` streamed from memory feeds four
    /// output rows instead of one (4× less B-matrix bandwidth), while the
    /// contiguous inner loop over `j` stays auto-vectorizable. Each output
    /// element still accumulates in ascending-`k` order, so the result is
    /// bit-identical to the plain ikj loop (and within float-reassociation
    /// error of [`crate::reference::matmul_naive`], the test oracle).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "lhs not a matrix");
        assert_eq!(other.shape.len(), 2, "rhs not a matrix");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(
            k, k2,
            "inner dimensions differ: lhs {:?} vs rhs {:?}",
            self.shape, other.shape
        );
        let mut out = vec![0.0f32; m * n];
        const MR: usize = 4; // rows of A advanced per pass over B
        let mut i = 0;
        while i + MR <= m {
            let (r0, rest) = out[i * n..].split_at_mut(n);
            let (r1, rest) = rest.split_at_mut(n);
            let (r2, rest) = rest.split_at_mut(n);
            let r3 = &mut rest[..n];
            for p in 0..k {
                let a0 = self.data[i * k + p];
                let a1 = self.data[(i + 1) * k + p];
                let a2 = self.data[(i + 2) * k + p];
                let a3 = self.data[(i + 3) * k + p];
                let b_row = &other.data[p * n..(p + 1) * n];
                for (j, &b) in b_row.iter().enumerate() {
                    r0[j] += a0 * b;
                    r1[j] += a1 * b;
                    r2[j] += a2 * b;
                    r3[j] += a3 * b;
                }
            }
            i += MR;
        }
        // Remainder rows (m not a multiple of the row block).
        for i in i..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Tensor::from_vec(&[m, n], out)
    }

    /// Transpose of a 2-D tensor.
    pub fn transposed(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "not a matrix");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(&[n, m], out)
    }

    /// Adds `bias` (length = last dim) to every row of a 2-D tensor.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(self.shape.len(), 2, "not a matrix");
        let n = self.shape[1];
        assert_eq!(bias.len(), n, "bias length mismatch");
        for row in self.data.chunks_exact_mut(n) {
            for (x, b) in row.iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Elementwise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise sum with another tensor of identical shape.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scales every element.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Sum over rows of a 2-D tensor, yielding a vector of length `cols`.
    pub fn sum_rows(&self) -> Vec<f32> {
        assert_eq!(self.shape.len(), 2, "not a matrix");
        let n = self.shape[1];
        let mut out = vec![0.0f32; n];
        for row in self.data.chunks_exact(n) {
            for (o, x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![3., -1., 2., 5.]);
        let i = Tensor::from_vec(&[2, 2], vec![1., 0., 0., 1.]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transposed().transposed(), a);
        assert_eq!(a.transposed().data(), &[1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn broadcast_and_sums() {
        let mut a = Tensor::from_vec(&[2, 2], vec![0., 0., 1., 1.]);
        a.add_row_broadcast(&[10., 20.]);
        assert_eq!(a.data(), &[10., 20., 11., 21.]);
        assert_eq!(a.sum_rows(), vec![21., 41.]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = a.reshaped(&[3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ: lhs [2, 3] vs rhs [2, 3]")]
    fn matmul_dimension_mismatch_panics_with_both_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_row_block_remainder_matches_reference() {
        // 5, 6, 7 rows exercise the 1-, 2-, and 3-row tails after the
        // 4-row blocked passes.
        for m in [1usize, 2, 3, 5, 6, 7, 9] {
            let a = Tensor::from_vec(&[m, 3], (0..m * 3).map(|i| i as f32 * 0.5 - 1.0).collect());
            let b = Tensor::from_vec(&[3, 4], (0..12).map(|i| (i as f32).cos()).collect());
            let fast = a.matmul(&b);
            let slow = crate::reference::matmul_naive(&a, &b);
            for (x, y) in fast.data().iter().zip(slow.data()) {
                assert!((x - y).abs() < 1e-5, "m={m}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn map_scale_norm() {
        let mut a = Tensor::from_vec(&[1, 2], vec![3., 4.]);
        assert_eq!(a.norm(), 5.0);
        a.map_inplace(|x| x * 2.0);
        assert_eq!(a.data(), &[6., 8.]);
        a.scale(0.5);
        assert_eq!(a.data(), &[3., 4.]);
    }
}
