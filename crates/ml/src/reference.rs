//! Naive oracle kernels.
//!
//! Textbook, obviously-correct implementations of the hot-path kernels:
//! the triple-loop matrix product and the direct 7-deep convolution nest.
//! They exist for two consumers only —
//!
//! * the differential property tests (`tests/kernel_diff.rs`), which check
//!   the optimized kernels against these within float-reassociation error
//!   across randomized shapes, and
//! * the `p2pfl-bench --bin hotpath` harness, which reports the optimized
//!   kernels' speedup over them (the perf-gate acceptance ratio).
//!
//! Nothing on a production path may call into this module.

use crate::tensor::Tensor;

/// Classic ijk triple-loop matrix product: one dot product per output
/// element, striding down columns of `b`. The slow oracle for
/// [`Tensor::matmul`].
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "lhs not a matrix");
    assert_eq!(b.shape().len(), 2, "rhs not a matrix");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(
        k,
        k2,
        "inner dimensions differ: lhs {:?} vs rhs {:?}",
        a.shape(),
        b.shape()
    );
    let (ad, bd) = (a.data(), b.data());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += ad[i * k + p] * bd[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(&[m, n], out)
}

/// Direct 7-deep-loop 2-D convolution forward over `[B, C, H, W]` with an
/// `[out_c, in_c * k * k]`-shaped weight (the layout [`crate::layers::Conv2d`]
/// stores transposed as `[in_c * k * k, out_c]`) — here the weight is taken
/// in the layer's `[fan_in, out_c]` layout directly. Stride 1, zero padding
/// `pad`. The oracle for the im2col forward path.
pub fn conv2d_naive_forward(
    x: &Tensor,
    weight: &Tensor, // [in_c * k * k, out_c]
    bias: &[f32],    // [out_c]
    k: usize,
    pad: usize,
) -> Tensor {
    let s = x.shape();
    assert_eq!(s.len(), 4, "conv input must be [B, C, H, W]");
    let (b, c, h, w) = (s[0], s[1], s[2], s[3]);
    let out_c = weight.shape()[1];
    assert_eq!(weight.shape()[0], c * k * k, "weight fan-in mismatch");
    assert_eq!(bias.len(), out_c, "bias length mismatch");
    let (oh, ow) = (h + 2 * pad + 1 - k, w + 2 * pad + 1 - k);
    let (xd, wd) = (x.data(), weight.data());
    let mut out = vec![0.0f32; b * out_c * oh * ow];
    for bi in 0..b {
        for oc in 0..out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias[oc];
                    for ci in 0..c {
                        for ky in 0..k {
                            let iy = (oy + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox + kx) as isize - pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xv = xd[((bi * c + ci) * h + iy as usize) * w + ix as usize];
                                let wv = wd[((ci * k + ky) * k + kx) * out_c + oc];
                                acc += xv * wv;
                            }
                        }
                    }
                    out[((bi * out_c + oc) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    Tensor::from_vec(&[b, out_c, oh, ow], out)
}

/// Direct-loop gradients of [`conv2d_naive_forward`] w.r.t. the input and
/// the weight, given upstream `grad_out` of shape `[B, out_c, OH, OW]`.
/// Returns `(dx, dw)` with `dw` in the layer's `[in_c * k * k, out_c]`
/// layout. The oracle for the col2im backward path.
pub fn conv2d_naive_backward(
    x: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    k: usize,
    pad: usize,
) -> (Tensor, Tensor) {
    let s = x.shape();
    let (b, c, h, w) = (s[0], s[1], s[2], s[3]);
    let out_c = weight.shape()[1];
    let (oh, ow) = (h + 2 * pad + 1 - k, w + 2 * pad + 1 - k);
    assert_eq!(grad_out.shape(), &[b, out_c, oh, ow], "grad shape mismatch");
    let (xd, wd, gd) = (x.data(), weight.data(), grad_out.data());
    let mut dx = vec![0.0f32; b * c * h * w];
    let mut dw = vec![0.0f32; c * k * k * out_c];
    for bi in 0..b {
        for oc in 0..out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = gd[((bi * out_c + oc) * oh + oy) * ow + ox];
                    for ci in 0..c {
                        for ky in 0..k {
                            let iy = (oy + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox + kx) as isize - pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xi = ((bi * c + ci) * h + iy as usize) * w + ix as usize;
                                let wi = ((ci * k + ky) * k + kx) * out_c + oc;
                                dx[xi] += g * wd[wi];
                                dw[wi] += g * xd[xi];
                            }
                        }
                    }
                }
            }
        }
    }
    (
        Tensor::from_vec(&[b, c, h, w], dx),
        Tensor::from_vec(&[c * k * k, out_c], dw),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_matmul_known_values() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul_naive(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn naive_conv_identity_kernel() {
        // Center-pixel kernel reproduces the input exactly.
        let mut w = vec![0.0f32; 9];
        w[4] = 1.0;
        let weight = Tensor::from_vec(&[9, 1], w);
        let x = Tensor::from_vec(&[1, 1, 3, 3], (1..=9).map(|i| i as f32).collect());
        let y = conv2d_naive_forward(&x, &weight, &[0.0], 3, 1);
        assert_eq!(y.data(), x.data());
    }
}
