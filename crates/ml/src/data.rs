//! Datasets: synthetic stand-ins for MNIST/CIFAR-10 plus the paper's three
//! partitioning regimes (IID, Non-IID 5 %, Non-IID 0 %).
//!
//! No dataset files are available offline, so we generate deterministic
//! class-prototype data: each class has a random prototype vector and
//! samples are `prototype + σ·noise`. This preserves exactly the effects
//! the paper measures — label-skew across peers slows FedAvg-style
//! convergence, IID data converges fastest — while keeping full sweeps
//! tractable on CPU (see DESIGN.md, substitutions table).

use crate::init::randn;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An in-memory labeled dataset of fixed-shape samples.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Per-sample shape (without the batch dimension).
    pub sample_shape: Vec<usize>,
    /// Number of label classes.
    pub num_classes: usize,
    samples: Vec<f32>, // all samples concatenated
    labels: Vec<usize>,
}

impl Dataset {
    /// Builds a dataset from raw parts.
    pub fn new(
        sample_shape: Vec<usize>,
        num_classes: usize,
        samples: Vec<f32>,
        labels: Vec<usize>,
    ) -> Self {
        let per: usize = sample_shape.iter().product();
        assert_eq!(
            samples.len(),
            per * labels.len(),
            "sample buffer size mismatch"
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        Dataset {
            sample_shape,
            num_classes,
            samples,
            labels,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Scalars per sample.
    pub fn sample_dim(&self) -> usize {
        self.sample_shape.iter().product()
    }

    /// The label vector.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Assembles the samples at `indices` into a batch tensor
    /// `[B, ...sample_shape]` plus their labels.
    pub fn gather(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let per = self.sample_dim();
        let mut data = Vec::with_capacity(indices.len() * per);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(&self.samples[i * per..(i + 1) * per]);
            labels.push(self.labels[i]);
        }
        let mut shape = vec![indices.len()];
        shape.extend_from_slice(&self.sample_shape);
        (Tensor::from_vec(&shape, data), labels)
    }

    /// The whole dataset as one batch.
    pub fn full_batch(&self) -> (Tensor, Vec<usize>) {
        let idx: Vec<usize> = (0..self.len()).collect();
        self.gather(&idx)
    }

    /// A new dataset containing only the samples at `indices`.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let per = self.sample_dim();
        let mut samples = Vec::with_capacity(indices.len() * per);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            samples.extend_from_slice(&self.samples[i * per..(i + 1) * per]);
            labels.push(self.labels[i]);
        }
        Dataset {
            sample_shape: self.sample_shape.clone(),
            num_classes: self.num_classes,
            samples,
            labels,
        }
    }

    /// Shuffled minibatch index lists for one epoch.
    pub fn minibatch_indices<R: Rng + ?Sized>(
        &self,
        batch_size: usize,
        rng: &mut R,
    ) -> Vec<Vec<usize>> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        // Fisher-Yates.
        for i in (1..idx.len()).rev() {
            let j = rng.random_range(0..=i);
            idx.swap(i, j);
        }
        idx.chunks(batch_size).map(|c| c.to_vec()).collect()
    }

    /// Per-class sample counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.num_classes];
        for &l in &self.labels {
            h[l] += 1;
        }
        h
    }
}

/// Deterministic class-prototype synthetic dataset: class `c` has a random
/// prototype in `[-1, 1]^d`, and each sample is `prototype + noise·N(0,1)`.
/// Labels cycle so classes are balanced.
pub fn synthetic(
    sample_shape: &[usize],
    num_classes: usize,
    count: usize,
    noise: f32,
    seed: u64,
) -> Dataset {
    let dim: usize = sample_shape.iter().product();
    let mut rng = StdRng::seed_from_u64(seed);
    let prototypes: Vec<Vec<f32>> = (0..num_classes)
        .map(|_| (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect())
        .collect();
    let mut samples = Vec::with_capacity(count * dim);
    let mut labels = Vec::with_capacity(count);
    for i in 0..count {
        let c = i % num_classes;
        labels.push(c);
        for &p in &prototypes[c] {
            samples.push(p + noise * randn(&mut rng));
        }
    }
    Dataset::new(sample_shape.to_vec(), num_classes, samples, labels)
}

/// CIFAR-10-shaped synthetic data: `[3, 32, 32]`, 10 classes.
pub fn cifar_like(count: usize, seed: u64) -> Dataset {
    synthetic(&[3, 32, 32], 10, count, 0.8, seed)
}

/// MNIST-shaped synthetic data padded to 32×32: `[1, 32, 32]`, 10 classes.
pub fn mnist_like(count: usize, seed: u64) -> Dataset {
    synthetic(&[1, 32, 32], 10, count, 0.5, seed)
}

/// Low-dimensional feature-space stand-in used by the full accuracy sweeps:
/// `[dim]`, 10 classes, with enough noise that convergence takes tens of
/// rounds (so round-over-round curves are informative).
pub fn features_like(dim: usize, count: usize, seed: u64) -> Dataset {
    synthetic(&[dim], 10, count, 1.0, seed)
}

/// Splits a dataset into `(train, test)` with `train_count` samples in the
/// train part. Synthetic datasets cycle labels, so a prefix split stays
/// class-balanced. Panics if `train_count > len`.
pub fn train_test_split(d: &Dataset, train_count: usize) -> (Dataset, Dataset) {
    assert!(train_count <= d.len(), "train_count exceeds dataset size");
    let train_idx: Vec<usize> = (0..train_count).collect();
    let test_idx: Vec<usize> = (train_count..d.len()).collect();
    (d.subset(&train_idx), d.subset(&test_idx))
}

/// The paper's three training-data distributions (Sec. VI-A1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Partition {
    /// Identically and independently distributed across peers.
    Iid,
    /// Each peer draws `main_fraction` of its data from two random "main"
    /// classes and the rest uniformly from the other classes. The paper's
    /// "Non-IID (5%)" is `main_fraction = 0.95`; "Non-IID (0%)" is `1.0`.
    NonIid {
        /// Fraction of each peer's data coming from its two main classes.
        main_fraction: f64,
    },
}

impl Partition {
    /// The paper's "Non-IID data (5%)" setting.
    pub const NON_IID_5: Partition = Partition::NonIid {
        main_fraction: 0.95,
    };
    /// The paper's "Non-IID data (0%)" setting.
    pub const NON_IID_0: Partition = Partition::NonIid { main_fraction: 1.0 };

    /// Short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            Partition::Iid => "IID",
            Partition::NonIid { main_fraction } => {
                if *main_fraction >= 1.0 {
                    "Non-IID(0%)"
                } else {
                    "Non-IID(5%)"
                }
            }
        }
    }
}

/// Splits `dataset` across `num_peers` peers under `partition`.
///
/// IID deals a global shuffle round-robin. Non-IID assigns each peer two
/// main classes (spread evenly over the class set, tie-broken by `seed`)
/// and fills `main_fraction` of the peer's quota from those class pools,
/// the remainder uniformly from the others; pools recycle if exhausted so
/// every peer receives its full quota.
pub fn partition_dataset(
    dataset: &Dataset,
    num_peers: usize,
    partition: Partition,
    seed: u64,
) -> Vec<Dataset> {
    assert!(num_peers > 0, "need at least one peer");
    let mut rng = StdRng::seed_from_u64(seed);
    match partition {
        Partition::Iid => {
            let mut idx: Vec<usize> = (0..dataset.len()).collect();
            for i in (1..idx.len()).rev() {
                let j = rng.random_range(0..=i);
                idx.swap(i, j);
            }
            let mut per_peer: Vec<Vec<usize>> = vec![Vec::new(); num_peers];
            for (pos, &i) in idx.iter().enumerate() {
                per_peer[pos % num_peers].push(i);
            }
            per_peer.iter().map(|ix| dataset.subset(ix)).collect()
        }
        Partition::NonIid { main_fraction } => {
            assert!(
                (0.0..=1.0).contains(&main_fraction),
                "fraction out of range"
            );
            let c = dataset.num_classes;
            // Index pools per class, shuffled.
            let mut pools: Vec<Vec<usize>> = vec![Vec::new(); c];
            for (i, &l) in dataset.labels().iter().enumerate() {
                pools[l].push(i);
            }
            for pool in &mut pools {
                for i in (1..pool.len()).rev() {
                    let j = rng.random_range(0..=i);
                    pool.swap(i, j);
                }
            }
            let mut cursors = vec![0usize; c];
            let mut draw = |class: usize, rng: &mut StdRng| -> usize {
                let pool = &pools[class];
                assert!(!pool.is_empty(), "class {class} has no samples");
                let at = cursors[class];
                cursors[class] = (at + 1) % pool.len();
                let _ = rng;
                pool[at]
            };
            let quota = dataset.len() / num_peers;
            let offset = rng.random_range(0..c);
            (0..num_peers)
                .map(|p| {
                    // Two main classes, rotated so class coverage is even.
                    let m1 = (offset + 2 * p) % c;
                    let m2 = (offset + 2 * p + 1) % c;
                    let main_quota = (quota as f64 * main_fraction).round() as usize;
                    let mut indices = Vec::with_capacity(quota);
                    for i in 0..main_quota {
                        let cls = if i % 2 == 0 { m1 } else { m2 };
                        indices.push(draw(cls, &mut rng));
                    }
                    for _ in main_quota..quota {
                        let cls = loop {
                            let cand = rng.random_range(0..c);
                            if cand != m1 && cand != m2 {
                                break cand;
                            }
                        };
                        indices.push(draw(cls, &mut rng));
                    }
                    dataset.subset(&indices)
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic_and_balanced() {
        let a = synthetic(&[8], 4, 100, 0.5, 7);
        let b = synthetic(&[8], 4, 100, 0.5, 7);
        assert_eq!(a.labels(), b.labels());
        let (xa, _) = a.full_batch();
        let (xb, _) = b.full_batch();
        assert_eq!(xa.data(), xb.data());
        assert_eq!(a.class_histogram(), vec![25; 4]);
    }

    #[test]
    fn gather_shapes() {
        let d = synthetic(&[2, 3], 2, 10, 0.1, 1);
        let (x, y) = d.gather(&[0, 5, 9]);
        assert_eq!(x.shape(), &[3, 2, 3]);
        assert_eq!(y.len(), 3);
    }

    #[test]
    fn iid_partition_splits_evenly() {
        let d = synthetic(&[4], 10, 200, 0.1, 2);
        let parts = partition_dataset(&d, 7, Partition::Iid, 3);
        assert_eq!(parts.len(), 7);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 200);
        let max = parts.iter().map(|p| p.len()).max().unwrap();
        let min = parts.iter().map(|p| p.len()).min().unwrap();
        assert!(max - min <= 1, "IID split uneven: {min}..{max}");
    }

    #[test]
    fn iid_partition_covers_all_classes_per_peer() {
        let d = synthetic(&[4], 10, 1000, 0.1, 4);
        let parts = partition_dataset(&d, 5, Partition::Iid, 5);
        for p in &parts {
            assert!(p.class_histogram().iter().all(|&h| h > 0));
        }
    }

    #[test]
    fn non_iid_0_has_exactly_two_classes() {
        let d = synthetic(&[4], 10, 1000, 0.1, 6);
        let parts = partition_dataset(&d, 5, Partition::NON_IID_0, 7);
        for p in &parts {
            let nonzero = p.class_histogram().iter().filter(|&&h| h > 0).count();
            assert_eq!(nonzero, 2, "histogram {:?}", p.class_histogram());
        }
    }

    #[test]
    fn non_iid_5_is_mostly_two_classes() {
        let d = synthetic(&[4], 10, 2000, 0.1, 8);
        let parts = partition_dataset(&d, 5, Partition::NON_IID_5, 9);
        for p in &parts {
            let h = p.class_histogram();
            let mut sorted = h.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let main2: usize = sorted[..2].iter().sum();
            let frac = main2 as f64 / p.len() as f64;
            assert!((frac - 0.95).abs() < 0.03, "main fraction {frac}");
        }
    }

    #[test]
    fn minibatches_cover_everything_once() {
        let d = synthetic(&[4], 2, 103, 0.1, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let batches = d.minibatch_indices(10, &mut rng);
        assert_eq!(batches.len(), 11);
        let mut seen: Vec<usize> = batches.concat();
        seen.sort_unstable();
        assert_eq!(seen, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn partition_labels() {
        assert_eq!(Partition::Iid.label(), "IID");
        assert_eq!(Partition::NON_IID_5.label(), "Non-IID(5%)");
        assert_eq!(Partition::NON_IID_0.label(), "Non-IID(0%)");
    }

    #[test]
    fn prototype_signal_is_learnable() {
        // Nearest-prototype classification on clean prototypes should beat
        // chance by a wide margin: the classes are genuinely separable.
        let d = synthetic(&[16], 4, 400, 0.5, 12);
        let (x, y) = d.full_batch();
        // Estimate class means from the data itself.
        let mut means = vec![vec![0.0f32; 16]; 4];
        let mut counts = vec![0usize; 4];
        for (i, &l) in y.iter().enumerate() {
            counts[l] += 1;
            for (j, m) in means[l].iter_mut().enumerate() {
                *m += x.data()[i * 16 + j];
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        let mut correct = 0;
        for (i, &l) in y.iter().enumerate() {
            let s = &x.data()[i * 16..(i + 1) * 16];
            let best = (0..4)
                .min_by(|&a, &b| {
                    let da: f32 = s.iter().zip(&means[a]).map(|(v, m)| (v - m).powi(2)).sum();
                    let db: f32 = s.iter().zip(&means[b]).map(|(v, m)| (v - m).powi(2)).sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == l {
                correct += 1;
            }
        }
        let acc = correct as f64 / y.len() as f64;
        assert!(acc > 0.8, "nearest-prototype accuracy {acc}");
    }
}
