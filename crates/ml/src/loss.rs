//! Softmax cross-entropy loss (the paper's categorical cross-entropy).

use crate::tensor::Tensor;

/// Row-wise softmax of a `[B, C]` logit matrix, numerically stabilized.
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().len(), 2, "logits must be [B, C]");
    let c = logits.shape()[1];
    let mut out = logits.clone();
    for row in out.data_mut().chunks_exact_mut(c) {
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Mean categorical cross-entropy between `[B, C]` logits and integer
/// labels, plus the gradient w.r.t. the logits (`(softmax - onehot)/B`).
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let b = logits.shape()[0];
    let c = logits.shape()[1];
    assert_eq!(labels.len(), b, "label count mismatch");
    let probs = softmax(logits);
    let mut loss = 0.0f64;
    let mut grad = probs.clone();
    let gd = grad.data_mut();
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < c, "label {y} out of range for {c} classes");
        let p = probs.data()[i * c + y].max(1e-12);
        loss -= (p as f64).ln();
        gd[i * c + y] -= 1.0;
    }
    grad.scale(1.0 / b as f32);
    ((loss / b as f64) as f32, grad)
}

/// Fraction of rows whose argmax matches the label.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let b = logits.shape()[0];
    let c = logits.shape()[1];
    assert_eq!(labels.len(), b, "label count mismatch");
    let mut correct = 0usize;
    for (i, &y) in labels.iter().enumerate() {
        let row = &logits.data()[i * c..(i + 1) * c];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(j, _)| j)
            .unwrap();
        if pred == y {
            correct += 1;
        }
    }
    correct as f64 / b as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let l = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 1000., 1000., 1000.]);
        let p = softmax(&l);
        for row in p.data().chunks_exact(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(row.iter().all(|&v| v.is_finite()));
        }
    }

    #[test]
    fn loss_of_perfect_prediction_is_small() {
        let l = Tensor::from_vec(&[1, 3], vec![100., 0., 0.]);
        let (loss, _) = softmax_cross_entropy(&l, &[0]);
        assert!(loss < 1e-6);
        let (loss_bad, _) = softmax_cross_entropy(&l, &[1]);
        assert!(loss_bad > 10.0);
    }

    #[test]
    fn uniform_logits_give_ln_c() {
        let l = Tensor::zeros(&[4, 10]);
        let (loss, _) = softmax_cross_entropy(&l, &[0, 3, 5, 9]);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_numerical() {
        let l = Tensor::from_vec(&[2, 3], vec![0.3, -0.2, 0.9, 1.0, 0.0, -1.0]);
        let labels = [2usize, 0];
        let (_, g) = softmax_cross_entropy(&l, &labels);
        let eps = 1e-3f32;
        for i in 0..l.len() {
            let mut lp = l.clone();
            lp.data_mut()[i] += eps;
            let mut lm = l.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels);
            let (fm, _) = softmax_cross_entropy(&lm, &labels);
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - g.data()[i]).abs() < 1e-3,
                "g[{i}] numeric {num} analytic {}",
                g.data()[i]
            );
        }
    }

    #[test]
    fn accuracy_counts_argmax() {
        let l = Tensor::from_vec(&[2, 2], vec![0.9, 0.1, 0.2, 0.8]);
        assert_eq!(accuracy(&l, &[0, 1]), 1.0);
        assert_eq!(accuracy(&l, &[1, 1]), 0.5);
    }
}
