//! Model builders: the paper's Fig. 5 CNN and compact models for sweeps.

use crate::layers::{Conv2d, Dense, Dropout, Flatten, MaxPool2x2, Relu};
use crate::model::Sequential;
use rand::Rng;

/// Hidden width of the first dense layer in [`paper_cnn`], chosen so the
/// total parameter count lands at the paper's stated ~1.25 M.
pub const PAPER_CNN_HIDDEN: usize = 288;

/// Parameter count of [`paper_cnn`] (asserted by a unit test).
pub const PAPER_CNN_PARAMS: usize = 1_248_394;

/// The paper's Fig. 5 CNN for CIFAR-10-shaped inputs (`[B, 3, 32, 32]`):
/// two blocks of (conv3×3 → ReLU → conv3×3 → ReLU → maxpool → dropout)
/// with 32 then 64 channels, followed by dense(288)+ReLU+dropout and a
/// dense softmax head. ~1.25 M parameters, matching the figure caption.
pub fn paper_cnn<R: Rng + ?Sized>(rng: &mut R, dropout_seed: u64) -> Sequential {
    Sequential::new()
        // Block 1.
        .push(Conv2d::new(3, 32, 3, 1, rng))
        .push(Relu::new())
        .push(Conv2d::new(32, 32, 3, 1, rng))
        .push(Relu::new())
        .push(MaxPool2x2::new())
        .push(Dropout::new(0.25, dropout_seed))
        // Block 2.
        .push(Conv2d::new(32, 64, 3, 1, rng))
        .push(Relu::new())
        .push(Conv2d::new(64, 64, 3, 1, rng))
        .push(Relu::new())
        .push(MaxPool2x2::new())
        .push(Dropout::new(0.25, dropout_seed.wrapping_add(1)))
        // Head.
        .push(Flatten::new())
        .push(Dense::new_he(64 * 8 * 8, PAPER_CNN_HIDDEN, rng))
        .push(Relu::new())
        .push(Dropout::new(0.5, dropout_seed.wrapping_add(2)))
        .push(Dense::new_xavier(PAPER_CNN_HIDDEN, 10, rng))
}

/// A scaled-down CNN with the same topology for MNIST-shaped inputs
/// (`[B, 1, 28, 28]` is padded to 32×32 by the dataset loader here we
/// expect `[B, 1, 32, 32]`).
pub fn small_cnn<R: Rng + ?Sized>(rng: &mut R, dropout_seed: u64) -> Sequential {
    Sequential::new()
        .push(Conv2d::new(1, 8, 3, 1, rng))
        .push(Relu::new())
        .push(MaxPool2x2::new())
        .push(Dropout::new(0.25, dropout_seed))
        .push(Conv2d::new(8, 16, 3, 1, rng))
        .push(Relu::new())
        .push(MaxPool2x2::new())
        .push(Flatten::new())
        .push(Dense::new_he(16 * 8 * 8, 64, rng))
        .push(Relu::new())
        .push(Dense::new_xavier(64, 10, rng))
}

/// A multilayer perceptron over flat feature vectors: `dims` lists the
/// layer widths from input to output, e.g. `[64, 32, 10]`. Used for the
/// tractable full-parameter accuracy sweeps (Figs. 6–9), where the paper's
/// findings depend on the aggregation structure, not the model family.
pub fn mlp<R: Rng + ?Sized>(dims: &[usize], rng: &mut R) -> Sequential {
    assert!(dims.len() >= 2, "mlp needs at least input and output dims");
    let mut m = Sequential::new();
    for i in 0..dims.len() - 1 {
        let last = i == dims.len() - 2;
        if last {
            m = m.push(Dense::new_xavier(dims[i], dims[i + 1], rng));
        } else {
            m = m
                .push(Dense::new_he(dims[i], dims[i + 1], rng))
                .push(Relu::new());
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_cnn_has_1_25m_params() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = paper_cnn(&mut rng, 0);
        // Fig. 5 caption: "relatively small with 1.25M parameters".
        assert_eq!(m.num_params(), PAPER_CNN_PARAMS);
        let mm = m.num_params() as f64 / 1e6;
        assert!((mm - 1.25).abs() < 0.01, "got {mm:.3}M");
    }

    #[test]
    fn paper_cnn_forward_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = paper_cnn(&mut rng, 0);
        let x = Tensor::zeros(&[2, 3, 32, 32]);
        let y = m.forward(&x, false);
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn paper_cnn_backward_runs() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = paper_cnn(&mut rng, 0);
        let x = Tensor::zeros(&[1, 3, 32, 32]);
        let mut opt = crate::optim::Adam::paper_default();
        let (loss, _) = m.train_batch(&x, &[3], &mut opt);
        assert!(loss.is_finite());
    }

    #[test]
    fn small_cnn_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = small_cnn(&mut rng, 0);
        let x = Tensor::zeros(&[2, 1, 32, 32]);
        assert_eq!(m.forward(&x, false).shape(), &[2, 10]);
    }

    #[test]
    fn mlp_structure() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = mlp(&[64, 32, 10], &mut rng);
        assert_eq!(m.num_params(), 64 * 32 + 32 + 32 * 10 + 10);
    }
}
