//! Allocation-budget test: the steady-state aggregation loop — summing
//! incoming shares into a preallocated accumulator and applying streamed
//! pairwise masks — must not allocate at all. Everything it needs is
//! allocated up front; per-round work is pure arithmetic over existing
//! buffers. A regression here (say, a temporary vector sneaking into an
//! axpy) shows up as a nonzero count, not as a silent slowdown.

use p2pfl_bench::alloc::{count_allocs, CountingAlloc};
use p2pfl_secagg::WeightVector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

// The allocation counter is process-wide, so the two tests must not
// overlap: the sanity test's Vec would land inside the zero-assert
// test's measured window when the harness runs them on parallel threads.
static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn steady_state_share_aggregation_does_not_allocate() {
    let _serial = SERIAL.lock().unwrap();
    let mut rng = StdRng::seed_from_u64(0xA110C);
    let dim = 4096;
    // Setup phase (allocations fine here): the shares a subgroup leader
    // holds and the accumulator it reuses every round.
    let shares: Vec<WeightVector> = (0..8)
        .map(|_| WeightVector::random(dim, 1.0, &mut rng))
        .collect();
    let mut acc = WeightVector::zeros(dim);

    let ((), allocs) = count_allocs(|| {
        // Ten rounds of the leader's hot loop: zero the accumulator,
        // fold in every share, then rescale into the mean — the exact
        // arithmetic `secure_average` performs per round, over buffers
        // that already exist.
        for _ in 0..10 {
            acc.as_mut_slice().fill(0.0);
            for s in &shares {
                acc.add_assign(s);
            }
            acc.add_scaled(&shares[0], -1.0);
            acc.add_assign(&shares[0]);
            acc.scale(1.0 / shares.len() as f64);
        }
    });
    assert!(acc.is_finite());
    assert_eq!(
        allocs, 0,
        "steady-state aggregation loop allocated {allocs} times"
    );
}

#[test]
fn counting_allocator_sees_allocations() {
    // Sanity check that the counter is actually installed: an allocating
    // workload must register, or the zero-assertion above proves nothing.
    let _serial = SERIAL.lock().unwrap();
    let ((), allocs) = count_allocs(|| {
        let v: Vec<u64> = (0..1000).collect();
        std::hint::black_box(v);
    });
    assert!(allocs >= 1, "allocator counter not wired up");
}
