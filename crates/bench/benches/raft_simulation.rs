//! Criterion benchmarks of the Raft substrate: simulator throughput for a
//! full leader election and for crash recovery of the two-layer backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2pfl_hierraft::experiments::subgroup_leader_crash_trial;
use p2pfl_raft::{NullStateMachine, RaftActor, RaftConfig, RaftMsg};
use p2pfl_simnet::{NodeId, Sim, SimDuration, SimTime};
use std::hint::black_box;

fn elect_once(cluster_size: u32, seed: u64) -> u64 {
    let mut sim: Sim<RaftMsg<u64>> = Sim::new(seed);
    let ids: Vec<NodeId> = (0..cluster_size).map(NodeId).collect();
    for &id in &ids {
        let cfg = RaftConfig::paper(
            id,
            ids.clone(),
            SimDuration::from_millis(100),
            seed + id.0 as u64,
        );
        sim.add_node(RaftActor::new(cfg, NullStateMachine));
    }
    sim.run_until(SimTime::from_secs(2));
    sim.metrics().total().msgs
}

fn bench_election(c: &mut Criterion) {
    let mut group = c.benchmark_group("raft_election_2s_sim");
    for n in [3u32, 5, 9, 25] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(elect_once(n, seed))
            });
        });
    }
    group.finish();
}

fn bench_two_layer_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_layer_crash_trial");
    group.sample_size(10);
    group.bench_function("t100_full_trial", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(subgroup_leader_crash_trial(100, seed))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_election, bench_two_layer_recovery);
criterion_main!(benches);
