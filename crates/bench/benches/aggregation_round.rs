//! Criterion benchmarks of complete training rounds: the two-layer system
//! against the one-layer SAC baseline, plus the X-layer tree — the
//! compute-side counterpart of the paper's communication argument.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2pfl::experiment::{build_system, SweepSpec};
use p2pfl::multilayer::MultilayerTree;
use p2pfl::system::SystemKind;
use p2pfl_ml::data::Partition;
use p2pfl_secagg::{ShareScheme, WeightVector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_round_n10");
    group.sample_size(10);
    let spec = SweepSpec {
        n_total: 10,
        rounds: 1,
        ..SweepSpec::default()
    };
    group.bench_function("two_layer_n3", |b| {
        let (mut sys, test) = build_system(&spec, SystemKind::TwoLayer, 3, 1.0, Partition::Iid);
        let mut round = 0usize;
        b.iter(|| {
            round += 1;
            black_box(sys.run_round(round, &test))
        });
    });
    group.bench_function("original_sac", |b| {
        let (mut sys, test) = build_system(&spec, SystemKind::OriginalSac, 10, 1.0, Partition::Iid);
        let mut round = 0usize;
        b.iter(|| {
            round += 1;
            black_box(sys.run_round(round, &test))
        });
    });
    group.finish();
}

fn bench_multilayer(c: &mut Criterion) {
    let mut group = c.benchmark_group("multilayer_aggregate");
    group.sample_size(10);
    for layers in [1usize, 2, 3] {
        let tree = MultilayerTree::build(3, layers);
        let mut rng = StdRng::seed_from_u64(1);
        let models: Vec<WeightVector> = (0..tree.total_peers())
            .map(|_| WeightVector::random(5_000, 1.0, &mut rng))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(layers), &layers, |b, _| {
            let mut r = StdRng::seed_from_u64(2);
            b.iter(|| black_box(tree.aggregate(&models, ShareScheme::Masked, &mut r)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_round, bench_multilayer);
criterion_main!(benches);
