//! Criterion benchmarks for the ML substrate: the matrix product that
//! dominates training, the im2col convolution, and a full train step of
//! the paper's Fig. 5 CNN.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2pfl_ml::models::{paper_cnn, small_cnn};
use p2pfl_ml::optim::Adam;
use p2pfl_ml::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [64usize, 128, 256] {
        let a = Tensor::from_vec(&[n, n], (0..n * n).map(|i| (i % 7) as f32).collect());
        let b = Tensor::from_vec(&[n, n], (0..n * n).map(|i| (i % 5) as f32).collect());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_cnn_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("cnn_train_step");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(1);

    let mut small = small_cnn(&mut rng, 0);
    let x = Tensor::zeros(&[8, 1, 32, 32]);
    let labels = [0usize, 1, 2, 3, 4, 5, 6, 7];
    let mut opt = Adam::new(1e-3);
    group.bench_function("small_cnn_batch8", |b| {
        b.iter(|| black_box(small.train_batch(&x, &labels, &mut opt)));
    });

    let mut paper = paper_cnn(&mut rng, 0);
    let xc = Tensor::zeros(&[2, 3, 32, 32]);
    let lc = [0usize, 1];
    let mut optc = Adam::paper_default();
    group.bench_function("paper_cnn_batch2", |b| {
        b.iter(|| black_box(paper.train_batch(&xc, &lc, &mut optc)));
    });
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_cnn_steps);
criterion_main!(benches);
