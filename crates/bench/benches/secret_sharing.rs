//! Criterion micro-benchmarks for the share primitives (Alg. 1 and the
//! fixed-point extension): throughput of splitting a Fig. 5-sized model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use p2pfl_secagg::{divide_masked, divide_scaled, fixed, WeightVector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_divide(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let dims = [10_000usize, 100_000];
    let mut group = c.benchmark_group("divide");
    for dim in dims {
        let w = WeightVector::random(dim, 1.0, &mut rng);
        group.throughput(Throughput::Elements(dim as u64));
        group.bench_with_input(BenchmarkId::new("scaled_n5", dim), &w, |b, w| {
            let mut r = StdRng::seed_from_u64(2);
            b.iter(|| black_box(divide_scaled(w, 5, &mut r)));
        });
        group.bench_with_input(BenchmarkId::new("masked_n5", dim), &w, |b, w| {
            let mut r = StdRng::seed_from_u64(3);
            b.iter(|| black_box(divide_masked(w, 5, &mut r)));
        });
        group.bench_with_input(BenchmarkId::new("ring_n5", dim), &w, |b, w| {
            let mut r = StdRng::seed_from_u64(4);
            b.iter(|| black_box(fixed::divide_ring(w, 5, &mut r)));
        });
    }
    group.finish();
}

fn bench_share_count_scaling(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let w = WeightVector::random(50_000, 1.0, &mut rng);
    let mut group = c.benchmark_group("divide_vs_n");
    for n in [3usize, 5, 10, 30] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut r = StdRng::seed_from_u64(6);
            b.iter(|| black_box(divide_masked(&w, n, &mut r)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_divide, bench_share_count_scaling);
criterion_main!(benches);
