//! Criterion benchmarks of the end-to-end SAC protocols: original Alg. 2,
//! leader-collect, fault-tolerant Alg. 4 (with and without dropouts), and
//! the exact fixed-point variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2pfl_secagg::{
    fault_tolerant_secure_average, fixed, secure_average, secure_average_with_leader, DropPhase,
    Dropout, ShareScheme, WeightVector,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const DIM: usize = 20_000;

fn models(n: usize) -> Vec<WeightVector> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..n)
        .map(|_| WeightVector::random(DIM, 1.0, &mut rng))
        .collect()
}

fn bench_sac_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("sac_variants_n5");
    let ms = models(5);
    group.bench_function("alg2_broadcast", |b| {
        let mut r = StdRng::seed_from_u64(1);
        b.iter(|| black_box(secure_average(&ms, ShareScheme::Masked, &mut r)));
    });
    group.bench_function("leader_collect", |b| {
        let mut r = StdRng::seed_from_u64(2);
        b.iter(|| {
            black_box(secure_average_with_leader(
                &ms,
                0,
                ShareScheme::Masked,
                &mut r,
            ))
        });
    });
    group.bench_function("alg4_k3_clean", |b| {
        let mut r = StdRng::seed_from_u64(3);
        b.iter(|| {
            black_box(
                fault_tolerant_secure_average(&ms, 3, 0, &[], ShareScheme::Masked, &mut r).unwrap(),
            )
        });
    });
    group.bench_function("alg4_k3_one_dropout", |b| {
        let mut r = StdRng::seed_from_u64(4);
        let drops = [Dropout {
            peer: 4,
            phase: DropPhase::AfterShare,
        }];
        b.iter(|| {
            black_box(
                fault_tolerant_secure_average(&ms, 3, 0, &drops, ShareScheme::Masked, &mut r)
                    .unwrap(),
            )
        });
    });
    group.bench_function("fixed_point_exact", |b| {
        let mut r = StdRng::seed_from_u64(5);
        b.iter(|| black_box(fixed::secure_average_exact(&ms, &mut r)));
    });
    group.finish();
}

fn bench_sac_peer_scaling(c: &mut Criterion) {
    // The quadratic blowup of Alg. 2 that motivates the whole paper.
    let mut group = c.benchmark_group("alg2_vs_peers");
    group.sample_size(10);
    for n in [5usize, 10, 20, 30] {
        let ms = models(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &ms, |b, ms| {
            let mut r = StdRng::seed_from_u64(6);
            b.iter(|| black_box(secure_average(ms, ShareScheme::Masked, &mut r)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sac_variants, bench_sac_peer_scaling);
criterion_main!(benches);
