//! Fig. 13 — total communication cost per aggregation as the number of
//! subgroups `m` varies, N = 30 peers, Fig. 5 CNN (|w| = 1.25 M × 32 bit).
//!
//! Paper claims to reproduce exactly (these are closed-form): cost at
//! m = 6 is 7.12 Gb, about one-tenth of the one-layer SAC (m = 1); the
//! curve flattens for m ≥ 10 where subgroups shrink below 3 peers (and
//! SAC stops being secure / Raft fault tolerant).
//!
//! The closed-form Eq. 4 values are cross-checked against the byte ledger
//! of the executable protocol in `crates/core/tests/cost_vs_protocol.rs`.
//!
//! Run: `cargo run -rp p2pfl-bench --bin fig13_cost_vs_m`.

use p2pfl::cost::{even_groups, gigabits, sac_baseline_units, two_layer_units_exact, ModelSize};
use p2pfl_bench::{banner, print_csv, Args};

fn main() {
    let args = Args::parse();
    let n_total = args.get_usize("peers", 30);
    let model = ModelSize {
        params: args.get_u64("params", ModelSize::PAPER_CNN.params),
    };

    banner(
        "Fig. 13: communication cost per aggregation vs m (N = 30)",
        "m = 6 costs 7.12 Gb, ~1/10th of one-layer SAC; flat for m >= 10",
    );
    let baseline_bits = sac_baseline_units(n_total) * model.bits();
    let mut rows = Vec::new();
    for m in 1..=n_total {
        let groups = even_groups(n_total, m);
        let units = if m == 1 {
            // m = 1 degenerates to the original one-layer SAC (Alg. 2 with
            // full subtotal broadcast), per the figure caption.
            sac_baseline_units(n_total)
        } else {
            two_layer_units_exact(&groups)
        };
        let bits = units * model.bits();
        let min_group = groups.iter().min().unwrap();
        rows.push(format!(
            "{m},{:.3},{:.2},{min_group}",
            gigabits(bits),
            baseline_bits / bits,
        ));
    }
    print_csv(
        "m,cost_gigabits,improvement_over_sac,min_subgroup_size",
        rows,
    );

    let g6 = gigabits(two_layer_units_exact(&even_groups(n_total, 6)) * model.bits());
    println!("\n# m = 6 cost: {g6:.2} Gb (paper: 7.12 Gb)");
    println!(
        "# one-layer SAC (m = 1): {:.2} Gb -> ratio {:.2}x (paper: ~10x)",
        gigabits(baseline_bits),
        baseline_bits / (two_layer_units_exact(&even_groups(n_total, 6)) * model.bits())
    );
    println!("# note: m >= 10 leaves subgroups of < 3 peers, where SAC is no longer");
    println!("#       secure and the subgroup Raft is no longer fault tolerant.");
}
