//! Fig. 14 — total communication cost per aggregation under various
//! k-out-of-n settings versus the total peer count N, Fig. 5 CNN weights.
//!
//! Paper claims to reproduce exactly (closed-form Eq. 5): the two-layer
//! system is 14.75× more efficient at (n,k,N) = (3,3,30), **10.36×** at
//! (3,2,30) — the abstract's headline — 4.29× at (5,3,30), and 23.80× at
//! (3,3,50) where the baseline costs 196.13 Gb and ours 8.24 Gb.
//!
//! Run: `cargo run -rp p2pfl-bench --bin fig14_cost_kn`.

use p2pfl::cost::{
    even_groups, gigabits, sac_baseline_units, two_layer_ft_units_eq5, two_layer_ft_units_exact,
    ModelSize,
};
use p2pfl_bench::{banner, print_csv, Args};
use p2pfl_secagg::pairwise::pairwise_round_units;

fn units_for(n: usize, k: usize, n_total: usize) -> f64 {
    if n_total.is_multiple_of(n) {
        two_layer_ft_units_eq5(n, k, n_total)
    } else {
        // The paper does not specify its accounting for N not divisible by
        // n; we use exact uneven groups (documented in EXPERIMENTS.md).
        two_layer_ft_units_exact(&even_groups(n_total, n_total.div_ceil(n)), k)
    }
}

fn main() {
    let args = Args::parse();
    let model = ModelSize {
        params: args.get_u64("params", ModelSize::PAPER_CNN.params),
    };

    banner(
        "Fig. 14: communication cost under k-out-of-n settings vs N",
        "paper ratios at N=30: 14.75x (3-3), 10.36x (3-2), 4.29x (5-3); 23.80x at (3-3, N=50)",
    );
    let settings: [(usize, usize); 4] = [(3, 3), (3, 2), (5, 5), (5, 3)];
    let mut rows = Vec::new();
    for n_total in [10usize, 20, 30, 40, 50] {
        let baseline = sac_baseline_units(n_total);
        rows.push(format!(
            "baseline n=N,{n_total},{:.3},1.00",
            gigabits(baseline * model.bits())
        ));
        for (n, k) in settings {
            let units = units_for(n, k, n_total);
            rows.push(format!(
                "{k}-{n},{n_total},{:.3},{:.2}",
                gigabits(units * model.bits()),
                baseline / units
            ));
        }
        // Context row: the server-based pairwise-mask design (related work
        // ref 8) is O(N) per round but reintroduces the central server and
        // its single point of failure — the problem the paper removes.
        let pw = pairwise_round_units(n_total);
        rows.push(format!(
            "bonawitz-server,{n_total},{:.3},{:.2}",
            gigabits(pw * model.bits()),
            baseline / pw
        ));
    }
    print_csv("setting,peers,cost_gigabits,improvement_over_sac", rows);

    println!("\n# headline checks (paper -> this build):");
    for (n, k, nt, paper) in [
        (3, 3, 30, 14.75),
        (3, 2, 30, 10.36),
        (5, 3, 30, 4.29),
        (3, 3, 20, 8.84),
    ] {
        let ratio = sac_baseline_units(nt) / units_for(n, k, nt);
        println!("#   (n={n}, k={k}, N={nt}): paper {paper}x -> {ratio:.2}x");
    }
    let b50 = sac_baseline_units(50) * model.bits();
    let ours50 = units_for(3, 3, 50) * model.bits();
    println!(
        "#   N=50 baseline {:.2} Gb (paper 196.13), ours (3-3) {:.2} Gb (paper 8.24), ratio {:.2}x (paper 23.80)",
        gigabits(b50),
        gigabits(ours50),
        b50 / ours50
    );
}
