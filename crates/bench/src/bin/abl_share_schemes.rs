//! Ablation — share-construction schemes: the paper's Alg. 1 (random
//! convex scaling), standard additive masking, and the exact fixed-point
//! ring extension. Compares reconstruction error at Fig. 5 scale, wire
//! size, and what a single share leaks.
//!
//! Run: `cargo run -rp p2pfl-bench --bin abl_share_schemes`.

use p2pfl_bench::{banner, print_csv, Args};
use p2pfl_secagg::{
    divide_masked, divide_scaled, fixed, secure_average, ShareScheme, WeightVector,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let dim = args.get_usize("dim", 1_248_394); // the Fig. 5 CNN
    let n = args.get_usize("n", 5);
    let mut rng = StdRng::seed_from_u64(args.get_u64("seed", 1));

    banner(
        "Ablation: share-construction schemes at Fig. 5 model scale",
        "Alg. 1 scaled shares leak direction; masked/ring shares do not",
    );
    let w = WeightVector::random(dim, 0.5, &mut rng);

    let mut rows = Vec::new();

    // Paper Alg. 1: scaled shares.
    let t = Instant::now();
    let shares = divide_scaled(&w, n, &mut rng);
    let dt = t.elapsed().as_secs_f64() * 1e3;
    let err = WeightVector::sum(shares.iter()).linf_distance(&w);
    rows.push(format!(
        "scaled(Alg.1),{dim},{n},{err:.3e},{},{dt:.1},direction",
        4 * dim
    ));

    // Masked additive shares.
    let t = Instant::now();
    let shares = divide_masked(&w, n, &mut rng);
    let dt = t.elapsed().as_secs_f64() * 1e3;
    let err = WeightVector::sum(shares.iter()).linf_distance(&w);
    rows.push(format!(
        "masked,{dim},{n},{err:.3e},{},{dt:.1},none(bounded)",
        4 * dim
    ));

    // Fixed-point ring shares.
    let t = Instant::now();
    let shares = fixed::divide_ring(&w, n, &mut rng);
    let dt = t.elapsed().as_secs_f64() * 1e3;
    let err = fixed::reconstruct_sum(&[shares]).linf_distance(&w);
    rows.push(format!(
        "ring(Q32.24),{dim},{n},{err:.3e},{},{dt:.1},none(exact)",
        8 * dim
    ));

    print_csv(
        "scheme,dim,shares,reconstruction_linf_error,bytes_per_share,split_ms,leak",
        rows,
    );

    // End-to-end SAC error accumulation over many peers.
    println!("\n# end-to-end SAC average error vs plain mean (dim 10k):");
    let models: Vec<WeightVector> = (0..30)
        .map(|_| WeightVector::random(10_000, 0.5, &mut rng))
        .collect();
    let plain = WeightVector::mean(models.iter());
    for (label, scheme) in [
        ("scaled", ShareScheme::Scaled),
        ("masked", ShareScheme::Masked),
    ] {
        let out = secure_average(&models, scheme, &mut rng);
        println!(
            "#   {label:<8} N=30: {:.3e}",
            out.average.linf_distance(&plain)
        );
    }
    let exact = fixed::secure_average_exact(&models, &mut rng);
    println!(
        "#   {:<8} N=30: {:.3e}",
        "ring",
        exact.linf_distance(&plain)
    );
    println!("# masked shares pay ~1e-10 float error for real secrecy; the ring");
    println!("# scheme is exact and information-theoretically hiding at 2x wire size.");
}
