//! Fig. 6 — moving average of test accuracy: two-layer SAC (n = 3, 5) vs
//! the original one-layer SAC baseline (n = N), N = 10 peers, under IID /
//! Non-IID(5%) / Non-IID(0%) data.
//!
//! Paper claim to reproduce (shape): the two-layer curves coincide with
//! the baseline (differences < ~2%), and accuracy orders
//! IID > Non-IID(5%) > Non-IID(0%).
//!
//! Run: `cargo run -rp p2pfl-bench --bin fig06_accuracy -- --rounds 1000`
//! for the paper's full horizon (default 200 keeps CI fast). The model is
//! the MLP-on-synthetic-features stand-in documented in DESIGN.md.

use p2pfl::experiment::{accuracy_sweep, final_accuracy, SweepSpec};
use p2pfl_bench::{banner, print_csv, Args};
use p2pfl_ml::data::Partition;
use p2pfl_ml::metrics::MovingAverage;

fn main() {
    let args = Args::parse();
    let rounds = args.get_usize("rounds", 200);
    let seed = args.get_u64("seed", 42);
    let window = args.get_usize("window", 20);

    banner(
        "Fig. 6: test accuracy, two-layer SAC vs original SAC (N = 10)",
        "two-layer matches baseline accuracy; IID > Non-IID(5%) > Non-IID(0%)",
    );
    let spec = SweepSpec {
        n_total: 10,
        rounds,
        seed,
        ..SweepSpec::default()
    };
    let partitions = [Partition::Iid, Partition::NON_IID_5, Partition::NON_IID_0];
    let series = accuracy_sweep(&spec, &[3, 5, 10], &partitions);

    let mut rows = Vec::new();
    for s in &series {
        let smooth = MovingAverage::smooth(
            window,
            &s.records
                .iter()
                .map(|r| r.test_accuracy)
                .collect::<Vec<_>>(),
        );
        for (r, acc) in s.records.iter().zip(&smooth) {
            rows.push(format!("{},{},{:.4}", s.label, r.round, acc));
        }
    }
    print_csv("series,round,test_accuracy_ma", rows);

    println!("\n# final smoothed accuracy per series:");
    for s in &series {
        println!("#   {:<28} {:.4}", s.label, final_accuracy(s));
    }
}
