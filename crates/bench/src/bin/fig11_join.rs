//! Fig. 11 — time to detect the crashed subgroup leader, elect a new one,
//! *and* have the new leader join the FedAvg layer.
//!
//! Paper claim to reproduce (shape): the join adds a roughly constant
//! overhead on top of Fig. 10's election time (paper: +122.98 / +125.8 /
//! +144.70 / +166.09 ms across the four timeout ranges), dominated by the
//! join polling interval and a few round trips.
//!
//! Run: `cargo run -rp p2pfl-bench --bin fig11_join -- --trials 1000`.

use p2pfl_bench::{banner, print_csv, Args};
use p2pfl_hierraft::experiments::{subgroup_leader_crash_trial, Stats};

fn main() {
    let args = Args::parse();
    let trials = args.get_u64("trials", 200);
    let seed0 = args.get_u64("seed", 0);

    banner(
        "Fig. 11: subgroup leader crash -> election + FedAvg-layer join",
        "paper: join adds +122.98/+125.8/+144.70/+166.09 ms over Fig. 10",
    );
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for t in [50u64, 100, 150, 200] {
        let mut elect = Vec::new();
        let mut join = Vec::new();
        for s in 0..trials {
            if let Some(r) = subgroup_leader_crash_trial(t, seed0 + s) {
                elect.push(r.elect_ms);
                join.push(r.join_ms);
                rows.push(format!("{t}-{},{},{:.2}", 2 * t, s, r.join_ms));
            }
        }
        let e = Stats::of(&elect).expect("all trials failed");
        let j = Stats::of(&join).expect("all trials failed");
        summary.push(format!(
            "#   T={t}..{}ms: join mean {:.2}ms (elect {:.2} + delta {:.2})  min {:.2}  max {:.2}  (n={})",
            2 * t,
            j.mean,
            e.mean,
            j.mean - e.mean,
            j.min,
            j.max,
            j.count
        ));
    }
    print_csv("timeout_range_ms,trial,join_ms", rows);
    println!("\n# summary:");
    for s in summary {
        println!("{s}");
    }
}
