//! Fig. 10 — time to detect a crashed *subgroup* leader and elect a new
//! one, for follower/candidate timeouts uniform in `[T, 2T]`,
//! T ∈ {50, 100, 150, 200} ms; N = 25 peers in 5 subgroups; 15 ms links.
//!
//! Paper claim to reproduce (shape): recovery time grows roughly linearly
//! with T (paper means: 214 / 401 / 581 / 749 ms for the four ranges); the
//! distribution is concentrated within a few timeout periods.
//!
//! Run: `cargo run -rp p2pfl-bench --bin fig10_election -- --trials 1000`
//! (the paper uses 1000 trials; default 200 keeps the run short).

use p2pfl_bench::{banner, print_csv, Args};
use p2pfl_hierraft::experiments::{subgroup_leader_crash_trial, Stats};

fn main() {
    let args = Args::parse();
    let trials = args.get_u64("trials", 200);
    let seed0 = args.get_u64("seed", 0);

    banner(
        "Fig. 10: subgroup leader crash -> new leader election time",
        "paper means: 214.30 / 401.04 / 580.74 / 749.07 ms for T = 50/100/150/200",
    );
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for t in [50u64, 100, 150, 200] {
        let mut elect = Vec::new();
        for s in 0..trials {
            if let Some(r) = subgroup_leader_crash_trial(t, seed0 + s) {
                elect.push(r.elect_ms);
                rows.push(format!("{t}-{},{},{:.2}", 2 * t, s, r.elect_ms));
            }
        }
        let st = Stats::of(&elect).expect("all trials failed");
        summary.push(format!(
            "#   T={t}..{}ms: mean {:.2}ms  min {:.2}  max {:.2}  std {:.2}  (n={})",
            2 * t,
            st.mean,
            st.min,
            st.max,
            st.std_dev,
            st.count
        ));
    }
    print_csv("timeout_range_ms,trial,elect_ms", rows);
    println!("\n# summary:");
    for s in summary {
        println!("{s}");
    }
}
