//! Fig. 7 — moving average of training loss for the Fig. 6 setting
//! (N = 10; two-layer SAC with n = 3, 5 vs the n = N baseline).
//!
//! Paper claim to reproduce (shape): two-layer training loss tracks the
//! baseline; loss is lowest under IID data.
//!
//! Run: `cargo run -rp p2pfl-bench --bin fig07_loss -- --rounds 1000`.

use p2pfl::experiment::{accuracy_sweep, SweepSpec};
use p2pfl_bench::{banner, print_csv, Args};
use p2pfl_ml::data::Partition;
use p2pfl_ml::metrics::MovingAverage;

fn main() {
    let args = Args::parse();
    let rounds = args.get_usize("rounds", 200);
    let seed = args.get_u64("seed", 42);
    let window = args.get_usize("window", 20);

    banner(
        "Fig. 7: training loss, two-layer SAC vs original SAC (N = 10)",
        "two-layer loss curves coincide with the one-layer SAC baseline",
    );
    let spec = SweepSpec {
        n_total: 10,
        rounds,
        seed,
        ..SweepSpec::default()
    };
    let partitions = [Partition::Iid, Partition::NON_IID_5, Partition::NON_IID_0];
    let series = accuracy_sweep(&spec, &[3, 5, 10], &partitions);

    let mut rows = Vec::new();
    for s in &series {
        let smooth = MovingAverage::smooth(
            window,
            &s.records.iter().map(|r| r.train_loss).collect::<Vec<_>>(),
        );
        for (r, loss) in s.records.iter().zip(&smooth) {
            rows.push(format!("{},{},{:.4}", s.label, r.round, loss));
        }
    }
    print_csv("series,round,train_loss_ma", rows);

    println!("\n# final smoothed loss per series:");
    for s in &series {
        let n = s.records.len();
        let tail = &s.records[n - (n / 4).max(1)..];
        let loss = tail.iter().map(|r| r.train_loss).sum::<f64>() / tail.len() as f64;
        println!("#   {:<28} {loss:.4}", s.label);
    }
}
