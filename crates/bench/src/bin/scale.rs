//! Scale benchmark (`BENCH_scale.json`): a 1000-peer, 100-subgroup
//! two-layer secure-aggregation round on loopback TCP, every peer hosted
//! by the single-thread reactor runtime.
//!
//! Layer 1 runs 100 independent SAC subgroups (10 peers each, pairwise
//! masked, k = 5) concurrently on ONE reactor; layer 2 aggregates the 100
//! subgroup results in a second SAC group. The leader digests of both
//! layers are checked bit-for-bit against a simulator twin running the
//! same actors with the same seeds — at every scale, the async runtime
//! must compute *exactly* what the discrete-event simulator computes.
//!
//! Reported: per-subgroup round-completion latency percentiles
//! (p50/p95/p99), whole-round wall time, layer-2 latency, and bytes +
//! frames per peer from the transport's own counters.
//!
//! ```text
//! cargo run -rp p2pfl-bench --bin scale              # full: 1000 peers, writes BENCH_scale.json
//!     --quick                                        # CI-sized: 64 peers / 8 subgroups
//!     --soak                                         # chaos leg: fault plan + connection blackout
//!     --baseline BENCH_scale.json                    # fail (exit 2) on >2x median regression
//!     --out target/bench/scale_quick.json            # alternate report path
//!     --factor 2.0                                   # regression threshold
//! ```
//!
//! The checked-in `BENCH_scale.json` is the perf-gate baseline; refresh it
//! with a full (non-`--quick`) run on a quiet machine.

use p2pfl_bench::hotpath::{parse_baseline, BenchResult};
use p2pfl_bench::{banner, Args};
use p2pfl_net::{PeerHandle, Reactor, ReactorConfig};
use p2pfl_secagg::{
    SacConfig, SacEngine, SacMsg, SacPeerActor, SacPhase, ShareScheme, WeightVector,
};
use p2pfl_simnet::{FaultPlan, NodeId, Sim, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const SEED: u64 = 0x5CA1E0;
/// Seed offset separating layer-2 actor seeds from layer-1's.
const L2_SEED: u64 = SEED + 1_000_000;

#[derive(Clone, Copy)]
struct Shape {
    subgroups: usize,
    sub_size: usize,
    dim: usize,
    k: usize,
    l2_k: usize,
}

impl Shape {
    fn peers(&self) -> usize {
        self.subgroups * self.sub_size
    }
}

const FULL: Shape = Shape {
    subgroups: 100,
    sub_size: 10,
    dim: 256,
    k: 5,
    l2_k: 5,
};
const QUICK: Shape = Shape {
    subgroups: 8,
    sub_size: 8,
    dim: 32,
    k: 3,
    l2_k: 3,
};

/// The soak leg's link chaos: loss-free delay spikes + duplication, so
/// the digest invariant must survive it exactly.
fn soak_plan() -> FaultPlan {
    FaultPlan::new(SEED)
        .delay(
            SimTime::ZERO,
            SimTime::from_secs(3600),
            SimDuration::from_millis(2),
            SimDuration::ZERO,
        )
        .duplicate(SimTime::ZERO, SimTime::from_secs(3600), 0.3)
}

fn models(shape: &Shape) -> Vec<WeightVector> {
    let mut rng = StdRng::seed_from_u64(SEED + 999);
    (0..shape.peers())
        .map(|_| WeightVector::random(shape.dim, 1.0, &mut rng))
        .collect()
}

fn subgroup_ids(shape: &Shape, g: usize) -> Vec<NodeId> {
    (0..shape.sub_size)
        .map(|i| NodeId((g * shape.sub_size + i) as u32))
        .collect()
}

/// Layer-1 config for global peer `id`.
fn l1_config(shape: &Shape, id: usize, deadline: SimDuration) -> SacConfig {
    SacConfig {
        group: subgroup_ids(shape, id / shape.sub_size),
        position: id % shape.sub_size,
        leader_pos: 0,
        k: shape.k,
        scheme: ShareScheme::Masked,
        engine: SacEngine::Pairwise,
        share_deadline: deadline,
        collect_deadline: deadline,
        round_deadline: None,
        seed: SEED + id as u64,
    }
}

/// Layer-2 config: one group of all subgroup leaders, ids 0..subgroups.
fn l2_config(shape: &Shape, position: usize, deadline: SimDuration) -> SacConfig {
    SacConfig {
        group: (0..shape.subgroups as u32).map(NodeId).collect(),
        position,
        leader_pos: 0,
        k: shape.l2_k,
        scheme: ShareScheme::Masked,
        engine: SacEngine::Pairwise,
        share_deadline: deadline,
        collect_deadline: deadline,
        round_deadline: None,
        seed: L2_SEED + position as u64,
    }
}

/// The simulator twin: the full two-layer round under the discrete-event
/// simulator. Returns (per-round layer-1 leader digests, per-round
/// layer-2 digest, layer-1 results feeding the final layer-2 round).
fn sim_twin(shape: &Shape, rounds: u64) -> (Vec<Vec<u64>>, Vec<u64>) {
    let mut sim: Sim<SacMsg> = Sim::new(SEED);
    for (id, model) in models(shape).iter().enumerate() {
        let cfg = l1_config(shape, id, SimDuration::from_millis(500));
        sim.add_node(SacPeerActor::new(cfg, model.clone()));
    }
    sim.run_until_quiet(10_000);

    let mut l1_digests = Vec::new();
    let mut l2_digests = Vec::new();
    for round in 1..=rounds {
        for g in 0..shape.subgroups {
            let leader = subgroup_ids(shape, g)[0];
            sim.exec::<SacPeerActor, _, _>(leader, move |a, ctx| a.start_round(ctx, round));
        }
        sim.run_until(sim.now() + SimDuration::from_secs(30));
        let mut digests = Vec::new();
        let mut results = Vec::new();
        for g in 0..shape.subgroups {
            let leader = sim.actor::<SacPeerActor>(subgroup_ids(shape, g)[0]);
            assert_eq!(
                leader.phase,
                SacPhase::Done,
                "sim round {round} subgroup {g}: {:?}",
                leader.phase
            );
            let r = leader.result.as_ref().expect("sim leader result");
            digests.push(r.digest());
            results.push(r.clone());
        }
        l1_digests.push(digests);

        // Layer 2 for this round, in its own simulator: the subgroup
        // results become the leader-layer models.
        let mut l2: Sim<SacMsg> = Sim::new(SEED ^ round);
        for (pos, model) in results.iter().enumerate() {
            let cfg = l2_config(shape, pos, SimDuration::from_millis(500));
            l2.add_node(SacPeerActor::new(cfg, model.clone()));
        }
        l2.run_until_quiet(10_000);
        l2.exec::<SacPeerActor, _, _>(NodeId(0), |a, ctx| a.start_round(ctx, 1));
        l2.run_until(l2.now() + SimDuration::from_secs(30));
        let leader = l2.actor::<SacPeerActor>(NodeId(0));
        assert_eq!(
            leader.phase,
            SacPhase::Done,
            "sim round {round} layer 2: {:?}",
            leader.phase
        );
        l2_digests.push(leader.result.as_ref().expect("sim l2 result").digest());
    }
    (l1_digests, l2_digests)
}

type Handle = PeerHandle<SacMsg, SacPeerActor>;

fn wait_round(leader: &Handle, what: &str) -> (u64, WeightVector) {
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        let state = leader.with(|a, _| {
            (
                a.phase.clone(),
                a.result.as_ref().map(|r| (r.digest(), r.clone())),
            )
        });
        match state {
            (SacPhase::Done, Some(dr)) => return dr,
            (SacPhase::Failed(e), _) => panic!("{what} failed: {e}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "{what} stalled");
        std::thread::sleep(Duration::from_millis(5));
    }
}

struct RoundOutcome {
    /// Per-subgroup completion latency, seconds, subgroup order.
    latencies: Vec<f64>,
    /// Start of the round to the last subgroup's completion.
    wall_s: f64,
    /// Layer-1 results in subgroup order (the layer-2 inputs).
    results: Vec<WeightVector>,
}

/// Starts round `round` on every subgroup leader, polls all leaders to
/// completion, and checks every digest against the sim twin's.
fn run_l1_round(shape: &Shape, handles: &[Handle], round: u64, expected: &[u64]) -> RoundOutcome {
    let started = Instant::now();
    let mut starts = Vec::with_capacity(shape.subgroups);
    for g in 0..shape.subgroups {
        starts.push(started.elapsed());
        handles[g * shape.sub_size].with(move |a, ctx| a.start_round(ctx, round));
    }

    // Poll sweep: completion timestamps are quantized by the sweep
    // period, which is negligible against multi-second rounds.
    let mut done: Vec<Option<(Duration, u64, WeightVector)>> = vec![None; shape.subgroups];
    let deadline = Instant::now() + Duration::from_secs(600);
    while done.iter().any(Option::is_none) {
        for g in 0..shape.subgroups {
            if done[g].is_some() {
                continue;
            }
            let state = handles[g * shape.sub_size].with(|a, _| {
                (
                    a.phase.clone(),
                    a.result.as_ref().map(|r| (r.digest(), r.clone())),
                )
            });
            match state {
                (SacPhase::Done, Some((d, r))) => done[g] = Some((started.elapsed(), d, r)),
                (SacPhase::Failed(e), _) => panic!("round {round} subgroup {g} failed: {e}"),
                _ => {}
            }
        }
        assert!(Instant::now() < deadline, "round {round} stalled");
        std::thread::sleep(Duration::from_millis(2));
    }
    let wall_s = started.elapsed().as_secs_f64();

    let mut latencies = Vec::with_capacity(shape.subgroups);
    let mut results = Vec::with_capacity(shape.subgroups);
    for (g, slot) in done.into_iter().enumerate() {
        let (at, digest, result) = slot.expect("polled to completion");
        assert_eq!(
            digest, expected[g],
            "round {round} subgroup {g} diverged from the simulator"
        );
        latencies.push((at - starts[g]).as_secs_f64());
        results.push(result);
    }
    RoundOutcome {
        latencies,
        wall_s,
        results,
    }
}

/// Runs layer 2 on a fresh reactor (the layer-1 reactor must already be
/// dropped — a 100-wide full mesh plus 100 subgroup meshes would crowd
/// the fd budget). Returns the layer-2 latency in seconds.
fn run_l2_round(shape: &Shape, results: Vec<WeightVector>, expected: u64) -> f64 {
    let reactor: Reactor<SacMsg, SacPeerActor> =
        Reactor::start(ReactorConfig::default()).expect("bind layer-2 reactor");
    let handles: Vec<Handle> = results
        .into_iter()
        .enumerate()
        .map(|(pos, model)| {
            let cfg = l2_config(shape, pos, SimDuration::from_secs(300));
            reactor
                .spawn_peer(NodeId(pos as u32), SacPeerActor::new(cfg, model))
                .expect("spawn layer-2 peer")
        })
        .collect();
    let addr = reactor.local_addr();
    for a in &handles {
        for b in &handles {
            if a.node_id() != b.node_id() {
                a.add_peer(b.node_id(), addr);
            }
        }
    }
    let t = Instant::now();
    handles[0].with(|a, ctx| a.start_round(ctx, 1));
    let (digest, _) = wait_round(&handles[0], "layer-2 round");
    let latency = t.elapsed().as_secs_f64();
    assert_eq!(digest, expected, "layer 2 diverged from the simulator");
    for h in &handles {
        assert_eq!(
            h.decode_errors(),
            0,
            "layer-2 peer {:?} dropped frames",
            h.node_id()
        );
    }
    latency
}

/// Milliseconds below which a median is treated as noise: on a loaded
/// single-core runner the quick shape's round times are a few
/// milliseconds, where scheduler jitter alone exceeds 2x. A regression
/// must clear BOTH the relative factor and this absolute floor — the
/// failure mode the gate exists for (e.g. listener-backlog overflow
/// turning dials into ~1 s kernel SYN retransmits) clears the floor by
/// an order of magnitude.
const GATE_FLOOR_MS: f64 = 250.0;

/// [`p2pfl_bench::hotpath::check_regressions`] with the absolute floor.
fn gate(current: &[BenchResult], baseline: &[(String, u64)], factor: f64) -> Vec<String> {
    let floor_ns = (GATE_FLOOR_MS * 1e6) as u64;
    let mut offenders = Vec::new();
    for r in current {
        let Some((_, base)) = baseline.iter().find(|(n, _)| *n == r.name) else {
            continue;
        };
        let allowed = ((*base as f64 * factor) as u64).max(floor_ns);
        if *base > 0 && r.median_ns > allowed {
            offenders.push(format!(
                "{}: median {} ns vs baseline {} ns ({:.2}x > {factor}x allowed, floor {GATE_FLOOR_MS} ms)",
                r.name,
                r.median_ns,
                base,
                r.median_ns as f64 / *base as f64
            ));
        }
    }
    offenders
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn result(name: &str, iters: usize, median_s: f64, p95_s: f64, mean_s: f64) -> BenchResult {
    BenchResult {
        name: name.to_string(),
        iters,
        median_ns: (median_s * 1e9) as u64,
        p95_ns: (p95_s * 1e9) as u64,
        mean_ns: (mean_s * 1e9) as u64,
        bytes_per_iter: 0,
        bytes_per_sec: 0,
        allocs_per_iter: 0,
    }
}

/// Renders the report with the same `"name"`/`"median_ns"` field order as
/// the hotpath harness, so `parse_baseline` reads both schemas.
fn to_json(
    shape: &Shape,
    quick: bool,
    soak: bool,
    results: &[BenchResult],
    extra: &[String],
) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"p2pfl-bench/scale/v1\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"soak\": {soak},\n"));
    s.push_str(&format!("  \"peers\": {},\n", shape.peers()));
    s.push_str(&format!("  \"subgroups\": {},\n", shape.subgroups));
    s.push_str(&format!("  \"subgroup_size\": {},\n", shape.sub_size));
    s.push_str(&format!("  \"dim\": {},\n", shape.dim));
    s.push_str(&format!("  \"k\": {},\n", shape.k));
    for line in extra {
        s.push_str(&format!("  {line},\n"));
    }
    s.push_str("  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"median_ns\": {}, \"p95_ns\": {}, \
             \"mean_ns\": {}, \"bytes_per_iter\": {}, \"bytes_per_sec\": {}, \
             \"allocs_per_iter\": {}}}{}\n",
            r.name,
            r.iters,
            r.median_ns,
            r.p95_ns,
            r.mean_ns,
            r.bytes_per_iter,
            r.bytes_per_sec,
            r.allocs_per_iter,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// One complete two-layer run of `shape`: sim twin, layer-1 round(s) on
/// the reactor (two rounds with a mid-run blackout when `soak`), layer 2
/// on a fresh reactor, digests checked throughout. `suffix` tags the
/// benchmark names, so the quick and full shapes gate independently in
/// one baseline file.
fn run_shape(shape: &Shape, soak: bool, suffix: &str) -> (Vec<BenchResult>, Vec<String>) {
    let rounds: u64 = if soak { 2 } else { 1 };
    println!(
        "# shape{suffix}: peers={} subgroups={} sub_size={} dim={} k={} soak={soak}",
        shape.peers(),
        shape.subgroups,
        shape.sub_size,
        shape.dim,
        shape.k
    );

    println!("# simulator twin ({rounds} round(s))...");
    let (l1_expected, l2_expected) = sim_twin(shape, rounds);

    println!("# reactor: spawning {} peers...", shape.peers());
    let reactor: Reactor<SacMsg, SacPeerActor> =
        Reactor::start(ReactorConfig::default()).expect("bind reactor");
    let plan = soak_plan();
    let all_models = models(shape);
    let handles: Vec<Handle> = (0..shape.peers())
        .map(|id| {
            let actor = SacPeerActor::new(
                l1_config(shape, id, SimDuration::from_secs(300)),
                all_models[id].clone(),
            );
            if soak {
                reactor.spawn_peer_with_faults(NodeId(id as u32), actor, &plan)
            } else {
                reactor.spawn_peer(NodeId(id as u32), actor)
            }
            .expect("spawn peer")
        })
        .collect();
    let addr = reactor.local_addr();
    for g in 0..shape.subgroups {
        let ids = subgroup_ids(shape, g);
        for &a in &ids {
            for &b in &ids {
                if a != b {
                    handles[a.0 as usize].add_peer(b, addr);
                }
            }
        }
    }

    let mut outcome = run_l1_round(shape, &handles, 1, &l1_expected[0]);
    println!(
        "# round 1: {} subgroups done in {:.2}s",
        shape.subgroups, outcome.wall_s
    );

    if soak {
        // Chaos leg: sever every connection in the mesh, then run round 2
        // cold — every link must redial (with backoff) and the digests
        // must still match the simulator exactly.
        println!("# soak: severing all connections, running round 2...");
        reactor.kill_connections();
        outcome = run_l1_round(shape, &handles, 2, &l1_expected[1]);
        println!("# round 2 (post-blackout): done in {:.2}s", outcome.wall_s);
        let reconnects: u64 = handles.iter().map(|h| h.stats().reconnects).sum();
        assert!(reconnects >= 1, "blackout never exercised the redial path");
        println!("# soak: {reconnects} reconnects");
    }

    // Transport totals BEFORE tearing layer 1 down.
    let (mut bytes, mut frames, mut dropped) = (0u64, 0u64, 0u64);
    for h in &handles {
        let s = h.stats();
        bytes += s.bytes_sent;
        frames += s.frames_sent;
        dropped += s.sends_dropped;
        assert_eq!(
            h.decode_errors(),
            0,
            "peer {:?} dropped frames",
            h.node_id()
        );
    }
    assert_eq!(dropped, 0, "bounded queues overflowed during the round");
    let bytes_per_peer = bytes / shape.peers() as u64;
    let frames_per_peer = frames / shape.peers() as u64;
    println!("# traffic: {bytes_per_peer} bytes/peer, {frames_per_peer} frames/peer");

    // Free layer 1's sockets before the 100-wide layer-2 mesh.
    drop(handles);
    drop(reactor);

    let l2_s = run_l2_round(
        shape,
        outcome.results.clone(),
        l2_expected[rounds as usize - 1],
    );
    println!("# layer 2: {} leaders done in {l2_s:.2}s", shape.subgroups);

    let mut sorted = outcome.latencies.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let (p50, p95, p99) = (
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.95),
        percentile(&sorted, 0.99),
    );
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "# subgroup round latency: p50 {p50:.3}s  p95 {p95:.3}s  p99 {p99:.3}s  (wall {:.3}s)",
        outcome.wall_s
    );

    let bench_results = vec![
        result(
            &format!("subgroup_round{suffix}"),
            shape.subgroups,
            p50,
            p95,
            mean,
        ),
        result(
            &format!("whole_round{suffix}"),
            1,
            outcome.wall_s,
            outcome.wall_s,
            outcome.wall_s,
        ),
        result(&format!("layer2_round{suffix}"), 1, l2_s, l2_s, l2_s),
    ];
    let extra = vec![
        format!("\"subgroup_p99_ms{suffix}\": {:.3}", p99 * 1e3),
        format!("\"bytes_per_peer{suffix}\": {bytes_per_peer}"),
        format!("\"frames_per_peer{suffix}\": {frames_per_peer}"),
    ];
    (bench_results, extra)
}

/// A short elastic episode on the simulator-backed session: a join burst
/// doubles a 4x3 layout and the planner splits it back into band. Records
/// the converged subgroup-size histogram and the supervisor's elastic
/// counters for the report.
fn elastic_histogram(seed: u64) -> (Vec<(usize, usize)>, u64, u64, u64) {
    use p2pfl::runner::{ResilientConfig, ResilientSession};
    use p2pfl_fed::Client;
    use p2pfl_hierraft::ElasticBounds;
    use p2pfl_ml::data::{features_like, partition_dataset, train_test_split, Partition};
    use p2pfl_ml::models::mlp;

    let bounds = ElasticBounds::new(3, 6);
    let mut cfg = ResilientConfig::small(seed);
    cfg.deployment.num_subgroups = 4;
    cfg.deployment.subgroup_size = 3;
    cfg.deployment.elastic = Some(bounds);
    let n_initial = cfg.deployment.total_peers();
    let n_all = 2 * n_initial;
    let (train, test) = train_test_split(&features_like(16, n_all * 20 + 200, seed), n_all * 20);
    let parts = partition_dataset(&train, n_all, Partition::Iid, seed + 1);
    let mut rng = StdRng::seed_from_u64(seed + 2);
    let mut clients: Vec<Client> = parts
        .into_iter()
        .enumerate()
        .map(|(i, d)| {
            Client::new(
                i,
                mlp(&[16, 24, 10], &mut rng),
                d,
                5e-3,
                seed + 10 + i as u64,
            )
        })
        .collect();
    let joiners = clients.split_off(n_initial);
    let eval = mlp(&[16, 24, 10], &mut rng);
    let mut s = ResilientSession::new(cfg, clients, eval);
    s.run(2, &test);
    for c in joiners {
        s.add_peer(c);
    }
    for round in 3..=10usize {
        s.run_round(round, &test);
        if s.supervisor.splits >= 1 && s.dep.latest_topology().converged(bounds) {
            break;
        }
    }
    let t = s.dep.latest_topology();
    assert!(t.converged(bounds), "elastic episode never converged");
    let mut hist = std::collections::BTreeMap::<usize, usize>::new();
    for g in &t.groups {
        *hist.entry(g.members.len()).or_default() += 1;
    }
    (
        hist.into_iter().collect(),
        s.supervisor.splits,
        s.supervisor.merges,
        s.supervisor.rekeys,
    )
}

fn main() {
    let args = Args::parse();
    let quick = args.get_flag("quick");
    let soak = args.get_flag("soak");
    let out_path = args
        .get_str("out")
        .unwrap_or_else(|| "BENCH_scale.json".to_string());
    let factor = args.get_f64("factor", 2.0);

    banner(
        "Scale: two-layer SAC round on the single-thread reactor runtime",
        "1000 peers / 100 subgroups on loopback, digests bit-identical to the simulator",
    );

    // Quick runs gate against the baseline's `_quick` entries; a full
    // (baseline-refreshing) run measures BOTH shapes so the quick gate
    // stays meaningful from the same file.
    let mut bench_results;
    let mut extra;
    if quick {
        (bench_results, extra) = run_shape(&QUICK, soak, "_quick");
    } else {
        (bench_results, extra) = run_shape(&QUICK, false, "_quick");
        let (full_results, full_extra) = run_shape(&FULL, soak, "");
        bench_results.extend(full_results);
        extra.extend(full_extra);
    }
    extra.push("\"digest_match\": true".to_string());

    // Elastic episode: a join burst the planner must split back into
    // band; the converged subgroup-size histogram lands in the report.
    println!("# elastic episode: join burst on a 4x3 layout, recording the converged histogram...");
    let (hist, splits, merges, rekeys) = elastic_histogram(SEED ^ 0xe1a5);
    println!("# elastic: sizes {hist:?}, {splits} splits, {merges} merges, {rekeys} rekeys");
    let hist_json: Vec<String> = hist
        .iter()
        .map(|(sz, n)| format!("\"{sz}\": {n}"))
        .collect();
    extra.push(format!(
        "\"elastic_subgroup_size_hist\": {{{}}}",
        hist_json.join(", ")
    ));
    extra.push(format!("\"elastic_splits\": {splits}"));
    extra.push(format!("\"elastic_merges\": {merges}"));
    extra.push(format!("\"elastic_rekeys\": {rekeys}"));

    let shape = if quick { QUICK } else { FULL };
    let json = to_json(&shape, quick, soak, &bench_results, &extra);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create report dir");
        }
    }
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    if let Some(baseline_path) = args.get_str("baseline") {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => {
                let baseline = parse_baseline(&text);
                let offenders = gate(&bench_results, &baseline, factor);
                if offenders.is_empty() {
                    println!(
                        "perf gate: {} benchmarks within {factor}x of {baseline_path}",
                        baseline.len()
                    );
                } else {
                    eprintln!("perf gate FAILED vs {baseline_path}:");
                    for line in &offenders {
                        eprintln!("  {line}");
                    }
                    std::process::exit(2);
                }
            }
            Err(_) => {
                println!("perf gate: baseline {baseline_path} missing, skipping comparison");
            }
        }
    }
}
