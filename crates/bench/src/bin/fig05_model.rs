//! Fig. 5 — the paper's CNN architecture for CIFAR-10.
//!
//! Prints the layer summary and asserts the headline parameter count
//! (~1.25 M). Run: `cargo run -rp p2pfl-bench --bin fig05_model`.

use p2pfl_ml::models::{paper_cnn, PAPER_CNN_PARAMS};
use p2pfl_ml::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    p2pfl_bench::banner(
        "Fig. 5: CNN model architecture",
        "\"relatively small with 1.25M parameters\"; two conv blocks, two dense layers",
    );
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = paper_cnn(&mut rng, 0);
    println!("{}", model.summary());
    let params = model.num_params();
    println!("total parameters: {params} ({:.3} M)", params as f64 / 1e6);
    assert_eq!(params, PAPER_CNN_PARAMS);

    // Demonstrate a forward/backward pass on a CIFAR-shaped batch.
    let x = Tensor::zeros(&[2, 3, 32, 32]);
    let y = model.forward(&x, false);
    println!("forward [2, 3, 32, 32] -> {:?}", y.shape());
    println!("OK: parameter count matches the paper's 1.25M claim");
}
