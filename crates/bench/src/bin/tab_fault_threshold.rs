//! Sec. VII-D — fault-tolerance thresholds of the two-layer Raft.
//!
//! Paper claims to reproduce:
//! * each subgroup tolerates `⌊(n−1)/2⌋` crashes and the FedAvg layer
//!   `⌊(m−1)/2⌋`;
//! * optimistically (leaders alive, only followers crash) the system
//!   tolerates `m(⌊(n−1)/2⌋)` faulty peers — the paper states
//!   `m(⌊(n−1)/2⌋ + 1)` counting one replaceable leader per subgroup;
//! * crashing `⌊(m−1)/2⌋ + 1` subgroup leaders simultaneously halts the
//!   FedAvg layer.
//!
//! The closed-form table is accompanied by randomized crash-injection
//! checks on the real deployment.
//!
//! Run: `cargo run -rp p2pfl-bench --bin tab_fault_threshold`.

use p2pfl_bench::{banner, print_csv, Args};
use p2pfl_hierraft::{Deployment, DeploymentSpec};
use p2pfl_simnet::SimDuration;
use p2pfl_simnet::SimTime;

fn main() {
    let args = Args::parse();
    banner(
        "Sec. VII-D: two-layer Raft fault-tolerance thresholds",
        "subgroup quorum floor((n-1)/2); FedAvg quorum floor((m-1)/2)",
    );

    // Closed-form table.
    let mut rows = Vec::new();
    for (m, n) in [(3usize, 3usize), (5, 5), (6, 5), (10, 3)] {
        let sub_tol = (n - 1) / 2;
        let fed_tol = (m - 1) / 2;
        let optimistic = m * (sub_tol + 1);
        rows.push(format!("{m},{n},{sub_tol},{fed_tol},{optimistic}"));
    }
    print_csv(
        "m,n,subgroup_tolerance,fedavg_tolerance,optimistic_total_tolerance",
        rows,
    );

    // Empirical check on the paper topology (m = 5, n = 5).
    let seed = args.get_u64("seed", 1);
    println!("\n# empirical check on m = 5, n = 5 (T = 100 ms):");

    // (a) Crash floor((n-1)/2) followers in one subgroup: it keeps a leader.
    let mut d = Deployment::build(DeploymentSpec::paper(100, seed));
    assert!(d.wait_stable(SimTime::from_secs(10)));
    let leader0 = d.sub_leader_of(0).unwrap();
    let followers: Vec<_> = d.subgroups[0]
        .iter()
        .copied()
        .filter(|&p| p != leader0)
        .collect();
    for &f in followers.iter().take(2) {
        let at = d.sim.now() + SimDuration::from_millis(1);
        d.sim.schedule_crash(f, at);
    }
    d.sim.run_for(SimDuration::from_secs(3));
    let alive_leader = d.sub_leader_of(0).is_some();
    println!("#   2 follower crashes in a 5-peer subgroup -> leader present: {alive_leader}");
    assert!(alive_leader);

    // (b) Crash floor((n-1)/2)+1 = 3 peers of one subgroup: quorum lost,
    //     that subgroup cannot elect (but the rest of the system runs on).
    let mut d = Deployment::build(DeploymentSpec::paper(100, seed + 1));
    assert!(d.wait_stable(SimTime::from_secs(10)));
    for &p in d.subgroups[1].clone().iter().take(3) {
        let at = d.sim.now() + SimDuration::from_millis(1);
        d.sim.schedule_crash(p, at);
    }
    d.sim.run_for(SimDuration::from_secs(3));
    let dead_group_leaderless = d.sub_leader_of(1).is_none()
        || d.subgroups[1]
            .iter()
            .filter(|&&p| !d.sim.is_crashed(p))
            .count()
            < 3;
    let others_fine = d.sub_leader_of(2).is_some() && d.fed_leader().is_some();
    println!("#   3 crashes in one subgroup -> that group below quorum: {dead_group_leaderless}, rest operational: {others_fine}");
    assert!(others_fine);

    // (c) Crash 3 of the 5 FedAvg members simultaneously: the FedAvg layer
    //     loses quorum and cannot elect a leader even after their subgroups
    //     elect replacements (joins need a FedAvg leader).
    let mut d = Deployment::build(DeploymentSpec::paper(100, seed + 2));
    assert!(d.wait_stable(SimTime::from_secs(10)));
    let fed_members: Vec<_> = (0..5).filter_map(|g| d.sub_leader_of(g)).collect();
    for &p in fed_members.iter().take(3) {
        let at = d.sim.now() + SimDuration::from_millis(1);
        d.sim.schedule_crash(p, at);
    }
    d.sim.run_for(SimDuration::from_secs(5));
    let fed_down = d.fed_leader().is_none();
    println!(
        "#   3 simultaneous FedAvg-member crashes (majority) -> FedAvg layer down: {fed_down}"
    );
    println!("#   (matches Sec. VII-D: the system cannot operate if floor((m-1)/2)+1 subgroup leaders crash at once)");
}
