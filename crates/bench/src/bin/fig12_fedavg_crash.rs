//! Fig. 12 — crash of the *FedAvg leader* (which is simultaneously a
//! subgroup leader): both layers elect new leaders and the crashed
//! subgroup's replacement rejoins the FedAvg group.
//!
//! Paper claim to reproduce (shape): full recovery takes longer than the
//! single-subgroup case because the joiner must wait for the FedAvg-layer
//! election (paper reports the increments +95.07 / +114.65 / +130.30 /
//! +158.53 ms over the Fig. 11 case for the four ranges); the 100 ms
//! presence-poll interval bounds the extra wait.
//!
//! Run: `cargo run -rp p2pfl-bench --bin fig12_fedavg_crash -- --trials 1000`.

use p2pfl_bench::{banner, print_csv, Args};
use p2pfl_hierraft::experiments::{fedavg_leader_crash_trial, Stats};

fn main() {
    let args = Args::parse();
    let trials = args.get_u64("trials", 200);
    let seed0 = args.get_u64("seed", 0);

    banner(
        "Fig. 12: FedAvg leader crash -> double election + rebuild",
        "paper: +95.07/+114.65/+130.30/+158.53 ms over the Fig. 11 case",
    );
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for t in [50u64, 100, 150, 200] {
        let mut fed = Vec::new();
        let mut sub = Vec::new();
        let mut rebuild = Vec::new();
        for s in 0..trials {
            if let Some(r) = fedavg_leader_crash_trial(t, seed0 + s) {
                fed.push(r.fed_elect_ms);
                sub.push(r.sub_elect_ms);
                rebuild.push(r.rebuild_ms);
                rows.push(format!(
                    "{t}-{},{},{:.2},{:.2},{:.2}",
                    2 * t,
                    s,
                    r.fed_elect_ms,
                    r.sub_elect_ms,
                    r.rebuild_ms
                ));
            }
        }
        let f = Stats::of(&fed).expect("all trials failed");
        let sb = Stats::of(&sub).expect("all trials failed");
        let rb = Stats::of(&rebuild).expect("all trials failed");
        summary.push(format!(
            "#   T={t}..{}ms: fed elect {:.2}ms  sub elect {:.2}ms  full rebuild {:.2}ms  (n={})",
            2 * t,
            f.mean,
            sb.mean,
            rb.mean,
            rb.count
        ));
    }
    print_csv(
        "timeout_range_ms,trial,fed_elect_ms,sub_elect_ms,rebuild_ms",
        rows,
    );
    println!("\n# summary:");
    for s in summary {
        println!("{s}");
    }
}
