//! Hot-path wall-clock benchmark harness (`BENCH_hotpath.json`).
//!
//! Seeded, deterministic workloads over the kernels the round loop spends
//! its time in — dense matmul, im2col convolution, share generation, mask
//! application, the wire codec — plus two macro benchmarks running one
//! full N=10 two-layer aggregation round on the simulator and on real TCP
//! loopback sockets. Every workload is seeded with fixed constants, so
//! run-to-run variation is measurement noise, not input variation.
//!
//! ```text
//! cargo run -rp p2pfl-bench --bin hotpath               # full, writes BENCH_hotpath.json
//! cargo run -rp p2pfl-bench --bin hotpath -- --quick    # CI-sized iteration counts
//!     --baseline BENCH_hotpath.json                     # fail (exit 2) on >2x median regression
//!     --out target/hotpath.json                         # alternate report path
//!     --factor 2.0                                      # regression threshold
//! ```
//!
//! The checked-in `BENCH_hotpath.json` is the perf-gate baseline; refresh
//! it with a full (non-`--quick`) run on a quiet machine (see DESIGN.md,
//! "Performance").

use p2pfl::experiment::{build_system, SweepSpec};
use p2pfl::system::SystemKind;
use p2pfl_bench::alloc::CountingAlloc;
use p2pfl_bench::hotpath::{check_regressions, parse_baseline, Harness};
use p2pfl_bench::Args;
use p2pfl_ml::data::Partition;
use p2pfl_ml::layers::Conv2d;
use p2pfl_ml::reference::matmul_naive;
use p2pfl_ml::{Layer, Tensor};
use p2pfl_net::PeerRuntime;
use p2pfl_secagg::pairwise::{masked_update, PairwiseSeeds};
use p2pfl_secagg::{
    divide_masked, RingMsg, RingSacActor, SacConfig, SacEngine, SacMsg, SacPeerActor, SacPhase,
    ShareScheme, WeightVector,
};
use p2pfl_simnet::codec::{from_bytes, to_bytes};
use p2pfl_simnet::{NodeId, Sim, SimDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const SEED: u64 = 0xB0_5EED;

fn seeded_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let n: usize = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..n).map(|_| rng.random_range(-1.0f32..=1.0)).collect(),
    )
}

/// Polls one group leader until its SAC round completes, returning the
/// result digest.
fn wait_done(leader: &PeerRuntime<SacMsg, SacPeerActor>, round: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let state = leader.with(|a, _| (a.phase.clone(), a.result.as_ref().map(|r| r.digest())));
        match state {
            (SacPhase::Done, Some(d)) => return d,
            (SacPhase::Failed(e), _) => panic!("tcp round {round} failed: {e}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "tcp round {round} stalled");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Starts a full-mesh loopback group of `n` SAC peers with fresh models.
fn tcp_group(base_id: u32, n: usize, dim: usize) -> Vec<PeerRuntime<SacMsg, SacPeerActor>> {
    let ids: Vec<NodeId> = (0..n).map(|i| NodeId(base_id + i as u32)).collect();
    let mut rng = StdRng::seed_from_u64(SEED + base_id as u64);
    let runtimes: Vec<PeerRuntime<SacMsg, SacPeerActor>> = (0..n)
        .map(|i| {
            let cfg = SacConfig {
                group: ids.clone(),
                position: i,
                leader_pos: 0,
                k: n.div_ceil(2),
                scheme: ShareScheme::Masked,
                engine: SacEngine::Pairwise,
                share_deadline: SimDuration::from_secs(30),
                collect_deadline: SimDuration::from_secs(30),
                round_deadline: None,
                seed: SEED + base_id as u64 + i as u64,
            };
            let model = WeightVector::random(dim, 1.0, &mut rng);
            PeerRuntime::start(ids[i], "127.0.0.1:0", &[], SacPeerActor::new(cfg, model))
                .expect("bind loopback")
        })
        .collect();
    for a in &runtimes {
        for b in &runtimes {
            if a.node_id() != b.node_id() {
                a.add_peer(b.node_id(), b.local_addr());
            }
        }
    }
    runtimes
}

/// One clean (no-dropout) simulated SAC round at subgroup size `n` under
/// `engine`; returns the simulator ledger total as `(msgs, bytes)`. Every
/// message the round sends — shares, acks, control, subtotals — is
/// counted once, so the pair is the engine's full per-round traffic.
fn sweep_round(engine: SacEngine, n: usize, dim: usize) -> (u64, u64) {
    let ids: Vec<NodeId> = (0..n).map(|i| NodeId(i as u32)).collect();
    let mut rng = StdRng::seed_from_u64(SEED + n as u64);
    let cfg = |i: usize| SacConfig {
        group: ids.clone(),
        position: i,
        leader_pos: 0,
        k: n.div_ceil(2),
        scheme: ShareScheme::Masked,
        engine,
        share_deadline: SimDuration::from_millis(200),
        collect_deadline: SimDuration::from_millis(200),
        round_deadline: None,
        seed: SEED + i as u64,
    };
    match engine {
        SacEngine::Pairwise => {
            let mut sim: Sim<SacMsg> = Sim::new(SEED + n as u64);
            for i in 0..n {
                let model = WeightVector::random(dim, 1.0, &mut rng);
                sim.add_node(SacPeerActor::new(cfg(i), model));
            }
            sim.exec::<SacPeerActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 1));
            sim.run_until(sim.now() + SimDuration::from_secs(5));
            let leader = sim.actor::<SacPeerActor>(ids[0]);
            assert_eq!(leader.phase, SacPhase::Done, "pairwise n={n}");
            let t = sim.metrics().total();
            (t.msgs, t.bytes)
        }
        SacEngine::Ring => {
            let mut sim: Sim<RingMsg> = Sim::new(SEED + n as u64);
            for i in 0..n {
                let model = WeightVector::random(dim, 1.0, &mut rng);
                sim.add_node(RingSacActor::new(cfg(i), model));
            }
            sim.exec::<RingSacActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 1));
            sim.run_until(sim.now() + SimDuration::from_secs(5));
            let leader = sim.actor::<RingSacActor>(ids[0]);
            assert_eq!(leader.phase, SacPhase::Done, "ring n={n}");
            let t = sim.metrics().total();
            (t.msgs, t.bytes)
        }
    }
}

fn main() {
    let args = Args::parse();
    let quick = args.get_flag("quick");
    let out_path = args
        .get_str("out")
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let factor = args.get_f64("factor", 2.0);
    // Quick mode shrinks iteration counts ~3x for the CI gate.
    let scale = |full: usize| if quick { full.div_ceil(3) } else { full };

    let mut h = Harness::new();

    // --- micro: dense matmul, naive oracle vs blocked production kernel ---
    let m = 256usize;
    let a = seeded_tensor(&[m, m], SEED + 1);
    let b = seeded_tensor(&[m, m], SEED + 2);
    let matmul_bytes = (3 * m * m * 4) as u64;
    h.bench("matmul_naive_256", scale(9), matmul_bytes, || {
        std::hint::black_box(matmul_naive(&a, &b));
    });
    h.bench("matmul_blocked_256", scale(21), matmul_bytes, || {
        std::hint::black_box(a.matmul(&b));
    });

    // --- micro: im2col convolution, forward and backward ---
    let mut conv_rng = StdRng::seed_from_u64(SEED + 3);
    let mut conv = Conv2d::new(3, 8, 3, 1, &mut conv_rng);
    let x = seeded_tensor(&[8, 3, 16, 16], SEED + 4);
    let conv_bytes = (x.len() * 4) as u64;
    h.bench("im2col", scale(45), conv_bytes, || {
        std::hint::black_box(conv.im2col(&x));
    });
    h.bench("conv2d_forward", scale(27), conv_bytes, || {
        std::hint::black_box(conv.forward(&x, false));
    });
    // Backward consumes the forward cache, so each iteration pays one
    // training-mode forward plus the backward proper.
    let ones = {
        let y = conv.forward(&x, false);
        Tensor::from_vec(y.shape(), vec![1.0; y.len()])
    };
    h.bench("conv2d_backward", scale(15), conv_bytes, || {
        let _ = conv.forward(&x, true);
        std::hint::black_box(conv.backward(&ones));
    });

    // --- micro: secure-aggregation share generation and mask application ---
    let dim = 100_000usize;
    let w = WeightVector::random(dim, 1.0, &mut StdRng::seed_from_u64(SEED + 5));
    let share_bytes = (dim * 8 * 10) as u64;
    let mut divide_rng = StdRng::seed_from_u64(SEED + 6);
    h.bench("share_divide", scale(15), share_bytes, || {
        std::hint::black_box(divide_masked(&w, 10, &mut divide_rng));
    });

    let mask_dim = 20_000usize;
    let wm = WeightVector::random(mask_dim, 1.0, &mut StdRng::seed_from_u64(SEED + 7));
    let seeds = PairwiseSeeds::deal(10, &mut StdRng::seed_from_u64(SEED + 8));
    h.bench("mask_apply", scale(21), (mask_dim * 8 * 9) as u64, || {
        std::hint::black_box(masked_update(&seeds, 3, &wm));
    });

    // --- micro: wire codec over a model-sized vector ---
    let encoded = to_bytes(&w);
    let enc_bytes = encoded.len() as u64;
    h.bench("codec_encode", scale(45), enc_bytes, || {
        std::hint::black_box(to_bytes(&w));
    });
    h.bench("codec_decode", scale(45), enc_bytes, || {
        std::hint::black_box(from_bytes::<WeightVector>(&encoded).expect("decode"));
    });

    // --- macro: one full N=10 two-layer round on the simulator ---
    let spec = SweepSpec {
        n_total: 10,
        rounds: 1,
        samples_per_peer: 40,
        ..SweepSpec::default()
    };
    let (mut sys, test) = build_system(&spec, SystemKind::TwoLayer, 5, 1.0, Partition::Iid);
    let mut sim_round = 0usize;
    h.bench("macro_round_sim", scale(5), 0, || {
        sim_round += 1;
        std::hint::black_box(sys.run_round(sim_round, &test));
    });

    // --- macro: one full N=10 two-layer round over TCP loopback ---
    // Two subgroups of 5 run their SAC rounds over real sockets; the
    // fed-layer combine averages the two leader results.
    let group_a = tcp_group(0, 5, 1_000);
    let group_b = tcp_group(100, 5, 1_000);
    let mut tcp_round = 0u64;
    h.bench("macro_round_tcp", scale(3).max(1), 0, || {
        tcp_round += 1;
        let r = tcp_round;
        group_a[0].with(move |actor, ctx| actor.start_round(ctx, r));
        group_b[0].with(move |actor, ctx| actor.start_round(ctx, r));
        wait_done(&group_a[0], r);
        wait_done(&group_b[0], r);
        let (ra, rb) = (
            group_a[0].with(|actor, _| actor.result.clone().expect("group A result")),
            group_b[0].with(|actor, _| actor.result.clone().expect("group B result")),
        );
        std::hint::black_box(WeightVector::mean([&ra, &rb]));
    });

    // --- macro: pairwise vs ring message-complexity crossover sweep ---
    // One clean round per engine per subgroup size, counted on the
    // simulator's ledger. The pairwise engine shares all-to-all (O(n²)
    // messages); Ring-SAC shares only into its successor stage of size
    // ~log₂ n (O(n log n)), so past a small crossover ring must be
    // strictly cheaper. Enforced here rather than in the baseline diff:
    // if ring fails to beat pairwise in both messages and bytes at every
    // swept size from the crossover on — or never crosses at all, or its
    // message growth per size doubling looks quadratic — exit 2.
    let sweep_dim = 256usize;
    let sweep_ns = [4usize, 8, 16, 24, 32];
    let mut rows = Vec::new();
    for &n in &sweep_ns {
        let (pm, pb) = sweep_round(SacEngine::Pairwise, n, sweep_dim);
        let (rm, rb) = sweep_round(SacEngine::Ring, n, sweep_dim);
        println!(
            "crossover n={n:2}: pairwise {pm:5} msgs / {pb:8} B   ring {rm:5} msgs / {rb:8} B"
        );
        rows.push((n, pm, pb, rm, rb));
    }
    // Crossover = the smallest swept n from which ring stays strictly
    // cheaper than pairwise in both messages and bytes.
    let Some(ci) = (0..rows.len()).find(|&i| {
        rows[i..]
            .iter()
            .all(|&(_, pm, pb, rm, rb)| rm < pm && rb < pb)
    }) else {
        eprintln!("crossover gate FAILED: ring never strictly cheaper than pairwise");
        std::process::exit(2);
    };
    let crossover_n = rows[ci].0;
    println!("ring crossover: ring strictly cheaper from n={crossover_n} on");
    // Sub-quadratic check: doubling n under O(n²) multiplies messages by
    // ~4; under O(n log n) by ~2.5. Gate ring's 16→32 growth well below
    // the quadratic slope (pairwise itself sits near 4 here).
    let msgs_at = |n: usize| {
        rows.iter()
            .find(|r| r.0 == n)
            .map(|r| r.3 as f64)
            .expect("swept size")
    };
    let ring_growth = msgs_at(32) / msgs_at(16);
    println!("ring msg growth 16->32: {ring_growth:.2}x (quadratic would be ~4x)");
    if ring_growth >= 3.5 {
        eprintln!("crossover gate FAILED: ring message growth {ring_growth:.2}x looks quadratic");
        std::process::exit(2);
    }

    // --- derived acceptance ratio: blocked matmul speedup over naive ---
    let naive = h.median_of("matmul_naive_256").unwrap() as f64;
    let blocked = h.median_of("matmul_blocked_256").unwrap().max(1) as f64;
    let speedup = naive / blocked;
    println!("matmul blocked speedup at 256x256: {speedup:.2}x");

    let sweep_json: Vec<String> = rows
        .iter()
        .map(|&(n, pm, pb, rm, rb)| {
            format!(
                "{{\"n\": {n}, \"pairwise_msgs\": {pm}, \"pairwise_bytes\": {pb}, \
                 \"ring_msgs\": {rm}, \"ring_bytes\": {rb}}}"
            )
        })
        .collect();
    let json = h.to_json(
        quick,
        &[
            format!("\"matmul_speedup_256\": {speedup:.3}"),
            format!("\"ring_crossover_n\": {crossover_n}"),
            format!("\"ring_crossover\": [{}]", sweep_json.join(", ")),
        ],
    );
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    // --- optional regression gate against a checked-in baseline ---
    if let Some(baseline_path) = args.get_str("baseline") {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => {
                let baseline = parse_baseline(&text);
                let offenders = check_regressions(h.results(), &baseline, factor);
                if offenders.is_empty() {
                    println!(
                        "perf gate: {} benchmarks within {factor}x of {baseline_path}",
                        baseline.len()
                    );
                } else {
                    eprintln!("perf gate FAILED vs {baseline_path}:");
                    for line in &offenders {
                        eprintln!("  {line}");
                    }
                    std::process::exit(2);
                }
            }
            Err(_) => {
                println!("perf gate: baseline {baseline_path} missing, skipping comparison");
            }
        }
    }
}
