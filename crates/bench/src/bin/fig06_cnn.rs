//! Fig. 6, convolutional variant — the same two-layer-vs-baseline
//! accuracy comparison run through the *image* pipeline (a compact CNN on
//! MNIST-shaped synthetic data) instead of the fast MLP stand-in. This is
//! the closest offline analogue of the paper's exact setup; it is slow,
//! so the default is 10 rounds (`--rounds` to extend).
//!
//! Run: `cargo run -rp p2pfl-bench --bin fig06_cnn -- --rounds 30`.

use p2pfl::experiment::cnn_probe;
use p2pfl_bench::{banner, print_csv, Args};
use p2pfl_ml::data::Partition;

fn main() {
    let args = Args::parse();
    let rounds = args.get_usize("rounds", 10);
    let seed = args.get_u64("seed", 42);
    let n_total = args.get_usize("peers", 6);

    banner(
        "Fig. 6 (CNN variant): conv pipeline through two-layer SAC",
        "image model + secure aggregation end to end; accuracy rises, IID fastest",
    );
    let mut rows = Vec::new();
    for partition in [Partition::Iid, Partition::NON_IID_5] {
        for n in [3usize, n_total] {
            let series = cnn_probe(n_total, n, partition, rounds, 60, seed);
            for r in &series.records {
                rows.push(format!(
                    "{},{},{:.4},{:.4}",
                    series.label, r.round, r.test_accuracy, r.test_loss
                ));
            }
        }
    }
    print_csv("series,round,test_accuracy,test_loss", rows);
}
