//! Table I — evaluation environment.
//!
//! The paper's Table I lists its testbed machine. This reproduction runs
//! everything on a deterministic discrete-event simulator, so wall-clock
//! hardware does not affect any reported number except benchmark
//! throughput; this binary records the substitution and the current host
//! for the EXPERIMENTS.md ledger.

use p2pfl_bench::banner;

fn read(path: &str) -> Option<String> {
    std::fs::read_to_string(path).ok()
}

fn main() {
    banner(
        "Table I: evaluation environment",
        "paper: single machine + tc netem 15 ms; here: seeded discrete-event simulation",
    );
    println!("substitution: real TCP + `tc netem` -> p2pfl-simnet virtual time");
    println!("  * link delay: constant 15 ms (Latency::paper_default), configurable");
    println!("  * election timeouts: U(T, 2T), T in {{50, 100, 150, 200}} ms");
    println!("  * all results are deterministic given a seed\n");

    let cpu = read("/proc/cpuinfo")
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .map(|l| l.split(':').nth(1).unwrap_or("").trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into());
    let mem_kb = read("/proc/meminfo")
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("MemTotal")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|v| v.parse::<u64>().ok())
            })
        })
        .unwrap_or(0);
    let os = read("/proc/sys/kernel/osrelease").unwrap_or_else(|| "unknown".into());
    println!("host cpu:    {cpu}");
    println!("host memory: {:.1} GiB", mem_kb as f64 / 1024.0 / 1024.0);
    println!("host kernel: {}", os.trim());
    println!(
        "rustc:       {}",
        option_env!("RUSTC_VERSION").unwrap_or("(cargo default)")
    );
}
