//! Ablation — round *latency* under finite link bandwidth. The paper
//! argues in bytes; this experiment runs the actual message-driven SAC
//! protocol on the simulator with a bandwidth model and measures how long
//! one aggregation round takes end-to-end: one-layer SAC over all N peers
//! versus a single n-peer subgroup of the two-layer system (subgroups run
//! in parallel, so the subgroup time *is* the SAC-layer time).
//!
//! Run: `cargo run -rp p2pfl-bench --bin abl_bandwidth -- --params 125000`.

use p2pfl_bench::{banner, print_csv, Args};
use p2pfl_secagg::{
    SacConfig, SacEngine, SacMsg, SacPeerActor, SacPhase, ShareScheme, WeightVector,
};
use p2pfl_simnet::{Latency, LatencyConfig, NodeId, Sim, SimDuration};

/// Runs one n-peer, k-threshold SAC round at the given bandwidth and
/// returns the leader's completion time in virtual milliseconds.
fn round_time(n: usize, k: usize, dim: usize, mbps: u64, seed: u64) -> Option<f64> {
    let mut sim: Sim<SacMsg> = Sim::new(seed);
    let cfg = LatencyConfig::uniform_default(Latency::Constant(SimDuration::from_millis(15)))
        .with_bandwidth(mbps * 1_000_000 / 8);
    sim.set_latency(cfg);
    let ids: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    for i in 0..n {
        let cfg = SacConfig {
            group: ids.clone(),
            position: i,
            leader_pos: 0,
            k,
            scheme: ShareScheme::Masked,
            engine: SacEngine::Pairwise,
            share_deadline: SimDuration::from_secs(120),
            collect_deadline: SimDuration::from_secs(120),
            round_deadline: None,
            seed: seed + i as u64,
        };
        sim.add_node(SacPeerActor::new(cfg, WeightVector::zeros(dim)));
    }
    sim.run_until_quiet(1000);
    let t0 = sim.now();
    sim.exec::<SacPeerActor, _, _>(ids[0], |a, ctx| a.start_round(ctx, 1));
    let deadline = sim.now() + SimDuration::from_secs(600);
    // Step until the leader completes.
    loop {
        if sim.actor::<SacPeerActor>(ids[0]).phase == SacPhase::Done {
            return Some((sim.now() - t0).as_millis_f64());
        }
        if sim.now() >= deadline {
            return None;
        }
        sim.run_for(SimDuration::from_millis(20));
    }
}

fn main() {
    let args = Args::parse();
    // Default to a tenth of the Fig. 5 CNN so the one-layer case stays
    // memory-friendly; the *ratio* between configurations is size-free.
    let dim = args.get_usize("params", 125_000);
    let seed = args.get_u64("seed", 1);

    banner(
        "Ablation: end-to-end SAC round latency under finite bandwidth",
        "two-layer subgroups aggregate in parallel; one-layer SAC serializes O(N^2) bytes",
    );
    let mut rows = Vec::new();
    for mbps in [100u64, 1000] {
        let one_layer = round_time(30, 30, dim, mbps, seed);
        let subgroup = round_time(3, 2, dim, mbps, seed + 1);
        let subgroup5 = round_time(5, 3, dim, mbps, seed + 2);
        rows.push(format!(
            "{mbps},{},{},{}",
            one_layer.map_or("timeout".into(), |t| format!("{t:.0}")),
            subgroup.map_or("timeout".into(), |t| format!("{t:.0}")),
            subgroup5.map_or("timeout".into(), |t| format!("{t:.0}")),
        ));
    }
    print_csv(
        "link_mbps,one_layer_sac_n30_ms,two_layer_subgroup_3of2_ms,two_layer_subgroup_5of3_ms",
        rows,
    );
    println!("\n# the two-layer SAC phase completes when the slowest subgroup does;");
    println!("# with parallel subgroups that is the per-subgroup time above, while");
    println!("# one-layer SAC must move its entire quadratic share volume.");
}
