//! One-shot reproduction check: re-derives every table/figure claim at
//! reduced scale and prints a paper-vs-measured verdict table. The
//! dedicated `figNN_*` binaries produce the full-resolution data; this is
//! the five-minute sanity pass.
//!
//! Run: `cargo run -rp p2pfl-bench --bin repro_all`
//! (add `--full` for paper-scale rounds/trials; takes minutes).

use p2pfl::cost::{
    even_groups, gigabits, sac_baseline_units, two_layer_ft_units_eq5, two_layer_units_exact,
    ModelSize,
};
use p2pfl::experiment::{accuracy_sweep, final_accuracy, fraction_sweep, SweepSpec};
use p2pfl_bench::Args;
use p2pfl_hierraft::experiments::{fedavg_leader_crash_trial, subgroup_leader_crash_trial, Stats};
use p2pfl_ml::data::Partition;
use p2pfl_ml::models::{paper_cnn, PAPER_CNN_PARAMS};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Verdict {
    item: &'static str,
    paper: String,
    measured: String,
    pass: bool,
}

fn main() {
    let args = Args::parse();
    let full = args.get_flag("full");
    let rounds = if full { 1000 } else { 120 };
    let trials = if full { 1000 } else { 60 };
    let mut verdicts: Vec<Verdict> = Vec::new();

    // ------------------------------------------------------------------
    println!("[1/7] Fig. 5: CNN parameter count ...");
    let mut rng = StdRng::seed_from_u64(0);
    let params = paper_cnn(&mut rng, 0).num_params();
    verdicts.push(Verdict {
        item: "Fig.5 CNN size",
        paper: "1.25 M params".into(),
        measured: format!("{:.3} M", params as f64 / 1e6),
        pass: params == PAPER_CNN_PARAMS && (params as f64 / 1e6 - 1.25).abs() < 0.01,
    });

    // ------------------------------------------------------------------
    println!("[2/7] Figs. 6-7: two-layer vs baseline accuracy ({rounds} rounds) ...");
    let spec = SweepSpec {
        n_total: 10,
        rounds,
        seed: 42,
        ..SweepSpec::default()
    };
    let series = accuracy_sweep(&spec, &[3, 10], &[Partition::Iid, Partition::NON_IID_0]);
    let gap = (final_accuracy(&series[0]) - final_accuracy(&series[1])).abs();
    verdicts.push(Verdict {
        item: "Fig.6 two-layer == baseline",
        paper: "<2% accuracy difference".into(),
        measured: format!("{:.2}% gap", gap * 100.0),
        pass: gap < 0.02,
    });
    let iid = final_accuracy(&series[0]);
    let skew = final_accuracy(&series[2]);
    verdicts.push(Verdict {
        item: "Fig.6 IID >= Non-IID(0%)",
        paper: "IID best".into(),
        measured: format!("IID {:.3} vs skew {:.3}", iid, skew),
        pass: iid >= skew - 1e-9,
    });

    // ------------------------------------------------------------------
    println!("[3/7] Figs. 8-9: fraction p = 0.5 ({rounds} rounds) ...");
    let spec = SweepSpec {
        n_total: 20,
        rounds,
        seed: 42,
        ..SweepSpec::default()
    };
    let fr = fraction_sweep(&spec, 5, &[0.5, 1.0], &[Partition::Iid]);
    let gap = final_accuracy(&fr[1]) - final_accuracy(&fr[0]);
    verdicts.push(Verdict {
        item: "Fig.8 p=0.5 costs little",
        paper: "~2.18% mean gap".into(),
        measured: format!("{:+.2}% gap", gap * 100.0),
        pass: gap.abs() < 0.05,
    });

    // ------------------------------------------------------------------
    println!("[4/7] Figs. 10-11: subgroup leader crash recovery ({trials} trials) ...");
    let mut means = Vec::new();
    let mut deltas = Vec::new();
    for t in [50u64, 200] {
        let mut elect = Vec::new();
        let mut join = Vec::new();
        for s in 0..trials {
            if let Some(r) = subgroup_leader_crash_trial(t, s) {
                elect.push(r.elect_ms);
                join.push(r.join_ms);
            }
        }
        let e = Stats::of(&elect).unwrap();
        let j = Stats::of(&join).unwrap();
        means.push(e.mean);
        deltas.push(j.mean - e.mean);
    }
    verdicts.push(Verdict {
        item: "Fig.10 recovery grows with T",
        paper: "monotone in timeout".into(),
        measured: format!("{:.0}ms @T=50 -> {:.0}ms @T=200", means[0], means[1]),
        pass: means[1] > means[0],
    });
    verdicts.push(Verdict {
        item: "Fig.11 join overhead ~const",
        paper: "+123..166 ms".into(),
        measured: format!("+{:.0} / +{:.0} ms", deltas[0], deltas[1]),
        pass: deltas.iter().all(|d| (90.0..220.0).contains(d)),
    });

    // ------------------------------------------------------------------
    println!("[5/7] Fig. 12: FedAvg leader crash ({trials} trials) ...");
    let mut rebuilds = Vec::new();
    let mut joins_at_t50 = Vec::new();
    for s in 0..trials {
        if let Some(r) = fedavg_leader_crash_trial(50, s) {
            rebuilds.push(r.rebuild_ms);
        }
        if let Some(r) = subgroup_leader_crash_trial(50, s) {
            joins_at_t50.push(r.join_ms);
        }
    }
    let rebuild = Stats::of(&rebuilds).unwrap().mean;
    let join = Stats::of(&joins_at_t50).unwrap().mean;
    verdicts.push(Verdict {
        item: "Fig.12 full rebuild slowest",
        paper: "longer than Fig.11 case".into(),
        measured: format!("rebuild {rebuild:.0}ms vs join {join:.0}ms"),
        pass: rebuild >= join,
    });

    // ------------------------------------------------------------------
    println!("[6/7] Fig. 13: cost vs m (closed form) ...");
    let m6 = gigabits(two_layer_units_exact(&even_groups(30, 6)) * ModelSize::PAPER_CNN.bits());
    verdicts.push(Verdict {
        item: "Fig.13 m=6 cost",
        paper: "7.12 Gb".into(),
        measured: format!("{m6:.2} Gb"),
        pass: (m6 - 7.12).abs() < 0.01,
    });

    // ------------------------------------------------------------------
    println!("[7/7] Fig. 14: k-n improvement ratios (closed form) ...");
    for (n, k, nt, expect) in [
        (3usize, 3usize, 30usize, 14.75),
        (3, 2, 30, 10.36),
        (5, 3, 30, 4.29),
    ] {
        let ratio = sac_baseline_units(nt) / two_layer_ft_units_eq5(n, k, nt);
        verdicts.push(Verdict {
            item: match (n, k) {
                (3, 3) => "Fig.14 (3-3, N=30)",
                (3, 2) => "Fig.14 (3-2, N=30) headline",
                _ => "Fig.14 (5-3, N=30)",
            },
            paper: format!("{expect}x"),
            measured: format!("{ratio:.2}x"),
            pass: (ratio - expect).abs() < 0.01,
        });
    }

    // ------------------------------------------------------------------
    println!(
        "\n{:<32} {:<26} {:<28} verdict",
        "claim", "paper", "measured"
    );
    println!("{}", "-".repeat(98));
    let mut failures = 0;
    for v in &verdicts {
        println!(
            "{:<32} {:<26} {:<28} {}",
            v.item,
            v.paper,
            v.measured,
            if v.pass { "PASS" } else { "FAIL" }
        );
        if !v.pass {
            failures += 1;
        }
    }
    println!("{}", "-".repeat(98));
    if failures == 0 {
        println!("all {} reproduction checks passed", verdicts.len());
    } else {
        println!("{failures} of {} checks FAILED", verdicts.len());
        std::process::exit(1);
    }
}
