//! Fig. 9 — training loss for the Fig. 8 fraction experiment
//! (N = 20, n = 5, p ∈ {0.5, 1}).
//!
//! Paper claim to reproduce (shape): loss curves for p = 0.5 stay close to
//! p = 1 across all three data distributions.
//!
//! Run: `cargo run -rp p2pfl-bench --bin fig09_fraction_loss -- --rounds 1000`.

use p2pfl::experiment::{fraction_sweep, SweepSpec};
use p2pfl_bench::{banner, print_csv, Args};
use p2pfl_ml::data::Partition;
use p2pfl_ml::metrics::MovingAverage;

fn main() {
    let args = Args::parse();
    let rounds = args.get_usize("rounds", 200);
    let seed = args.get_u64("seed", 42);
    let window = args.get_usize("window", 20);

    banner(
        "Fig. 9: training loss vs subgroup fraction p (N = 20, n = 5)",
        "p = 0.5 loss tracks p = 1 under all three data distributions",
    );
    let spec = SweepSpec {
        n_total: 20,
        rounds,
        seed,
        ..SweepSpec::default()
    };
    let partitions = [Partition::Iid, Partition::NON_IID_5, Partition::NON_IID_0];
    let series = fraction_sweep(&spec, 5, &[0.5, 1.0], &partitions);

    let mut rows = Vec::new();
    for s in &series {
        let smooth = MovingAverage::smooth(
            window,
            &s.records.iter().map(|r| r.train_loss).collect::<Vec<_>>(),
        );
        for (r, loss) in s.records.iter().zip(&smooth) {
            rows.push(format!("{},{},{:.4}", s.label, r.round, loss));
        }
    }
    print_csv("series,round,train_loss_ma", rows);
}
