//! Ablation — the redundancy/communication trade-off of Sec. VII-B:
//! sweep the reconstruction threshold `k` for fixed subgroup size `n` and
//! report (a) the closed-form cost and (b) the Monte-Carlo probability
//! that a round survives i.i.d. peer crashes, per subgroup.
//!
//! Run: `cargo run -rp p2pfl-bench --bin abl_k_tradeoff -- --n 5 --peers 30`.

use p2pfl::cost::{gigabits, sac_baseline_units, two_layer_ft_units_eq5, ModelSize};
use p2pfl_bench::{banner, print_csv, Args};
use p2pfl_secagg::replicated::can_reconstruct;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Monte-Carlo estimate of P(subgroup of `n` with threshold `k` completes
/// a round | each peer crashes i.i.d. with probability `p`, leader held
/// up by Raft re-election, so only share recovery matters).
fn survival(n: usize, k: usize, p: f64, trials: u64, rng: &mut StdRng) -> f64 {
    let mut ok = 0u64;
    for _ in 0..trials {
        let alive: Vec<bool> = (0..n).map(|_| rng.random::<f64>() >= p).collect();
        if can_reconstruct(n, k, &alive) {
            ok += 1;
        }
    }
    ok as f64 / trials as f64
}

fn main() {
    let args = Args::parse();
    let n = args.get_usize("n", 5);
    let n_total = args.get_usize("peers", 30);
    let trials = args.get_u64("trials", 20_000);
    let model = ModelSize::PAPER_CNN;

    banner(
        "Ablation: k-out-of-n redundancy vs cost vs survival",
        "Sec. VII-B: 'a trade-off between redundancy and communication cost'",
    );
    assert!(n_total.is_multiple_of(n), "pick N divisible by n");
    let baseline = sac_baseline_units(n_total);
    let mut rng = StdRng::seed_from_u64(args.get_u64("seed", 1));
    let mut rows = Vec::new();
    for k in 1..=n {
        let units = two_layer_ft_units_eq5(n, k, n_total);
        let mut row = format!(
            "{k},{n},{:.3},{:.2},{}",
            gigabits(units * model.bits()),
            baseline / units,
            n - k
        );
        for p in [0.05, 0.10, 0.20, 0.30] {
            row.push_str(&format!(",{:.4}", survival(n, k, p, trials, &mut rng)));
        }
        rows.push(row);
    }
    print_csv(
        "k,n,cost_gigabits,improvement_over_sac,tolerated_dropouts,survive_p05,survive_p10,survive_p20,survive_p30",
        rows,
    );
    println!("\n# reading guide: k = n is cheapest but dies with any dropout;");
    println!("# k = 1 replicates everything to everyone (no secrecy!); the paper");
    println!("# picks k = n-1 (e.g. 2-of-3) as the sweet spot, and so does this table.");
}
