//! Ablation — Pre-Vote (DESIGN.md note 1): a rejoined peer with a stale
//! log campaigns against a healthy cluster. With Pre-Vote the cluster is
//! untouched; without it, terms inflate and the leader is repeatedly
//! dethroned. This is the failure we hit live in the two-layer FedAvg
//! layer before adopting Pre-Vote.
//!
//! Run: `cargo run -rp p2pfl-bench --bin abl_prevote -- --seeds 50`.

use p2pfl_bench::{banner, print_csv, Args};
use p2pfl_raft::{NullStateMachine, RaftActor, RaftConfig, RaftMsg};
use p2pfl_simnet::{NodeId, Sim, SimDuration, SimTime};

type Node = RaftActor<u64, NullStateMachine>;

fn run_scenario(pre_vote: bool, seed: u64) -> (u64, u64, bool) {
    let mut sim: Sim<RaftMsg<u64>> = Sim::new(seed);
    let ids: Vec<NodeId> = (0..3).map(NodeId).collect();
    for &id in &ids {
        let mut cfg = RaftConfig::paper(
            id,
            ids.clone(),
            SimDuration::from_millis(100),
            seed + id.0 as u64,
        );
        cfg.pre_vote = pre_vote;
        sim.add_node(RaftActor::new(cfg, NullStateMachine));
    }
    sim.run_until(SimTime::from_secs(2));
    let leader = *ids
        .iter()
        .find(|&&id| sim.actor::<Node>(id).is_leader())
        .unwrap();
    let term0 = sim.actor::<Node>(leader).raft().term();

    let victim = *ids.iter().find(|&&id| id != leader).unwrap();
    let at = sim.now() + SimDuration::from_millis(1);
    sim.schedule_crash(victim, at);
    sim.run_for(SimDuration::from_millis(200));
    for v in 0..5u64 {
        sim.exec::<Node, _, _>(leader, |a, ctx| {
            let _ = a.propose(ctx, v);
        });
        sim.run_for(SimDuration::from_millis(50));
    }
    let other = *ids
        .iter()
        .find(|&&id| id != leader && id != victim)
        .unwrap();
    sim.partition_pair(victim, leader);
    let at = sim.now() + SimDuration::from_millis(1);
    sim.schedule_restart(victim, at);
    sim.run_for(SimDuration::from_secs(5));

    let inflation = sim.actor::<Node>(other).raft().term() - term0;
    let step_downs = sim.actor::<Node>(leader).step_downs;
    let has_leader = ids
        .iter()
        .filter(|&&id| !sim.is_crashed(id) && sim.actor::<Node>(id).is_leader())
        .count()
        == 1;
    (inflation, step_downs, has_leader)
}

fn main() {
    let args = Args::parse();
    let seeds = args.get_u64("seeds", 30);

    banner(
        "Ablation: Pre-Vote vs vanilla Raft under a stale-log rejoin",
        "5s of a flaky rejoined peer campaigning against a 3-node cluster",
    );
    let mut rows = Vec::new();
    for pre_vote in [true, false] {
        let mut total_inflation = 0u64;
        let mut total_stepdowns = 0u64;
        let mut leaderful = 0u64;
        for s in 0..seeds {
            let (i, d, l) = run_scenario(pre_vote, 1000 + s);
            total_inflation += i;
            total_stepdowns += d;
            leaderful += l as u64;
        }
        rows.push(format!(
            "{},{:.2},{:.2},{:.0}%",
            if pre_vote { "pre-vote" } else { "vanilla" },
            total_inflation as f64 / seeds as f64,
            total_stepdowns as f64 / seeds as f64,
            100.0 * leaderful as f64 / seeds as f64
        ));
    }
    print_csv(
        "mode,mean_term_inflation,mean_leader_stepdowns,runs_ending_with_leader",
        rows,
    );
    println!("\n# pre-vote keeps the healthy cluster's term flat and its leader seated;");
    println!("# vanilla Raft lets the zombie inflate terms and dethrone the leader.");
}
